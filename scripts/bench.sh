#!/usr/bin/env bash
# Simulator-core performance benchmark driver.
#
# Runs the hetmem-perf matrix (six catalog workloads x {LOCAL, BW-AWARE}
# at 400k memory ops on 15 SMs, min-of-3 iterations per point) and
# writes per-point events/sec, sim-cycles/sec and wall time — min/mean
# plus p50/p99 iteration tails — as JSON.
#
# Usage:
#   scripts/bench.sh                                  # run, write target/bench/current.json
#   scripts/bench.sh --out my.json --label "my change"
#   scripts/bench.sh --baseline BENCH_0005.json       # run + regression gate + merged report
#   scripts/bench.sh --quick                          # small matrix for smoke testing
#
# Any unrecognized flags (e.g. --quick, --iters N, --workloads a,b) are
# passed through to `hetmem-perf run`.
#
# With --baseline, the fresh run is gated against the baseline's
# aggregate events/sec (>30% regression fails with exit 4) and a merged
# baseline/current/speedup report is written next to --out (override
# with --report). BENCH_0005.json in the repo root is such a report.
#
# Every run also executes the sampled-fidelity matrix (full vs sampled
# per workload) and gates it: >=5x wall-clock speedup and <=5% bandwidth
# error on at least 4 of 6 workloads (exit 4 on miss). BENCH_0009.json
# is the committed reference report.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=target/bench/current.json
BASELINE=
REPORT=
LABEL="$(git rev-parse --short HEAD 2>/dev/null || echo dev)"
EXTRA=()
while [ $# -gt 0 ]; do
    case "$1" in
        --out) OUT=$2; shift 2 ;;
        --baseline) BASELINE=$2; shift 2 ;;
        --report) REPORT=$2; shift 2 ;;
        --label) LABEL=$2; shift 2 ;;
        *) EXTRA+=("$1"); shift ;;
    esac
done

mkdir -p "$(dirname "$OUT")"
cargo build --release --offline -q -p hetmem-bench --bin hetmem-perf
target/release/hetmem-perf run --label "$LABEL" --out "$OUT" \
    ${EXTRA[@]+"${EXTRA[@]}"}

# Sampled-fidelity gate: the fast-forward engine must hold >=5x
# wall-clock speedup with the error bound on the committed matrix
# (BENCH_0009.json records the reference numbers). --quick runs the
# ungated smoke variant instead.
FIDELITY_ARGS=(--min-speedup 5 --max-error 5 --min-pass 4)
case " ${EXTRA[*]-} " in
    *" --quick "*) FIDELITY_ARGS=(--quick) ;;
esac
target/release/hetmem-perf fidelity --label "$LABEL" \
    --out "${OUT%.json}-fidelity.json" "${FIDELITY_ARGS[@]}"

if [ -n "$BASELINE" ]; then
    target/release/hetmem-perf gate --baseline "$BASELINE" --current "$OUT"
    target/release/hetmem-perf report --baseline "$BASELINE" --current "$OUT" \
        --out "${REPORT:-${OUT%.json}-report.json}"
fi
