#!/usr/bin/env bash
# Offline CI gate: formatting, release build, full test suite.
#
# The workspace has zero third-party dependencies, so everything here
# runs with --offline and must pass on a machine with no network access.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo build --workspace --release --offline
cargo test --workspace -q --offline

# Observability smoke: one sampled + traced sweep, then validate every
# emitted JSONL line and trace document through the strict parser.
OBS_DIR=target/ci-obs
rm -rf "$OBS_DIR"
cargo run --release --offline -q -p hetmem-bench --bin fig3 -- \
    --quick --workloads lbm --quiet \
    --out "$OBS_DIR" --sample-cycles 20000 \
    --trace "$OBS_DIR/trace" --trace-budget 20000
cargo run --release --offline -q -p hetmem-bench --bin hetmem-trace -- \
    check "$OBS_DIR/fig3.jsonl" "$OBS_DIR"/trace/*.json
cargo run --release --offline -q -p hetmem-bench --bin hetmem-trace -- \
    summary "$OBS_DIR/fig3.jsonl" --top 3
