#!/usr/bin/env bash
# Offline CI gate: formatting, release build, full test suite.
#
# The workspace has zero third-party dependencies, so everything here
# runs with --offline and must pass on a machine with no network access.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo build --workspace --release --offline
cargo test --workspace -q --offline

# Observability smoke: one sampled + traced sweep, then validate every
# emitted JSONL line and trace document through the strict parser.
OBS_DIR=target/ci-obs
rm -rf "$OBS_DIR"
cargo run --release --offline -q -p hetmem-bench --bin fig3 -- \
    --quick --workloads lbm --quiet \
    --out "$OBS_DIR" --sample-cycles 20000 \
    --trace "$OBS_DIR/trace" --trace-budget 20000
cargo run --release --offline -q -p hetmem-bench --bin hetmem-trace -- \
    check "$OBS_DIR/fig3.jsonl" "$OBS_DIR"/trace/*.json
cargo run --release --offline -q -p hetmem-bench --bin hetmem-trace -- \
    summary "$OBS_DIR/fig3.jsonl" --top 3

# hetmem-serve smoke: boot the service on an ephemeral loopback port,
# drive it with the line client (whose exit code already implies a
# strict parse of each response), check that a repeated simulate is a
# byte-identical cache hit, shut down cleanly, and strict-validate the
# captured responses plus the server's own telemetry.
SERVE_DIR=target/ci-serve
rm -rf "$SERVE_DIR"
mkdir -p "$SERVE_DIR"
cargo build --release --offline -q -p hetmem-bench \
    --bin hetmem-serve --bin hetmem-client
target/release/hetmem-serve \
    --addr 127.0.0.1:0 --port-file "$SERVE_DIR/port" --out "$SERVE_DIR" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    [ -s "$SERVE_DIR/port" ] && break
    sleep 0.1
done
ADDR="127.0.0.1:$(cat "$SERVE_DIR/port")"
client() { target/release/hetmem-client "$ADDR" "$@"; }

client place workload=bfs capacity_pct=10 > "$SERVE_DIR/place.jsonl"
grep -q '"hints":\[' "$SERVE_DIR/place.jsonl"
client simulate workload=hotspot policy=LOCAL mem_ops=4000 sms=2 \
    > "$SERVE_DIR/sim1.jsonl"
client simulate workload=hotspot policy=LOCAL mem_ops=4000 sms=2 \
    > "$SERVE_DIR/sim2.jsonl"
cmp "$SERVE_DIR/sim1.jsonl" "$SERVE_DIR/sim2.jsonl"  # cache hit: same bytes
client stats > "$SERVE_DIR/stats.jsonl"
grep -q '"hits":1' "$SERVE_DIR/stats.jsonl"

# Sampled-fidelity smoke: fidelity=sampled must return a run record
# with an estimated block (cached under its own content address);
# fidelity=full must be byte-identical to omitting the field — same
# cache entry, same bytes; any other value is the stable
# invalid-fidelity code.
client --fidelity sampled simulate workload=hotspot policy=LOCAL \
    mem_ops=4000 sms=2 > "$SERVE_DIR/sim-sampled.jsonl"
grep -q '"estimated":{' "$SERVE_DIR/sim-sampled.jsonl"
client --fidelity full simulate workload=hotspot policy=LOCAL \
    mem_ops=4000 sms=2 > "$SERVE_DIR/sim-full.jsonl"
cmp "$SERVE_DIR/sim-full.jsonl" "$SERVE_DIR/sim1.jsonl"
if client --fidelity approximate simulate workload=hotspot policy=LOCAL \
    mem_ops=4000 sms=2 > "$SERVE_DIR/sim-badfid.jsonl"; then
    echo "server accepted an invalid fidelity" >&2
    exit 1
fi
grep -q '"code":"invalid-fidelity"' "$SERVE_DIR/sim-badfid.jsonl"

# Pipelined + batch traffic against the poll(2) front end (the default
# core): 20 request lines written before a single response is read must
# all be answered on the same connection, and a protocol-v2 batch
# envelope must fan its sub-requests through one dispatch with each
# sub-response byte-identical to the bare request's.
exec 3<>"/dev/tcp/127.0.0.1/$(cat "$SERVE_DIR/port")"
for i in $(seq 1 20); do
    printf '{"id":%d,"op":"stats"}\n' "$i" >&3
done
for _ in $(seq 1 20); do
    IFS= read -r line <&3
    printf '%s\n' "$line"
done > "$SERVE_DIR/pipelined.jsonl"
exec 3<&- 3>&-
[ "$(grep -c '"ok":true' "$SERVE_DIR/pipelined.jsonl")" -eq 20 ]
client --batch 8 simulate workload=hotspot policy=LOCAL mem_ops=4000 sms=2 \
    > "$SERVE_DIR/batch.jsonl"
[ "$(wc -l < "$SERVE_DIR/batch.jsonl")" -eq 8 ]
cmp <(head -1 "$SERVE_DIR/batch.jsonl") "$SERVE_DIR/sim1.jsonl"

# Metrics/tracing smoke: a traced request's id must be echoed on both
# the success and error paths, the metrics op must serve JSON and a
# valid Prometheus exposition whose per-op histogram counts conserve
# (hetmem-top --check), and the span log must render to a Chrome trace.
cargo build --release --offline -q -p hetmem-bench --bin hetmem-top
client --request-id ci-trace-1 --trace simulate \
    workload=hotspot policy=LOCAL mem_ops=4000 sms=2 > "$SERVE_DIR/sim3.jsonl"
grep -q '"request_id":"ci-trace-1"' "$SERVE_DIR/sim3.jsonl"
client --request-id ci-err-1 simulate workload=no-such-app \
    > "$SERVE_DIR/err.jsonl" || true
grep -q '"request_id":"ci-err-1"' "$SERVE_DIR/err.jsonl"
grep -q '"code":"unknown-workload"' "$SERVE_DIR/err.jsonl"
client metrics > "$SERVE_DIR/metrics.json"
grep -q 'hm_requests_total' "$SERVE_DIR/metrics.json"
client metrics format=prometheus > "$SERVE_DIR/metrics-prom.json"
cargo run --release --offline -q -p hetmem-bench --bin hetmem-trace -- \
    promcheck "$SERVE_DIR/metrics-prom.json"
target/release/hetmem-top "$ADDR" --once --json --check > "$SERVE_DIR/top.json"
grep -q '"p99_us"' "$SERVE_DIR/top.json"

client shutdown | grep -q '"draining":true'
wait "$SERVE_PID"  # graceful drain: the server must exit 0 on its own
trap - EXIT
cargo run --release --offline -q -p hetmem-bench --bin hetmem-trace -- \
    spans "$SERVE_DIR/serve.jsonl" --request ci-trace-1 \
    --out "$SERVE_DIR/spans.json"
cargo run --release --offline -q -p hetmem-bench --bin hetmem-trace -- \
    check "$SERVE_DIR"/*.jsonl "$SERVE_DIR/spans.json"

# Chaos smoke: the loopback test injects seeded worker panics, stalls,
# torn writes, and cache corruption, and asserts every request ends
# byte-correct or with a stable error code.
cargo test --release --offline -q -p hetmem-bench --test chaos

# Crash-safe resume smoke: run a checkpointed sweep, SIGKILL it
# mid-flight (latency faults widen the kill window), resume from the
# checkpoint, and require the merged output to be byte-identical to an
# uninterrupted run.
SWEEP_DIR=target/ci-sweep
rm -rf "$SWEEP_DIR"
mkdir -p "$SWEEP_DIR"
cargo build --release --offline -q -p hetmem-bench --bin hetmem-sweep
SWEEP_ARGS=(--workloads bfs,hotspot --policies LOCAL,INTERLEAVE,BW-AWARE
    --mem-ops 3000 --sms 2 --threads 2)
target/release/hetmem-sweep "${SWEEP_ARGS[@]}" --out "$SWEEP_DIR/clean.jsonl"
target/release/hetmem-sweep "${SWEEP_ARGS[@]}" \
    --checkpoint "$SWEEP_DIR/sweep.ckpt" --out "$SWEEP_DIR/resumed.jsonl" \
    --faults seed=5,latency=1,latency-ms=400 &
SWEEP_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SWEEP_DIR/sweep.ckpt" ] && break
    sleep 0.05
done
kill -9 "$SWEEP_PID" 2>/dev/null || true
wait "$SWEEP_PID" 2>/dev/null || true
[ -s "$SWEEP_DIR/sweep.ckpt" ]  # the kill must land after >=1 checkpointed point
[ "$(wc -l < "$SWEEP_DIR/sweep.ckpt")" -lt 6 ]  # ...but before the sweep finished
target/release/hetmem-sweep "${SWEEP_ARGS[@]}" \
    --checkpoint "$SWEEP_DIR/sweep.ckpt" --out "$SWEEP_DIR/resumed.jsonl" \
    2> "$SWEEP_DIR/resume.log"
grep -q resuming "$SWEEP_DIR/resume.log"
cmp "$SWEEP_DIR/clean.jsonl" "$SWEEP_DIR/resumed.jsonl"  # resume: same bytes
cargo run --release --offline -q -p hetmem-bench --bin hetmem-trace -- \
    check "$SWEEP_DIR/clean.jsonl"

# Online-migration smoke: a capacity-constrained MIGRATE sweep must
# actually move pages, the LOCAL point next to it must carry no
# migration block (zero cost when disabled), and the whole sweep must
# be byte-identical at 1 and 4 worker threads. ('+' separates the
# MIGRATE keys because --policies splits its list on commas.)
MIG_DIR=target/ci-migrate
rm -rf "$MIG_DIR"
mkdir -p "$MIG_DIR"
MIG_ARGS=(--workloads hotspot --policies "LOCAL,MIGRATE:epoch=2000+hot=2"
    --mem-ops 4000 --sms 2 --capacity-pct 10)
target/release/hetmem-sweep "${MIG_ARGS[@]}" --threads 1 \
    --out "$MIG_DIR/t1.jsonl"
target/release/hetmem-sweep "${MIG_ARGS[@]}" --threads 4 \
    --out "$MIG_DIR/t4.jsonl"
cmp "$MIG_DIR/t1.jsonl" "$MIG_DIR/t4.jsonl"  # engine determinism
grep -q '"pages_migrated":[1-9]' "$MIG_DIR/t1.jsonl"  # pages moved
if grep '"config":"LOCAL"' "$MIG_DIR/t1.jsonl" | grep -q '"migration"'; then
    echo "non-MIGRATE run leaked a migration block" >&2
    exit 1
fi
cargo run --release --offline -q -p hetmem-bench --bin hetmem-trace -- \
    check "$MIG_DIR/t1.jsonl"

# Perf smoke: a quick benchmark run must produce a parseable result and
# self-gate cleanly (1.00x vs itself is inside the 30% regression
# budget). The gate's failure branch must also actually fire: demanding
# a 2x speedup of a run over itself has to exit nonzero. CI machines are
# too noisy for absolute thresholds, so real speedup claims live in the
# committed BENCH_*.json reports (see scripts/bench.sh).
PERF_DIR=target/ci-perf
rm -rf "$PERF_DIR"
mkdir -p "$PERF_DIR"
cargo build --release --offline -q -p hetmem-bench --bin hetmem-perf
target/release/hetmem-perf run --quick --migrate --label ci-smoke \
    --out "$PERF_DIR/quick.json"
target/release/hetmem-perf gate \
    --baseline "$PERF_DIR/quick.json" --current "$PERF_DIR/quick.json"
if target/release/hetmem-perf gate \
    --baseline "$PERF_DIR/quick.json" --current "$PERF_DIR/quick.json" \
    --min-speedup 2.0; then
    echo "hetmem-perf gate failed to reject an impossible speedup" >&2
    exit 1
fi

# Sampled-fidelity error bound: on two golden steady-state workloads
# the extrapolated bandwidth must stay within 5% of full fidelity
# (deterministic numbers — the simulator has no run-to-run noise, so
# an absolute error gate is CI-safe where a wall-clock one is not).
target/release/hetmem-perf fidelity --label ci-smoke --iters 1 \
    --workloads sgemm,lbm --mem-ops 200000 \
    --window-ops 16384 --warmup-windows 1 --period 8 \
    --max-error 5 --out "$PERF_DIR/fidelity.json"

# Fleet smoke: consistent-hash router + 3 supervised hetmem-serve
# backends. The same sweep runs against one single process and against
# the fleet with one backend SIGKILL'd mid-sweep; the router's failover
# (ring successor + supervised respawn) must keep every response line
# byte-identical. hetmem-top's conservation gate must hold against the
# router, and `shutdown` must drain the whole fleet, children included.
FLEET_DIR=target/ci-fleet
rm -rf "$FLEET_DIR"
mkdir -p "$FLEET_DIR"
cargo build --release --offline -q -p hetmem-bench --bin hetmem-fleet

sweep_half1() { # $@: client command; appends one response line per call
    "$@" simulate workload=hotspot policy=LOCAL mem_ops=3000 sms=2
    "$@" simulate workload=hotspot policy=INTERLEAVE mem_ops=3000 sms=2
    "$@" simulate workload=bfs policy=BW-AWARE mem_ops=3000 sms=2
}
sweep_half2() {
    "$@" simulate workload=bfs policy=LOCAL mem_ops=4500 sms=2
    "$@" simulate workload=hotspot policy=BW-AWARE mem_ops=4500 sms=2
    "$@" place workload=bfs capacity_pct=20
    "$@" --batch 4 simulate workload=hotspot policy=LOCAL mem_ops=3000 sms=2
}

target/release/hetmem-serve --addr 127.0.0.1:0 \
    --port-file "$FLEET_DIR/single.port" &
SINGLE_PID=$!
trap 'kill "$SINGLE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    [ -s "$FLEET_DIR/single.port" ] && break
    sleep 0.1
done
SADDR="127.0.0.1:$(cat "$FLEET_DIR/single.port")"
sclient() { target/release/hetmem-client "$SADDR" "$@"; }
{ sweep_half1 sclient; sweep_half2 sclient; } > "$FLEET_DIR/single.jsonl"
sclient shutdown > /dev/null
wait "$SINGLE_PID"
trap - EXIT

target/release/hetmem-fleet --addr 127.0.0.1:0 --backends 3 --seed 7 \
    --serve-bin target/release/hetmem-serve \
    --port-file "$FLEET_DIR/fleet.port" &
FLEET_PID=$!
trap 'kill "$FLEET_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    [ -s "$FLEET_DIR/fleet.port" ] && break
    sleep 0.1
done
FADDR="127.0.0.1:$(cat "$FLEET_DIR/fleet.port")"
fclient() { target/release/hetmem-client --fleet --retries 8 "$FADDR" "$@"; }
sweep_half1 fclient > "$FLEET_DIR/fleet.jsonl"
BACKEND_PID=$(pgrep -P "$FLEET_PID" | head -1)
kill -9 "$BACKEND_PID"  # SIGKILL one backend mid-sweep
sweep_half2 fclient >> "$FLEET_DIR/fleet.jsonl"
cmp "$FLEET_DIR/single.jsonl" "$FLEET_DIR/fleet.jsonl"  # failover: same bytes
target/release/hetmem-top "$FADDR" --once --json --check \
    > "$FLEET_DIR/top.json"
grep -q '"p99_us"' "$FLEET_DIR/top.json"
fclient stats > "$FLEET_DIR/stats.jsonl"
grep -q '"worker_restarts":1' "$FLEET_DIR/stats.jsonl"  # the kill was supervised
fclient shutdown | grep -q '"draining":true'
wait "$FLEET_PID"  # graceful drain: router and children exit on their own
trap - EXIT
