#!/usr/bin/env bash
# Offline CI gate: formatting, release build, full test suite.
#
# The workspace has zero third-party dependencies, so everything here
# runs with --offline and must pass on a machine with no network access.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo build --workspace --release --offline
cargo test --workspace -q --offline
