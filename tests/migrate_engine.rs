//! Integration properties of the online page-migration engine.
//!
//! Three guarantees the `MIGRATE` policy makes beyond what the golden
//! fixtures pin:
//!
//! 1. **Conservation** — the engine's cumulative per-page hotness tally
//!    equals the page profiler's final histogram page-for-page: the
//!    migrator sees exactly the post-cache DRAM stream, nothing more
//!    (copy bursts are not self-counted) and nothing less.
//! 2. **No perturbation** — `MIGRATE:hot=never` never fires a copy, and
//!    its report (minus the all-zero migration block) is byte-identical
//!    to the base policy's: observing the access stream is free.
//! 3. **Liveness** — under a real capacity constraint an eager spec
//!    promotes pages, charges copy traffic, and stalls remapped pages,
//!    and does so deterministically across repeated runs.

use std::collections::HashMap;
use std::rc::Rc;

use gpusim::{SimConfig, SimReport, Simulator};
use hetmem::runner::{Capacity, Placement, RunBuilder};
use hetmem::{topology_for, HmRuntime, OnlineMigrator, OsTranslator};
use mempolicy::{Mempolicy, MigrateSpec};
use workloads::{catalog, TraceProgram};

const MEM_OPS: u64 = 12_000;
const SMS: u32 = 4;

fn test_sim() -> SimConfig {
    let mut sim = SimConfig::paper_baseline();
    sim.num_sms = SMS;
    sim
}

/// Runs `workload` under a hand-built simulator so the migrator's
/// shared hotness tally survives the run (the builder path consumes
/// the migrator).
fn manual_migrate_run(workload: &str, ms: MigrateSpec) -> (SimReport, HashMap<u64, u64>) {
    let sim = test_sim();
    let mut spec = catalog::by_name(workload).expect("catalog name");
    spec.mem_ops = MEM_OPS;
    let footprint = spec.footprint_pages();
    let bo_pages = Capacity::FractionOfFootprint(0.10).bo_pages(footprint);
    let topo = topology_for(&sim, &[bo_pages, footprint + 64]);
    let mut rt = HmRuntime::new(topo.clone());
    rt.set_policy(Mempolicy::bw_aware_for(&topo));
    for s in &spec.structures {
        rt.malloc(s.name, s.bytes).expect("allocation");
    }
    let bases: Vec<_> = rt.allocations().iter().map(|a| a.range.start).collect();
    let program = TraceProgram::new(&spec, &bases, sim.num_sms);
    let mm = rt.address_space();
    let translator = OsTranslator::new(Rc::clone(&mm));
    let mig = OnlineMigrator::new(Rc::clone(&mm), ms, &sim);
    let tally = mig.hotness_tally();
    let report = Simulator::new(sim, translator, program)
        .with_page_profiling()
        .with_migrator(mig)
        .run();
    let tally = tally.borrow().clone();
    (report, tally)
}

#[test]
fn hotness_tally_equals_page_histogram() {
    for workload in ["xsbench", "hotspot", "bfs"] {
        let ms = MigrateSpec {
            epoch_cycles: 10_000,
            hot_threshold: 3,
            ..MigrateSpec::default()
        };
        let (report, tally) = manual_migrate_run(workload, ms);
        assert!(report.completed);
        let pages = report.page_accesses.expect("profiling was on");
        let mut hist: Vec<(u64, u64)> = pages.iter().map(|(p, c)| (p.index(), *c)).collect();
        hist.sort_unstable();
        let mut seen: Vec<(u64, u64)> = tally.into_iter().collect();
        seen.sort_unstable();
        assert_eq!(
            hist, seen,
            "{workload}: the migrator must see exactly the profiled DRAM stream"
        );
    }
}

#[test]
fn hot_never_is_byte_identical_to_base_policy() {
    let sim = test_sim();
    for workload in ["xsbench", "sgemm"] {
        let mut spec = catalog::by_name(workload).expect("catalog name");
        spec.mem_ops = MEM_OPS;
        let topo = topology_for(&sim, &vec![1; sim.pools.len()]);
        let cap = Capacity::FractionOfFootprint(0.10);

        let base = RunBuilder::new(&spec, &sim)
            .capacity(cap)
            .placement(&Placement::Policy(Mempolicy::bw_aware_for(&topo)))
            .run();
        let watched = RunBuilder::new(&spec, &sim)
            .capacity(cap)
            .placement(&Placement::Policy(
                Mempolicy::parse("MIGRATE:hot=never,epoch=10000", &topo).expect("valid spec"),
            ))
            .run();

        let m = watched
            .report
            .migration
            .as_ref()
            .expect("MIGRATE runs always report migration");
        assert!(m.epochs >= 1, "{workload}: epochs still tick");
        assert_eq!(m.pages_migrated(), 0, "{workload}: hot=never moves nothing");
        assert_eq!(m.copy_bytes, 0);

        let mut scrubbed = watched.report.clone();
        scrubbed.migration = None;
        assert_eq!(base.report.migration, None, "base policy has no engine");
        assert_eq!(
            base.report, scrubbed,
            "{workload}: a never-firing engine must not perturb the run"
        );
        assert_eq!(base.placement, watched.placement);
    }
}

#[test]
fn constrained_migrate_moves_pages_deterministically() {
    let sim = test_sim();
    let mut spec = catalog::by_name("xsbench").expect("catalog name");
    spec.mem_ops = MEM_OPS;
    let topo = topology_for(&sim, &vec![1; sim.pools.len()]);
    let policy = Placement::Policy(
        Mempolicy::parse("MIGRATE:epoch=10000,hot=2", &topo).expect("valid spec"),
    );
    let run = || {
        RunBuilder::new(&spec, &sim)
            .capacity(Capacity::FractionOfFootprint(0.10))
            .placement(&policy)
            .run()
    };
    let a = run();
    let m = a.report.migration.as_ref().expect("migration report");
    assert!(m.pages_promoted > 0, "hot pages must be promoted into BO");
    assert!(m.copy_bytes > 0, "copies charge real traffic");
    assert!(
        m.remap_stall_cycles > 0,
        "re-use before remap completion must stall"
    );
    // Copy traffic is demand traffic: relative to the same base
    // placement without the engine, the DRAM byte counters must show
    // the bursts. (The per-zone page *counts* stay equal — a full BO
    // pairs every promotion with an eviction — so compare traffic,
    // not the placement histogram.)
    let base = RunBuilder::new(&spec, &sim)
        .capacity(Capacity::FractionOfFootprint(0.10))
        .placement(&Placement::Policy(Mempolicy::bw_aware_for(&topo)))
        .run();
    assert_ne!(
        a.report.pools.iter().map(|p| p.bytes_read).sum::<u64>(),
        base.report.pools.iter().map(|p| p.bytes_read).sum::<u64>(),
        "copy bursts must be visible in DRAM traffic"
    );

    let b = run();
    assert_eq!(a.report, b.report, "repeat runs are byte-identical");
    assert_eq!(a.placement, b.placement);
}
