//! Integration tests for the capacity-constrained flows: the two-phase
//! oracle (paper §4.2) and profile-annotated hints (paper §5).

use gpusim::SimConfig;
use hetmem::runner::{hints_from_profile, profile_workload, Capacity, Placement, RunBuilder};
use hetmem::topology_for;
use mempolicy::Mempolicy;
use profiler::MemHint;
use workloads::{catalog, WorkloadSpec};

fn quick_sim() -> SimConfig {
    let mut sim = SimConfig::paper_baseline();
    sim.num_sms = 4;
    sim
}

fn quick(name: &str, ops: u64) -> WorkloadSpec {
    let mut spec = catalog::by_name(name).expect("catalog name");
    spec.mem_ops = ops;
    spec
}

#[test]
fn oracle_beats_bw_aware_for_skewed_workloads_at_10pct() {
    let sim = quick_sim();
    let topo = topology_for(&sim, &[1, 1]);
    let cap = Capacity::FractionOfFootprint(0.10);
    for name in ["bfs", "xsbench"] {
        let spec = quick(name, 40_000);
        let (hist, _) = profile_workload(&spec, &sim);
        let bwa = RunBuilder::new(&spec, &sim)
            .capacity(cap)
            .placement(&Placement::Policy(Mempolicy::bw_aware_for(&topo)))
            .run();
        let oracle = RunBuilder::new(&spec, &sim)
            .capacity(cap)
            .placement(&Placement::Oracle(hist))
            .run();
        assert!(
            oracle.speedup_over(&bwa) > 1.05,
            "{name}: oracle vs BW-AWARE at 10% = {}",
            oracle.speedup_over(&bwa)
        );
    }
}

#[test]
fn oracle_matches_bw_aware_when_unconstrained() {
    // Paper Fig. 8: without a capacity constraint both reach the ideal
    // traffic split, so the oracle adds (almost) nothing.
    let sim = quick_sim();
    let topo = topology_for(&sim, &[1, 1]);
    let spec = quick("srad", 40_000);
    let (hist, _) = profile_workload(&spec, &sim);
    let bwa = RunBuilder::new(&spec, &sim)
        .placement(&Placement::Policy(Mempolicy::bw_aware_for(&topo)))
        .run();
    let oracle = RunBuilder::new(&spec, &sim)
        .placement(&Placement::Oracle(hist))
        .run();
    let rel = oracle.speedup_over(&bwa);
    assert!(
        (0.9..=1.15).contains(&rel),
        "unconstrained oracle should be ~= BW-AWARE, got {rel}"
    );
}

#[test]
fn annotated_sits_between_bw_aware_and_oracle_for_structured_skew() {
    // bfs's hotness aligns with structures, so hints capture most of the
    // oracle's win (paper: within 90% of oracle on average).
    let sim = quick_sim();
    let topo = topology_for(&sim, &[1, 1]);
    let cap = Capacity::FractionOfFootprint(0.10);
    let spec = quick("bfs", 40_000);
    let (hist, profile) = profile_workload(&spec, &sim);
    let hints = hints_from_profile(&profile, &spec, &sim, cap);

    let bwa = RunBuilder::new(&spec, &sim)
        .capacity(cap)
        .placement(&Placement::Policy(Mempolicy::bw_aware_for(&topo)))
        .run();
    let annotated = RunBuilder::new(&spec, &sim)
        .capacity(cap)
        .placement(&Placement::Hinted(hints))
        .run();
    let oracle = RunBuilder::new(&spec, &sim)
        .capacity(cap)
        .placement(&Placement::Oracle(hist))
        .run();

    assert!(
        annotated.speedup_over(&bwa) > 1.0,
        "annotated vs BW-AWARE: {}",
        annotated.speedup_over(&bwa)
    );
    assert!(
        annotated.speedup_over(&oracle) > 0.7,
        "annotated should capture most of oracle: {}",
        annotated.speedup_over(&oracle)
    );
}

#[test]
fn hints_are_bo_for_hot_structures_under_constraint() {
    let sim = quick_sim();
    let cap = Capacity::FractionOfFootprint(0.10);
    let spec = quick("bfs", 40_000);
    let (_, profile) = profile_workload(&spec, &sim);
    let hints = hints_from_profile(&profile, &spec, &sim, cap);
    // The hot mask/visited/cost structures are small and hot: at least
    // one must be steered to BO; the big cold edges array must not be.
    let by_name: std::collections::HashMap<&str, MemHint> = spec
        .structures
        .iter()
        .map(|s| s.name)
        .zip(hints.iter().copied())
        .collect();
    assert_eq!(by_name["d_graph_edges"], MemHint::CO, "cold big structure");
    assert!(
        [
            by_name["d_graph_visited"],
            by_name["d_updating_graph_mask"],
            by_name["d_cost"]
        ]
        .contains(&MemHint::BO),
        "a hot structure should get a BO hint: {by_name:?}"
    );
}

#[test]
fn unconstrained_hints_degenerate_to_bw_aware() {
    let sim = quick_sim();
    let spec = quick("minife", 30_000);
    let (_, profile) = profile_workload(&spec, &sim);
    let hints = hints_from_profile(&profile, &spec, &sim, Capacity::Unconstrained);
    assert!(
        hints.iter().all(|&h| h == MemHint::BwAware),
        "no capacity pressure -> all BW hints, got {hints:?}"
    );
}

#[test]
fn training_hints_transfer_across_datasets() {
    // The Fig. 11 property: hints trained on dataset 0 still beat
    // INTERLEAVE on other datasets.
    let sim = quick_sim();
    let topo = topology_for(&sim, &[1, 1]);
    let cap = Capacity::FractionOfFootprint(0.10);
    let sets: Vec<WorkloadSpec> = catalog::datasets("xsbench")
        .into_iter()
        .map(|mut s| {
            s.mem_ops = 30_000;
            s
        })
        .collect();
    let (_, train_profile) = profile_workload(&sets[0], &sim);
    for spec in &sets[1..] {
        let hints = hints_from_profile(&train_profile, spec, &sim, cap);
        let inter = RunBuilder::new(spec, &sim)
            .capacity(cap)
            .placement(&Placement::Policy(Mempolicy::interleave_all(&topo)))
            .run();
        let annotated = RunBuilder::new(spec, &sim)
            .capacity(cap)
            .placement(&Placement::Hinted(hints))
            .run();
        assert!(
            annotated.speedup_over(&inter) > 1.0,
            "trained hints vs INTERLEAVE on {}: {}",
            spec.seed,
            annotated.speedup_over(&inter)
        );
    }
}
