//! BW-AWARE generalizes beyond two pools (paper §3.1: "BW-AWARE
//! placement will generalize to an optimal policy where there are more
//! than two technologies by placing pages in the bandwidth ratio of all
//! memory pools"). This test wires a three-pool machine — on-package
//! HBM, GPU-attached GDDR5, and remote DDR4 — through the full stack.

use std::cell::RefCell;
use std::rc::Rc;

use gpusim::{DramTiming, PoolConfig, SimConfig, Simulator, StreamKernel};
use hetmem::{topology_for, OsTranslator};
use hmtypes::VirtAddr;
use hmtypes::{Bandwidth, MemKind};
use mempolicy::{AddressSpace, Mempolicy, VmaRange};

fn three_pool_sim() -> SimConfig {
    let mut sim = SimConfig::paper_baseline();
    sim.num_sms = 4;
    sim.pools = vec![
        PoolConfig {
            name: "HBM".to_string(),
            kind: MemKind::BandwidthOptimized,
            channels: 8,
            bandwidth: Bandwidth::from_gbps(500.0),
            extra_latency: 0,
            timing: DramTiming::paper_gddr5(),
            banks_per_channel: 16,
            pj_per_bit: 2.5,
        },
        PoolConfig {
            name: "GDDR5".to_string(),
            kind: MemKind::BandwidthOptimized,
            channels: 8,
            bandwidth: Bandwidth::from_gbps(200.0),
            extra_latency: 40,
            timing: DramTiming::paper_gddr5(),
            banks_per_channel: 16,
            pj_per_bit: 7.0,
        },
        PoolConfig {
            name: "DDR4".to_string(),
            kind: MemKind::CapacityOptimized,
            channels: 4,
            bandwidth: Bandwidth::from_gbps(80.0),
            extra_latency: 100,
            timing: DramTiming::paper_gddr5(),
            banks_per_channel: 16,
            pj_per_bit: 4.5,
        },
    ];
    sim
}

#[test]
fn sbit_weights_cover_three_pools() {
    let sim = three_pool_sim();
    let topo = topology_for(&sim, &[1024, 1024, 1024]);
    let w = topo.sbit().weights_per_mille();
    assert_eq!(w.len(), 3);
    assert_eq!(w.iter().sum::<u32>(), 1000);
    // 500/780, 200/780, 80/780.
    assert!((f64::from(w[0]) / 1000.0 - 500.0 / 780.0).abs() < 0.01);
    assert!((f64::from(w[2]) / 1000.0 - 80.0 / 780.0).abs() < 0.01);
}

#[test]
fn bw_aware_traffic_splits_across_three_pools() {
    let sim = three_pool_sim();
    let pages = 4096u64;
    let topo = topology_for(&sim, &[pages, pages, pages]);
    let mut mm = AddressSpace::new(topo.clone());
    mm.set_mempolicy(Mempolicy::bw_aware_for(&topo));
    let bytes = 8u64 << 20;
    // StreamKernel addresses start at 0: map the range there (MAP_FIXED).
    mm.mmap_fixed(VmaRange::new(VirtAddr::new(0), bytes))
        .unwrap();

    let kernel = StreamKernel::new(&sim, 48, bytes).with_mlp(8);
    let mm = Rc::new(RefCell::new(mm));
    let report = Simulator::new(sim.clone(), OsTranslator::new(Rc::clone(&mm)), kernel).run();

    assert!(report.completed);
    let fractions: Vec<f64> = (0..3).map(|i| report.pool_traffic_fraction(i)).collect();
    let expected = [500.0 / 780.0, 200.0 / 780.0, 80.0 / 780.0];
    for (i, (&got, &want)) in fractions.iter().zip(&expected).enumerate() {
        assert!(
            (got - want).abs() < 0.06,
            "pool {i}: traffic {got:.3} vs expected {want:.3}"
        );
    }
    // The aggregate beats any single pool's bandwidth.
    let achieved = report.achieved_bandwidth(sim.sm_clock_ghz).gbps();
    assert!(
        achieved > 500.0,
        "aggregate bandwidth in use: {achieved:.0} GB/s"
    );
}

#[test]
fn local_uses_only_the_nearest_pool() {
    let sim = three_pool_sim();
    let topo = topology_for(&sim, &[4096, 4096, 4096]);
    let mut mm = AddressSpace::new(topo);
    mm.set_mempolicy(Mempolicy::local());
    let bytes = 4u64 << 20;
    mm.mmap_fixed(VmaRange::new(VirtAddr::new(0), bytes))
        .unwrap();
    let kernel = StreamKernel::new(&sim, 16, bytes);
    let mm = Rc::new(RefCell::new(mm));
    let report = Simulator::new(sim, OsTranslator::new(mm), kernel).run();
    assert!(
        report.pool_traffic_fraction(0) > 0.99,
        "everything from HBM"
    );
    assert_eq!(
        report.pools[1].bytes_total() + report.pools[2].bytes_total(),
        0
    );
}
