//! Golden-equivalence suite for the simulator hot path.
//!
//! Pins a canonical serialization of [`gpusim::SimReport`] (plus
//! per-page profiling counts, zone placement, and interval-sampler
//! counters) across the **full catalog** × {LOCAL, INTERLEAVE,
//! BW-AWARE, ORACLE} at fixed seeds, against fixtures committed under
//! `tests/fixtures/`. Any change to the engine calendar, the MSHR /
//! pending tables, the DRAM scheduler, or the page profiler that
//! perturbs a single counter, cycle count, or float shows up here as a
//! byte diff.
//!
//! Regenerate the fixtures (only when an *intentional* model change
//! lands) with:
//!
//! ```text
//! HM_GOLDEN_WRITE=1 cargo test --release --test golden_simreport
//! ```

use gpusim::observe::IntervalReport;
use gpusim::{SimConfig, SimReport};
use hetmem::runner::{Capacity, ObserveConfig, Placement, RunBuilder};
use hetmem::{profile_workload, topology_for};
use hetmem_harness::json::{array, JsonObject};
use mempolicy::Mempolicy;
use workloads::catalog;

const POLICIES: &[&str] = &["LOCAL", "INTERLEAVE", "BW-AWARE", "ORACLE"];
/// Reduced operation count: the suite pins behavior, not scale. 76
/// points (19 workloads x 4 policies) must stay test-suite fast.
const GOLDEN_MEM_OPS: u64 = 12_000;
const GOLDEN_SMS: u32 = 4;

fn golden_sim() -> SimConfig {
    let mut sim = SimConfig::paper_baseline();
    sim.num_sms = GOLDEN_SMS;
    sim
}

/// Canonical JSON for a report: every counter, every pool, floats in
/// Rust's shortest-roundtrip formatting, page counts in ascending page
/// order (never map iteration order).
fn canonical_report(r: &SimReport) -> String {
    let pools = array(r.pools.iter().map(|p| {
        JsonObject::new()
            .str("name", &p.name)
            .u64("bytes_read", p.bytes_read)
            .u64("bytes_written", p.bytes_written)
            .f64("row_hit_rate", p.row_hit_rate)
            .f64("bus_busy_cycles", p.bus_busy_cycles)
            .f64("energy_joules", p.energy_joules)
            .finish()
    }));
    let mut obj = JsonObject::new()
        .u64("cycles", r.cycles)
        .bool("completed", r.completed)
        .u64("mem_ops", r.mem_ops)
        .u64("l1_hits", r.l1.0)
        .u64("l1_misses", r.l1.1)
        .u64("l2_hits", r.l2.0)
        .u64("l2_misses", r.l2.1)
        .u64("mshr_stalls", r.mshr_stalls)
        .u64("retired_warps", u64::from(r.retired_warps))
        .raw("pools", &pools);
    if let Some(pages) = &r.page_accesses {
        let mut sorted: Vec<_> = pages.iter().map(|(p, c)| (p.index(), *c)).collect();
        sorted.sort_unstable();
        obj = obj.raw(
            "page_accesses",
            &array(sorted.iter().map(|(p, c)| format!("[{p},{c}]"))),
        );
    }
    if let Some(m) = &r.migration {
        let mig = JsonObject::new()
            .u64("pages_promoted", m.pages_promoted)
            .u64("pages_demoted", m.pages_demoted)
            .u64("pages_evicted", m.pages_evicted)
            .u64("epochs", m.epochs)
            .u64("copy_bytes", m.copy_bytes)
            .f64("copy_cycles", m.copy_cycles)
            .u64("remap_stall_cycles", m.remap_stall_cycles)
            .finish();
        obj = obj.raw("migration", &mig);
    }
    obj.finish()
}

fn canonical_intervals(intervals: &[IntervalReport]) -> String {
    array(intervals.iter().map(|i| {
        let pools = array(i.pools.iter().map(|p| {
            JsonObject::new()
                .u64("bytes_read", p.bytes_read)
                .u64("bytes_written", p.bytes_written)
                .u64("services", p.services)
                .f64("busy_cycles", p.busy_cycles)
                .u64("zone_pages", p.zone_pages)
                .finish()
        }));
        JsonObject::new()
            .u64("index", i.index)
            .u64("mem_ops", i.mem_ops)
            .u64("l1_hits", i.l1_hits)
            .u64("l1_misses", i.l1_misses)
            .u64("l2_hits", i.l2_hits)
            .u64("l2_misses", i.l2_misses)
            .u64("mshr_stalls", i.mshr_stalls)
            .u64("mshr_peak", i.mshr_peak)
            .u64("warps_retired", i.warps_retired)
            .raw("pools", &pools)
            .finish()
    }))
}

fn placement_for(policy: &str, spec: &workloads::WorkloadSpec, sim: &SimConfig) -> Placement {
    match policy {
        "ORACLE" => {
            let (histogram, _) = profile_workload(spec, sim);
            Placement::Oracle(histogram)
        }
        other => {
            let topo = topology_for(sim, &vec![1; sim.pools.len()]);
            Placement::Policy(Mempolicy::parse(other, &topo).expect("known policy"))
        }
    }
}

/// Compares (or, under `HM_GOLDEN_WRITE=1`, rewrites) one fixture.
fn check_fixture(name: &str, lines: &[String]) {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let body: String = lines.iter().map(|l| format!("{l}\n")).collect();
    if std::env::var("HM_GOLDEN_WRITE").is_ok() {
        std::fs::write(&path, &body).expect("write fixture");
        eprintln!("golden: wrote {path} ({} line(s))", lines.len());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing fixture {path}: {e}; regenerate with HM_GOLDEN_WRITE=1")
    });
    let want_lines: Vec<&str> = want.lines().collect();
    assert_eq!(
        want_lines.len(),
        lines.len(),
        "{name}: fixture has {} line(s), run produced {}",
        want_lines.len(),
        lines.len()
    );
    for (i, (want, got)) in want_lines.iter().zip(lines).enumerate() {
        assert_eq!(
            want, got,
            "{name}: line {i} diverged — the hot path is no longer \
             byte-equivalent (regenerate ONLY for intentional model changes)"
        );
    }
}

/// The core matrix: full catalog x 4 policies, unconstrained capacity.
#[test]
fn catalog_matrix_reports_are_golden() {
    let sim = golden_sim();
    let mut lines = Vec::new();
    for name in catalog::names() {
        let mut spec = catalog::by_name(name).expect("catalog name");
        spec.mem_ops = GOLDEN_MEM_OPS;
        for policy in POLICIES {
            let placement = placement_for(policy, &spec, &sim);
            let run = RunBuilder::new(&spec, &sim).placement(&placement).run();
            lines.push(
                JsonObject::new()
                    .str("workload", name)
                    .str("policy", policy)
                    .raw("report", &canonical_report(&run.report))
                    .raw(
                        "zone_pages",
                        &array(run.placement.iter().map(u64::to_string)),
                    )
                    .finish(),
            );
        }
    }
    check_fixture("golden_reports.jsonl", &lines);
}

/// Capacity-constrained ORACLE (greedy regime) pins the profile →
/// oracle → pre-placement pipeline, including page-order determinism.
#[test]
fn constrained_oracle_reports_are_golden() {
    let sim = golden_sim();
    let mut lines = Vec::new();
    for name in ["bfs", "hotspot", "xsbench", "sgemm"] {
        let mut spec = catalog::by_name(name).expect("catalog name");
        spec.mem_ops = GOLDEN_MEM_OPS;
        let placement = placement_for("ORACLE", &spec, &sim);
        let run = RunBuilder::new(&spec, &sim)
            .capacity(Capacity::FractionOfFootprint(0.10))
            .placement(&placement)
            .run();
        lines.push(
            JsonObject::new()
                .str("workload", name)
                .str("policy", "ORACLE-10pct")
                .raw("report", &canonical_report(&run.report))
                .raw(
                    "zone_pages",
                    &array(run.placement.iter().map(u64::to_string)),
                )
                .finish(),
        );
    }
    check_fixture("golden_oracle_constrained.jsonl", &lines);
}

/// Profiled runs pin the per-page DRAM access counts themselves, in
/// sorted page order.
#[test]
fn profiled_page_counts_are_golden() {
    let sim = golden_sim();
    let mut lines = Vec::new();
    for name in ["bfs", "hotspot", "xsbench", "spmv"] {
        let mut spec = catalog::by_name(name).expect("catalog name");
        spec.mem_ops = GOLDEN_MEM_OPS;
        let placement = placement_for("BW-AWARE", &spec, &sim);
        let run = RunBuilder::new(&spec, &sim)
            .placement(&placement)
            .profiled()
            .run();
        assert!(run.report.page_accesses.is_some(), "profiling was on");
        lines.push(
            JsonObject::new()
                .str("workload", name)
                .raw("report", &canonical_report(&run.report))
                .finish(),
        );
    }
    check_fixture("golden_profiles.jsonl", &lines);
}

/// Capacity-constrained MIGRATE runs pin the whole online engine:
/// hotness epochs, the promotion/eviction state machine, copy-burst
/// scheduling, and remap stalls, across two migrate configurations.
#[test]
fn migrate_reports_are_golden() {
    let sim = golden_sim();
    let topo = topology_for(&sim, &vec![1; sim.pools.len()]);
    let mut lines = Vec::new();
    for name in ["bfs", "hotspot", "xsbench", "sgemm"] {
        let mut spec = catalog::by_name(name).expect("catalog name");
        spec.mem_ops = GOLDEN_MEM_OPS;
        for policy in [
            "MIGRATE:epoch=20000,hot=4",
            "MIGRATE:epoch=20000,hot=2,cold=1,batch=16",
        ] {
            let placement =
                Placement::Policy(Mempolicy::parse(policy, &topo).expect("valid migrate spec"));
            let run = RunBuilder::new(&spec, &sim)
                .capacity(Capacity::FractionOfFootprint(0.10))
                .placement(&placement)
                .run();
            let m = run
                .report
                .migration
                .as_ref()
                .expect("MIGRATE runs always carry a migration report");
            assert!(m.epochs >= 1, "{name}/{policy}: at least one epoch fired");
            lines.push(
                JsonObject::new()
                    .str("workload", name)
                    .str("policy", policy)
                    .raw("report", &canonical_report(&run.report))
                    .raw(
                        "zone_pages",
                        &array(run.placement.iter().map(u64::to_string)),
                    )
                    .finish(),
            );
        }
    }
    check_fixture("golden_migrate.jsonl", &lines);
}

/// Interval-sampler counters from observed runs stay golden too (the
/// sampler sits on the same hot path through the observer hooks).
#[test]
fn interval_counters_are_golden() {
    let sim = golden_sim();
    let mut lines = Vec::new();
    for name in ["bfs", "lbm"] {
        let mut spec = catalog::by_name(name).expect("catalog name");
        spec.mem_ops = GOLDEN_MEM_OPS;
        for policy in ["LOCAL", "BW-AWARE"] {
            let placement = placement_for(policy, &spec, &sim);
            let observed = RunBuilder::new(&spec, &sim)
                .placement(&placement)
                .observe(ObserveConfig {
                    sample_cycles: Some(5_000),
                    trace: false,
                    trace_budget: 0,
                })
                .run_observed();
            lines.push(
                JsonObject::new()
                    .str("workload", name)
                    .str("policy", policy)
                    .raw("report", &canonical_report(&observed.run.report))
                    .raw("intervals", &canonical_intervals(&observed.intervals))
                    .finish(),
            );
        }
    }
    check_fixture("golden_intervals.jsonl", &lines);
}
