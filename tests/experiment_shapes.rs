//! Shape tests for the experiment drivers: quick-scale versions of the
//! figure generators must reproduce the paper's qualitative curves.

use hetmem::experiments::{self, ExpOptions};

#[test]
fn fig4_holds_until_70pct_then_falls() {
    let mut opts = ExpOptions::quick();
    opts.workloads = Some(vec!["srad".to_string()]);
    let t = experiments::fig4(&opts);
    let at = |c: &str| t.value("srad", c).unwrap();
    // Near-flat from 100% to 70% of footprint...
    assert!(at("70%") > 0.93, "70% point: {}", at("70%"));
    // ...then clearly degraded at 10%.
    assert!(at("10%") < 0.85, "10% point: {}", at("10%"));
    assert!(at("10%") < at("70%"));
}

#[test]
fn fig5_bw_aware_dominates_interleave_and_tracks_co_bandwidth() {
    let mut opts = ExpOptions::quick();
    opts.workloads = Some(vec!["lbm".to_string(), "srad".to_string()]);
    let t = experiments::fig5(&opts);
    for col in &t.columns.clone() {
        let bwa = t.value("BW-AWARE", col).unwrap();
        let inter = t.value("INTERLEAVE", col).unwrap();
        // At symmetric bandwidth the two policies place identically in
        // expectation; the random-draw fast path may trail the exact
        // round-robin by a few percent, never more.
        assert!(
            bwa >= inter * 0.95,
            "BW-AWARE ({bwa}) must not lose to INTERLEAVE ({inter}) at {col}"
        );
    }
    // LOCAL ignores the CO pool: flat in CO bandwidth.
    let local_lo = t.value("LOCAL", "10GB/s").unwrap();
    let local_hi = t.value("LOCAL", "200GB/s").unwrap();
    assert!((local_lo - local_hi).abs() < 0.05);
    // BW-AWARE exploits added CO bandwidth.
    let bwa_lo = t.value("BW-AWARE", "10GB/s").unwrap();
    let bwa_hi = t.value("BW-AWARE", "200GB/s").unwrap();
    assert!(bwa_hi > bwa_lo + 0.1, "BW-AWARE {bwa_lo} -> {bwa_hi}");
    // At symmetric 200/200 bandwidth the two spreading policies converge.
    let inter_hi = t.value("INTERLEAVE", "200GB/s").unwrap();
    assert!(
        (bwa_hi - inter_hi).abs() / bwa_hi < 0.1,
        "symmetric pools: BW-AWARE {bwa_hi} ~= INTERLEAVE {inter_hi}"
    );
}

#[test]
fn fig6_skew_ordering_matches_paper() {
    let mut opts = ExpOptions::quick();
    opts.workloads = Some(vec![
        "bfs".to_string(),
        "xsbench".to_string(),
        "needle".to_string(),
    ]);
    let (cdfs, t) = experiments::fig6(&opts);
    assert_eq!(cdfs.len(), 3);
    let top10 = |w: &str| t.value(w, "top10%").unwrap();
    // bfs and xsbench are the paper's skew exemplars; needle is linear.
    assert!(top10("bfs") > 0.45, "bfs top10: {}", top10("bfs"));
    assert!(
        top10("xsbench") > 0.45,
        "xsbench top10: {}",
        top10("xsbench")
    );
    assert!(top10("needle") < 0.30, "needle top10: {}", top10("needle"));
    for (_, cdf) in &cdfs {
        assert!(cdf.is_monotone());
    }
}

#[test]
fn fig7_attribution_shapes() {
    let opts = ExpOptions::quick();
    let ws = experiments::fig7(&opts);
    let bfs = ws.iter().find(|w| w.name == "bfs").unwrap();
    // bfs: the three hot structures carry most traffic in a small share
    // of the footprint (paper: ~80% traffic in ~20% of pages).
    let hot: f64 = bfs
        .structures
        .iter()
        .filter(|(n, ..)| {
            ["d_graph_visited", "d_updating_graph_mask", "d_cost"].contains(&n.as_str())
        })
        .map(|(_, _, traffic, _)| traffic)
        .sum();
    assert!(hot > 0.55, "bfs hot-structure traffic share: {hot}");

    let mummer = ws.iter().find(|w| w.name == "mummergpu").unwrap();
    assert!(
        mummer.untouched_frac > 0.1,
        "mummergpu models dead ranges: {}",
        mummer.untouched_frac
    );

    let needle = ws.iter().find(|w| w.name == "needle").unwrap();
    assert!(
        needle.top10 < 0.3,
        "needle is near-linear: {}",
        needle.top10
    );
}

#[test]
fn fig8_oracle_shape() {
    let mut opts = ExpOptions::quick();
    opts.workloads = Some(vec!["xsbench".to_string()]);
    let t = experiments::fig8(&opts);
    let o100 = t.value("xsbench", "Oracle@100%").unwrap();
    let b10 = t.value("xsbench", "BWA@10%").unwrap();
    let o10 = t.value("xsbench", "Oracle@10%").unwrap();
    // Unconstrained: oracle ~ BW-AWARE.
    assert!((0.9..=1.15).contains(&o100), "Oracle@100%: {o100}");
    // Constrained: oracle clearly above BW-AWARE, below unconstrained.
    assert!(o10 > b10 * 1.05, "Oracle@10% {o10} vs BWA@10% {b10}");
    assert!(o10 <= 1.05, "capacity constraint costs something: {o10}");
}
