//! The observability layer's cross-cutting guarantees, end to end:
//! interval JSONL and Chrome traces are byte-identical at any thread
//! count, and observing a sweep does not change its run records.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use hetmem::experiments::{fig3, ExpOptions};
use hetmem::TelemetrySink;
use hetmem_harness::{validate_jsonl, JsonValue};

fn obs_opts(threads: usize, dir: &PathBuf, observe: bool) -> ExpOptions {
    let mut opts = ExpOptions::quick();
    opts.workloads = Some(vec!["lbm".to_string()]);
    opts.ops_scale = 0.05;
    opts.threads = threads;
    opts.telemetry = Some(Arc::new(TelemetrySink::create(dir).expect("sink dir")));
    if observe {
        opts.sample_cycles = Some(10_000);
        opts.trace = Some(dir.join("trace"));
        opts.trace_budget = 2_000;
    }
    opts
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hetmem-obs-{tag}-{}", std::process::id()))
}

/// Every output file of one observed fig3 sweep, as `(name, bytes)` in
/// sorted name order.
fn sweep_outputs(threads: usize, tag: &str) -> Vec<(String, String)> {
    let dir = tmp(tag);
    let _ = fs::remove_dir_all(&dir);
    let opts = obs_opts(threads, &dir, true);
    let _ = fig3(&opts);
    let mut out = Vec::new();
    out.push((
        "fig3.jsonl".to_string(),
        fs::read_to_string(dir.join("fig3.jsonl")).expect("telemetry file"),
    ));
    let mut traces: Vec<_> = fs::read_dir(dir.join("trace"))
        .expect("trace dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    traces.sort();
    assert_eq!(traces.len(), 9, "one trace per grid point");
    for p in traces {
        out.push((
            p.file_name().unwrap().to_string_lossy().into_owned(),
            fs::read_to_string(&p).expect("trace file"),
        ));
    }
    fs::remove_dir_all(&dir).expect("cleanup");
    out
}

#[test]
fn observed_outputs_are_byte_identical_across_thread_counts() {
    let one = sweep_outputs(1, "t1");
    let four = sweep_outputs(4, "t4");
    assert_eq!(one.len(), four.len());
    for ((name_a, bytes_a), (name_b, bytes_b)) in one.iter().zip(&four) {
        assert_eq!(name_a, name_b);
        assert_eq!(
            bytes_a, bytes_b,
            "{name_a} diverged between 1 and 4 threads"
        );
    }
    // And everything emitted is valid JSON.
    let (_, jsonl) = &one[0];
    let lines = validate_jsonl(jsonl).expect("telemetry parses");
    assert!(lines > 9, "run records plus interval records");
    for (name, trace) in &one[1..] {
        let v = JsonValue::parse(trace).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            !v.get("traceEvents")
                .and_then(JsonValue::as_array)
                .expect("traceEvents array")
                .is_empty(),
            "{name} has events"
        );
    }
}

#[test]
fn observation_leaves_run_records_unchanged() {
    let run_lines = |observe: bool, tag: &str| -> Vec<String> {
        let dir = tmp(tag);
        let _ = fs::remove_dir_all(&dir);
        let opts = obs_opts(2, &dir, observe);
        let _ = fig3(&opts);
        let text = fs::read_to_string(dir.join("fig3.jsonl")).expect("telemetry file");
        fs::remove_dir_all(&dir).expect("cleanup");
        text.lines()
            .filter(|l| l.starts_with(r#"{"record":"run""#))
            .map(str::to_string)
            .collect()
    };
    let plain = run_lines(false, "plain");
    let observed = run_lines(true, "observed");
    assert_eq!(plain.len(), 9);
    assert_eq!(plain, observed, "observers perturbed the run records");
}
