//! Error-bound suite for sampled fast-forward simulation.
//!
//! The sampled engine trades exactness for throughput; this suite pins
//! the trade. On steady-state catalog workloads the extrapolated
//! bandwidth must stay within 5% of the full-fidelity run, the op
//! accounting must be exact (every inner operation is consumed exactly
//! once, simulated or drained), and `fidelity: full` must remain
//! byte-identical to a builder that never mentions fidelity at all.
//!
//! The simulator is deterministic, so the measured errors are fixed
//! numbers, not distributions — a failure here means the engine or the
//! extrapolation model changed, not that a die roll went badly.

use gpusim::{Fidelity, SampleConfig, SimConfig};
use hetmem::runner::{Placement, RunBuilder};
use mempolicy::Mempolicy;
use workloads::catalog;

const MEM_OPS: u64 = 200_000;

/// A schedule sized for this suite's op count (the production default's
/// 64k windows are tuned for millions of ops).
fn suite_sample() -> SampleConfig {
    SampleConfig {
        window_ops: 16_384,
        warmup_windows: 1,
        period: 8,
        seed: 0,
    }
}

fn sim() -> SimConfig {
    SimConfig::paper_baseline()
}

fn bw_aware(sim: &SimConfig) -> Placement {
    let topo = hetmem::topology_for(sim, &vec![1; sim.pools.len()]);
    Placement::Policy(Mempolicy::parse("BW-AWARE", &topo).unwrap())
}

#[test]
fn sampled_bandwidth_tracks_full_on_steady_state_workloads() {
    let sim = sim();
    let placement = bw_aware(&sim);
    for name in ["sgemm", "lbm"] {
        let mut spec = catalog::by_name(name).unwrap();
        spec.mem_ops = MEM_OPS;
        let full = RunBuilder::new(&spec, &sim).placement(&placement).run();
        let sampled = RunBuilder::new(&spec, &sim)
            .placement(&placement)
            .fidelity(Fidelity::Sampled(suite_sample()))
            .run();

        let fb = full.report.achieved_bandwidth(sim.sm_clock_ghz).gbps();
        let sb = sampled.report.achieved_bandwidth(sim.sm_clock_ghz).gbps();
        let err = (sb - fb).abs() / fb;
        assert!(
            err < 0.05,
            "{name}: sampled bandwidth off by {:.2}% (full {fb:.2} GB/s, sampled {sb:.2} GB/s)",
            err * 100.0
        );

        // Op accounting is exact even though timing is extrapolated.
        assert_eq!(sampled.report.mem_ops, full.report.mem_ops, "{name}");
        let est = sampled
            .report
            .estimated
            .expect("sampled reports carry an estimate block");
        assert!(est.windows_extrapolated > 0, "{name}: must fast-forward");
        assert!(
            est.ops_extrapolated > est.ops_simulated,
            "{name}: most ops must be drained at period 8"
        );
        assert!((0.0..=1.0).contains(&est.confidence), "{name}");
        assert!(full.report.estimated.is_none(), "full runs carry none");
    }
}

#[test]
fn explicit_full_fidelity_is_byte_identical_to_default() {
    let sim = sim();
    let placement = bw_aware(&sim);
    let mut spec = catalog::by_name("bfs").unwrap();
    spec.mem_ops = 40_000;
    let default_run = RunBuilder::new(&spec, &sim).placement(&placement).run();
    let explicit_run = RunBuilder::new(&spec, &sim)
        .placement(&placement)
        .fidelity(Fidelity::Full)
        .run();
    assert_eq!(default_run.report, explicit_run.report);
}

#[test]
fn sampled_runs_are_deterministic_across_repeats() {
    let sim = sim();
    let placement = bw_aware(&sim);
    let mut spec = catalog::by_name("xsbench").unwrap();
    spec.mem_ops = 80_000;
    let run = || {
        RunBuilder::new(&spec, &sim)
            .placement(&placement)
            .fidelity(Fidelity::Sampled(suite_sample()))
            .run()
            .report
    };
    assert_eq!(run(), run());
}
