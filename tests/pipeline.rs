//! End-to-end pipeline tests: workload catalog → OS placement → GPU
//! simulation, checking the paper's qualitative claims at small scale.

use gpusim::SimConfig;
use hetmem::runner::{Capacity, Placement, RunBuilder};
use hetmem::topology_for;
use hmtypes::Percent;
use mempolicy::Mempolicy;
use workloads::{catalog, WorkloadSpec};

fn quick_sim() -> SimConfig {
    let mut sim = SimConfig::paper_baseline();
    sim.num_sms = 4;
    sim
}

fn quick(name: &str, ops: u64) -> WorkloadSpec {
    let mut spec = catalog::by_name(name).expect("catalog name");
    spec.mem_ops = ops;
    spec
}

fn run(spec: &WorkloadSpec, sim: &SimConfig, policy: Mempolicy) -> hetmem::WorkloadRun {
    RunBuilder::new(spec, sim)
        .placement(&Placement::Policy(policy))
        .run()
}

#[test]
fn bw_aware_wins_on_bandwidth_bound_workloads() {
    let sim = quick_sim();
    let topo = topology_for(&sim, &[1, 1]);
    for name in ["lbm", "srad", "pathfinder"] {
        let spec = quick(name, 40_000);
        let local = run(&spec, &sim, Mempolicy::local());
        let inter = run(&spec, &sim, Mempolicy::interleave_all(&topo));
        let bwa = run(&spec, &sim, Mempolicy::bw_aware_for(&topo));
        assert!(
            bwa.speedup_over(&local) > 1.03,
            "{name}: BW-AWARE vs LOCAL {}",
            bwa.speedup_over(&local)
        );
        assert!(
            bwa.speedup_over(&inter) > 1.05,
            "{name}: BW-AWARE vs INTERLEAVE {}",
            bwa.speedup_over(&inter)
        );
    }
}

#[test]
fn local_wins_on_the_latency_sensitive_workload() {
    // Paper §3.2.2: sgemm can lose up to ~12% under BW-AWARE because 30%
    // of its accesses pay the remote-hop latency.
    let sim = quick_sim();
    let topo = topology_for(&sim, &[1, 1]);
    let spec = quick("sgemm", 30_000);
    let local = run(&spec, &sim, Mempolicy::local());
    let bwa = run(&spec, &sim, Mempolicy::bw_aware_for(&topo));
    let rel = bwa.speedup_over(&local);
    assert!(
        rel < 1.0,
        "sgemm should prefer LOCAL, got BW-AWARE at {rel}"
    );
    assert!(rel > 0.80, "degradation should be moderate, got {rel}");
}

#[test]
fn compute_bound_workload_is_placement_insensitive() {
    let sim = quick_sim();
    let topo = topology_for(&sim, &[1, 1]);
    let spec = quick("comd", 20_000);
    let local = run(&spec, &sim, Mempolicy::local());
    let inter = run(&spec, &sim, Mempolicy::interleave_all(&topo));
    let rel = inter.speedup_over(&local);
    assert!(
        (0.9..=1.1).contains(&rel),
        "comd should not care about placement, got {rel}"
    );
}

#[test]
fn dram_traffic_follows_placement_ratio() {
    let sim = quick_sim();
    let spec = quick("hotspot", 40_000);
    for co_pct in [10u8, 30, 50, 70] {
        let run = RunBuilder::new(&spec, &sim)
            .placement(&Placement::Policy(Mempolicy::ratio_co(Percent::new(
                co_pct,
            ))))
            .run();
        let co = run.report.pool_traffic_fraction(1);
        assert!(
            (co - f64::from(co_pct) / 100.0).abs() < 0.08,
            "requested {co_pct}% CO traffic, measured {co:.3}"
        );
    }
}

#[test]
fn all_19_workloads_complete_under_bw_aware() {
    let sim = quick_sim();
    let topo = topology_for(&sim, &[1, 1]);
    for mut spec in catalog::all() {
        spec.mem_ops = 8_000;
        let run = run(&spec, &sim, Mempolicy::bw_aware_for(&topo));
        assert!(run.report.completed, "{} hit the cycle limit", spec.name);
        assert!(
            run.report.retired_warps > 0,
            "{} retired no warps",
            spec.name
        );
        let mapped: u64 = run.placement.iter().sum();
        assert!(mapped > 0, "{}: nothing was mapped", spec.name);
        assert!(
            mapped <= run.footprint_pages,
            "{}: mapped {} pages exceeds footprint {}",
            spec.name,
            mapped,
            run.footprint_pages
        );
    }
}

#[test]
fn zero_extra_latency_local_equals_bo_only_machine() {
    // With everything in the BO pool, CO parameters are irrelevant.
    let sim = quick_sim();
    let spec = quick("gaussian", 30_000);
    let a = run(&spec, &sim, Mempolicy::local());
    let slower_co = {
        let mut s = sim.clone();
        s.pools[1].extra_latency = 500;
        RunBuilder::new(&spec, &s)
            .placement(&Placement::Policy(Mempolicy::local()))
            .run()
    };
    assert_eq!(a.report.cycles, slower_co.report.cycles);
}

#[test]
#[allow(deprecated)]
fn run_builder_matches_legacy_trio_on_figure_workloads() {
    // The deprecated wrappers must stay bit-equivalent to the builder
    // they delegate to, on both a bandwidth-bound (lbm, Fig. 3) and a
    // capacity-constrained (bfs, Fig. 4) figure workload.
    use hetmem::runner::{run_workload, run_workload_observed, ObserveConfig};

    let sim = quick_sim();
    let topo = topology_for(&sim, &[1, 1]);
    for (name, capacity) in [
        ("lbm", Capacity::Unconstrained),
        ("bfs", Capacity::FractionOfFootprint(0.10)),
    ] {
        let spec = quick(name, 20_000);
        let placement = Placement::Policy(Mempolicy::bw_aware_for(&topo));
        let legacy = run_workload(&spec, &sim, capacity, &placement);
        let built = RunBuilder::new(&spec, &sim)
            .capacity(capacity)
            .placement(&placement)
            .run();
        assert_eq!(legacy.report.cycles, built.report.cycles, "{name}");
        assert_eq!(legacy.placement, built.placement, "{name}");
        assert_eq!(legacy.bo_pages, built.bo_pages, "{name}");

        let obs = ObserveConfig {
            sample_cycles: Some(1_000),
            ..ObserveConfig::default()
        };
        let legacy_obs = run_workload_observed(&spec, &sim, capacity, &placement, &obs);
        let built_obs = RunBuilder::new(&spec, &sim)
            .capacity(capacity)
            .placement(&placement)
            .observe(obs.clone())
            .run_observed();
        assert_eq!(
            legacy_obs.run.report.cycles, built_obs.run.report.cycles,
            "{name} observed"
        );
        assert_eq!(
            legacy_obs.intervals.len(),
            built_obs.intervals.len(),
            "{name} intervals"
        );
        // The observed path must not perturb the simulation itself.
        assert_eq!(built_obs.run.report.cycles, built.report.cycles, "{name}");
    }
}
