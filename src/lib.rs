//! # hetmem-repro — umbrella crate
//!
//! Re-exports every crate of the reproduction of *Page Placement Strategies
//! for GPUs within Heterogeneous Memory Systems* (ASPLOS 2015) so the
//! runnable examples in `examples/` and the cross-crate integration tests
//! in `tests/` can reach the whole system through one dependency.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use gpusim;
pub use hetmem;
pub use hmtypes;
pub use mempolicy;
pub use profiler;
pub use workloads;
