//! The online page-migration hook layer: zero-cost like the observer.
//!
//! [`PageMigrator`] is a trait the simulator is generic over (fourth
//! type parameter, defaulting to [`NullMigrator`]). A real migrator —
//! the policy engine lives above this crate, next to the OS model that
//! owns the page table — sees every DRAM-level page access and every
//! address translation, and at self-scheduled epoch boundaries hands
//! the simulator a batch of [`PageCopy`] descriptors. The simulator
//! charges each copy as real traffic on the source and destination
//! DRAM channels (the transfer occupies the same buses demand requests
//! use) and accounts the engine's decisions into
//! [`MigrationReport`](crate::stats::MigrationReport).
//!
//! Like [`NullObserver`](crate::observe::NullObserver), the default
//! migrator has `ENABLED = false`, so an unmigrated simulator pays
//! nothing: every hook call is guarded on the constant and
//! monomorphizes away.

use hmtypes::PAGE_SIZE;

/// Lines copied per migrated page (4 kB page / 128 B line).
pub const LINES_PER_PAGE: u64 = (PAGE_SIZE / hmtypes::LINE_SIZE) as u64;

/// One page's physical relocation, as the simulator charges it: 32
/// line reads from the source channel(s) plus 32 line writes to the
/// destination channel(s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageCopy {
    /// Pool the page is leaving.
    pub src_pool: usize,
    /// First physical line of the old frame (frame base / 128).
    pub src_line: u64,
    /// Pool the page is moving to.
    pub dst_pool: usize,
    /// First physical line of the new frame.
    pub dst_line: u64,
}

/// Cumulative decision counters a migrator reports at run end.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationCounters {
    /// Pages moved into the preferred (bandwidth-optimized) zone.
    pub promoted: u64,
    /// Pages moved out by the cold threshold.
    pub demoted: u64,
    /// Pages moved out to make room for a promotion (LRU victim).
    pub evicted: u64,
    /// Epoch boundaries processed.
    pub epochs: u64,
}

impl MigrationCounters {
    /// Total pages physically moved.
    pub fn pages_moved(&self) -> u64 {
        self.promoted + self.demoted + self.evicted
    }
}

/// Simulator migration hooks. `now` is always the current event time.
///
/// Contract: [`PageMigrator::next_epoch`] must be strictly greater
/// than the time of the epoch that just ran (the simulator schedules
/// the next epoch event there), and [`PageMigrator::epoch`] returns
/// the copies to charge for that boundary. `page` arguments are
/// *virtual* page indices (address / 4096).
pub trait PageMigrator {
    /// `false` compiles every hook out of the simulator hot path.
    const ENABLED: bool = true;

    /// A DRAM access (post-cache filtering) touched `page` — the same
    /// stream the per-page profiler counts.
    fn record_access(&mut self, now: u64, page: u64);

    /// Extra cycles the translation of an access to `page` stalls
    /// while a just-migrated mapping is rewritten (0 when settled).
    fn remap_stall(&mut self, now: u64, page: u64) -> u64;

    /// Absolute cycle of the next epoch boundary.
    fn next_epoch(&self) -> u64;

    /// Runs one epoch decision at `now`, returning the page copies to
    /// charge to the DRAM channels.
    fn epoch(&mut self, now: u64) -> Vec<PageCopy>;

    /// Decision counters so far.
    fn counters(&self) -> MigrationCounters;
}

/// The default migrator: no hooks, no epochs, no cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullMigrator;

impl PageMigrator for NullMigrator {
    const ENABLED: bool = false;

    fn record_access(&mut self, _now: u64, _page: u64) {}

    fn remap_stall(&mut self, _now: u64, _page: u64) -> u64 {
        0
    }

    fn next_epoch(&self) -> u64 {
        u64::MAX
    }

    fn epoch(&mut self, _now: u64) -> Vec<PageCopy> {
        Vec::new()
    }

    fn counters(&self) -> MigrationCounters {
        MigrationCounters::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_migrator_is_disabled_and_inert() {
        assert!(!NullMigrator::ENABLED);
        let mut m = NullMigrator;
        m.record_access(0, 0);
        assert_eq!(m.remap_stall(0, 0), 0);
        assert_eq!(m.next_epoch(), u64::MAX);
        assert!(m.epoch(0).is_empty());
        assert_eq!(m.counters(), MigrationCounters::default());
    }

    #[test]
    fn counters_total_moved() {
        let c = MigrationCounters {
            promoted: 3,
            demoted: 2,
            evicted: 1,
            epochs: 9,
        };
        assert_eq!(c.pages_moved(), 6);
    }
}
