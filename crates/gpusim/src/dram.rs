//! Banked DRAM channel with FR-FCFS scheduling.
//!
//! Each channel has per-bank request queues, bank row-buffer state with
//! activate/precharge timing from [`DramTiming`], and a
//! shared data bus that serializes 128 B bursts — which is what enforces
//! the channel's peak bandwidth.
//!
//! The scheduler is **FR-FCFS** (first-ready, first-come-first-served):
//! when the bus frees, it serves the request that can deliver data
//! earliest, preferring row-buffer hits over older row misses. This is
//! what GPU memory controllers do, and without it the interleaved streams
//! of a many-warp GPU thrash every row buffer and the model loses half
//! the bandwidth the paper's system sustains.
//!
//! The channel is driven by the simulator's event loop: [`DramChannel::enqueue`]
//! returns a tick time when the idle channel needs a kick, and each
//! [`DramChannel::tick`] serves one request and reports when to tick next.

use std::collections::VecDeque;

use hmtypes::LINE_SIZE;

use crate::config::{DramTiming, PoolConfig};

/// Lines per DRAM row buffer (2 kB row / 128 B line).
pub const LINES_PER_ROW: u64 = 16;

/// How many queued requests per bank the FR-FCFS scheduler examines.
/// Real controllers schedule over a finite window; an unbounded scan
/// would also make simulation quadratic when posted writes back up.
const SCHED_WINDOW: usize = 16;

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    /// Earliest time the next activate may issue (tRC after the last).
    next_activate: f64,
    /// Time the currently open row finished opening.
    row_ready: f64,
}

#[derive(Debug, Clone, Copy)]
struct QueuedReq {
    line: u64,
    row: u64,
    read: bool,
    seq: u64,
    enq: u64,
}

/// Cached FR-FCFS winner for one bank: what the scheduling scan of that
/// bank's queue would select. Only a serve from the bank invalidates it
/// (row state and queue positions change); an enqueue is folded in
/// incrementally — the scan's min over one more entry — so between
/// serves the cached value always equals what a fresh scan would return.
#[derive(Debug, Clone, Copy)]
struct BankCand {
    data_ready: f64,
    seq: u64,
    pos: usize,
    hit: bool,
    /// Whether the scan's examined prefix is closed: it broke at a row
    /// hit or filled the scheduling window. Requests appended after a
    /// sealed prefix are invisible to a fresh scan, so folding them into
    /// the cached winner would *diverge* from the scan — they are
    /// ignored instead.
    sealed: bool,
}

/// Outcome of serving one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Served {
    /// The channel-local line index served.
    pub line: u64,
    /// Whether it was a read.
    pub read: bool,
    /// Cycle the data transfer completes.
    pub done: u64,
    /// When to tick again, or `None` if the channel went idle.
    pub next_tick: Option<u64>,
}

/// Aggregate statistics for one channel.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChannelStats {
    /// Bytes transferred over the data bus.
    pub bytes: u64,
    /// Requests that hit an open row.
    pub row_hits: u64,
    /// Requests that required precharge + activate.
    pub row_misses: u64,
    /// Cycles the data bus was transferring.
    pub busy_cycles: f64,
}

impl ChannelStats {
    /// Row-buffer hit rate in `[0, 1]`.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// One DRAM channel: FR-FCFS service over banked storage behind one bus.
///
/// # Examples
///
/// ```
/// use gpusim::{DramChannel, SimConfig};
///
/// let cfg = SimConfig::paper_baseline();
/// let mut chan = DramChannel::new(&cfg.pools[0], cfg.sm_clock_ghz);
/// let tick_at = chan.enqueue(0, 0, true).expect("idle channel needs a kick");
/// assert_eq!(tick_at, 0); // schedule the tick here…
/// let served = chan.tick().expect("one request is pending"); // …then serve
/// assert!(served.done > 0);
/// assert_eq!(served.next_tick, None); // queue drained
/// ```
#[derive(Debug, Clone)]
pub struct DramChannel {
    timing: DramTiming,
    burst: f64,
    banks: Vec<Bank>,
    queues: Vec<VecDeque<QueuedReq>>,
    /// Per-bank cached scheduling winner; `None` = stale or empty queue.
    cand: Vec<Option<BankCand>>,
    /// Total requests across all bank queues.
    queued: usize,
    bus_free_at: f64,
    ticking: bool,
    seq: u64,
    stats: ChannelStats,
}

impl DramChannel {
    /// Creates a channel for one of `pool`'s channels at the given SM clock.
    ///
    /// # Panics
    ///
    /// Panics if the pool's per-channel bandwidth is zero (an absent pool
    /// must not receive traffic).
    pub fn new(pool: &PoolConfig, sm_clock_ghz: f64) -> Self {
        let burst = pool.burst_cycles(sm_clock_ghz);
        assert!(
            burst.is_finite() && burst > 0.0,
            "channel bandwidth must be positive (pool {})",
            pool.name
        );
        let banks = pool.banks_per_channel as usize;
        DramChannel {
            timing: pool.timing,
            burst,
            banks: vec![Bank::default(); banks],
            queues: vec![VecDeque::new(); banks],
            cand: vec![None; banks],
            queued: 0,
            bus_free_at: 0.0,
            ticking: false,
            seq: 0,
            stats: ChannelStats::default(),
        }
    }

    fn bank_of(&self, line: u64) -> usize {
        ((line / LINES_PER_ROW) % self.banks.len() as u64) as usize
    }

    fn row_of(&self, line: u64) -> u64 {
        line / (LINES_PER_ROW * self.banks.len() as u64)
    }

    /// Enqueues an access to channel-local line `line` at time `now`.
    ///
    /// Returns `Some(tick_time)` when the channel was idle and the caller
    /// must schedule a [`DramChannel::tick`] at that time; `None` when a
    /// tick is already pending.
    pub fn enqueue(&mut self, now: u64, line: u64, read: bool) -> Option<u64> {
        let bank = self.bank_of(line);
        let row = self.row_of(line);
        let old_len = self.queues[bank].len();
        let req = QueuedReq {
            line,
            row,
            read,
            seq: self.seq,
            enq: now,
        };
        self.queues[bank].push_back(req);
        self.seq += 1;
        self.queued += 1;
        // Fold the new request into the bank's cached winner where that
        // is exact; a full rescan is only ever needed after a serve.
        match self.cand[bank] {
            // A sealed prefix means a fresh scan would stop before
            // reaching the appended request: the winner is unchanged.
            Some(c) if c.sealed => {}
            // Every scanned entry was a miss and the window has room, so
            // a fresh scan = min(cached winner, the new entry). Seq ties
            // are impossible (seq is unique and increasing).
            Some(c) => {
                let new = self.rate(bank, &req, old_len);
                let mut merged = if (new.data_ready, new.seq) < (c.data_ready, c.seq) {
                    new
                } else {
                    c
                };
                merged.sealed = new.hit || old_len + 1 >= SCHED_WINDOW;
                self.cand[bank] = Some(merged);
            }
            // Empty queue: the new request is the whole scan.
            None if old_len == 0 => {
                let mut new = self.rate(bank, &req, 0);
                new.sealed = new.hit;
                self.cand[bank] = Some(new);
            }
            // Stale after a serve from this bank: row state changed, so
            // the queue must be rescanned at the next tick.
            None => {}
        }
        if self.ticking {
            None
        } else {
            self.ticking = true;
            Some((now as f64).max(self.bus_free_at).ceil() as u64)
        }
    }

    /// When `req` could deliver its data, given `b`'s current row state.
    /// Command issue is pipelined: a request's CAS/activate could have
    /// issued any time after it was enqueued, even while the data bus
    /// was busy, so readiness is computed from its enqueue time — only
    /// the data burst itself serializes on the bus.
    #[inline]
    fn rate(&self, b: usize, req: &QueuedReq, pos: usize) -> BankCand {
        let bank = &self.banks[b];
        let t = req.enq as f64;
        let (ready, hit) = if bank.open_row == Some(req.row) {
            (t.max(bank.row_ready), true)
        } else {
            let activate = t.max(bank.next_activate);
            (
                activate + self.timing.rp as f64 + self.timing.rcd as f64,
                false,
            )
        };
        let col = if req.read {
            self.timing.cl as f64
        } else {
            self.timing.wr as f64
        };
        BankCand {
            data_ready: ready + col,
            seq: req.seq,
            pos,
            hit,
            sealed: false,
        }
    }

    /// The FR-FCFS scan of one bank's queue: earliest possible data
    /// delivery wins; ties go to the oldest request.
    fn scan_bank(&self, b: usize) -> Option<BankCand> {
        let mut best: Option<BankCand> = None;
        let mut hit_found = false;
        for (pos, req) in self.queues[b].iter().take(SCHED_WINDOW).enumerate() {
            let cand = self.rate(b, req, pos);
            if best.is_none_or(|c| (cand.data_ready, cand.seq) < (c.data_ready, c.seq)) {
                best = Some(cand);
            }
            if cand.hit {
                // Within a bank, the first row hit is the best row hit
                // (FCFS among equal rows); misses later in the queue
                // cannot beat it either. Stop scanning.
                hit_found = true;
                break;
            }
        }
        if let Some(c) = &mut best {
            c.sealed = hit_found || self.queues[b].len() >= SCHED_WINDOW;
        }
        best
    }

    /// Serves the best pending request (FR-FCFS: row hits naturally beat
    /// misses, ties go to the oldest request).
    ///
    /// The current time does not enter the timing math: the bus cursor
    /// (`bus_free_at`) and per-request enqueue times fully determine
    /// service times, and ticks are scheduled at bus-free instants by
    /// construction — which is why `tick` takes no time argument.
    ///
    /// Returns `None` if no request is pending (a stale tick).
    pub fn tick(&mut self) -> Option<Served> {
        if self.queued == 0 {
            return None;
        }
        // Refresh stale per-bank candidates (only banks touched since
        // their last scan), then pick the channel-wide winner.
        let mut best: Option<(f64, u64, usize)> = None;
        for b in 0..self.banks.len() {
            if self.cand[b].is_none() && !self.queues[b].is_empty() {
                self.cand[b] = self.scan_bank(b);
            }
            if let Some(c) = self.cand[b] {
                if best.is_none_or(|(dr, seq, _)| (c.data_ready, c.seq) < (dr, seq)) {
                    best = Some((c.data_ready, c.seq, b));
                }
            }
        }

        let (data_ready, _, bank_idx) = best.expect("queued > 0");
        let BankCand { pos, hit, .. } = self.cand[bank_idx].take().expect("winning bank");
        let req = self.queues[bank_idx].remove(pos).expect("position valid");
        self.queued -= 1;

        if hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
            let bank = &mut self.banks[bank_idx];
            let activate = (req.enq as f64).max(bank.next_activate);
            bank.open_row = Some(req.row);
            bank.next_activate = activate + self.timing.rc as f64;
            bank.row_ready = activate + self.timing.rp as f64 + self.timing.rcd as f64;
        }

        let data_start = data_ready.max(self.bus_free_at);
        let data_end = data_start + self.burst;
        self.bus_free_at = data_end;
        self.stats.bytes += LINE_SIZE as u64;
        self.stats.busy_cycles += self.burst;

        let next_tick = if self.queued > 0 {
            Some(data_end.ceil() as u64)
        } else {
            self.ticking = false;
            None
        };
        Some(Served {
            line: req.line,
            read: req.read,
            done: data_end.ceil() as u64,
            next_tick,
        })
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Cycles one burst occupies the data bus.
    pub fn burst_cycles(&self) -> f64 {
        self.burst
    }

    /// Number of queued requests.
    pub fn queue_depth(&self) -> usize {
        self.queued
    }
}

/// Drives a standalone channel to completion, returning the finish time —
/// a test/bench helper that plays the simulator's role.
pub fn drain_channel(chan: &mut DramChannel, accesses: &[(u64, u64, bool)]) -> u64 {
    // accesses: (enqueue_time, line, read), must be sorted by time.
    let mut last_done = 0;
    let mut pending_tick: Option<u64> = None;
    let mut i = 0;
    loop {
        // Process any tick that fires before the next enqueue.
        let next_enq = accesses.get(i).map(|a| a.0);
        match (pending_tick, next_enq) {
            (Some(tick), Some(enq)) if tick <= enq => {
                let served = chan.tick().expect("tick had work");
                last_done = last_done.max(served.done);
                pending_tick = served.next_tick;
            }
            (_, Some(_)) => {
                let (at, line, read) = accesses[i];
                i += 1;
                if let Some(t) = chan.enqueue(at, line, read) {
                    pending_tick = Some(t);
                }
            }
            (Some(_tick), None) => {
                let served = chan.tick().expect("tick had work");
                last_done = last_done.max(served.done);
                pending_tick = served.next_tick;
            }
            (None, None) => return last_done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn gddr5_channel() -> DramChannel {
        let cfg = SimConfig::paper_baseline();
        DramChannel::new(&cfg.pools[0], cfg.sm_clock_ghz)
    }

    #[test]
    fn row_hit_is_faster_than_miss() {
        let mut chan = gddr5_channel();
        let accesses = vec![(0, 0, true)];
        let miss_done = drain_channel(&mut chan, &accesses);

        let mut chan = gddr5_channel();
        drain_channel(&mut chan, &[(0, 0, true)]);
        let hit_done = drain_channel(&mut chan, &[(10_000, 1, true)]) - 10_000;
        assert!(
            hit_done < miss_done,
            "row hit ({hit_done}) should beat cold miss ({miss_done})"
        );
        assert_eq!(chan.stats().row_hits, 1);
    }

    #[test]
    fn saturated_stream_hits_peak_bandwidth() {
        let mut chan = gddr5_channel();
        let n = 4096u64;
        let accesses: Vec<_> = (0..n).map(|l| (0, l, true)).collect();
        let last = drain_channel(&mut chan, &accesses);
        let achieved_bpc = (n * LINE_SIZE as u64) as f64 / last as f64;
        let peak_bpc = LINE_SIZE as f64 / chan.burst_cycles();
        assert!(
            achieved_bpc > 0.95 * peak_bpc,
            "achieved {achieved_bpc:.2} B/cyc vs peak {peak_bpc:.2}"
        );
        assert!(chan.stats().row_hit_rate() > 0.9);
    }

    #[test]
    fn interleaved_streams_recover_row_locality_via_fr_fcfs() {
        // Eight interleaved streams, all mapping to a handful of banks
        // with different rows — the pattern that breaks plain FCFS (it
        // ping-pongs activates and drops to ~12% of peak). FR-FCFS with
        // its finite scheduling window must stay above 70% of peak.
        let mut chan = gddr5_channel();
        let streams = 8u64;
        let per = 128u64;
        let mut accesses = Vec::new();
        for i in 0..per {
            for s in 0..streams {
                accesses.push((0, s * 4096 + i, true));
            }
        }
        let last = drain_channel(&mut chan, &accesses);
        let achieved_bpc = (streams * per * LINE_SIZE as u64) as f64 / last as f64;
        let peak_bpc = LINE_SIZE as f64 / chan.burst_cycles();
        assert!(
            achieved_bpc > 0.7 * peak_bpc,
            "achieved {achieved_bpc:.2} B/cyc vs peak {peak_bpc:.2} (row hit rate {:.2})",
            chan.stats().row_hit_rate()
        );
    }

    #[test]
    fn random_access_with_many_banks_stays_above_half_peak() {
        let mut chan = gddr5_channel();
        let mut rng = hmtypes::SplitMix64::new(3);
        let n = 4096u64;
        let accesses: Vec<_> = (0..n).map(|_| (0, rng.next_below(1 << 20), true)).collect();
        let last = drain_channel(&mut chan, &accesses);
        let achieved_bpc = (n * LINE_SIZE as u64) as f64 / last as f64;
        let peak_bpc = LINE_SIZE as f64 / chan.burst_cycles();
        assert!(
            achieved_bpc > 0.5 * peak_bpc,
            "achieved {achieved_bpc:.2} B/cyc vs peak {peak_bpc:.2}"
        );
    }

    #[test]
    fn single_bank_row_conflicts_pay_activate_gaps() {
        let mut chan = gddr5_channel();
        let banks = 16u64;
        let a = 0; // bank 0, row 0
        let b = LINES_PER_ROW * banks; // bank 0, row 1
        let t1 = drain_channel(&mut chan, &[(0, a, true)]);
        let t2 = drain_channel(&mut chan, &[(t1, b, true)]);
        assert!(t2 - t1 >= 100, "activate gap, got {}", t2 - t1);
        assert_eq!(chan.stats().row_misses, 2);
    }

    #[test]
    fn fr_fcfs_prefers_open_row_over_older_miss() {
        let mut chan = gddr5_channel();
        // Open row 0 of bank 0.
        let t1 = drain_channel(&mut chan, &[(0, 0, true)]);
        // Enqueue a row-1 (miss, older) and then a row-0 (hit, younger)
        // request; the hit must be served first.
        let miss_line = LINES_PER_ROW * 16; // bank 0, row 1
        let tick = chan.enqueue(t1, miss_line, true).unwrap();
        assert_eq!(chan.enqueue(t1, 1, true), None);
        let first = chan.tick().unwrap();
        assert_eq!(first.line, 1, "row hit served first");
        let second = chan.tick().unwrap();
        assert_eq!(second.line, miss_line);
        assert_eq!(second.next_tick, None);
    }

    #[test]
    fn writes_complete_and_count_bytes() {
        let mut chan = gddr5_channel();
        let done = drain_channel(&mut chan, &[(0, 0, false)]);
        assert!(done > 0);
        assert_eq!(chan.stats().bytes, 128);
    }

    #[test]
    fn idle_gaps_do_not_accrue_busy_cycles() {
        let mut chan = gddr5_channel();
        drain_channel(&mut chan, &[(0, 0, true)]);
        drain_channel(&mut chan, &[(100_000, 1, true)]);
        let s = chan.stats();
        assert!(s.busy_cycles < 20.0);
        assert_eq!(s.bytes, 256);
    }

    #[test]
    fn ddr4_stream_is_slower_than_gddr5() {
        let cfg = SimConfig::paper_baseline();
        let n = 1024u64;
        let accesses: Vec<_> = (0..n).map(|l| (0, l, true)).collect();
        let mut g = DramChannel::new(&cfg.pools[0], cfg.sm_clock_ghz);
        let mut d = DramChannel::new(&cfg.pools[1], cfg.sm_clock_ghz);
        let lg = drain_channel(&mut g, &accesses);
        let ld = drain_channel(&mut d, &accesses);
        assert!(ld > lg, "DDR4 stream must take longer ({ld} vs {lg})");
    }

    #[test]
    fn stale_tick_returns_none() {
        let mut chan = gddr5_channel();
        assert!(chan.tick().is_none());
        assert_eq!(chan.queue_depth(), 0);
    }
}
