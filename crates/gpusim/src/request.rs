//! Requests, warp operations, and the traits the simulator is generic
//! over: where addresses live ([`AddressTranslator`]) and what the warps
//! execute ([`WarpProgram`]).

use hmtypes::{AccessKind, PhysAddr, VirtAddr};

/// One instruction as seen by a warp context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpOp {
    /// Execute for the given number of SM cycles without touching memory
    /// (models arithmetic between loads, already divided by issue width).
    Compute(u32),
    /// A coalesced 128 B memory access by the whole warp.
    Mem {
        /// Virtual address accessed (the line containing it is fetched).
        addr: VirtAddr,
        /// Load or store.
        kind: AccessKind,
    },
}

/// Identifies a warp globally: `sm * warps_per_sm + slot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WarpId(pub u32);

impl WarpId {
    /// The global warp index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Where a virtual address resolved to: physical address plus the memory
/// pool that owns it.
///
/// Produced by an [`AddressTranslator`]; the pool index refers to
/// [`SimConfig::pools`](crate::SimConfig::pools).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The translated physical address.
    pub phys: PhysAddr,
    /// Index of the owning memory pool.
    pub pool: usize,
    /// `true` when this translation faulted the page in (first touch),
    /// i.e. a placement decision was made right now. Observers use this
    /// to time-stamp placement events; static translators report `false`.
    pub faulted: bool,
}

impl Placement {
    /// A placement of an already-mapped page (no fault).
    pub fn mapped(phys: PhysAddr, pool: usize) -> Self {
        Placement {
            phys,
            pool,
            faulted: false,
        }
    }
}

/// Resolves virtual addresses to physical placements, allocating backing
/// frames on first touch (the OS fault path).
///
/// Implemented over [`mempolicy::AddressSpace`] by the `hetmem` crate;
/// the simulator itself only needs this narrow interface.
pub trait AddressTranslator {
    /// Translates `addr`, faulting in the page if needed.
    ///
    /// Translation failures (out of physical memory) must be resolved by
    /// the translator (e.g. by falling back to any zone with space) or
    /// surfaced by panicking — the GPU has no demand paging to disk.
    fn translate(&mut self, addr: VirtAddr) -> Placement;
}

/// Supplies each warp's instruction stream.
///
/// The simulator calls [`WarpProgram::next_op`] each time a warp is ready
/// for its next instruction; `None` retires the warp.
pub trait WarpProgram {
    /// Number of warps per SM this program wants (clamped to the config's
    /// hardware maximum).
    fn warps_per_sm(&self) -> u32;

    /// The next operation for `warp`, or `None` when the warp is done.
    fn next_op(&mut self, warp: WarpId) -> Option<WarpOp>;

    /// How many outstanding memory operations one warp may have before it
    /// stalls (memory-level parallelism). Defaults to 2.
    fn mem_level_parallelism(&self) -> u32 {
        2
    }

    /// Consumes up to `n` operations for `warp` without materializing
    /// them, returning `(ops, mem_ops)` actually consumed; fewer than
    /// `n` means the warp retired mid-skip.
    ///
    /// The default loops [`WarpProgram::next_op`] and discards the
    /// results. Implementations may shortcut expensive work (address
    /// math, distribution lookups) but MUST leave all generator state
    /// — RNG streams, cursors, quotas — bit-identical to `n` real
    /// `next_op` calls: the sampled fast-forward engine's byte-identity
    /// guarantee for detail windows rests on this.
    fn skip_ops(&mut self, warp: WarpId, n: u64) -> (u64, u64) {
        let mut ops = 0;
        let mut mem = 0;
        while ops < n {
            match self.next_op(warp) {
                Some(WarpOp::Mem { .. }) => {
                    ops += 1;
                    mem += 1;
                }
                Some(_) => ops += 1,
                None => break,
            }
        }
        (ops, mem)
    }
}

impl<P: WarpProgram> WarpProgram for &mut P {
    fn warps_per_sm(&self) -> u32 {
        (**self).warps_per_sm()
    }

    fn next_op(&mut self, warp: WarpId) -> Option<WarpOp> {
        (**self).next_op(warp)
    }

    fn mem_level_parallelism(&self) -> u32 {
        (**self).mem_level_parallelism()
    }

    fn skip_ops(&mut self, warp: WarpId, n: u64) -> (u64, u64) {
        (**self).skip_ops(warp, n)
    }
}

/// A translator that maps virtual addresses 1:1 to physical addresses in
/// a single pool — handy for tests and micro-benchmarks.
#[derive(Debug, Clone, Default)]
pub struct FixedPoolTranslator {
    /// The pool every address is placed in.
    pub pool: usize,
}

impl FixedPoolTranslator {
    /// Creates a translator placing everything in `pool`.
    pub fn new(pool: usize) -> Self {
        FixedPoolTranslator { pool }
    }
}

impl AddressTranslator for FixedPoolTranslator {
    fn translate(&mut self, addr: VirtAddr) -> Placement {
        Placement::mapped(PhysAddr::new(addr.raw()), self.pool)
    }
}

/// A translator that statically splits pages across two pools by page
/// index modulo 100: pages with `index % 100 < co_pct` go to pool 1.
/// Useful for testing placement-ratio effects without the OS stack.
#[derive(Debug, Clone)]
pub struct RatioTranslator {
    /// Percentage of pages placed in pool 1.
    pub co_pct: u8,
}

impl AddressTranslator for RatioTranslator {
    fn translate(&mut self, addr: VirtAddr) -> Placement {
        let pool = usize::from(addr.page().index() % 100 < u64::from(self.co_pct));
        Placement::mapped(PhysAddr::new(addr.raw()), pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtypes::PAGE_SIZE;

    #[test]
    fn fixed_pool_translator_is_identity() {
        let mut t = FixedPoolTranslator::new(1);
        let p = t.translate(VirtAddr::new(0x1234));
        assert_eq!(p.phys.raw(), 0x1234);
        assert_eq!(p.pool, 1);
    }

    #[test]
    fn ratio_translator_splits_by_page() {
        let mut t = RatioTranslator { co_pct: 30 };
        let co_pages = (0..1000u64)
            .filter(|&i| t.translate(VirtAddr::new(i * PAGE_SIZE as u64)).pool == 1)
            .count();
        assert_eq!(co_pages, 300);
    }

    #[test]
    fn warp_id_index() {
        assert_eq!(WarpId(7).index(), 7);
    }
}
