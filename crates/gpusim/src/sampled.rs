//! Sampled fast-forward simulation (SMARTS-style).
//!
//! Full-fidelity simulation pays ~100 ns of event processing per warp
//! operation; merely *generating* the operation stream costs a few ns.
//! This module exploits that gap: it alternates **detail windows**
//! (simulated at full fidelity, cycle by cycle) with **fast-forward
//! windows** whose operations are drained from the program generator
//! without entering the event calendar, then extrapolates the skipped
//! work from a bandwidth/latency model fitted over the detail windows.
//!
//! Windows are defined in *operation space*, not simulated time: every
//! [`SampleConfig::window_ops`] operations across all warps make one
//! window. Each warp tracks the schedule through its own scaled
//! position (`ops_issued x total_warps`), so a warp drains exactly its
//! proportional share of every fast-forward window — draining globally
//! would let one warp burn a whole window and skew per-warp progress,
//! which starves parallelism in the tail and biases the fit. The
//! schedule itself is deterministic and seeded: the first
//! [`SampleConfig::warmup_windows`] windows are always detail (they
//! charge cold caches and first-touch page faults to the measured
//! timeline), and afterwards exactly one window out of every
//! [`SampleConfig::period`] is simulated, its slot chosen by a
//! splitmix64 hash of the group index so periodic program behavior
//! cannot alias against a fixed stride. Everything here runs
//! single-threaded inside one simulator, so sampled runs are
//! byte-identical across sweep thread counts like every other run mode.
//!
//! Because drained windows never enter the calendar, the simulated
//! timeline is the pure concatenation of the detail windows. The
//! extrapolation step then stretches the report back to the full run:
//! cycles grow by `skipped_ops x fitted cycles-per-op`, memory-derived
//! counters (cache hits/misses, MSHR stalls, per-pool traffic) scale by
//! the skipped-to-simulated memory-op ratio, row-hit rates stay
//! measured, and DRAM energy is recomputed from the scaled byte totals.
//!
//! The cycles-per-op fit is the slope of the cumulative delivery curve
//! — `(detail ops delivered, sim time)` sampled once per delivered
//! window — over its interquartile region (25%–75% of deliveries).
//! Cutting both tails makes the fit robust against the two systematic
//! edge distortions of a sampled run: the warm-up ramp at the start
//! (caches and MSHRs still filling, issues running ahead of service)
//! and the straggler collapse at the end (warps that finish their last
//! detail share retire, so the final ops issue with almost no
//! parallelism left to hide latency). Per-window span attribution was
//! tried first and fails exactly there: whichever warp runs ahead drags
//! the attribution epoch forward, so nearly all measured time lands on
//! the final window. The model reports a confidence score (`1 - CV` of
//! per-segment cycles-per-op across the fit region) in the attached
//! [`EstimateReport`].

use std::cell::Cell;
use std::rc::Rc;

use crate::config::SimConfig;
use crate::engine::EngineStats;
use crate::migrate::PageMigrator;
use crate::observe::Observer;
use crate::request::{AddressTranslator, WarpId, WarpOp, WarpProgram};
use crate::sim::Simulator;
use crate::stats::SimReport;

/// How faithfully to simulate a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum Fidelity {
    /// Simulate every operation at cycle granularity (the default; the
    /// only mode that produces exact, golden-pinned reports).
    #[default]
    Full,
    /// Alternate full-fidelity detail windows with drained fast-forward
    /// windows and extrapolate the skipped work.
    Sampled(SampleConfig),
}

/// Window schedule knobs for [`Fidelity::Sampled`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleConfig {
    /// Global warp operations per window (delivered + drained).
    pub window_ops: u64,
    /// Leading windows always simulated in detail, absorbing cold-cache
    /// and first-touch transients before the model fits anything.
    pub warmup_windows: u64,
    /// After warm-up, one window in every `period` is simulated; the
    /// rest fast-forward. `1` degenerates to all-detail (useful for
    /// equivalence testing).
    pub period: u64,
    /// Seed for the per-group detail-slot choice.
    pub seed: u64,
}

impl Default for SampleConfig {
    /// The production schedule, tuned on the perf-matrix workloads at
    /// millions of operations: 64k-op windows keep each warp's share of
    /// a detail window long enough to preserve row-buffer locality
    /// (small windows shred it and overestimate bandwidth), and a
    /// 1-in-32 detail period bounds the error while fast-forwarding
    /// ~97% of the run. Short runs degrade gracefully: with few windows
    /// most of the run is warm-up/detail, trading speedup for accuracy.
    fn default() -> Self {
        SampleConfig {
            window_ops: 65_536,
            warmup_windows: 1,
            period: 32,
            seed: 0,
        }
    }
}

impl SampleConfig {
    /// Validates the schedule knobs.
    ///
    /// # Panics
    ///
    /// Panics if `window_ops` or `period` is zero.
    pub fn validate(&self) {
        assert!(self.window_ops > 0, "window_ops must be positive");
        assert!(self.period > 0, "period must be positive");
    }

    /// Whether window `k` is simulated in detail.
    pub fn is_detail(&self, k: u64) -> bool {
        if k < self.warmup_windows || self.period == 1 {
            return true;
        }
        let group = (k - self.warmup_windows) / self.period;
        let pos = (k - self.warmup_windows) % self.period;
        pos == splitmix64(self.seed ^ group) % self.period
    }
}

/// What a sampled run extrapolated, attached to its
/// [`SimReport::estimated`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateReport {
    /// Windows simulated at full fidelity (including warm-up).
    pub windows_detail: u64,
    /// Windows drained and extrapolated.
    pub windows_extrapolated: u64,
    /// Warp operations simulated in detail.
    pub ops_simulated: u64,
    /// Warp operations drained and extrapolated.
    pub ops_extrapolated: u64,
    /// Cycles actually simulated (the concatenated detail timeline).
    pub cycles_measured: u64,
    /// Cycles added by the extrapolation model.
    pub cycles_extrapolated: u64,
    /// Model self-confidence in `[0, 1]`: `1 - CV` of per-segment
    /// cycles-per-op across the fit region (0.5 when fewer than two
    /// segments constrain the fit).
    pub confidence: f64,
}

/// splitmix64 finalizer — the repo's standard cheap seeded hash.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// State shared between the program wrapper (which drives the window
/// schedule) and the model observer (which samples the cumulative
/// delivery curve). Single-threaded by construction.
#[derive(Debug, Default)]
struct SampleShared {
    delivered_ops: Cell<u64>,
    skipped_ops: Cell<u64>,
    skipped_mem: Cell<u64>,
}

/// Wraps a [`WarpProgram`], delivering detail-window operations to the
/// simulator and draining fast-forward windows inline. Sim time does
/// not advance during a drain, so the measured timeline is the
/// concatenation of the detail windows.
///
/// Each warp walks the shared window schedule through its own scaled
/// position (`ops_issued x total_warps`): warps in lockstep see the
/// same window at the same point of their streams, and each drains
/// only its `1/total_warps` share of a fast-forward window. Draining
/// in raw global-op order instead would let whichever warp polls first
/// burn an entire window of its own stream, skewing per-warp progress
/// and collapsing parallelism in the run's tail.
struct SampledProgram<P> {
    inner: P,
    cfg: SampleConfig,
    shared: Rc<SampleShared>,
    /// Active warps in the run (`num_sms x clamped warps_per_sm`).
    total_warps: u64,
    /// Operations consumed from the inner program, per warp.
    consumed: Vec<u64>,
    /// Consumed-count bound where the warp's current window ends —
    /// caches the window math so the per-op hot path is one compare.
    win_until: Vec<u64>,
    /// Whether the warp's current window is simulated in detail.
    win_detail: Vec<bool>,
}

impl<P: WarpProgram> WarpProgram for SampledProgram<P> {
    fn warps_per_sm(&self) -> u32 {
        self.inner.warps_per_sm()
    }

    fn mem_level_parallelism(&self) -> u32 {
        self.inner.mem_level_parallelism()
    }

    fn next_op(&mut self, warp: WarpId) -> Option<WarpOp> {
        let idx = warp.index();
        loop {
            let c = self.consumed[idx];
            if c >= self.win_until[idx] {
                // Entered a new window: recompute its detail flag and
                // the consumed bound where the next one starts. Window
                // `k` covers `c` while `c * total_warps / window_ops`
                // stays `k`, i.e. up to (exclusive)
                // `ceil((k + 1) * window_ops / total_warps)`.
                let k = c * self.total_warps / self.cfg.window_ops;
                self.win_detail[idx] = self.cfg.is_detail(k);
                self.win_until[idx] = ((k + 1) * self.cfg.window_ops).div_ceil(self.total_warps);
            }
            if self.win_detail[idx] {
                let op = self.inner.next_op(warp)?;
                self.consumed[idx] = c + 1;
                let s = &*self.shared;
                s.delivered_ops.set(s.delivered_ops.get() + 1);
                return Some(op);
            }
            // Fast-forward: drain the warp's whole share of this skip
            // window in one bulk call, letting the generator shortcut
            // address math while keeping its state bit-identical.
            let run = self.win_until[idx] - c;
            let (ops, mem) = self.inner.skip_ops(warp, run);
            self.consumed[idx] = c + ops;
            let s = &*self.shared;
            s.skipped_ops.set(s.skipped_ops.get() + ops);
            s.skipped_mem.set(s.skipped_mem.get() + mem);
            if ops < run {
                // The warp retired inside the skip window.
                return None;
            }
        }
    }
}

/// One sample of the cumulative delivery curve: by the time `delivered`
/// detail operations had been handed to the simulator, sim time stood
/// at `now`.
#[derive(Debug, Clone, Copy)]
struct CurvePoint {
    delivered: u64,
    now: u64,
}

/// The model observer: samples the cumulative delivery curve once per
/// delivered window's worth of operations, at memory-issue events.
/// Warps progress through their streams at different rates, so detail
/// windows overlap arbitrarily in sim time — the global delivery rate
/// is the only well-defined throughput measure, and its mid-run slope
/// is exactly the steady-state cycles-per-op the extrapolation needs.
/// Delivery-curve resolution: one point per this many delivered ops.
/// Independent of the window size so large windows still give the fit
/// plenty of points.
const CURVE_RES_OPS: u64 = 1024;

struct FfModel {
    shared: Rc<SampleShared>,
    /// Next `delivered` count that triggers a sample (1 initially, so
    /// the first issue anchors the curve).
    next_mark: u64,
    curve: Vec<CurvePoint>,
}

impl FfModel {
    fn on_issue(&mut self, now: u64) {
        let delivered = self.shared.delivered_ops.get();
        if delivered >= self.next_mark {
            self.curve.push(CurvePoint { delivered, now });
            self.next_mark = delivered + CURVE_RES_OPS;
        }
    }
}

/// Composes the internal [`FfModel`] with the caller's observer so one
/// monomorphized simulator serves both.
struct FfProbe<O> {
    model: FfModel,
    inner: O,
}

impl<O: Observer> Observer for FfProbe<O> {
    fn mem_issue(&mut self, now: u64, write: bool) {
        self.model.on_issue(now);
        self.inner.mem_issue(now, write);
    }

    fn l1_access(&mut self, now: u64, hit: bool) {
        self.inner.l1_access(now, hit);
    }

    fn request_depart(&mut self, now: u64, sm: u16, vline: u64, pool: usize) {
        self.inner.request_depart(now, sm, vline, pool);
    }

    fn l2_access(&mut self, now: u64, slice: u32, pool: usize, hit: bool) {
        self.inner.l2_access(now, slice, pool, hit);
    }

    fn mshr_nack(&mut self, now: u64, slice: u32, pool: usize) {
        self.inner.mshr_nack(now, slice, pool);
    }

    fn mshr_occupancy(&mut self, now: u64, occupancy: usize) {
        self.inner.mshr_occupancy(now, occupancy);
    }

    fn dram_traffic(&mut self, now: u64, pool: usize, bytes: u64, read: bool) {
        self.inner.dram_traffic(now, pool, bytes, read);
    }

    fn dram_service(
        &mut self,
        now: u64,
        slice: u32,
        pool: usize,
        read: bool,
        done: u64,
        burst_cycles: f64,
    ) {
        self.inner
            .dram_service(now, slice, pool, read, done, burst_cycles);
    }

    fn request_retire(&mut self, now: u64, sm: u16, vline: u64) {
        self.inner.request_retire(now, sm, vline);
    }

    fn page_placed(&mut self, now: u64, pool: usize) {
        self.inner.page_placed(now, pool);
    }

    fn warp_retired(&mut self, now: u64) {
        self.inner.warp_retired(now);
    }

    fn run_finished(&mut self, cycles: u64) {
        self.inner.run_finished(cycles);
    }
}

/// Runs `program` under the sampled fast-forward schedule and returns
/// the extrapolated report (its [`SimReport::estimated`] block is
/// always present), the caller's observer, and engine stats.
///
/// # Panics
///
/// Panics on an invalid [`SampleConfig`] (see
/// [`SampleConfig::validate`]).
pub fn run_sampled<T, P, O, M>(
    cfg: SimConfig,
    translator: T,
    program: P,
    sample: SampleConfig,
    obs: O,
    mig: M,
    profile_pages: bool,
) -> (SimReport, O, EngineStats)
where
    T: AddressTranslator,
    P: WarpProgram,
    O: Observer,
    M: PageMigrator,
{
    sample.validate();
    let shared = Rc::new(SampleShared::default());
    let warps_per_sm = program.warps_per_sm().min(cfg.max_warps_per_sm);
    let total_warps = u64::from(cfg.num_sms) * u64::from(warps_per_sm.max(1));
    let wrapped = SampledProgram {
        inner: program,
        cfg: sample,
        shared: Rc::clone(&shared),
        total_warps,
        consumed: vec![0; total_warps as usize],
        win_until: vec![0; total_warps as usize],
        win_detail: vec![false; total_warps as usize],
    };
    let probe = FfProbe {
        model: FfModel {
            shared: Rc::clone(&shared),
            next_mark: 1,
            curve: Vec::new(),
        },
        inner: obs,
    };
    let sim = Simulator::new(cfg.clone(), translator, wrapped)
        .with_observer(probe)
        .with_migrator(mig);
    let sim = if profile_pages {
        sim.with_page_profiling()
    } else {
        sim
    };
    let (mut report, probe, stats) = sim.run_instrumented();
    let estimate = extrapolate(&mut report, &cfg, &sample, &shared, &probe.model.curve);
    report.estimated = Some(estimate);
    (report, probe.inner, stats)
}

/// Stretches the measured (detail-only) report over the drained
/// operations and computes the [`EstimateReport`].
fn extrapolate(
    report: &mut SimReport,
    cfg: &SimConfig,
    sample: &SampleConfig,
    shared: &SampleShared,
    curve: &[CurvePoint],
) -> EstimateReport {
    let delivered = shared.delivered_ops.get();
    let skipped = shared.skipped_ops.get();
    let skipped_mem = shared.skipped_mem.get();
    let cycles_measured = report.cycles;

    // The schedule is a pure function of the op stream, so window
    // counts follow from the totals.
    let total_windows = (delivered + skipped).div_ceil(sample.window_ops);
    let windows_detail = (0..total_windows).filter(|&k| sample.is_detail(k)).count() as u64;

    // Fit cycles-per-op as the slope of the cumulative delivery curve
    // over its interquartile region. Cutting the first and last
    // quarter of deliveries removes the two systematic edge
    // distortions — the warm-up ramp (issues run ahead of service
    // while caches and MSHRs fill) and the end-of-run straggler
    // collapse (retired warps no longer hide latency for the rest).
    // Fall back to the whole curve, then to the global average, when
    // the run is too short to cut.
    let lo = delivered / 4;
    let hi = delivered - delivered / 4;
    let mid: Vec<CurvePoint> = curve
        .iter()
        .copied()
        .filter(|p| p.delivered >= lo && p.delivered <= hi)
        .collect();
    let fit: &[CurvePoint] = if mid.len() >= 2 { &mid } else { curve };
    let (span, fit_ops) = match (fit.first(), fit.last()) {
        (Some(a), Some(b)) if b.delivered > a.delivered => {
            (b.now - a.now, b.delivered - a.delivered)
        }
        _ => (cycles_measured, delivered),
    };
    if std::env::var_os("HM_SAMPLED_DEBUG").is_some() {
        for (i, w) in curve.windows(2).enumerate() {
            let (a, b) = (w[0], w[1]);
            eprintln!(
                "sampled-debug: seg {i} delivered {}..{} t {}..{} c/op={:.3}{}",
                a.delivered,
                b.delivered,
                a.now,
                b.now,
                (b.now - a.now) as f64 / (b.delivered - a.delivered).max(1) as f64,
                if a.delivered >= lo && b.delivered <= hi {
                    " [fit]"
                } else {
                    ""
                }
            );
        }
    }
    let cycles_per_op = if fit_ops == 0 {
        0.0
    } else {
        span as f64 / fit_ops as f64
    };
    let cycles_extra = (skipped as f64 * cycles_per_op).round() as u64;

    // Confidence: 1 - CV of per-segment cycles-per-op across the fit
    // region.
    let slopes: Vec<f64> = fit
        .windows(2)
        .filter(|w| w[1].delivered > w[0].delivered)
        .map(|w| (w[1].now - w[0].now) as f64 / (w[1].delivered - w[0].delivered) as f64)
        .collect();
    let confidence = if slopes.len() < 2 {
        0.5
    } else {
        let mean = slopes.iter().sum::<f64>() / slopes.len() as f64;
        if mean <= 0.0 {
            0.0
        } else {
            let var =
                slopes.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / slopes.len() as f64;
            (1.0 - var.sqrt() / mean).clamp(0.0, 1.0)
        }
    };

    // Scale memory-derived counters by the skipped-to-simulated memory
    // operation ratio; row-hit rates stay measured, energy follows the
    // scaled byte totals.
    if report.mem_ops > 0 && skipped_mem > 0 {
        let f = skipped_mem as f64 / report.mem_ops as f64;
        let scale = |x: u64| x + (x as f64 * f).round() as u64;
        report.l1 = (scale(report.l1.0), scale(report.l1.1));
        report.l2 = (scale(report.l2.0), scale(report.l2.1));
        report.mshr_stalls = scale(report.mshr_stalls);
        for (p, pool_cfg) in report.pools.iter_mut().zip(&cfg.pools) {
            p.bytes_read = scale(p.bytes_read);
            p.bytes_written = scale(p.bytes_written);
            p.bus_busy_cycles *= 1.0 + f;
            p.energy_joules =
                (p.bytes_read + p.bytes_written) as f64 * 8.0 * pool_cfg.pj_per_bit * 1e-12;
        }
    }
    report.cycles += cycles_extra;
    report.mem_ops += skipped_mem;

    EstimateReport {
        windows_detail,
        windows_extrapolated: total_windows - windows_detail,
        ops_simulated: delivered,
        ops_extrapolated: skipped,
        cycles_measured,
        cycles_extrapolated: cycles_extra,
        confidence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::StreamKernel;
    use crate::migrate::NullMigrator;
    use crate::observe::NullObserver;
    use crate::request::FixedPoolTranslator;

    fn small_cfg() -> SimConfig {
        let mut cfg = SimConfig::paper_baseline();
        cfg.num_sms = 4;
        cfg
    }

    #[test]
    fn schedule_is_deterministic_and_warmup_is_detail() {
        let s = SampleConfig {
            window_ops: 64,
            warmup_windows: 3,
            period: 8,
            seed: 42,
        };
        for k in 0..3 {
            assert!(s.is_detail(k), "warm-up window {k} must be detail");
        }
        let a: Vec<bool> = (0..256).map(|k| s.is_detail(k)).collect();
        let b: Vec<bool> = (0..256).map(|k| s.is_detail(k)).collect();
        assert_eq!(a, b);
        // Exactly one detail window per period group after warm-up.
        for g in 0..10u64 {
            let detail = (0..8).filter(|p| s.is_detail(3 + g * 8 + p)).count();
            assert_eq!(detail, 1, "group {g}");
        }
        // Different seeds pick different slots somewhere in 32 groups.
        let other = SampleConfig { seed: 7, ..s };
        assert!(
            (0..256).any(|k| s.is_detail(k) != other.is_detail(k)),
            "seed must move the detail slot"
        );
    }

    #[test]
    fn period_one_matches_full_fidelity_exactly() {
        let cfg = small_cfg();
        let bytes = 1 << 20;
        let full = Simulator::new(
            cfg.clone(),
            FixedPoolTranslator::new(0),
            StreamKernel::new(&cfg, 8, bytes),
        )
        .run();
        let sample = SampleConfig {
            period: 1,
            ..SampleConfig::default()
        };
        let (sampled, (), _) = {
            let (r, _o, s) = run_sampled(
                cfg.clone(),
                FixedPoolTranslator::new(0),
                StreamKernel::new(&cfg, 8, bytes),
                sample,
                NullObserver,
                NullMigrator,
                false,
            );
            (r, (), s)
        };
        let est = sampled.estimated.expect("sampled reports carry estimates");
        assert_eq!(est.windows_extrapolated, 0);
        assert_eq!(est.ops_extrapolated, 0);
        assert_eq!(est.cycles_extrapolated, 0);
        let mut stripped = sampled.clone();
        stripped.estimated = None;
        assert_eq!(stripped, full, "all-detail sampling must be exact");
    }

    /// A schedule scaled down for the small in-module kernels (the
    /// production default's 64k windows would cover these runs whole).
    fn small_sample() -> SampleConfig {
        SampleConfig {
            window_ops: 1024,
            warmup_windows: 2,
            period: 32,
            seed: 0,
        }
    }

    #[test]
    fn sampled_stream_tracks_full_bandwidth() {
        let cfg = small_cfg();
        let bytes = 8 << 20;
        let mk = || StreamKernel::new(&cfg, 32, bytes).with_mlp(4);
        let full = Simulator::new(cfg.clone(), FixedPoolTranslator::new(0), mk()).run();
        let (sampled, (), _) = {
            let (r, _o, s) = run_sampled(
                cfg.clone(),
                FixedPoolTranslator::new(0),
                mk(),
                small_sample(),
                NullObserver,
                NullMigrator,
                false,
            );
            (r, (), s)
        };
        let est = sampled.estimated.unwrap();
        assert!(est.windows_extrapolated > 0, "must fast-forward something");
        assert!(est.ops_simulated + est.ops_extrapolated == full.mem_ops);
        // Every inner op is consumed exactly once, so the extrapolated
        // mem-op count is exact.
        assert_eq!(sampled.mem_ops, full.mem_ops);
        let fb = full.achieved_bandwidth(cfg.sm_clock_ghz).gbps();
        let sb = sampled.achieved_bandwidth(cfg.sm_clock_ghz).gbps();
        let err = (sb - fb).abs() / fb;
        assert!(
            err < 0.05,
            "steady stream error {err:.3} (full {fb:.1} sampled {sb:.1})"
        );
        assert!((0.0..=1.0).contains(&est.confidence));
    }

    #[test]
    fn detail_window_intervals_match_full_run_byte_for_byte() {
        // Property: a window simulated in detail carries exactly the
        // full run's counters. Pinned across schedules in the
        // all-detail regime (period 1 and warmup-covers-run, several
        // window sizes and seeds), where the sampled run's interval
        // series must equal the full run's series byte for byte.
        let cfg = small_cfg();
        let bytes = 2 << 20;
        let full = {
            let sim = Simulator::new(
                cfg.clone(),
                FixedPoolTranslator::new(0),
                StreamKernel::new(&cfg, 16, bytes),
            )
            .with_observer(crate::IntervalSampler::new(500, cfg.pools.len()));
            sim.run_observed()
        };
        let schedules = [
            SampleConfig {
                window_ops: 256,
                warmup_windows: 0,
                period: 1,
                seed: 0,
            },
            SampleConfig {
                window_ops: 4096,
                warmup_windows: 1,
                period: 1,
                seed: 7,
            },
            SampleConfig {
                window_ops: 1024,
                warmup_windows: u64::MAX,
                period: 32,
                seed: 42,
            },
        ];
        for sample in schedules {
            let (mut report, obs, _) = run_sampled(
                cfg.clone(),
                FixedPoolTranslator::new(0),
                StreamKernel::new(&cfg, 16, bytes),
                sample,
                crate::IntervalSampler::new(500, cfg.pools.len()),
                NullMigrator,
                false,
            );
            assert_eq!(
                obs.reports(),
                full.1.reports(),
                "interval series must match for {sample:?}"
            );
            report.estimated = None;
            assert_eq!(report, full.0, "report must match for {sample:?}");
        }
    }

    #[test]
    fn sampled_runs_are_repeatable() {
        let cfg = small_cfg();
        let run = || {
            run_sampled(
                cfg.clone(),
                FixedPoolTranslator::new(0),
                StreamKernel::new(&cfg, 16, 2 << 20),
                small_sample(),
                NullObserver,
                NullMigrator,
                false,
            )
            .0
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "window_ops must be positive")]
    fn zero_window_rejected() {
        let _ = run_sampled(
            small_cfg(),
            FixedPoolTranslator::new(0),
            StreamKernel::new(&small_cfg(), 1, 4096),
            SampleConfig {
                window_ops: 0,
                ..SampleConfig::default()
            },
            NullObserver,
            NullMigrator,
            false,
        );
    }
}
