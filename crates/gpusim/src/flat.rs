//! Flat hot-path tables for the simulator.
//!
//! The simulator's per-event bookkeeping — MSHR waiter lists, per-SM
//! pending-miss lists, per-page access counts — sits on the hottest
//! path in the repo. `HashMap<u64, Vec<..>>` there means SipHash on
//! every probe and a fresh `Vec` allocation per miss. This module
//! replaces them with two purpose-built structures:
//!
//! * [`WaiterMap`]: an open-addressed multimap (`u64` key → list of
//!   `Copy` waiters) with Fibonacci hashing, linear probing, and
//!   backward-shift deletion. Waiter lists are **recycled**: removal
//!   swaps the list into a caller-held scratch buffer, so the steady
//!   state allocates nothing.
//! * [`PageCounter`]: per-page access counts as a dense `Vec<u64>`
//!   indexed by page number, with a `HashMap` spill for pathologically
//!   high page numbers.
//!
//! Both are drop-in *behavioral* equivalents of the maps they replace;
//! the golden-equivalence suite (`tests/golden_simreport.rs`) pins that.

use std::collections::HashMap;

use hmtypes::PageNum;

/// Key sentinel for an empty slot. Simulator keys are line indices
/// (`addr / 128`), which cannot reach `u64::MAX`.
const EMPTY: u64 = u64::MAX;

/// Fibonacci-hashing multiplier (2^64 / φ).
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// Open-addressed multimap from `u64` keys to small lists of `Copy`
/// waiters.
///
/// # Examples
///
/// ```
/// use gpusim::flat::WaiterMap;
///
/// let mut map: WaiterMap<u32> = WaiterMap::with_key_capacity(16);
/// assert!(map.push(7, 1)); // new key
/// assert!(!map.push(7, 2)); // merged into the existing list
/// assert_eq!(map.len(), 1);
///
/// let mut scratch = Vec::new();
/// assert!(map.remove_into(7, &mut scratch));
/// assert_eq!(scratch, [1, 2]);
/// assert!(map.is_empty());
/// ```
#[derive(Debug)]
pub struct WaiterMap<W: Copy> {
    keys: Vec<u64>,
    /// Parallel to `keys`; empty (but capacity-bearing) for empty slots.
    vals: Vec<Vec<W>>,
    /// Number of distinct keys present.
    len: usize,
    mask: usize,
    /// `64 - log2(capacity)`, for the Fibonacci hash.
    shift: u32,
}

impl<W: Copy> WaiterMap<W> {
    /// Creates a map sized so that `keys` distinct keys stay under a
    /// 50% load factor (capacity is the next power of two above
    /// `2 * keys`). The map still grows if the estimate is exceeded.
    pub fn with_key_capacity(keys: usize) -> Self {
        let cap = (keys.max(4) * 2).next_power_of_two();
        WaiterMap {
            keys: vec![EMPTY; cap],
            vals: std::iter::repeat_with(Vec::new).take(cap).collect(),
            len: 0,
            mask: cap - 1,
            shift: 64 - cap.trailing_zeros(),
        }
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        (key.wrapping_mul(HASH_MUL) >> self.shift) as usize
    }

    /// Number of distinct keys (not waiters).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no keys are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends `w` to `key`'s waiter list, creating the list if the key
    /// is new. Returns `true` iff the key was newly inserted.
    #[inline]
    pub fn push(&mut self, key: u64, w: W) -> bool {
        debug_assert_ne!(key, EMPTY, "key sentinel");
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == key {
                self.vals[i].push(w);
                return false;
            }
            if k == EMPTY {
                self.keys[i] = key;
                self.vals[i].push(w);
                self.len += 1;
                return true;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Mutable access to `key`'s waiter list, if present.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut Vec<W>> {
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(&mut self.vals[i]);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Removes `key`, swapping its waiter list into `out` (cleared
    /// first). Returns `false` (with `out` empty) if the key is absent.
    ///
    /// The swap recycles allocations in both directions: the caller's
    /// scratch buffer becomes the slot's next waiter list.
    pub fn remove_into(&mut self, key: u64, out: &mut Vec<W>) -> bool {
        out.clear();
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == EMPTY {
                return false;
            }
            if k == key {
                break;
            }
            i = (i + 1) & self.mask;
        }
        std::mem::swap(&mut self.vals[i], out);
        self.len -= 1;
        // Backward-shift deletion: pull displaced entries into the hole
        // so probe chains never need tombstones.
        let mask = self.mask;
        let mut hole = i;
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let k = self.keys[j];
            if k == EMPTY {
                break;
            }
            let h = self.home(k);
            // Move iff the hole lies within k's probe path [h, j].
            if (j.wrapping_sub(h) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.keys[hole] = k;
                self.vals.swap(hole, j);
                hole = j;
            }
        }
        self.keys[hole] = EMPTY;
        true
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_vals = std::mem::replace(
            &mut self.vals,
            std::iter::repeat_with(Vec::new).take(new_cap).collect(),
        );
        self.mask = new_cap - 1;
        self.shift = 64 - new_cap.trailing_zeros();
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY {
                let mut i = self.home(k);
                while self.keys[i] != EMPTY {
                    i = (i + 1) & self.mask;
                }
                self.keys[i] = k;
                self.vals[i] = v;
            }
        }
    }
}

/// How many pages the dense counter array may cover (2^22 pages =
/// 16 GiB of 4 kB-page address space — beyond any catalog footprint).
const DENSE_PAGE_CAP: u64 = 1 << 22;

/// Per-virtual-page access counter: dense array for the (universal)
/// case of compact page numbers, hash-map spill beyond
/// [`DENSE_PAGE_CAP`]. Replaces `HashMap<PageNum, u64>` on the DRAM
/// access path; converts back to one in [`PageCounter::into_map`].
#[derive(Debug, Default)]
pub struct PageCounter {
    dense: Vec<u64>,
    spill: HashMap<u64, u64>,
}

impl PageCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        PageCounter::default()
    }

    /// Counts one access to `page`.
    #[inline]
    pub fn bump(&mut self, page: u64) {
        if page < DENSE_PAGE_CAP {
            let idx = page as usize;
            if idx >= self.dense.len() {
                self.dense.resize((idx + 1).next_power_of_two(), 0);
            }
            self.dense[idx] += 1;
        } else {
            *self.spill.entry(page).or_insert(0) += 1;
        }
    }

    /// Converts to the report-facing map of nonzero counts.
    pub fn into_map(self) -> HashMap<PageNum, u64> {
        let mut map: HashMap<PageNum, u64> =
            HashMap::with_capacity(self.spill.len() + self.dense.len() / 2);
        for (page, count) in self.dense.into_iter().enumerate() {
            if count > 0 {
                map.insert(PageNum::new(page as u64), count);
            }
        }
        for (page, count) in self.spill {
            map.insert(PageNum::new(page), count);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_remove_roundtrip() {
        let mut map: WaiterMap<(u16, u64)> = WaiterMap::with_key_capacity(8);
        assert!(map.push(100, (1, 10)));
        assert!(!map.push(100, (2, 20)));
        assert!(map.push(200, (3, 30)));
        assert_eq!(map.len(), 2);
        map.get_mut(100).unwrap().push((4, 40));
        assert!(map.get_mut(999).is_none());

        let mut out = vec![(9u16, 9u64)]; // stale contents must be cleared
        assert!(map.remove_into(100, &mut out));
        assert_eq!(out, [(1, 10), (2, 20), (4, 40)]);
        assert!(!map.remove_into(100, &mut out));
        assert!(out.is_empty());
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn grows_past_the_initial_estimate() {
        let mut map: WaiterMap<u32> = WaiterMap::with_key_capacity(4);
        for k in 0..1000u64 {
            assert!(map.push(k * 7919, k as u32));
        }
        assert_eq!(map.len(), 1000);
        let mut out = Vec::new();
        for k in 0..1000u64 {
            assert!(map.remove_into(k * 7919, &mut out), "key {k}");
            assert_eq!(out, [k as u32]);
        }
        assert!(map.is_empty());
    }

    #[test]
    fn fuzz_matches_std_hashmap() {
        let mut map: WaiterMap<u32> = WaiterMap::with_key_capacity(4);
        let mut reference: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut rng = hmtypes::SplitMix64::new(42);
        let mut out = Vec::new();
        for step in 0..20_000u32 {
            let key = rng.next_below(64); // small key space: heavy churn
            if rng.next_below(3) > 0 {
                let was_new = map.push(key, step);
                assert_eq!(was_new, !reference.contains_key(&key));
                reference.entry(key).or_default().push(step);
            } else {
                let removed = map.remove_into(key, &mut out);
                match reference.remove(&key) {
                    Some(want) => {
                        assert!(removed);
                        assert_eq!(out, want, "step {step} key {key}");
                    }
                    None => assert!(!removed && out.is_empty()),
                }
            }
            assert_eq!(map.len(), reference.len());
        }
    }

    #[test]
    fn removal_recycles_list_capacity() {
        let mut map: WaiterMap<u32> = WaiterMap::with_key_capacity(8);
        for i in 0..100 {
            map.push(5, i);
        }
        let mut out = Vec::new();
        map.remove_into(5, &mut out);
        let cap = out.capacity();
        assert!(cap >= 100);
        // The next removal swaps the big buffer back into the slot…
        map.push(5, 0);
        map.remove_into(5, &mut out);
        // …so the following insert+removal cycle reuses it.
        map.push(5, 1);
        map.remove_into(5, &mut out);
        assert_eq!(out.capacity(), cap);
    }

    #[test]
    fn page_counter_matches_hashmap_semantics() {
        let mut pc = PageCounter::new();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        let mut rng = hmtypes::SplitMix64::new(7);
        for _ in 0..10_000 {
            // Mix dense-range pages with spill-range outliers.
            let page = if rng.next_below(50) == 0 {
                DENSE_PAGE_CAP + rng.next_below(1 << 30)
            } else {
                rng.next_below(5_000)
            };
            pc.bump(page);
            *reference.entry(page).or_insert(0) += 1;
        }
        let got = pc.into_map();
        assert_eq!(got.len(), reference.len());
        for (page, count) in reference {
            assert_eq!(got.get(&PageNum::new(page)), Some(&count), "page {page}");
        }
    }
}
