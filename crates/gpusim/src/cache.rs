//! A set-associative, LRU, tag-only cache model.
//!
//! The simulator only needs hit/miss decisions and victim selection —
//! data contents are never modeled — so the cache stores tags and LRU
//! ordering only.

use crate::config::CacheConfig;

/// Result of a cache probe-and-update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been allocated; the evicted line's
    /// index is reported when a valid line was displaced.
    Miss {
        /// The line index that was evicted to make room, if any.
        evicted: Option<u64>,
    },
}

impl CacheOutcome {
    /// `true` on [`CacheOutcome::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    /// Higher = more recently used.
    lru: u64,
}

/// A set-associative LRU cache over global line indices.
///
/// # Examples
///
/// ```
/// use gpusim::{CacheConfig, SetAssocCache};
///
/// let mut c = SetAssocCache::new(CacheConfig::new(1024, 2)); // 8 lines, 4 sets
/// assert!(!c.access(0).is_hit());
/// assert!(c.access(0).is_hit());
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    sets: Vec<Way>,
    set_mask: u64,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        SetAssocCache {
            cfg,
            sets: vec![
                Way {
                    tag: 0,
                    valid: false,
                    lru: 0,
                };
                sets * cfg.ways
            ],
            set_mask: sets as u64 - 1,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Probes for `line` and allocates it on a miss (LRU victim).
    pub fn access(&mut self, line: u64) -> CacheOutcome {
        self.tick += 1;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.trailing_ones();
        let ways = &mut self.sets[set * self.cfg.ways..(set + 1) * self.cfg.ways];

        if let Some(way) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.lru = self.tick;
            self.hits += 1;
            return CacheOutcome::Hit;
        }

        self.misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru } else { 0 })
            .expect("cache has at least one way");
        let evicted = victim.valid.then(|| {
            let shift = self.set_mask.trailing_ones();
            (victim.tag << shift) | set as u64
        });
        victim.tag = tag;
        victim.valid = true;
        victim.lru = self.tick;
        CacheOutcome::Miss { evicted }
    }

    /// Probes for `line` without allocating (used for write no-allocate).
    pub fn probe(&mut self, line: u64) -> bool {
        self.tick += 1;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.trailing_ones();
        let ways = &mut self.sets[set * self.cfg.ways..(set + 1) * self.cfg.ways];
        if let Some(way) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.lru = self.tick;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Invalidates `line` if present; returns whether it was present.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.trailing_ones();
        let ways = &mut self.sets[set * self.cfg.ways..(set + 1) * self.cfg.ways];
        if let Some(way) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.valid = false;
            true
        } else {
            false
        }
    }

    /// (hits, misses) counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit rate in `[0, 1]`; 0 before any access.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways = 8 lines.
        SetAssocCache::new(CacheConfig::new(8 * 128, 2))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(5), CacheOutcome::Miss { evicted: None });
        assert!(c.access(5).is_hit());
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_oldest_within_set() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.access(0);
        c.access(4);
        c.access(0); // 0 now most recent; 4 is LRU
        match c.access(8) {
            CacheOutcome::Miss { evicted: Some(v) } => assert_eq!(v, 4),
            other => panic!("expected eviction of 4, got {other:?}"),
        }
        assert!(c.access(0).is_hit(), "0 must survive");
        assert!(!c.access(4).is_hit(), "4 was evicted");
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        for line in 0..4 {
            c.access(line);
        }
        for line in 0..4 {
            assert!(c.access(line).is_hit());
        }
    }

    #[test]
    fn probe_does_not_allocate() {
        let mut c = tiny();
        assert!(!c.probe(9));
        assert!(!c.access(9).is_hit(), "probe must not have allocated");
        assert!(c.probe(9), "access allocated it");
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.access(3);
        assert!(c.invalidate(3));
        assert!(!c.invalidate(3));
        assert!(!c.access(3).is_hit());
    }

    #[test]
    fn eviction_reports_correct_line_index() {
        let mut c = SetAssocCache::new(CacheConfig::new(128 * 2, 1)); // 2 sets, direct-mapped
        c.access(6); // set 0 (6 & 1 == 0), tag 3
        match c.access(8) {
            // 8 -> set 0, tag 4; must evict 6.
            CacheOutcome::Miss { evicted: Some(v) } => assert_eq!(v, 6),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn hit_rate_tracks() {
        let mut c = tiny();
        c.access(1);
        c.access(1);
        c.access(1);
        c.access(2);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny();
        // 16 distinct lines round-robin over an 8-line cache -> all misses.
        for pass in 0..3 {
            for line in 0..16 {
                let hit = c.access(line).is_hit();
                if pass == 0 {
                    assert!(!hit);
                }
            }
        }
        let (hits, misses) = c.stats();
        assert_eq!(hits, 0);
        assert_eq!(misses, 48);
    }
}
