//! The discrete-event calendar.
//!
//! A thin wrapper over a binary heap keyed by `(time, sequence)`. The
//! monotonically increasing sequence number makes event ordering — and
//! therefore the whole simulation — fully deterministic for equal
//! timestamps.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event calendar over event payloads of type `E`.
///
/// # Examples
///
/// ```
/// use gpusim::engine::Calendar;
///
/// let mut cal: Calendar<&str> = Calendar::new();
/// cal.schedule(10, "b");
/// cal.schedule(5, "a");
/// cal.schedule(10, "c");
/// assert_eq!(cal.pop(), Some((5, "a")));
/// assert_eq!(cal.pop(), Some((10, "b"))); // FIFO among equal times
/// assert_eq!(cal.pop(), Some((10, "c")));
/// assert_eq!(cal.pop(), None);
/// ```
#[derive(Debug)]
pub struct Calendar<E> {
    heap: BinaryHeap<Reverse<(u64, u64, EventBox<E>)>>,
    seq: u64,
    now: u64,
}

/// Wrapper giving the payload a no-op ordering so the heap orders only on
/// `(time, seq)`.
#[derive(Debug)]
struct EventBox<E>(E);

impl<E> PartialEq for EventBox<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventBox<E> {}
impl<E> PartialOrd for EventBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventBox<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Calendar<E> {
    /// Creates an empty calendar at time 0.
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to the current time (the event
    /// fires "now", after already-pending events at this time).
    pub fn schedule(&mut self, at: u64, event: E) {
        let at = at.max(self.now);
        self.heap.push(Reverse((at, self.seq, EventBox(event))));
        self.seq += 1;
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let Reverse((at, _, EventBox(event))) = self.heap.pop()?;
        self.now = at;
        Some((at, event))
    }

    /// The current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Calendar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(30, 3);
        cal.schedule(10, 1);
        cal.schedule(20, 2);
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut cal = Calendar::new();
        for i in 0..100 {
            cal.schedule(42, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut cal = Calendar::new();
        cal.schedule(7, ());
        assert_eq!(cal.now(), 0);
        cal.pop();
        assert_eq!(cal.now(), 7);
    }

    #[test]
    fn past_scheduling_is_clamped() {
        let mut cal = Calendar::new();
        cal.schedule(100, "late");
        cal.pop();
        cal.schedule(50, "too-early");
        let (at, e) = cal.pop().unwrap();
        assert_eq!(at, 100);
        assert_eq!(e, "too-early");
    }

    #[test]
    fn len_and_is_empty() {
        let mut cal = Calendar::new();
        assert!(cal.is_empty());
        cal.schedule(1, ());
        assert_eq!(cal.len(), 1);
        cal.pop();
        assert!(cal.is_empty());
    }
}
