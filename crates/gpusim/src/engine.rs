//! The discrete-event calendar.
//!
//! A bucketed **timing wheel** for the near future plus a binary-heap
//! overflow for far-future events. Simulator latencies are a few hundred
//! cycles, so nearly every event lands in the wheel, where scheduling is
//! a ring-buffer push and popping is a bitmap scan — no comparison-heap
//! traffic on the hot path.
//!
//! Ordering is exactly the classic `(time, sequence)` heap contract:
//! events fire in time order, FIFO among equal timestamps, fully
//! deterministic. Two structural facts let the wheel preserve it
//! without storing sequence numbers:
//!
//! * The wheel spans `[now, now + WHEEL_BUCKETS)` and bucket index is
//!   `time % WHEEL_BUCKETS`, so a bucket holds at most one distinct
//!   timestamp and drains in insertion order.
//! * At a given timestamp `T`, every overflow-heap insertion happens
//!   while `now + WHEEL_BUCKETS <= T` and every wheel insertion while
//!   `now + WHEEL_BUCKETS > T`; `now` is monotonic, so all heap events
//!   at `T` were scheduled before all wheel events at `T`. Popping the
//!   heap first on timestamp ties therefore *is* FIFO order.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Size of the timing wheel: events within this many cycles of `now` go
/// to O(1) buckets, the rest to the overflow heap. Power of two.
const WHEEL_BUCKETS: u64 = 4096;
const WHEEL_MASK: u64 = WHEEL_BUCKETS - 1;
/// Occupancy-bitmap words (64 bits each) covering the buckets.
const BITMAP_WORDS: usize = (WHEEL_BUCKETS / 64) as usize;

/// An event calendar over event payloads of type `E`.
///
/// # Examples
///
/// ```
/// use gpusim::engine::Calendar;
///
/// let mut cal: Calendar<&str> = Calendar::new();
/// cal.schedule(10, "b");
/// cal.schedule(5, "a");
/// cal.schedule(10, "c");
/// assert_eq!(cal.peek_time(), Some(5));
/// assert_eq!(cal.pop(), Some((5, "a")));
/// assert_eq!(cal.pop(), Some((10, "b"))); // FIFO among equal times
/// assert_eq!(cal.pop(), Some((10, "c")));
/// assert_eq!(cal.pop(), None);
/// ```
#[derive(Debug)]
pub struct Calendar<E> {
    /// `WHEEL_BUCKETS` ring buffers; bucket `time & WHEEL_MASK` holds the
    /// events at the unique in-window timestamp mapping there. The
    /// deques keep their capacity across wheel revolutions, so steady
    /// state allocates nothing.
    buckets: Vec<VecDeque<E>>,
    /// One bit per bucket: does it hold events?
    occupied: [u64; BITMAP_WORDS],
    /// One bit per `occupied` word: is the word nonzero?
    summary: u64,
    /// Events in the wheel (not counting the heap).
    wheel_len: usize,
    /// Far-future events, keyed `(time, seq)`.
    heap: BinaryHeap<Reverse<(u64, u64, EventBox<E>)>>,
    seq: u64,
    now: u64,
    pops: u64,
}

/// Counters describing one engine run, for throughput benchmarking
/// (`hetmem-perf`). Not part of [`SimReport`](crate::SimReport): the
/// report stays byte-identical whether or not anyone reads these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total events popped from the calendar over the run.
    pub events_processed: u64,
}

/// Wrapper giving the payload a no-op ordering so the heap orders only on
/// `(time, seq)`.
#[derive(Debug)]
struct EventBox<E>(E);

impl<E> PartialEq for EventBox<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventBox<E> {}
impl<E> PartialOrd for EventBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventBox<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Calendar<E> {
    /// Creates an empty calendar at time 0.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(WHEEL_BUCKETS as usize);
        buckets.resize_with(WHEEL_BUCKETS as usize, VecDeque::new);
        Calendar {
            buckets,
            occupied: [0; BITMAP_WORDS],
            summary: 0,
            wheel_len: 0,
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            pops: 0,
        }
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to the current time (the event
    /// fires "now", after already-pending events at this time).
    pub fn schedule(&mut self, at: u64, event: E) {
        let at = at.max(self.now);
        if at - self.now < WHEEL_BUCKETS {
            let b = (at & WHEEL_MASK) as usize;
            self.buckets[b].push_back(event);
            self.occupied[b >> 6] |= 1u64 << (b & 63);
            self.summary |= 1u64 << (b >> 6);
            self.wheel_len += 1;
        } else {
            self.heap.push(Reverse((at, self.seq, EventBox(event))));
        }
        self.seq += 1;
    }

    /// Schedules `event` `delta` cycles from now — the common hot-path
    /// form (`schedule(now + delta, ..)` inside an event handler).
    pub fn schedule_in(&mut self, delta: u64, event: E) {
        self.schedule(self.now + delta, event);
    }

    /// First occupied bucket index at or (circularly) after `start`,
    /// via the two-level bitmap. `None` when the wheel is empty.
    fn next_occupied(&self, start: usize) -> Option<usize> {
        if self.wheel_len == 0 {
            return None;
        }
        let wi = start >> 6;
        let bit = start & 63;
        // Tail of the starting word (bits >= `bit`).
        let tail = self.occupied[wi] & (!0u64 << bit);
        if tail != 0 {
            return Some((wi << 6) + tail.trailing_zeros() as usize);
        }
        // Words strictly after `wi`, then (wrapping) strictly before it.
        let after = if wi == 63 {
            0
        } else {
            self.summary & (!0u64 << (wi + 1))
        };
        let candidates = if after != 0 {
            after
        } else {
            self.summary & ((1u64 << wi) - 1)
        };
        if candidates != 0 {
            let word = candidates.trailing_zeros() as usize;
            return Some((word << 6) + self.occupied[word].trailing_zeros() as usize);
        }
        // Only the starting word's head (bits < `bit`) can remain.
        let head = self.occupied[wi] & !(!0u64 << bit);
        debug_assert!(head != 0, "wheel_len > 0 but bitmap empty");
        Some((wi << 6) + head.trailing_zeros() as usize)
    }

    /// Timestamp of the earliest wheel event, if any.
    fn wheel_next_time(&self) -> Option<u64> {
        let start = (self.now & WHEEL_MASK) as usize;
        let b = self.next_occupied(start)?;
        // Buckets map injectively onto [now, now + WHEEL_BUCKETS), so the
        // circular bucket distance from `now` is the time delta.
        Some(self.now + ((b as u64).wrapping_sub(self.now) & WHEEL_MASK))
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let wheel_t = self.wheel_next_time();
        let heap_t = self.heap.peek().map(|Reverse((t, ..))| *t);
        match (wheel_t, heap_t) {
            (None, None) => None,
            // On equal timestamps the heap must win: its events were
            // scheduled first (see module docs), so this is FIFO order.
            (Some(wt), Some(ht)) if ht <= wt => self.pop_heap(),
            (None, Some(_)) => self.pop_heap(),
            (Some(wt), _) => Some(self.pop_wheel(wt)),
        }
    }

    fn pop_heap(&mut self) -> Option<(u64, E)> {
        let Reverse((at, _, EventBox(event))) = self.heap.pop()?;
        self.now = at;
        self.pops += 1;
        Some((at, event))
    }

    fn pop_wheel(&mut self, at: u64) -> (u64, E) {
        let b = (at & WHEEL_MASK) as usize;
        let event = self.buckets[b].pop_front().expect("occupied bucket");
        if self.buckets[b].is_empty() {
            self.occupied[b >> 6] &= !(1u64 << (b & 63));
            if self.occupied[b >> 6] == 0 {
                self.summary &= !(1u64 << (b >> 6));
            }
        }
        self.wheel_len -= 1;
        self.now = at;
        self.pops += 1;
        (at, event)
    }

    /// Timestamp of the next event without popping it, or `None` when
    /// the calendar is empty.
    pub fn peek_time(&self) -> Option<u64> {
        let wheel_t = self.wheel_next_time();
        let heap_t = self.heap.peek().map(|Reverse((t, ..))| *t);
        match (wheel_t, heap_t) {
            (Some(w), Some(h)) => Some(w.min(h)),
            (a, b) => a.or(b),
        }
    }

    /// Total events popped since construction.
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// The current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Calendar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(30, 3);
        cal.schedule(10, 1);
        cal.schedule(20, 2);
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut cal = Calendar::new();
        for i in 0..100 {
            cal.schedule(42, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut cal = Calendar::new();
        cal.schedule(7, ());
        assert_eq!(cal.now(), 0);
        cal.pop();
        assert_eq!(cal.now(), 7);
    }

    #[test]
    fn past_scheduling_is_clamped() {
        let mut cal = Calendar::new();
        cal.schedule(100, "late");
        cal.pop();
        cal.schedule(50, "too-early");
        let (at, e) = cal.pop().unwrap();
        assert_eq!(at, 100);
        assert_eq!(e, "too-early");
    }

    #[test]
    fn len_and_is_empty() {
        let mut cal = Calendar::new();
        assert!(cal.is_empty());
        cal.schedule(1, ());
        assert_eq!(cal.len(), 1);
        cal.pop();
        assert!(cal.is_empty());
    }

    #[test]
    fn far_future_events_take_the_overflow_path() {
        let mut cal = Calendar::new();
        cal.schedule(WHEEL_BUCKETS * 10, "far");
        cal.schedule(3, "near");
        assert_eq!(cal.len(), 2);
        assert_eq!(cal.pop(), Some((3, "near")));
        assert_eq!(cal.pop(), Some((WHEEL_BUCKETS * 10, "far")));
        assert!(cal.is_empty());
    }

    #[test]
    fn heap_and_wheel_interleave_fifo_on_equal_times() {
        // "a" is scheduled while T is out of the window (heap); "b" at the
        // same T once the window has advanced (wheel). FIFO demands a, b.
        let mut cal = Calendar::new();
        let t = WHEEL_BUCKETS + 100;
        cal.schedule(t, "a");
        cal.schedule(200, "step");
        assert_eq!(cal.pop(), Some((200, "step")));
        cal.schedule(t, "b"); // t - now < WHEEL_BUCKETS: wheel path
        assert_eq!(cal.pop(), Some((t, "a")));
        assert_eq!(cal.pop(), Some((t, "b")));
    }

    #[test]
    fn wheel_wraparound_keeps_order() {
        // March far past several wheel revolutions with varying strides.
        let mut cal = Calendar::new();
        let mut expect = Vec::new();
        let mut t = 0u64;
        for i in 0..10_000u64 {
            t += (i * 37) % 97 + 1;
            cal.schedule(t, i);
            expect.push((t, i));
        }
        let got: Vec<(u64, u64)> = std::iter::from_fn(|| cal.pop()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn stress_matches_reference_heap() {
        // Mixed schedule/pop traffic vs a (time, seq) reference heap.
        let mut cal = Calendar::new();
        let mut reference: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut rng = 0x1234_5678_9abc_def0u64;
        let mut next = |m: u64| {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng % m
        };
        let mut seq = 0u64;
        for round in 0..50_000 {
            if next(3) > 0 || reference.is_empty() {
                // Mix near (wheel) and far (heap) horizons; repeat
                // timestamps often enough to exercise tie-breaking.
                let delta = if next(10) == 0 {
                    WHEEL_BUCKETS + next(20_000)
                } else {
                    next(600)
                };
                let at = cal.now() + delta;
                cal.schedule(at, seq);
                reference.push(Reverse((at, seq)));
                seq += 1;
            } else {
                let got = cal.pop();
                let Reverse((at, id)) = reference.pop().unwrap();
                assert_eq!(got, Some((at, id)), "round {round}");
            }
        }
        while let Some(Reverse((at, id))) = reference.pop() {
            assert_eq!(cal.pop(), Some((at, id)));
        }
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn peek_time_is_non_mutating() {
        let mut cal = Calendar::new();
        assert_eq!(cal.peek_time(), None);
        cal.schedule(9, "x");
        cal.schedule(WHEEL_BUCKETS * 2, "y");
        assert_eq!(cal.peek_time(), Some(9));
        assert_eq!(cal.peek_time(), Some(9));
        assert_eq!(cal.len(), 2);
        cal.pop();
        assert_eq!(cal.peek_time(), Some(WHEEL_BUCKETS * 2));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut cal = Calendar::new();
        cal.schedule(100, "a");
        cal.pop();
        cal.schedule_in(5, "b");
        assert_eq!(cal.pop(), Some((105, "b")));
    }
}
