//! The observability probe layer: zero-cost hooks inside the simulator.
//!
//! [`Observer`] is a trait the simulator is generic over, with a no-op
//! default implementation for every hook. The default observer,
//! [`NullObserver`], implements nothing — after monomorphization the
//! hook calls are empty inlined bodies and the fast path compiles away
//! entirely ([`NullObserver::ENABLED`] is `false`, so even argument
//! preparation is skipped where it would cost anything).
//!
//! Two concrete observers ship with the crate:
//!
//! * [`IntervalSampler`] — accumulates counters per fixed cycle window
//!   and produces a deterministic per-interval time-series
//!   ([`IntervalReport`]) whose counters partition the end-of-run
//!   [`SimReport`](crate::SimReport) aggregates exactly.
//! * [`EventTracer`] — records individual request lifetimes, DRAM
//!   services, MSHR NACKs and page-placement decisions as
//!   [`SimTraceEvent`]s, capped by an event budget (dropped events are
//!   counted, never silently lost).
//!
//! [`ProbeObserver`] composes both behind runtime options so callers
//! monomorphize a single observed simulator variant.
//!
//! Hooks fire in non-decreasing event time (the calendar pops events in
//! time order), which is what lets the sampler close intervals with a
//! simple roll-forward and keeps every observer deterministic: one
//! simulator runs single-threaded, and sweeps run one simulator per
//! grid point.

use std::collections::HashMap;

/// Simulator probe points. All methods default to no-ops; implement the
/// ones you need. `now` is always the current event time in cycles.
pub trait Observer {
    /// `false` lets the simulator skip hook-argument preparation
    /// entirely (the [`NullObserver`] fast path).
    const ENABLED: bool = true;

    /// A warp issued a memory operation (`write` distinguishes stores).
    fn mem_issue(&mut self, now: u64, write: bool) {
        let _ = (now, write);
    }

    /// An L1 lookup (read access or write probe) hit or missed.
    fn l1_access(&mut self, now: u64, hit: bool) {
        let _ = (now, hit);
    }

    /// A read request left an SM toward an L2 slice (one per unique
    /// in-flight line per SM; coalesced readers merge before this).
    fn request_depart(&mut self, now: u64, sm: u16, vline: u64, pool: usize) {
        let _ = (now, sm, vline, pool);
    }

    /// An L2 slice lookup hit or missed.
    fn l2_access(&mut self, now: u64, slice: u32, pool: usize, hit: bool) {
        let _ = (now, slice, pool, hit);
    }

    /// A read was held at the slice because all MSHRs were busy.
    fn mshr_nack(&mut self, now: u64, slice: u32, pool: usize) {
        let _ = (now, slice, pool);
    }

    /// MSHR occupancy of one slice right after an entry was allocated.
    fn mshr_occupancy(&mut self, now: u64, occupancy: usize) {
        let _ = (now, occupancy);
    }

    /// Bytes entered a pool's DRAM (counted at enqueue, mirroring the
    /// [`SimReport`](crate::SimReport) traffic counters).
    fn dram_traffic(&mut self, now: u64, pool: usize, bytes: u64, read: bool) {
        let _ = (now, pool, bytes, read);
    }

    /// A DRAM channel served one burst (`done` = data completion cycle,
    /// `burst_cycles` = bus occupancy of the transfer).
    fn dram_service(
        &mut self,
        now: u64,
        slice: u32,
        pool: usize,
        read: bool,
        done: u64,
        burst_cycles: f64,
    ) {
        let _ = (now, slice, pool, read, done, burst_cycles);
    }

    /// A read's data arrived back at the issuing SM.
    fn request_retire(&mut self, now: u64, sm: u16, vline: u64) {
        let _ = (now, sm, vline);
    }

    /// The translator faulted a page in (first touch) into `pool`.
    fn page_placed(&mut self, now: u64, pool: usize) {
        let _ = (now, pool);
    }

    /// A warp ran to retirement.
    fn warp_retired(&mut self, now: u64) {
        let _ = now;
    }

    /// The run ended at `cycles` (close any open interval).
    fn run_finished(&mut self, cycles: u64) {
        let _ = cycles;
    }
}

/// The default observer: every hook is a no-op and `ENABLED` is `false`,
/// so an unobserved simulator carries no probe cost at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl Observer for NullObserver {
    const ENABLED: bool = false;
}

/// Per-pool counters of one sampling interval.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IntervalPoolReport {
    /// Bytes read from this pool's DRAM during the interval.
    pub bytes_read: u64,
    /// Bytes written to this pool's DRAM during the interval.
    pub bytes_written: u64,
    /// DRAM bursts served by the pool's channels during the interval.
    pub services: u64,
    /// Data-bus busy cycles accumulated during the interval.
    pub busy_cycles: f64,
    /// Pages faulted into this pool since run start (cumulative zone
    /// occupancy as seen by the simulator's fault path).
    pub zone_pages: u64,
}

/// One sampling window of an observed run. Counter fields partition the
/// run totals: summed over all intervals they equal the corresponding
/// [`SimReport`](crate::SimReport) aggregates (cumulative fields —
/// `zone_pages`, `mshr_peak` — excepted).
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalReport {
    /// Interval index (`start_cycle / sample_cycles`).
    pub index: u64,
    /// First cycle of the window.
    pub start_cycle: u64,
    /// One past the last cycle of the window.
    pub end_cycle: u64,
    /// Warp memory operations issued.
    pub mem_ops: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Reads held on MSHR exhaustion.
    pub mshr_stalls: u64,
    /// Peak single-slice MSHR occupancy observed in the window.
    pub mshr_peak: u64,
    /// Warps retired.
    pub warps_retired: u64,
    /// Per-pool traffic, indexed like `SimConfig::pools`.
    pub pools: Vec<IntervalPoolReport>,
}

impl IntervalReport {
    fn empty(index: u64, sample_cycles: u64, num_pools: usize) -> Self {
        IntervalReport {
            index,
            start_cycle: index * sample_cycles,
            end_cycle: (index + 1) * sample_cycles,
            mem_ops: 0,
            l1_hits: 0,
            l1_misses: 0,
            l2_hits: 0,
            l2_misses: 0,
            mshr_stalls: 0,
            mshr_peak: 0,
            warps_retired: 0,
            pools: vec![IntervalPoolReport::default(); num_pools],
        }
    }
}

/// Accumulates per-interval counters into a deterministic time-series.
///
/// Construct with the window length and pool count, attach via
/// [`Simulator::with_observer`](crate::Simulator::with_observer) (inside
/// a [`ProbeObserver`] or alone), run, and read
/// [`IntervalSampler::reports`]. The emitted series is contiguous from
/// interval 0 through the interval containing the final cycle.
#[derive(Debug, Clone)]
pub struct IntervalSampler {
    sample_cycles: u64,
    num_pools: usize,
    cur: IntervalReport,
    zone_pages: Vec<u64>,
    done: Vec<IntervalReport>,
    finished: bool,
}

impl IntervalSampler {
    /// Creates a sampler with `sample_cycles`-wide windows.
    ///
    /// # Panics
    ///
    /// Panics if `sample_cycles` is zero.
    pub fn new(sample_cycles: u64, num_pools: usize) -> Self {
        assert!(sample_cycles > 0, "sampling interval must be positive");
        IntervalSampler {
            sample_cycles,
            num_pools,
            cur: IntervalReport::empty(0, sample_cycles, num_pools),
            zone_pages: vec![0; num_pools],
            done: Vec::new(),
            finished: false,
        }
    }

    /// The window length in cycles.
    pub fn sample_cycles(&self) -> u64 {
        self.sample_cycles
    }

    /// The completed series (call after the run; the simulator closes
    /// the final interval through [`Observer::run_finished`]).
    pub fn reports(&self) -> &[IntervalReport] {
        &self.done
    }

    /// Consumes the sampler, returning the series.
    pub fn into_reports(self) -> Vec<IntervalReport> {
        self.done
    }

    /// Closes intervals up to (not including) the one containing `now`.
    fn roll(&mut self, now: u64) {
        let target = now / self.sample_cycles;
        while self.cur.index < target {
            self.flush_one();
        }
    }

    fn flush_one(&mut self) {
        let next = IntervalReport::empty(self.cur.index + 1, self.sample_cycles, self.num_pools);
        let mut closed = std::mem::replace(&mut self.cur, next);
        for (p, &pages) in closed.pools.iter_mut().zip(&self.zone_pages) {
            p.zone_pages = pages;
        }
        self.done.push(closed);
    }
}

impl Observer for IntervalSampler {
    fn mem_issue(&mut self, now: u64, _write: bool) {
        self.roll(now);
        self.cur.mem_ops += 1;
    }

    fn l1_access(&mut self, now: u64, hit: bool) {
        self.roll(now);
        if hit {
            self.cur.l1_hits += 1;
        } else {
            self.cur.l1_misses += 1;
        }
    }

    fn l2_access(&mut self, now: u64, _slice: u32, _pool: usize, hit: bool) {
        self.roll(now);
        if hit {
            self.cur.l2_hits += 1;
        } else {
            self.cur.l2_misses += 1;
        }
    }

    fn mshr_nack(&mut self, now: u64, _slice: u32, _pool: usize) {
        self.roll(now);
        self.cur.mshr_stalls += 1;
    }

    fn mshr_occupancy(&mut self, now: u64, occupancy: usize) {
        self.roll(now);
        self.cur.mshr_peak = self.cur.mshr_peak.max(occupancy as u64);
    }

    fn dram_traffic(&mut self, now: u64, pool: usize, bytes: u64, read: bool) {
        self.roll(now);
        let p = &mut self.cur.pools[pool];
        if read {
            p.bytes_read += bytes;
        } else {
            p.bytes_written += bytes;
        }
    }

    fn dram_service(
        &mut self,
        now: u64,
        _slice: u32,
        pool: usize,
        _read: bool,
        _done: u64,
        burst_cycles: f64,
    ) {
        self.roll(now);
        let p = &mut self.cur.pools[pool];
        p.services += 1;
        p.busy_cycles += burst_cycles;
    }

    fn page_placed(&mut self, now: u64, pool: usize) {
        self.roll(now);
        self.zone_pages[pool] += 1;
    }

    fn warp_retired(&mut self, now: u64) {
        self.roll(now);
        self.cur.warps_retired += 1;
    }

    fn run_finished(&mut self, cycles: u64) {
        if self.finished {
            return;
        }
        self.finished = true;
        // Close everything through the interval containing the last cycle
        // so the series is contiguous and sums to the run totals.
        self.roll(cycles);
        self.flush_one();
    }
}

/// What a [`SimTraceEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A read request's SM-to-SM round trip (`tid` = SM).
    Request {
        /// Issuing SM.
        sm: u16,
        /// Virtual line requested.
        vline: u64,
        /// Pool that served it.
        pool: usize,
    },
    /// One DRAM burst on a channel.
    DramService {
        /// Global slice/channel index.
        slice: u32,
        /// Owning pool.
        pool: usize,
        /// Read or write burst.
        read: bool,
    },
    /// A read held at a slice on MSHR exhaustion.
    MshrNack {
        /// Global slice/channel index.
        slice: u32,
        /// Owning pool.
        pool: usize,
    },
    /// A first-touch page placement decided during the run.
    PagePlaced {
        /// Pool the page landed in.
        pool: usize,
    },
}

/// One traced event: a kind plus a `[start, start + dur)` cycle span
/// (instant events have `dur == 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimTraceEvent {
    /// What happened.
    pub kind: TraceEventKind,
    /// Start cycle.
    pub start: u64,
    /// Duration in cycles (0 for instants).
    pub dur: u64,
}

/// Records individual events up to a budget; excess events are counted
/// in [`EventTracer::dropped`] instead of silently vanishing.
#[derive(Debug, Clone)]
pub struct EventTracer {
    budget: usize,
    events: Vec<SimTraceEvent>,
    dropped: u64,
    /// In-flight read issue times by `(sm, vline)`.
    inflight: HashMap<(u16, u64), u64>,
}

impl EventTracer {
    /// Creates a tracer that keeps at most `budget` events.
    pub fn new(budget: usize) -> Self {
        EventTracer {
            budget,
            events: Vec::new(),
            dropped: 0,
            inflight: HashMap::new(),
        }
    }

    /// The configured event budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Events recorded, in completion order.
    pub fn events(&self) -> &[SimTraceEvent] {
        &self.events
    }

    /// Events discarded after the budget filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the tracer, returning `(events, dropped)`.
    pub fn into_parts(self) -> (Vec<SimTraceEvent>, u64) {
        (self.events, self.dropped)
    }

    fn push(&mut self, ev: SimTraceEvent) {
        if self.events.len() < self.budget {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }
}

impl Observer for EventTracer {
    fn request_depart(&mut self, now: u64, sm: u16, vline: u64, _pool: usize) {
        self.inflight.insert((sm, vline), now);
    }

    fn request_retire(&mut self, now: u64, sm: u16, vline: u64) {
        if let Some(start) = self.inflight.remove(&(sm, vline)) {
            self.push(SimTraceEvent {
                // The serving pool is not known at retire time; readers
                // group request spans by SM, so record the span only.
                kind: TraceEventKind::Request { sm, vline, pool: 0 },
                start,
                dur: now.saturating_sub(start),
            });
        }
    }

    fn mshr_nack(&mut self, now: u64, slice: u32, pool: usize) {
        self.push(SimTraceEvent {
            kind: TraceEventKind::MshrNack { slice, pool },
            start: now,
            dur: 0,
        });
    }

    fn dram_service(
        &mut self,
        _now: u64,
        slice: u32,
        pool: usize,
        read: bool,
        done: u64,
        burst_cycles: f64,
    ) {
        let dur = burst_cycles.ceil() as u64;
        self.push(SimTraceEvent {
            kind: TraceEventKind::DramService { slice, pool, read },
            start: done.saturating_sub(dur),
            dur,
        });
    }

    fn page_placed(&mut self, now: u64, pool: usize) {
        self.push(SimTraceEvent {
            kind: TraceEventKind::PagePlaced { pool },
            start: now,
            dur: 0,
        });
    }
}

/// The production observer: an optional [`IntervalSampler`] plus an
/// optional [`EventTracer`] behind one monomorphized type, so the
/// runner needs exactly one observed simulator instantiation.
#[derive(Debug, Clone, Default)]
pub struct ProbeObserver {
    /// Interval time-series collection, when sampling is requested.
    pub sampler: Option<IntervalSampler>,
    /// Event tracing, when a trace is requested.
    pub tracer: Option<EventTracer>,
}

impl ProbeObserver {
    /// Creates a probe from the requested parts.
    pub fn new(sampler: Option<IntervalSampler>, tracer: Option<EventTracer>) -> Self {
        ProbeObserver { sampler, tracer }
    }
}

macro_rules! forward_to_parts {
    ($self:ident, $method:ident($($arg:expr),*)) => {
        if let Some(s) = $self.sampler.as_mut() {
            s.$method($($arg),*);
        }
        if let Some(t) = $self.tracer.as_mut() {
            t.$method($($arg),*);
        }
    };
}

impl Observer for ProbeObserver {
    fn mem_issue(&mut self, now: u64, write: bool) {
        forward_to_parts!(self, mem_issue(now, write));
    }

    fn l1_access(&mut self, now: u64, hit: bool) {
        forward_to_parts!(self, l1_access(now, hit));
    }

    fn request_depart(&mut self, now: u64, sm: u16, vline: u64, pool: usize) {
        forward_to_parts!(self, request_depart(now, sm, vline, pool));
    }

    fn l2_access(&mut self, now: u64, slice: u32, pool: usize, hit: bool) {
        forward_to_parts!(self, l2_access(now, slice, pool, hit));
    }

    fn mshr_nack(&mut self, now: u64, slice: u32, pool: usize) {
        forward_to_parts!(self, mshr_nack(now, slice, pool));
    }

    fn mshr_occupancy(&mut self, now: u64, occupancy: usize) {
        forward_to_parts!(self, mshr_occupancy(now, occupancy));
    }

    fn dram_traffic(&mut self, now: u64, pool: usize, bytes: u64, read: bool) {
        forward_to_parts!(self, dram_traffic(now, pool, bytes, read));
    }

    fn dram_service(
        &mut self,
        now: u64,
        slice: u32,
        pool: usize,
        read: bool,
        done: u64,
        burst_cycles: f64,
    ) {
        forward_to_parts!(
            self,
            dram_service(now, slice, pool, read, done, burst_cycles)
        );
    }

    fn request_retire(&mut self, now: u64, sm: u16, vline: u64) {
        forward_to_parts!(self, request_retire(now, sm, vline));
    }

    fn page_placed(&mut self, now: u64, pool: usize) {
        forward_to_parts!(self, page_placed(now, pool));
    }

    fn warp_retired(&mut self, now: u64) {
        forward_to_parts!(self, warp_retired(now));
    }

    fn run_finished(&mut self, cycles: u64) {
        forward_to_parts!(self, run_finished(cycles));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_rolls_and_partitions_counters() {
        let mut s = IntervalSampler::new(100, 2);
        s.mem_issue(5, false);
        s.l1_access(5, false);
        s.dram_traffic(50, 0, 128, true);
        s.dram_traffic(150, 1, 128, false);
        s.mshr_occupancy(170, 7);
        s.page_placed(250, 0);
        s.run_finished(260);

        let r = s.reports();
        assert_eq!(r.len(), 3, "cycles 0..=260 span three 100-cycle windows");
        assert_eq!(r[0].index, 0);
        assert_eq!(r[0].start_cycle, 0);
        assert_eq!(r[0].end_cycle, 100);
        assert_eq!(r[0].mem_ops, 1);
        assert_eq!(r[0].l1_misses, 1);
        assert_eq!(r[0].pools[0].bytes_read, 128);
        assert_eq!(r[1].pools[1].bytes_written, 128);
        assert_eq!(r[1].mshr_peak, 7);
        // Zone pages are cumulative snapshots at interval end.
        assert_eq!(r[0].pools[0].zone_pages, 0);
        assert_eq!(r[2].pools[0].zone_pages, 1);
        let total_bytes: u64 = r
            .iter()
            .flat_map(|i| &i.pools)
            .map(|p| p.bytes_read + p.bytes_written)
            .sum();
        assert_eq!(total_bytes, 256);
    }

    #[test]
    fn sampler_run_ending_on_boundary_emits_empty_final_window() {
        // A run whose last cycle lands exactly on a window boundary
        // closes with a zero-length (all-zero) trailing window: the
        // series stays contiguous and still sums to the run totals.
        let mut s = IntervalSampler::new(100, 1);
        s.mem_issue(150, false);
        s.run_finished(200);
        let r = s.reports();
        assert_eq!(r.len(), 3);
        assert_eq!(r[2].start_cycle, 200);
        assert_eq!(r[2], IntervalReport::empty(2, 100, 1));
        let total: u64 = r.iter().map(|i| i.mem_ops).sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn sampler_window_larger_than_run_yields_one_window() {
        // The window length is nominal: a run shorter than one window
        // emits a single interval holding every counter, its end_cycle
        // still reporting the nominal window edge.
        let mut s = IntervalSampler::new(10_000, 2);
        s.mem_issue(3, false);
        s.dram_traffic(40, 1, 128, true);
        s.run_finished(50);
        let r = s.reports();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].index, 0);
        assert_eq!(r[0].end_cycle, 10_000);
        assert_eq!(r[0].mem_ops, 1);
        assert_eq!(r[0].pools[1].bytes_read, 128);
    }

    #[test]
    fn sampler_emits_contiguous_series_across_idle_gaps() {
        let mut s = IntervalSampler::new(10, 1);
        s.mem_issue(1, false);
        s.mem_issue(45, false);
        s.run_finished(45);
        let idx: Vec<u64> = s.reports().iter().map(|i| i.index).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
        assert_eq!(s.reports()[2].mem_ops, 0, "idle window is explicit");
    }

    #[test]
    fn tracer_budget_counts_drops() {
        let mut t = EventTracer::new(2);
        for i in 0..5 {
            t.mshr_nack(i, 0, 0);
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn tracer_pairs_request_depart_and_retire() {
        let mut t = EventTracer::new(16);
        t.request_depart(10, 1, 77, 0);
        t.request_retire(250, 1, 77);
        // Unmatched retires are ignored.
        t.request_retire(300, 1, 78);
        assert_eq!(t.events().len(), 1);
        let ev = t.events()[0];
        assert_eq!(ev.start, 10);
        assert_eq!(ev.dur, 240);
        assert!(matches!(
            ev.kind,
            TraceEventKind::Request {
                sm: 1,
                vline: 77,
                ..
            }
        ));
    }

    #[test]
    fn null_observer_is_disabled() {
        assert!(!NullObserver::ENABLED);
        assert!(IntervalSampler::ENABLED);
    }
}
