//! Built-in micro-kernels for tests, docs, and calibration.
//!
//! Real benchmark models live in the `workloads` crate; [`StreamKernel`]
//! here is the minimal useful [`WarpProgram`] — a bandwidth-bound
//! streaming read over a contiguous buffer, with optional per-access
//! compute — used to calibrate the simulator and unit-test the pipeline.

use hmtypes::{AccessKind, VirtAddr, LINE_SIZE};

use crate::config::SimConfig;
use crate::request::{WarpId, WarpOp, WarpProgram};

/// A streaming kernel: the footprint is split contiguously across warps
/// and each warp reads its chunk line by line, optionally interleaving
/// `compute` cycles per access.
///
/// # Examples
///
/// ```
/// use gpusim::{SimConfig, StreamKernel, WarpProgram, WarpId};
///
/// let cfg = SimConfig::paper_baseline();
/// let mut k = StreamKernel::new(&cfg, 2, 1 << 16).with_compute(10);
/// assert_eq!(k.warps_per_sm(), 2);
/// assert!(k.next_op(WarpId(0)).is_some());
/// ```
/// Lines per work tile (one DRAM row stripe; tiles round-robin over warps
/// the way CUDA thread blocks round-robin over data tiles).
const TILE_LINES: u64 = 16;

#[derive(Debug, Clone)]
pub struct StreamKernel {
    warps_per_sm: u32,
    total_warps: u64,
    total_lines: u64,
    mlp: u32,
    compute: u32,
    /// Per-warp cursor: (current tile ordinal for this warp, offset in tile).
    cursor: Vec<(u64, u64)>,
    /// Whether the warp's next op is the compute half of its loop body.
    compute_phase: Vec<bool>,
}

impl StreamKernel {
    /// Creates a kernel streaming `bytes` of footprint (rounded down to
    /// whole lines) using `warps_per_sm` warps on each of the config's
    /// SMs. The footprint is tiled in 2 kB tiles assigned to warps
    /// round-robin, like CUDA blocks over a grid.
    ///
    /// # Panics
    ///
    /// Panics if `warps_per_sm` is zero or the footprint is smaller than
    /// one line per warp.
    pub fn new(cfg: &SimConfig, warps_per_sm: u32, bytes: u64) -> Self {
        assert!(warps_per_sm > 0, "need at least one warp per SM");
        let warps_per_sm = warps_per_sm.min(cfg.max_warps_per_sm);
        let total_warps = u64::from(cfg.num_sms * warps_per_sm);
        let total_lines = bytes / LINE_SIZE as u64;
        assert!(
            total_lines >= total_warps,
            "footprint must provide at least one line per warp"
        );
        StreamKernel {
            warps_per_sm,
            total_warps,
            total_lines,
            mlp: 4,
            compute: 0,
            cursor: vec![(0, 0); total_warps as usize],
            compute_phase: vec![false; total_warps as usize],
        }
    }

    /// Sets the per-warp outstanding-load limit (default 4).
    pub fn with_mlp(mut self, mlp: u32) -> Self {
        self.mlp = mlp.max(1);
        self
    }

    /// Adds `cycles` of compute before every memory access (default 0).
    pub fn with_compute(mut self, cycles: u32) -> Self {
        self.compute = cycles;
        self
    }
}

impl WarpProgram for StreamKernel {
    fn warps_per_sm(&self) -> u32 {
        self.warps_per_sm
    }

    fn mem_level_parallelism(&self) -> u32 {
        self.mlp
    }

    fn next_op(&mut self, warp: WarpId) -> Option<WarpOp> {
        let i = warp.index();
        let (tile_ord, off) = self.cursor[i];
        // Warp w owns tiles w, w + W, w + 2W, ...
        let tile = i as u64 + tile_ord * self.total_warps;
        let line = tile * TILE_LINES + off;
        if line >= self.total_lines {
            return None;
        }
        if self.compute > 0 && !self.compute_phase[i] {
            self.compute_phase[i] = true;
            return Some(WarpOp::Compute(self.compute));
        }
        self.compute_phase[i] = false;
        // Advance: next line in tile, or first line of the next owned tile.
        self.cursor[i] = if off + 1 < TILE_LINES && line + 1 < self.total_lines {
            (tile_ord, off + 1)
        } else {
            (tile_ord + 1, 0)
        };
        Some(WarpOp::Mem {
            addr: VirtAddr::new(line * LINE_SIZE as u64),
            kind: AccessKind::Read,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        let mut cfg = SimConfig::paper_baseline();
        cfg.num_sms = 2;
        cfg
    }

    #[test]
    fn covers_footprint_exactly_once() {
        let cfg = cfg();
        let bytes = 64 * 1024u64;
        let mut k = StreamKernel::new(&cfg, 2, bytes);
        let mut seen = std::collections::HashSet::new();
        for w in 0..4 {
            while let Some(op) = k.next_op(WarpId(w)) {
                if let WarpOp::Mem { addr, .. } = op {
                    assert!(seen.insert(addr.line_index()));
                }
            }
        }
        assert_eq!(seen.len() as u64, bytes / LINE_SIZE as u64);
    }

    #[test]
    fn compute_alternates_with_memory() {
        let cfg = cfg();
        let mut k = StreamKernel::new(&cfg, 1, 4096).with_compute(7);
        assert!(matches!(k.next_op(WarpId(0)), Some(WarpOp::Compute(7))));
        assert!(matches!(k.next_op(WarpId(0)), Some(WarpOp::Mem { .. })));
        assert!(matches!(k.next_op(WarpId(0)), Some(WarpOp::Compute(7))));
    }

    #[test]
    fn warps_clamped_to_hardware_limit() {
        let cfg = cfg();
        let k = StreamKernel::new(&cfg, 1_000, 1 << 20);
        assert_eq!(k.warps_per_sm(), cfg.max_warps_per_sm);
    }

    #[test]
    fn mlp_floor_is_one() {
        let cfg = cfg();
        let k = StreamKernel::new(&cfg, 1, 4096).with_mlp(0);
        assert_eq!(k.mem_level_parallelism(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one line per warp")]
    fn tiny_footprint_rejected() {
        let cfg = cfg();
        let _ = StreamKernel::new(&cfg, 48, 128);
    }
}
