//! Simulator configuration.
//!
//! [`SimConfig::paper_baseline`] reproduces Table 1 of the paper: a
//! Fermi-like GPU (15 SMs @ 1.4 GHz, 16 kB L1 per SM, memory-side 128 kB
//! L2 per DRAM channel with 128 MSHRs per slice) in front of a
//! heterogeneous memory system (8-channel 200 GB/s GDDR5 GPU-local pool +
//! 4-channel 80 GB/s DDR4 pool one interconnect hop away).

use hmtypes::{Bandwidth, MemKind, LINE_SIZE};

/// Geometry of one set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Creates a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics unless capacity is a positive multiple of `ways * LINE_SIZE`
    /// and the resulting set count is a power of two.
    pub fn new(capacity_bytes: usize, ways: usize) -> Self {
        assert!(ways > 0, "cache needs at least one way");
        assert!(
            capacity_bytes > 0 && capacity_bytes.is_multiple_of(ways * LINE_SIZE),
            "capacity must be a positive multiple of ways * line size"
        );
        let sets = capacity_bytes / (ways * LINE_SIZE);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheConfig {
            capacity_bytes,
            ways,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity_bytes / (self.ways * LINE_SIZE)
    }

    /// Total lines held.
    pub fn lines(&self) -> usize {
        self.capacity_bytes / LINE_SIZE
    }
}

/// DRAM bank timing parameters, expressed in **SM cycles**.
///
/// Table 1 gives GDDR5 timings in DRAM command clocks
/// (`RCD=RP=12, RC=40, CL=WR=12`); at the simulated 1.4 GHz SM clock and
/// a ~350 MHz DRAM command clock those convert at ×4, which
/// [`DramTiming::paper_gddr5`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// RAS-to-CAS delay (activate → column command).
    pub rcd: u64,
    /// Row precharge time.
    pub rp: u64,
    /// CAS latency (column command → first data).
    pub cl: u64,
    /// Write recovery time.
    pub wr: u64,
    /// Row cycle time (activate → next activate, same bank).
    pub rc: u64,
}

impl DramTiming {
    /// Table 1 timings (DRAM clocks ×4 → SM cycles).
    pub const fn paper_gddr5() -> Self {
        DramTiming {
            rcd: 48,
            rp: 48,
            cl: 48,
            wr: 48,
            rc: 160,
        }
    }

    /// Latency of a row-buffer hit (CAS only).
    pub const fn hit_latency(&self) -> u64 {
        self.cl
    }

    /// Latency of a row-buffer miss (precharge + activate + CAS).
    pub const fn miss_latency(&self) -> u64 {
        self.rp + self.rcd + self.cl
    }
}

/// One memory pool: a set of DRAM channels of a given [`MemKind`] at a
/// given distance from the GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolConfig {
    /// Human-readable name (e.g. `"GDDR5"`).
    pub name: String,
    /// Memory technology class.
    pub kind: MemKind,
    /// Number of independent DRAM channels.
    pub channels: u32,
    /// Aggregate pool bandwidth (split evenly across channels).
    pub bandwidth: Bandwidth,
    /// Extra interconnect latency from the GPU, in SM cycles, applied on
    /// the request path (Table 1: 100 cycles to the CPU-attached pool).
    pub extra_latency: u64,
    /// Bank timing.
    pub timing: DramTiming,
    /// Banks per channel.
    pub banks_per_channel: u32,
    /// DRAM access energy in picojoules per bit (paper §2.1: GDDR5
    /// needs significantly more energy per access than DDR4/LPDDR4;
    /// die-stacked memories less still).
    pub pj_per_bit: f64,
}

impl PoolConfig {
    /// Per-channel bandwidth in bytes per SM cycle at `sm_clock_ghz`.
    pub fn channel_bytes_per_cycle(&self, sm_clock_ghz: f64) -> f64 {
        self.bandwidth.bytes_per_cycle(sm_clock_ghz) / f64::from(self.channels)
    }

    /// SM cycles one 128 B burst occupies a channel's data bus.
    pub fn burst_cycles(&self, sm_clock_ghz: f64) -> f64 {
        LINE_SIZE as f64 / self.channel_bytes_per_cycle(sm_clock_ghz)
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Hardware warp contexts per SM (programs may use fewer).
    pub max_warps_per_sm: u32,
    /// SM core clock in GHz (all latencies are in SM cycles).
    pub sm_clock_ghz: f64,
    /// Per-SM L1 geometry.
    pub l1: CacheConfig,
    /// L1 hit/lookup latency.
    pub l1_latency: u64,
    /// Per-channel memory-side L2 slice geometry.
    pub l2: CacheConfig,
    /// L2 lookup latency (on top of interconnect).
    pub l2_latency: u64,
    /// MSHR entries per L2 slice (Table 1: 128). Requests arriving at a
    /// slice with no free MSHR are held and admitted as fills complete.
    pub l2_mshrs: usize,
    /// Baseline GPU-to-L2 interconnect latency (SM cycles, both ways
    /// combined), before any per-pool extra latency.
    pub base_mem_latency: u64,
    /// The memory pools; index is the pool id used in address placement.
    pub pools: Vec<PoolConfig>,
    /// Safety valve: abort the simulation after this many cycles.
    pub max_cycles: u64,
}

impl SimConfig {
    /// The paper's simulated system (Table 1).
    pub fn paper_baseline() -> Self {
        SimConfig {
            num_sms: 15,
            max_warps_per_sm: 48,
            sm_clock_ghz: 1.4,
            l1: CacheConfig::new(16 * 1024, 4),
            l1_latency: 4,
            l2: CacheConfig::new(128 * 1024, 8),
            l2_latency: 40,
            l2_mshrs: 128,
            base_mem_latency: 60,
            pools: vec![
                PoolConfig {
                    name: "GDDR5".to_string(),
                    kind: MemKind::BandwidthOptimized,
                    channels: 8,
                    bandwidth: Bandwidth::from_gbps(200.0),
                    extra_latency: 0,
                    timing: DramTiming::paper_gddr5(),
                    banks_per_channel: 16,
                    pj_per_bit: 7.0,
                },
                PoolConfig {
                    name: "DDR4".to_string(),
                    kind: MemKind::CapacityOptimized,
                    channels: 4,
                    bandwidth: Bandwidth::from_gbps(80.0),
                    extra_latency: 100,
                    timing: DramTiming::paper_gddr5(),
                    banks_per_channel: 16,
                    pj_per_bit: 4.5,
                },
            ],
            max_cycles: 2_000_000_000,
        }
    }

    /// Returns a copy with the BO pool's bandwidth scaled by `factor`
    /// (the Fig. 2a sweep).
    pub fn with_bo_bandwidth_scaled(mut self, factor: f64) -> Self {
        for p in &mut self.pools {
            if p.kind == MemKind::BandwidthOptimized {
                p.bandwidth = p.bandwidth.scaled(factor);
            }
        }
        self
    }

    /// Returns a copy with `extra` cycles added to every pool's latency
    /// (the Fig. 2b sweep).
    pub fn with_extra_latency(mut self, extra: u64) -> Self {
        for p in &mut self.pools {
            p.extra_latency += extra;
        }
        self
    }

    /// Returns a copy with the CO pool set to `bw` (the Fig. 5 sweep).
    /// A zero bandwidth models an absent pool.
    pub fn with_co_bandwidth(mut self, bw: Bandwidth) -> Self {
        for p in &mut self.pools {
            if p.kind == MemKind::CapacityOptimized {
                p.bandwidth = bw;
            }
        }
        self
    }

    /// Aggregate bandwidth over all pools.
    pub fn total_bandwidth(&self) -> Bandwidth {
        self.pools.iter().map(|p| p.bandwidth).sum()
    }

    /// Index of the first pool of `kind`, if present.
    pub fn pool_of_kind(&self, kind: MemKind) -> Option<usize> {
        self.pools.iter().position(|p| p.kind == kind)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on a config that cannot be simulated (no SMs, no pools,
    /// a pool with no channels, or zero warps).
    pub fn validate(&self) {
        assert!(self.num_sms > 0, "need at least one SM");
        assert!(self.max_warps_per_sm > 0, "need at least one warp per SM");
        assert!(!self.pools.is_empty(), "need at least one memory pool");
        assert!(self.sm_clock_ghz > 0.0, "SM clock must be positive");
        for p in &self.pools {
            assert!(p.channels > 0, "pool {} has no channels", p.name);
            assert!(p.banks_per_channel > 0, "pool {} has no banks", p.name);
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_matches_table_1() {
        let cfg = SimConfig::paper_baseline();
        cfg.validate();
        assert_eq!(cfg.num_sms, 15);
        assert_eq!(cfg.l1.capacity_bytes, 16 * 1024);
        assert_eq!(cfg.l2.capacity_bytes, 128 * 1024);
        assert_eq!(cfg.l2_mshrs, 128);
        assert_eq!(cfg.pools.len(), 2);
        assert_eq!(cfg.pools[0].channels, 8);
        assert_eq!(cfg.pools[0].bandwidth.gbps(), 200.0);
        assert_eq!(cfg.pools[1].channels, 4);
        assert_eq!(cfg.pools[1].bandwidth.gbps(), 80.0);
        assert_eq!(cfg.pools[1].extra_latency, 100);
        assert_eq!(cfg.total_bandwidth().gbps(), 280.0);
    }

    #[test]
    fn cache_geometry() {
        let l1 = CacheConfig::new(16 * 1024, 4);
        assert_eq!(l1.sets(), 32);
        assert_eq!(l1.lines(), 128);
        let l2 = CacheConfig::new(128 * 1024, 8);
        assert_eq!(l2.sets(), 128);
        assert_eq!(l2.lines(), 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn cache_rejects_non_pow2_sets() {
        let _ = CacheConfig::new(3 * 128 * 4, 4);
    }

    #[test]
    fn burst_cycles_match_channel_bandwidth() {
        let cfg = SimConfig::paper_baseline();
        // GDDR5: 25 GB/s per channel at 1.4 GHz -> 17.86 B/cyc -> 7.17 cyc per 128 B.
        let burst = cfg.pools[0].burst_cycles(cfg.sm_clock_ghz);
        assert!((burst - 7.168).abs() < 1e-2, "got {burst}");
        // DDR4: 20 GB/s per channel -> 8.96 cyc.
        let burst = cfg.pools[1].burst_cycles(cfg.sm_clock_ghz);
        assert!((burst - 8.96).abs() < 1e-2, "got {burst}");
    }

    #[test]
    fn scaling_helpers() {
        let cfg = SimConfig::paper_baseline().with_bo_bandwidth_scaled(2.0);
        assert_eq!(cfg.pools[0].bandwidth.gbps(), 400.0);
        assert_eq!(cfg.pools[1].bandwidth.gbps(), 80.0);

        let cfg = SimConfig::paper_baseline().with_extra_latency(200);
        assert_eq!(cfg.pools[0].extra_latency, 200);
        assert_eq!(cfg.pools[1].extra_latency, 300);

        let cfg = SimConfig::paper_baseline().with_co_bandwidth(Bandwidth::from_gbps(160.0));
        assert_eq!(cfg.pools[1].bandwidth.gbps(), 160.0);
    }

    #[test]
    fn dram_timing_latencies() {
        let t = DramTiming::paper_gddr5();
        assert_eq!(t.hit_latency(), 48);
        assert_eq!(t.miss_latency(), 144);
        assert!(t.rc >= t.rcd + t.rp, "row cycle covers activate+precharge");
    }
}
