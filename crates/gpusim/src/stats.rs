//! Simulation results.

use std::collections::HashMap;

use hmtypes::{Bandwidth, MemKind, PageNum};

/// Per-pool traffic and timing summary.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolReport {
    /// Pool name from the config.
    pub name: String,
    /// Pool kind.
    pub kind: MemKind,
    /// Bytes read from DRAM in this pool.
    pub bytes_read: u64,
    /// Bytes written to DRAM in this pool.
    pub bytes_written: u64,
    /// Row-buffer hit rate across the pool's channels.
    pub row_hit_rate: f64,
    /// Sum of channel data-bus busy cycles.
    pub bus_busy_cycles: f64,
    /// DRAM access energy spent in this pool, in joules.
    pub energy_joules: f64,
}

impl PoolReport {
    /// Total DRAM traffic for this pool.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

impl SimReport {
    /// Total DRAM access energy across pools, in joules.
    pub fn dram_energy_joules(&self) -> f64 {
        self.pools.iter().map(|p| p.energy_joules).sum()
    }

    /// Energy-delay product (joules x seconds) at `sm_clock_ghz` — the
    /// combined efficiency metric for placement-policy comparisons.
    pub fn energy_delay_product(&self, sm_clock_ghz: f64) -> f64 {
        self.dram_energy_joules() * (self.cycles as f64 / (sm_clock_ghz * 1e9))
    }
}

/// What the online migration engine did during one run: decision
/// counters plus the DRAM and translation cost the simulator charged
/// for them. Present in [`SimReport::migration`] only when a real
/// [`PageMigrator`](crate::migrate::PageMigrator) was attached.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MigrationReport {
    /// Pages promoted into the bandwidth-optimized zone.
    pub pages_promoted: u64,
    /// Pages demoted by the cold threshold.
    pub pages_demoted: u64,
    /// Pages evicted to make room for promotions.
    pub pages_evicted: u64,
    /// Epoch boundaries processed.
    pub epochs: u64,
    /// Bytes of copy traffic charged to DRAM (reads + writes).
    pub copy_bytes: u64,
    /// DRAM data-bus cycles occupied by copy bursts.
    pub copy_cycles: f64,
    /// Cycles accesses stalled on freshly rewritten mappings.
    pub remap_stall_cycles: u64,
}

impl MigrationReport {
    /// Total pages physically moved.
    pub fn pages_migrated(&self) -> u64 {
        self.pages_promoted + self.pages_demoted + self.pages_evicted
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Cycles from start to the last retired event.
    pub cycles: u64,
    /// `false` if the run aborted at the configured cycle limit.
    pub completed: bool,
    /// Warp memory operations issued.
    pub mem_ops: u64,
    /// L1 (hits, misses) summed over SMs.
    pub l1: (u64, u64),
    /// L2 (hits, misses) summed over slices.
    pub l2: (u64, u64),
    /// Requests NACKed because an L2 slice's MSHRs were full.
    pub mshr_stalls: u64,
    /// Number of warps that ran to retirement.
    pub retired_warps: u32,
    /// Per-pool traffic.
    pub pools: Vec<PoolReport>,
    /// DRAM accesses per *virtual* page (paper Fig. 6 counts accesses
    /// "after being filtered by on-chip caches"). Present only when page
    /// profiling was enabled.
    pub page_accesses: Option<HashMap<PageNum, u64>>,
    /// Online migration activity and cost. Present only when a real
    /// migrator drove the run (the `MIGRATE` policy); `None` otherwise.
    pub migration: Option<MigrationReport>,
    /// What a sampled fast-forward run extrapolated. Always present for
    /// [`Fidelity::Sampled`](crate::Fidelity::Sampled) runs and always
    /// `None` for full-fidelity runs, which keeps their serialized
    /// reports byte-identical to the pre-sampling fixtures.
    pub estimated: Option<crate::sampled::EstimateReport>,
}

impl SimReport {
    /// Total DRAM bytes moved across all pools.
    pub fn dram_bytes(&self) -> u64 {
        self.pools.iter().map(PoolReport::bytes_total).sum()
    }

    /// Fraction of DRAM traffic served by pool `idx` (0 when idle).
    pub fn pool_traffic_fraction(&self, idx: usize) -> f64 {
        let total = self.dram_bytes();
        if total == 0 {
            0.0
        } else {
            self.pools[idx].bytes_total() as f64 / total as f64
        }
    }

    /// Achieved aggregate DRAM bandwidth over the run at `sm_clock_ghz`.
    pub fn achieved_bandwidth(&self, sm_clock_ghz: f64) -> Bandwidth {
        if self.cycles == 0 {
            return Bandwidth::ZERO;
        }
        let seconds = self.cycles as f64 / (sm_clock_ghz * 1e9);
        Bandwidth::from_bytes_per_sec(self.dram_bytes() as f64 / seconds)
    }

    /// L1 hit rate in `[0, 1]`.
    pub fn l1_hit_rate(&self) -> f64 {
        ratio(self.l1)
    }

    /// L2 hit rate in `[0, 1]`.
    pub fn l2_hit_rate(&self) -> f64 {
        ratio(self.l2)
    }

    /// Relative performance vs a baseline run of the same work:
    /// `baseline.cycles / self.cycles` (higher is better).
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        baseline.cycles as f64 / self.cycles as f64
    }
}

fn ratio((hits, misses): (u64, u64)) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            cycles: 1400, // 1 microsecond at 1.4 GHz
            completed: true,
            mem_ops: 100,
            l1: (50, 50),
            l2: (10, 40),
            mshr_stalls: 0,
            retired_warps: 32,
            pools: vec![
                PoolReport {
                    name: "GDDR5".into(),
                    kind: MemKind::BandwidthOptimized,
                    bytes_read: 7000,
                    bytes_written: 0,
                    row_hit_rate: 0.9,
                    bus_busy_cycles: 100.0,
                    energy_joules: 2e-6,
                },
                PoolReport {
                    name: "DDR4".into(),
                    kind: MemKind::CapacityOptimized,
                    bytes_read: 3000,
                    bytes_written: 0,
                    row_hit_rate: 0.8,
                    bus_busy_cycles: 100.0,
                    energy_joules: 1e-6,
                },
            ],
            page_accesses: None,
            migration: None,
            estimated: None,
        }
    }

    #[test]
    fn traffic_fractions() {
        let r = report();
        assert_eq!(r.dram_bytes(), 10_000);
        assert!((r.pool_traffic_fraction(0) - 0.7).abs() < 1e-12);
        assert!((r.pool_traffic_fraction(1) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn achieved_bandwidth_math() {
        let r = report();
        // 10 kB in 1 us = 10 GB/s.
        assert!((r.achieved_bandwidth(1.4).gbps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn hit_rates() {
        let r = report();
        assert!((r.l1_hit_rate() - 0.5).abs() < 1e-12);
        assert!((r.l2_hit_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn speedup() {
        let fast = SimReport {
            cycles: 700,
            ..report()
        };
        let slow = report();
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn energy_totals_and_edp() {
        let r = report();
        assert!((r.dram_energy_joules() - 3e-6).abs() < 1e-18);
        // 1400 cycles at 1.4 GHz = 1 us -> EDP = 3e-6 * 1e-6.
        assert!((r.energy_delay_product(1.4) - 3e-12).abs() < 1e-20);
    }

    #[test]
    fn zero_cycles_bandwidth_is_zero() {
        let r = SimReport {
            cycles: 0,
            ..report()
        };
        assert_eq!(r.achieved_bandwidth(1.4), Bandwidth::ZERO);
    }
}
