//! The event-driven GPU memory-system simulator.
//!
//! One [`Simulator`] run executes a [`WarpProgram`] on the configured GPU:
//! warps issue compute and memory operations; loads traverse per-SM L1s,
//! the interconnect (with per-pool extra latency), memory-side L2 slices
//! with finite MSHRs, and banked FR-FCFS DRAM channels. Stores are
//! write-through / no-allocate at L1 and do not block the issuing warp.
//!
//! Model notes (kept deliberately narrow — see `DESIGN.md`):
//!
//! * Warp instruction semantics are not modeled; the program supplies a
//!   per-warp stream of `Compute(cycles)` / `Mem` operations.
//! * A warp may have up to [`WarpProgram::mem_level_parallelism`] loads
//!   outstanding before it stalls — this is what makes most GPU workloads
//!   latency-tolerant (paper Fig. 2b) while MSHR or bandwidth exhaustion
//!   still bites.
//! * L2 slices are memory-side (one per DRAM channel, as in Table 1), so
//!   placement decides which slice and channel serve a page. L2 lines are
//!   allocated when their DRAM fill completes, never at probe time.

use hmtypes::{AccessKind, VirtAddr, LINE_SIZE, PAGE_SIZE};

use crate::cache::SetAssocCache;
use crate::config::SimConfig;
use crate::dram::DramChannel;
use crate::engine::Calendar;
use crate::flat::{PageCounter, WaiterMap};
use crate::migrate::{NullMigrator, PageMigrator};
use crate::observe::{NullObserver, Observer};
use crate::request::{AddressTranslator, WarpId, WarpOp, WarpProgram};
use crate::stats::{MigrationReport, PoolReport, SimReport};

/// Virtual-line index → virtual page (32 lines per 4 kB page).
const LINES_PER_PAGE: u64 = (PAGE_SIZE / LINE_SIZE) as u64;

/// Slice indices are `u16` so [`Event`] stays within 24 bytes; the
/// calendar moves millions of these per run. `Simulator::new` asserts
/// the config fits.
#[derive(Debug, Clone, Copy)]
enum Event {
    WarpReady(WarpId),
    L2Arrive {
        vline: u64,
        pline: u64,
        slice: u16,
        sm: u16,
        read: bool,
    },
    DramTick {
        slice: u16,
    },
    L2Fill {
        pline: u64,
        slice: u16,
    },
    SmReceive {
        vline: u64,
        sm: u16,
    },
    /// An online-migration epoch boundary (only scheduled when a real
    /// [`PageMigrator`] is attached).
    MigrationEpoch,
}

const _: () = assert!(std::mem::size_of::<Event>() <= 24, "Event grew");

#[derive(Debug, Clone, Copy, Default)]
struct WarpState {
    outstanding: u32,
    waiting: bool,
    retired: bool,
}

#[derive(Debug)]
struct SmState {
    l1: SetAssocCache,
    /// Outstanding L1 misses by virtual line → warp slots to wake.
    pending: WaiterMap<u32>,
}

#[derive(Debug)]
struct L2Slice {
    cache: SetAssocCache,
    /// Outstanding DRAM fills by physical line → (sm, vline) waiters.
    mshr: WaiterMap<(u16, u64)>,
    /// Reads blocked on MSHR exhaustion, drained as fills free entries
    /// (credit-based flow control rather than NACK-and-retry polling).
    waitq: std::collections::VecDeque<(u64, u64, u16)>,
    pool: usize,
}

/// The simulator; construct with [`Simulator::new`], then call
/// [`Simulator::run`].
///
/// The third type parameter is the attached [`Observer`]; it defaults to
/// [`NullObserver`], whose hooks are empty `ENABLED = false` no-ops, so
/// an unobserved simulator pays nothing for the probe layer. Attach a
/// real observer with [`Simulator::with_observer`] and retrieve it with
/// [`Simulator::run_observed`].
///
/// The fourth type parameter is the attached
/// [`PageMigrator`](crate::migrate::PageMigrator), defaulting to the
/// equally free [`NullMigrator`]; attach a real engine with
/// [`Simulator::with_migrator`] to run epoch-based online page
/// migration whose copies occupy real DRAM channel bandwidth.
///
/// # Examples
///
/// ```
/// use gpusim::{FixedPoolTranslator, SimConfig, Simulator, StreamKernel};
///
/// let cfg = SimConfig::paper_baseline();
/// // A tiny streaming kernel entirely in the BO pool.
/// let program = StreamKernel::new(&cfg, 64, 1 << 20);
/// let report = Simulator::new(cfg, FixedPoolTranslator::new(0), program).run();
/// assert!(report.completed);
/// assert!(report.cycles > 0);
/// ```
///
/// Sampling a time-series from the same run:
///
/// ```
/// use gpusim::{FixedPoolTranslator, IntervalSampler, SimConfig, Simulator, StreamKernel};
///
/// let cfg = SimConfig::paper_baseline();
/// let pools = cfg.pools.len();
/// let program = StreamKernel::new(&cfg, 64, 1 << 20);
/// let (report, sampler) = Simulator::new(cfg, FixedPoolTranslator::new(0), program)
///     .with_observer(IntervalSampler::new(1000, pools))
///     .run_observed();
/// let sampled: u64 = sampler.reports().iter().map(|i| i.mem_ops).sum();
/// assert_eq!(sampled, report.mem_ops);
/// ```
#[derive(Debug)]
pub struct Simulator<T, P, O = NullObserver, M = NullMigrator> {
    cfg: SimConfig,
    translator: T,
    program: P,
    warps_per_sm: u32,
    mlp: u32,

    cal: Calendar<Event>,
    sms: Vec<SmState>,
    warps: Vec<WarpState>,
    slices: Vec<L2Slice>,
    chans: Vec<DramChannel>,
    /// First slice/channel index of each pool.
    pool_offset: Vec<usize>,

    mem_ops: u64,
    l2_hits: u64,
    l2_misses: u64,
    mshr_stalls: u64,
    retired: u32,
    bytes_read: Vec<u64>,
    bytes_written: Vec<u64>,
    page_accesses: Option<PageCounter>,
    /// Drain buffers for [`WaiterMap::remove_into`]; the swap keeps the
    /// same allocations circulating for the whole run.
    pending_scratch: Vec<u32>,
    mshr_scratch: Vec<(u16, u64)>,
    obs: O,
    mig: M,
    /// Copy traffic charged for migrations (bytes on the DRAM buses).
    copy_bytes: u64,
    /// DRAM data-bus cycles occupied by migration copy bursts.
    copy_cycles: f64,
    /// Cycles accesses stalled on freshly rewritten mappings.
    remap_stall_cycles: u64,
}

impl<T: AddressTranslator, P: WarpProgram> Simulator<T, P> {
    /// Creates a simulator for one program run.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SimConfig::validate`] or the program asks
    /// for zero warps.
    pub fn new(cfg: SimConfig, translator: T, program: P) -> Self {
        cfg.validate();
        let warps_per_sm = program.warps_per_sm().min(cfg.max_warps_per_sm);
        assert!(
            warps_per_sm > 0,
            "program must use at least one warp per SM"
        );
        let mlp = program.mem_level_parallelism().max(1);

        // Worst-case distinct pending lines per SM: every warp slot at
        // its full memory-level parallelism.
        let pending_keys = (warps_per_sm * mlp) as usize;
        let sms = (0..cfg.num_sms)
            .map(|_| SmState {
                l1: SetAssocCache::new(cfg.l1),
                pending: WaiterMap::with_key_capacity(pending_keys),
            })
            .collect();

        let mut slices = Vec::new();
        let mut chans = Vec::new();
        let mut pool_offset = Vec::new();
        for (p, pool) in cfg.pools.iter().enumerate() {
            pool_offset.push(slices.len());
            for _ in 0..pool.channels {
                slices.push(L2Slice {
                    cache: SetAssocCache::new(cfg.l2),
                    // MSHR occupancy is capped at l2_mshrs keys.
                    mshr: WaiterMap::with_key_capacity(cfg.l2_mshrs),
                    waitq: std::collections::VecDeque::new(),
                    pool: p,
                });
                chans.push(DramChannel::new(pool, cfg.sm_clock_ghz));
            }
        }
        assert!(
            slices.len() <= usize::from(u16::MAX),
            "slice indices are u16 in Event"
        );

        let total_warps = (cfg.num_sms * warps_per_sm) as usize;
        let num_pools = cfg.pools.len();
        Simulator {
            cfg,
            translator,
            program,
            warps_per_sm,
            mlp,
            cal: Calendar::new(),
            sms,
            warps: vec![WarpState::default(); total_warps],
            slices,
            chans,
            pool_offset,
            mem_ops: 0,
            l2_hits: 0,
            l2_misses: 0,
            mshr_stalls: 0,
            retired: 0,
            bytes_read: vec![0; num_pools],
            bytes_written: vec![0; num_pools],
            page_accesses: None,
            pending_scratch: Vec::new(),
            mshr_scratch: Vec::new(),
            obs: NullObserver,
            mig: NullMigrator,
            copy_bytes: 0,
            copy_cycles: 0.0,
            remap_stall_cycles: 0,
        }
    }
}

impl<T: AddressTranslator, P: WarpProgram, O: Observer, M: PageMigrator> Simulator<T, P, O, M> {
    /// Enables per-virtual-page DRAM access counting (paper Fig. 6/7
    /// profiling: accesses counted after cache filtering).
    pub fn with_page_profiling(mut self) -> Self {
        self.page_accesses = Some(PageCounter::new());
        self
    }

    /// Attaches `obs`, replacing the current observer. The typical flow
    /// is `Simulator::new(..).with_observer(probe).run_observed()`.
    pub fn with_observer<O2: Observer>(self, obs: O2) -> Simulator<T, P, O2, M> {
        Simulator {
            cfg: self.cfg,
            translator: self.translator,
            program: self.program,
            warps_per_sm: self.warps_per_sm,
            mlp: self.mlp,
            cal: self.cal,
            sms: self.sms,
            warps: self.warps,
            slices: self.slices,
            chans: self.chans,
            pool_offset: self.pool_offset,
            mem_ops: self.mem_ops,
            l2_hits: self.l2_hits,
            l2_misses: self.l2_misses,
            mshr_stalls: self.mshr_stalls,
            retired: self.retired,
            bytes_read: self.bytes_read,
            bytes_written: self.bytes_written,
            page_accesses: self.page_accesses,
            pending_scratch: self.pending_scratch,
            mshr_scratch: self.mshr_scratch,
            obs,
            mig: self.mig,
            copy_bytes: self.copy_bytes,
            copy_cycles: self.copy_cycles,
            remap_stall_cycles: self.remap_stall_cycles,
        }
    }

    /// Attaches `mig`, replacing the current migrator — this is how the
    /// `MIGRATE` policy plugs its engine into the run.
    pub fn with_migrator<M2: PageMigrator>(self, mig: M2) -> Simulator<T, P, O, M2> {
        Simulator {
            cfg: self.cfg,
            translator: self.translator,
            program: self.program,
            warps_per_sm: self.warps_per_sm,
            mlp: self.mlp,
            cal: self.cal,
            sms: self.sms,
            warps: self.warps,
            slices: self.slices,
            chans: self.chans,
            pool_offset: self.pool_offset,
            mem_ops: self.mem_ops,
            l2_hits: self.l2_hits,
            l2_misses: self.l2_misses,
            mshr_stalls: self.mshr_stalls,
            retired: self.retired,
            bytes_read: self.bytes_read,
            bytes_written: self.bytes_written,
            page_accesses: self.page_accesses,
            pending_scratch: self.pending_scratch,
            mshr_scratch: self.mshr_scratch,
            obs: self.obs,
            mig,
            copy_bytes: self.copy_bytes,
            copy_cycles: self.copy_cycles,
            remap_stall_cycles: self.remap_stall_cycles,
        }
    }

    /// Runs the program to completion (or the cycle limit) and reports.
    pub fn run(self) -> SimReport {
        self.run_observed().0
    }

    /// Like [`Simulator::run`], but also hands back the observer so its
    /// collected data (interval series, trace events) can be read.
    pub fn run_observed(self) -> (SimReport, O) {
        let (report, obs, _) = self.run_instrumented();
        (report, obs)
    }

    /// Like [`Simulator::run_observed`], additionally reporting engine
    /// throughput counters ([`crate::EngineStats`]) for benchmarking.
    /// The `SimReport` is identical to the other run paths'.
    pub fn run_instrumented(mut self) -> (SimReport, O, crate::EngineStats) {
        for w in 0..self.warps.len() {
            self.cal.schedule(0, Event::WarpReady(WarpId(w as u32)));
        }
        if M::ENABLED {
            self.cal
                .schedule(self.mig.next_epoch(), Event::MigrationEpoch);
        }

        let mut completed = true;
        // Run end time: the last *demand* event's timestamp. Epoch
        // boundary events are bookkeeping, not work — a trailing epoch
        // that decides nothing must not inflate the cycle count (and
        // with the null migrator this is exactly the calendar's clock).
        let mut end = 0;
        while let Some((now, event)) = self.cal.pop() {
            if now > self.cfg.max_cycles {
                completed = false;
                end = now;
                break;
            }
            match event {
                Event::WarpReady(w) => self.warp_ready(now, w),
                Event::L2Arrive {
                    slice,
                    vline,
                    pline,
                    sm,
                    read,
                } => self.l2_arrive(now, slice, vline, pline, sm, read),
                Event::DramTick { slice } => self.dram_tick(now, slice),
                Event::L2Fill { slice, pline } => self.l2_fill(now, slice, pline),
                Event::SmReceive { sm, vline } => self.sm_receive(now, sm, vline),
                Event::MigrationEpoch => {
                    self.migration_epoch(now);
                    continue;
                }
            }
            end = now;
        }

        let cycles = end;
        let mut l1 = (0, 0);
        for sm in &self.sms {
            let (h, m) = sm.l1.stats();
            l1.0 += h;
            l1.1 += m;
        }
        let mut pools = Vec::with_capacity(self.cfg.pools.len());
        for (p, pool) in self.cfg.pools.iter().enumerate() {
            let start = self.pool_offset[p];
            let end = start + pool.channels as usize;
            let mut hits = 0;
            let mut misses = 0;
            let mut busy = 0.0;
            for chan in &self.chans[start..end] {
                let s = chan.stats();
                hits += s.row_hits;
                misses += s.row_misses;
                busy += s.busy_cycles;
            }
            let total = hits + misses;
            let bytes_total = self.bytes_read[p] + self.bytes_written[p];
            pools.push(PoolReport {
                name: pool.name.clone(),
                kind: pool.kind,
                bytes_read: self.bytes_read[p],
                bytes_written: self.bytes_written[p],
                row_hit_rate: if total == 0 {
                    0.0
                } else {
                    hits as f64 / total as f64
                },
                bus_busy_cycles: busy,
                energy_joules: bytes_total as f64 * 8.0 * pool.pj_per_bit * 1e-12,
            });
        }

        if O::ENABLED {
            self.obs.run_finished(cycles);
        }
        let migration = if M::ENABLED {
            let c = self.mig.counters();
            Some(MigrationReport {
                pages_promoted: c.promoted,
                pages_demoted: c.demoted,
                pages_evicted: c.evicted,
                epochs: c.epochs,
                copy_bytes: self.copy_bytes,
                copy_cycles: self.copy_cycles,
                remap_stall_cycles: self.remap_stall_cycles,
            })
        } else {
            None
        };
        let report = SimReport {
            cycles,
            completed,
            mem_ops: self.mem_ops,
            l1,
            l2: (self.l2_hits, self.l2_misses),
            mshr_stalls: self.mshr_stalls,
            retired_warps: self.retired,
            pools,
            page_accesses: self.page_accesses.map(PageCounter::into_map),
            migration,
            estimated: None,
        };
        let stats = crate::EngineStats {
            events_processed: self.cal.pops(),
        };
        (report, self.obs, stats)
    }

    fn split(&self, w: WarpId) -> (u16, u32) {
        let sm = w.0 / self.warps_per_sm;
        let slot = w.0 % self.warps_per_sm;
        (sm as u16, slot)
    }

    fn warp_ready(&mut self, now: u64, w: WarpId) {
        if self.warps[w.index()].retired {
            return;
        }
        match self.program.next_op(w) {
            None => {
                self.warps[w.index()].retired = true;
                self.retired += 1;
                if O::ENABLED {
                    self.obs.warp_retired(now);
                }
            }
            Some(WarpOp::Compute(c)) => {
                self.cal
                    .schedule(now + u64::from(c.max(1)), Event::WarpReady(w));
            }
            Some(WarpOp::Mem { addr, kind }) => {
                self.mem_ops += 1;
                if O::ENABLED {
                    self.obs.mem_issue(now, kind == AccessKind::Write);
                }
                match kind {
                    AccessKind::Write => self.issue_write(now, w, addr),
                    AccessKind::Read => self.issue_read(now, w, addr),
                }
            }
        }
    }

    /// Routes a physical line to its (slice, channel-local line) pair.
    ///
    /// Channels interleave at DRAM-row granularity (16 lines = 2 kB), not
    /// per line: this keeps a streaming warp's consecutive lines in one
    /// row of one channel (row-buffer locality) while still spreading
    /// pages across all channels — the address mapping GPUs use.
    fn route(&self, pool: usize, pline: u64) -> (u16, u64) {
        let channels = u64::from(self.cfg.pools[pool].channels);
        let stripe = pline / crate::dram::LINES_PER_ROW;
        let chan = stripe % channels;
        let local_line =
            (stripe / channels) * crate::dram::LINES_PER_ROW + pline % crate::dram::LINES_PER_ROW;
        ((self.pool_offset[pool] as u64 + chan) as u16, local_line)
    }

    /// Channel-local line back to the physical line (inverse of `route`).
    fn unroute(&self, slice: usize, local_line: u64) -> u64 {
        let pool = self.slices[slice].pool;
        let channels = u64::from(self.cfg.pools[pool].channels);
        let chan = (slice - self.pool_offset[pool]) as u64;
        let stripe_local = local_line / crate::dram::LINES_PER_ROW;
        let off = local_line % crate::dram::LINES_PER_ROW;
        (stripe_local * channels + chan) * crate::dram::LINES_PER_ROW + off
    }

    /// Request-path latency from SM to an L2 slice of `pool`.
    fn request_latency(&self, pool: usize) -> u64 {
        self.cfg.l1_latency + self.cfg.base_mem_latency / 2 + self.cfg.pools[pool].extra_latency
    }

    /// Response-path latency from an L2 slice back to the SM.
    fn response_latency(&self) -> u64 {
        self.cfg.base_mem_latency / 2
    }

    fn issue_write(&mut self, now: u64, w: WarpId, addr: VirtAddr) {
        let (sm, _) = self.split(w);
        let vline = addr.line_index();
        // Write-through, no-allocate L1: update the line if present.
        let l1_hit = self.sms[sm as usize].l1.probe(vline);
        if O::ENABLED {
            self.obs.l1_access(now, l1_hit);
        }
        let placement = self.translator.translate(addr);
        if O::ENABLED && placement.faulted {
            self.obs.page_placed(now, placement.pool);
        }
        let pline = placement.phys.line_index();
        let (slice, _) = self.route(placement.pool, pline);
        let mut latency = self.request_latency(placement.pool);
        if M::ENABLED {
            let stall = self.mig.remap_stall(now, vline / LINES_PER_PAGE);
            self.remap_stall_cycles += stall;
            latency += stall;
        }
        self.cal.schedule_in(
            latency,
            Event::L2Arrive {
                vline,
                pline,
                slice,
                sm,
                read: false,
            },
        );
        // Stores are posted: the warp continues immediately.
        self.cal.schedule_in(1, Event::WarpReady(w));
    }

    fn issue_read(&mut self, now: u64, w: WarpId, addr: VirtAddr) {
        let (sm, slot) = self.split(w);
        let vline = addr.line_index();
        let l1_hit = self.sms[sm as usize].l1.access(vline).is_hit();
        if O::ENABLED {
            self.obs.l1_access(now, l1_hit);
        }
        if l1_hit {
            self.cal
                .schedule_in(self.cfg.l1_latency, Event::WarpReady(w));
            return;
        }
        let warp = &mut self.warps[w.index()];
        warp.outstanding += 1;
        let continue_issuing = warp.outstanding < self.mlp;
        if !continue_issuing {
            warp.waiting = true;
        }

        let first_for_line = self.sms[sm as usize].pending.push(vline, slot);
        if first_for_line {
            let placement = self.translator.translate(addr);
            if O::ENABLED {
                if placement.faulted {
                    self.obs.page_placed(now, placement.pool);
                }
                self.obs.request_depart(now, sm, vline, placement.pool);
            }
            let pline = placement.phys.line_index();
            let (slice, _) = self.route(placement.pool, pline);
            let mut latency = self.request_latency(placement.pool);
            if M::ENABLED {
                let stall = self.mig.remap_stall(now, vline / LINES_PER_PAGE);
                self.remap_stall_cycles += stall;
                latency += stall;
            }
            self.cal.schedule_in(
                latency,
                Event::L2Arrive {
                    vline,
                    pline,
                    slice,
                    sm,
                    read: true,
                },
            );
        }
        if continue_issuing {
            self.cal.schedule_in(1, Event::WarpReady(w));
        }
    }

    /// Counts one post-cache DRAM access against its virtual page, for
    /// both the profiler and the migration engine's hotness tracker
    /// (the engine sees exactly the stream the profiler counts).
    fn profile_page(&mut self, now: u64, vline: u64) {
        if let Some(counter) = self.page_accesses.as_mut() {
            counter.bump(vline / LINES_PER_PAGE);
        }
        if M::ENABLED {
            self.mig.record_access(now, vline / LINES_PER_PAGE);
        }
    }

    /// One epoch boundary: ask the engine for its decisions and charge
    /// every page copy as line bursts on the source and destination
    /// DRAM channels — migration bandwidth is demand bandwidth.
    fn migration_epoch(&mut self, now: u64) {
        let copies = self.mig.epoch(now);
        for c in &copies {
            for i in 0..LINES_PER_PAGE {
                let (src_slice, src_local) = self.route(c.src_pool, c.src_line + i);
                self.dram_enqueue(now, src_slice, src_local, false);
                self.bytes_read[c.src_pool] += LINE_SIZE as u64;
                self.copy_cycles += self.chans[usize::from(src_slice)].burst_cycles();
                if O::ENABLED {
                    self.obs
                        .dram_traffic(now, c.src_pool, LINE_SIZE as u64, true);
                }
                let (dst_slice, dst_local) = self.route(c.dst_pool, c.dst_line + i);
                self.dram_enqueue(now, dst_slice, dst_local, false);
                self.bytes_written[c.dst_pool] += LINE_SIZE as u64;
                self.copy_cycles += self.chans[usize::from(dst_slice)].burst_cycles();
                if O::ENABLED {
                    self.obs
                        .dram_traffic(now, c.dst_pool, LINE_SIZE as u64, false);
                }
            }
            self.copy_bytes += 2 * PAGE_SIZE as u64;
        }
        // Keep ticking epochs only while warps are still running; once
        // the last warp retires there is nothing left to migrate for.
        if self.retired < self.warps.len() as u32 {
            self.cal
                .schedule(self.mig.next_epoch(), Event::MigrationEpoch);
        }
    }

    /// Enqueues a DRAM access on `slice`'s channel, kicking it if idle.
    fn dram_enqueue(&mut self, now: u64, slice: u16, local_line: u64, read: bool) {
        if let Some(tick_at) = self.chans[usize::from(slice)].enqueue(now, local_line, read) {
            self.cal.schedule(tick_at, Event::DramTick { slice });
        }
    }

    fn l2_arrive(&mut self, now: u64, slice: u16, vline: u64, pline: u64, sm: u16, read: bool) {
        let s = usize::from(slice);
        let pool = self.slices[s].pool;
        let (_, local_line) = self.route(pool, pline);

        if !read {
            // Memory-side L2 write-allocate; a miss also writes DRAM.
            let hit = self.slices[s].cache.access(pline).is_hit();
            if O::ENABLED {
                self.obs.l2_access(now, u32::from(slice), pool, hit);
            }
            if hit {
                self.l2_hits += 1;
            } else {
                self.l2_misses += 1;
                self.dram_enqueue(now + self.cfg.l2_latency, slice, local_line, false);
                self.bytes_written[pool] += LINE_SIZE as u64;
                if O::ENABLED {
                    self.obs.dram_traffic(now, pool, LINE_SIZE as u64, false);
                }
                self.profile_page(now, vline);
            }
            return;
        }

        // Merge with an in-flight fill before probing the tag array: the
        // data is still in DRAM even though the fill is scheduled.
        if let Some(waiters) = self.slices[s].mshr.get_mut(pline) {
            waiters.push((sm, vline));
            self.l2_misses += 1;
            if O::ENABLED {
                self.obs.l2_access(now, u32::from(slice), pool, false);
            }
            return;
        }
        if self.slices[s].cache.probe(pline) {
            self.l2_hits += 1;
            if O::ENABLED {
                self.obs.l2_access(now, u32::from(slice), pool, true);
            }
            let at = now + self.cfg.l2_latency + self.response_latency();
            self.cal.schedule(at, Event::SmReceive { vline, sm });
            return;
        }
        self.l2_misses += 1;
        if O::ENABLED {
            self.obs.l2_access(now, u32::from(slice), pool, false);
        }
        if self.slices[s].mshr.len() >= self.cfg.l2_mshrs {
            // All MSHRs busy: hold the request at the slice and drain it
            // when a fill frees an entry (models the back-pressure the
            // paper's §3.2.1 MSHR discussion is about).
            self.mshr_stalls += 1;
            if O::ENABLED {
                self.obs.mshr_nack(now, u32::from(slice), pool);
            }
            self.slices[s].waitq.push_back((vline, pline, sm));
            return;
        }
        let newly_allocated = self.slices[s].mshr.push(pline, (sm, vline));
        debug_assert!(newly_allocated, "merge path handled existing entries");
        if O::ENABLED {
            let occupancy = self.slices[s].mshr.len();
            self.obs.mshr_occupancy(now, occupancy);
        }
        self.dram_enqueue(now + self.cfg.l2_latency, slice, local_line, true);
        self.bytes_read[pool] += LINE_SIZE as u64;
        if O::ENABLED {
            self.obs.dram_traffic(now, pool, LINE_SIZE as u64, true);
        }
        self.profile_page(now, vline);
    }

    fn dram_tick(&mut self, now: u64, slice: u16) {
        let s = usize::from(slice);
        let Some(served) = self.chans[s].tick() else {
            return;
        };
        if O::ENABLED {
            let pool = self.slices[s].pool;
            let burst = self.chans[s].burst_cycles();
            self.obs
                .dram_service(now, u32::from(slice), pool, served.read, served.done, burst);
        }
        if served.read {
            let pline = self.unroute(s, served.line);
            self.cal
                .schedule(served.done, Event::L2Fill { pline, slice });
        }
        if let Some(next) = served.next_tick {
            self.cal.schedule(next, Event::DramTick { slice });
        }
    }

    fn l2_fill(&mut self, now: u64, slice: u16, pline: u64) {
        let s = usize::from(slice);
        // Install the line now that its data arrived.
        let _ = self.slices[s].cache.access(pline);
        let mut waiters = std::mem::take(&mut self.mshr_scratch);
        let found = self.slices[s].mshr.remove_into(pline, &mut waiters);
        assert!(found, "fill without mshr entry");
        let at = now + self.response_latency();
        for &(sm, vline) in &waiters {
            self.cal.schedule(at, Event::SmReceive { vline, sm });
        }
        self.mshr_scratch = waiters;
        // A fill freed an MSHR: admit held requests while entries last.
        // Re-running the arrival path re-checks merge and tag state,
        // which may have changed while the request was held.
        while self.slices[s].mshr.len() < self.cfg.l2_mshrs {
            let Some((vline, pline, sm)) = self.slices[s].waitq.pop_front() else {
                break;
            };
            self.l2_arrive(now, slice, vline, pline, sm, true);
        }
    }

    fn sm_receive(&mut self, now: u64, sm: u16, vline: u64) {
        if O::ENABLED {
            self.obs.request_retire(now, sm, vline);
        }
        let mut slots = std::mem::take(&mut self.pending_scratch);
        self.sms[sm as usize].pending.remove_into(vline, &mut slots);
        for &slot in &slots {
            let w = WarpId(u32::from(sm) * self.warps_per_sm + slot);
            let warp = &mut self.warps[w.index()];
            warp.outstanding -= 1;
            if warp.waiting {
                warp.waiting = false;
                self.cal.schedule_in(1, Event::WarpReady(w));
            }
        }
        self.pending_scratch = slots;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::StreamKernel;
    use crate::request::FixedPoolTranslator;
    use hmtypes::Bandwidth;

    fn small_cfg() -> SimConfig {
        let mut cfg = SimConfig::paper_baseline();
        cfg.num_sms = 4;
        cfg
    }

    #[test]
    fn empty_program_finishes_instantly() {
        struct Nothing;
        impl WarpProgram for Nothing {
            fn warps_per_sm(&self) -> u32 {
                1
            }
            fn next_op(&mut self, _: WarpId) -> Option<WarpOp> {
                None
            }
        }
        let r = Simulator::new(small_cfg(), FixedPoolTranslator::new(0), Nothing).run();
        assert!(r.completed);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.retired_warps, 4);
        assert_eq!(r.mem_ops, 0);
    }

    #[test]
    fn stream_kernel_moves_expected_bytes() {
        let cfg = small_cfg();
        let bytes = 1 << 20;
        let program = StreamKernel::new(&cfg, 8, bytes);
        let r = Simulator::new(cfg, FixedPoolTranslator::new(0), program).run();
        assert!(r.completed);
        // Streaming reads each line once; no reuse -> dram reads == footprint.
        assert_eq!(r.pools[0].bytes_read, bytes);
        assert_eq!(r.pools[1].bytes_total(), 0);
        assert_eq!(r.mem_ops, bytes / LINE_SIZE as u64);
    }

    #[test]
    fn bandwidth_bound_stream_approaches_pool_bandwidth() {
        let cfg = small_cfg();
        let ghz = cfg.sm_clock_ghz;
        let program = StreamKernel::new(&cfg, 48, 8 << 20).with_mlp(8);
        let r = Simulator::new(cfg, FixedPoolTranslator::new(0), program).run();
        let achieved = r.achieved_bandwidth(ghz).gbps();
        assert!(
            achieved > 140.0,
            "a saturating stream should approach 200 GB/s, got {achieved:.1}"
        );
        assert!(
            achieved <= 205.0,
            "cannot exceed pool bandwidth, got {achieved:.1}"
        );
    }

    #[test]
    fn remote_pool_is_slower_for_latency_bound_work() {
        // One warp per SM, MLP 1: pure latency sensitivity.
        let mk = |pool| {
            let program = StreamKernel::new(&small_cfg(), 1, 64 * 1024).with_mlp(1);
            Simulator::new(small_cfg(), FixedPoolTranslator::new(pool), program).run()
        };
        let local = mk(0);
        let remote = mk(1);
        assert!(
            remote.cycles > local.cycles + 1000,
            "remote {} vs local {}",
            remote.cycles,
            local.cycles
        );
    }

    #[test]
    fn split_traffic_uses_both_pools() {
        let cfg = small_cfg();
        let program = StreamKernel::new(&cfg, 16, 4 << 20);
        let r = Simulator::new(cfg, crate::request::RatioTranslator { co_pct: 30 }, program).run();
        let co_frac = r.pool_traffic_fraction(1);
        assert!((co_frac - 0.30).abs() < 0.05, "got {co_frac}");
    }

    #[test]
    fn page_profiling_counts_dram_accesses() {
        let cfg = small_cfg();
        let bytes = 256 * 1024u64;
        let program = StreamKernel::new(&cfg, 8, bytes);
        let r = Simulator::new(cfg, FixedPoolTranslator::new(0), program)
            .with_page_profiling()
            .run();
        let pages = r.page_accesses.as_ref().unwrap();
        assert_eq!(pages.len() as u64, bytes / PAGE_SIZE as u64);
        let total: u64 = pages.values().sum();
        assert_eq!(total, bytes / LINE_SIZE as u64);
    }

    #[test]
    fn l1_reuse_hits_do_not_touch_dram() {
        // A kernel that re-reads one tiny buffer: after cold misses,
        // everything hits in L1.
        struct HotLoop {
            remaining: Vec<u32>,
        }
        impl WarpProgram for HotLoop {
            fn warps_per_sm(&self) -> u32 {
                1
            }
            fn next_op(&mut self, w: WarpId) -> Option<WarpOp> {
                let r = &mut self.remaining[w.index()];
                if *r == 0 {
                    return None;
                }
                *r -= 1;
                Some(WarpOp::Mem {
                    addr: VirtAddr::new(u64::from(*r % 4) * 128),
                    kind: AccessKind::Read,
                })
            }
        }
        let cfg = small_cfg();
        let program = HotLoop {
            remaining: vec![1000; cfg.num_sms as usize],
        };
        let r = Simulator::new(cfg, FixedPoolTranslator::new(0), program).run();
        assert!(r.l1_hit_rate() > 0.95, "got {}", r.l1_hit_rate());
        // 4 SMs x 4 cold lines = at most 16 DRAM reads.
        assert!(r.pools[0].bytes_read <= 16 * 128);
    }

    #[test]
    fn writes_reach_dram_and_do_not_block() {
        struct Writer {
            remaining: Vec<u64>,
        }
        impl WarpProgram for Writer {
            fn warps_per_sm(&self) -> u32 {
                1
            }
            fn next_op(&mut self, w: WarpId) -> Option<WarpOp> {
                let r = &mut self.remaining[w.index()];
                if *r == 0 {
                    return None;
                }
                *r -= 1;
                Some(WarpOp::Mem {
                    addr: VirtAddr::new((w.index() as u64 * 1024 + *r) * 128),
                    kind: AccessKind::Write,
                })
            }
        }
        let cfg = small_cfg();
        let n = 512u64;
        let program = Writer {
            remaining: vec![n; cfg.num_sms as usize],
        };
        let r = Simulator::new(cfg.clone(), FixedPoolTranslator::new(0), program).run();
        assert!(r.completed);
        assert_eq!(
            r.pools[0].bytes_written,
            n * u64::from(cfg.num_sms) * LINE_SIZE as u64
        );
        // Posted writes: runtime far below n * memory latency.
        assert!(r.cycles < n * 100);
    }

    #[test]
    fn zero_co_bandwidth_pool_rejected_if_used() {
        // A pool with zero bandwidth cannot construct channels.
        let mut cfg = small_cfg();
        cfg.pools[1].bandwidth = Bandwidth::ZERO;
        let program = StreamKernel::new(&cfg, 1, 4096);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Simulator::new(cfg, FixedPoolTranslator::new(0), program)
        }));
        assert!(result.is_err(), "zero-bandwidth channel must be rejected");
    }

    #[test]
    fn mshr_pressure_counts_stalls_but_completes() {
        let mut cfg = small_cfg();
        cfg.l2_mshrs = 2;
        let program = StreamKernel::new(&cfg, 32, 4 << 20);
        let r = Simulator::new(cfg, FixedPoolTranslator::new(0), program).run();
        assert!(r.completed);
        assert!(r.mshr_stalls > 0, "2 MSHRs must backpressure a stream");
        assert_eq!(r.pools[0].bytes_read, 4 << 20);
    }

    #[test]
    fn more_warps_never_slow_down_a_stream() {
        let run = |warps| {
            let cfg = small_cfg();
            let program = StreamKernel::new(&cfg, warps, 2 << 20);
            Simulator::new(cfg, FixedPoolTranslator::new(0), program)
                .run()
                .cycles
        };
        let few = run(2);
        let many = run(32);
        assert!(many <= few, "32 warps ({many}) vs 2 warps ({few})");
    }
}
