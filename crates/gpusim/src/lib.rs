//! # gpusim — an event-driven GPU memory-system simulator
//!
//! This crate is the reproduction's substitute for GPGPU-Sim 3.x in
//! *Page Placement Strategies for GPUs within Heterogeneous Memory
//! Systems* (ASPLOS 2015). It simulates the parts of a GPU that the
//! paper's experiments exercise — the memory system — at cycle
//! granularity:
//!
//! * [`Simulator`] — warps issuing compute/memory operations with
//!   configurable memory-level parallelism (latency tolerance),
//! * per-SM L1 caches and per-channel memory-side L2 slices with finite
//!   MSHRs ([`SetAssocCache`]),
//! * an interconnect with per-pool extra latency, and
//! * banked [`DramChannel`]s whose data buses enforce per-pool peak
//!   bandwidth (Table 1's GDDR5 + DDR4 system via
//!   [`SimConfig::paper_baseline`]).
//!
//! Where pages live — the object of study — is delegated to an
//! [`AddressTranslator`], implemented over the `mempolicy` OS model by
//! the `hetmem` crate.
//!
//! # Examples
//!
//! ```
//! use gpusim::{FixedPoolTranslator, SimConfig, Simulator, StreamKernel};
//!
//! let cfg = SimConfig::paper_baseline();
//! let kernel = StreamKernel::new(&cfg, 16, 4 << 20); // 4 MiB stream
//! let report = Simulator::new(cfg, FixedPoolTranslator::new(0), kernel).run();
//! assert!(report.completed);
//! assert_eq!(report.pools[0].bytes_read, 4 << 20);
//! ```

pub mod cache;
pub mod config;
pub mod dram;
pub mod engine;
pub mod flat;
pub mod kernels;
pub mod migrate;
pub mod observe;
pub mod request;
pub mod sampled;
pub mod sim;
pub mod stats;

pub use cache::{CacheOutcome, SetAssocCache};
pub use config::{CacheConfig, DramTiming, PoolConfig, SimConfig};
pub use dram::{ChannelStats, DramChannel};
pub use engine::EngineStats;
pub use kernels::StreamKernel;
pub use migrate::{MigrationCounters, NullMigrator, PageCopy, PageMigrator};
pub use observe::{
    EventTracer, IntervalPoolReport, IntervalReport, IntervalSampler, NullObserver, Observer,
    ProbeObserver, SimTraceEvent, TraceEventKind,
};
pub use request::{
    AddressTranslator, FixedPoolTranslator, Placement, RatioTranslator, WarpId, WarpOp, WarpProgram,
};
pub use sampled::{run_sampled, EstimateReport, Fidelity, SampleConfig};
pub use sim::Simulator;
pub use stats::{MigrationReport, PoolReport, SimReport};
