//! Property-based tests for the GPU memory-system simulator, on the
//! in-tree `hetmem_harness::props!` kit.

use gpusim::engine::Calendar;
use gpusim::{
    CacheConfig, DramChannel, EventTracer, FixedPoolTranslator, IntervalSampler, ProbeObserver,
    RatioTranslator, SetAssocCache, SimConfig, Simulator, StreamKernel,
};
use hmtypes::LINE_SIZE;

hetmem_harness::props! {
    cases = 32;

    /// The calendar pops events in non-decreasing time order and FIFO
    /// within equal timestamps.
    fn calendar_orders_events(times in hetmem_harness::vec_of(0u64..1000, 1..200)) {
        let mut cal = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(t, (t, i));
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((at, (t, i))) = cal.pop() {
            assert_eq!(at, t);
            if let Some((lt, li)) = last {
                assert!(t > lt || (t == lt && i > li), "ordering violated");
            }
            last = Some((t, i));
        }
    }

    /// Cache stats are consistent and an access immediately after an
    /// access to the same line always hits.
    fn cache_immediate_reaccess_hits(lines in hetmem_harness::vec_of(0u64..4096, 1..500)) {
        let mut c = SetAssocCache::new(CacheConfig::new(64 * 128, 4));
        let mut accesses = 0u64;
        for &l in &lines {
            c.access(l);
            accesses += 1;
            assert!(c.access(l).is_hit(), "immediate re-access of {l} missed");
            accesses += 1;
        }
        let (h, m) = c.stats();
        assert_eq!(h + m, accesses);
        assert!(h >= lines.len() as u64, "every second access hit");
    }

    /// A DRAM channel never exceeds its configured peak bandwidth, and
    /// moves exactly the bytes requested.
    fn dram_never_exceeds_peak(seed in 0u64..5000, n in 16u64..512) {
        let cfg = SimConfig::paper_baseline();
        let mut chan = DramChannel::new(&cfg.pools[0], cfg.sm_clock_ghz);
        let mut rng = hmtypes::SplitMix64::new(seed);
        let accesses: Vec<_> = (0..n)
            .map(|_| (0u64, rng.next_below(1 << 16), rng.next_below(2) == 0))
            .collect();
        let finish = gpusim::dram::drain_channel(&mut chan, &accesses);
        let stats = chan.stats();
        assert_eq!(stats.bytes, n * LINE_SIZE as u64);
        let peak_bpc = LINE_SIZE as f64 / chan.burst_cycles();
        let achieved = stats.bytes as f64 / finish as f64;
        assert!(
            achieved <= peak_bpc * 1.001,
            "achieved {achieved} B/cyc exceeds peak {peak_bpc}"
        );
        assert_eq!(stats.row_hits + stats.row_misses, n);
    }

    /// End-to-end: a streaming run reads exactly its footprint from DRAM,
    /// completes, and splits traffic per the translator's page ratio.
    fn sim_streaming_invariants(kb in 64u64..512, co_pct in 0u8..=100) {
        let mut cfg = SimConfig::paper_baseline();
        cfg.num_sms = 2;
        let bytes = kb * 1024;
        let program = StreamKernel::new(&cfg, 8, bytes);
        let r = Simulator::new(cfg, RatioTranslator { co_pct }, program).run();
        assert!(r.completed);
        assert_eq!(r.dram_bytes(), bytes / 128 * 128);
        let f0 = r.pool_traffic_fraction(0);
        let f1 = r.pool_traffic_fraction(1);
        assert!((f0 + f1 - 1.0).abs() < 1e-9);
        // The modulo translator's split is exactly computable: pages with
        // index % 100 < co_pct are CO, and a uniform stream touches every
        // page's lines equally often.
        let pages = bytes / 4096;
        let co_pages = (0..pages).filter(|p| p % 100 < u64::from(co_pct)).count();
        let expected = co_pages as f64 / pages as f64;
        assert!(
            (f1 - expected).abs() < 0.05,
            "co fraction {f1} vs expected {expected}"
        );
    }

    /// Determinism: identical configuration and program produce identical
    /// reports.
    fn sim_is_deterministic(kb in 64u64..256) {
        let run = || {
            let mut cfg = SimConfig::paper_baseline();
            cfg.num_sms = 2;
            let program = StreamKernel::new(&cfg, 4, kb * 1024);
            Simulator::new(cfg, FixedPoolTranslator::new(0), program).run()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    /// Performance is monotone in bandwidth: doubling BO pool bandwidth
    /// never makes a BO-resident stream slower.
    fn more_bandwidth_never_hurts(kb in 128u64..512) {
        let run = |scale: f64| {
            let mut cfg = SimConfig::paper_baseline().with_bo_bandwidth_scaled(scale);
            cfg.num_sms = 2;
            let program = StreamKernel::new(&cfg, 16, kb * 1024);
            Simulator::new(cfg, FixedPoolTranslator::new(0), program).run().cycles
        };
        assert!(run(2.0) <= run(1.0));
    }
}

hetmem_harness::props! {
    cases = 32;

    /// The interval sampler's counters partition the end-of-run report:
    /// summed over the (contiguous) series they equal every aggregate,
    /// integer counters exactly and bus-busy cycles to float tolerance
    /// (the sampler accumulates them in a different order).
    fn interval_counters_sum_to_report(
        kb in 64u64..512,
        sample in 500u64..5_000,
        co_pct in 0u8..=100
    ) {
        let mut cfg = SimConfig::paper_baseline();
        cfg.num_sms = 2;
        let program = StreamKernel::new(&cfg, 8, kb * 1024);
        let sampler = IntervalSampler::new(sample, cfg.pools.len());
        let (report, obs) = Simulator::new(cfg.clone(), RatioTranslator { co_pct }, program)
            .with_observer(sampler)
            .run_observed();
        let ivs = obs.into_reports();

        // The series is contiguous from interval 0 through the end.
        assert!(!ivs.is_empty());
        for (i, iv) in ivs.iter().enumerate() {
            assert_eq!(iv.index, i as u64);
            assert_eq!(iv.start_cycle, i as u64 * sample);
            assert_eq!(iv.end_cycle, (i as u64 + 1) * sample);
        }
        assert!(ivs.last().unwrap().end_cycle > report.cycles);

        let sum = |f: &dyn Fn(&gpusim::IntervalReport) -> u64| -> u64 {
            ivs.iter().map(f).sum()
        };
        assert_eq!(sum(&|i| i.mem_ops), report.mem_ops);
        assert_eq!(sum(&|i| i.l1_hits), report.l1.0);
        assert_eq!(sum(&|i| i.l1_misses), report.l1.1);
        assert_eq!(sum(&|i| i.l2_hits), report.l2.0);
        assert_eq!(sum(&|i| i.l2_misses), report.l2.1);
        assert_eq!(sum(&|i| i.mshr_stalls), report.mshr_stalls);
        assert_eq!(sum(&|i| i.warps_retired), u64::from(report.retired_warps));
        for (pool, pr) in report.pools.iter().enumerate() {
            let read: u64 = ivs.iter().map(|i| i.pools[pool].bytes_read).sum();
            let written: u64 = ivs.iter().map(|i| i.pools[pool].bytes_written).sum();
            assert_eq!(read, pr.bytes_read, "pool {pool} reads");
            assert_eq!(written, pr.bytes_written, "pool {pool} writes");
            let busy: f64 = ivs.iter().map(|i| i.pools[pool].busy_cycles).sum();
            let tol = pr.bus_busy_cycles.abs() * 1e-9 + 1e-6;
            assert!(
                (busy - pr.bus_busy_cycles).abs() <= tol,
                "pool {pool} busy cycles {busy} vs {}",
                pr.bus_busy_cycles
            );
        }
    }

    /// An observed run reports identically to an unobserved run of the
    /// same program — probes never perturb the simulation.
    fn observation_does_not_perturb(kb in 64u64..256, sample in 100u64..2_000) {
        let mut cfg = SimConfig::paper_baseline();
        cfg.num_sms = 2;
        let plain = Simulator::new(
            cfg.clone(),
            FixedPoolTranslator::new(0),
            StreamKernel::new(&cfg, 4, kb * 1024),
        )
        .run();
        let probe = ProbeObserver::new(
            Some(IntervalSampler::new(sample, cfg.pools.len())),
            Some(EventTracer::new(10_000)),
        );
        let (observed, _) = Simulator::new(
            cfg.clone(),
            FixedPoolTranslator::new(0),
            StreamKernel::new(&cfg, 4, kb * 1024),
        )
        .with_observer(probe)
        .run_observed();
        assert_eq!(plain, observed);
    }
}
