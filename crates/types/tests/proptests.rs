//! Property-based tests for the shared vocabulary types, on the
//! in-tree `hetmem_harness::props!` kit.

use hmtypes::{
    addr::pages_for, Bandwidth, FrameNum, PageNum, Percent, SplitMix64, VirtAddr, PAGE_SIZE,
};

hetmem_harness::props! {
    /// Page/offset decomposition reconstructs the address.
    fn virt_addr_decomposition_roundtrips(raw in 0u64..u64::MAX / 2) {
        let va = VirtAddr::new(raw);
        let rebuilt = va.page().base().offset(va.page_offset());
        assert_eq!(rebuilt, va);
        assert!(va.page_offset() < PAGE_SIZE as u64);
    }

    /// Line alignment is idempotent and never increases the address.
    fn line_alignment_idempotent(raw in 0u64..u64::MAX / 2) {
        let va = VirtAddr::new(raw);
        let aligned = va.line_aligned();
        assert!(aligned.raw() <= raw);
        assert_eq!(aligned.line_aligned(), aligned);
        assert_eq!(aligned.line_index(), va.line_index());
    }

    /// Frame base/index round-trips.
    fn frame_roundtrip(idx in 0u64..(1 << 40)) {
        let f = FrameNum::new(idx);
        assert_eq!(f.base().frame(), f);
        assert_eq!(f.next().index(), idx + 1);
    }

    /// pages_for is the exact ceiling division.
    fn pages_for_is_ceiling(bytes in 0u64..(1 << 50)) {
        let pages = pages_for(bytes);
        assert!(pages * PAGE_SIZE as u64 >= bytes);
        if pages > 0 {
            let prev = (pages - 1) * PAGE_SIZE as u64;
            assert!(prev < bytes);
        }
    }

    /// Bandwidth fractions of a two-pool system sum to one (or zero for
    /// an empty system).
    fn bandwidth_fractions_sum_to_one(a in 0.0f64..5000.0, b in 0.0f64..5000.0) {
        let (ba, bb) = (Bandwidth::from_gbps(a), Bandwidth::from_gbps(b));
        let sum = ba.fraction_of_total(bb) + bb.fraction_of_total(ba);
        if a + b == 0.0 {
            assert_eq!(sum, 0.0);
        } else {
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    /// Percent round-trips through fractions within rounding error.
    fn percent_fraction_roundtrip(v in 0u8..=100) {
        let p = Percent::new(v);
        assert_eq!(Percent::from_fraction(p.as_fraction()), p);
        assert_eq!(p.complement().complement(), p);
    }

    /// The RNG's bounded draw is always in range and roughly uniform in
    /// the aggregate.
    fn rng_bounded_draws(seed in hetmem_harness::any_u64(), bound in 1u64..1000) {
        let mut rng = SplitMix64::new(seed);
        let mut sum = 0u64;
        let n = 2000;
        for _ in 0..n {
            let x = rng.next_below(bound);
            assert!(x < bound);
            sum += x;
        }
        // Mean within 15% of bound/2 (loose; catches gross bias only).
        let mean = sum as f64 / n as f64;
        let expected = (bound as f64 - 1.0) / 2.0;
        assert!(
            (mean - expected).abs() <= expected * 0.15 + 1.0,
            "mean {mean} vs expected {expected}"
        );
    }

    /// PageNum ordering matches base-address ordering.
    fn page_order_matches_address_order(a in 0u64..(1 << 40), b in 0u64..(1 << 40)) {
        let (pa, pb) = (PageNum::new(a), PageNum::new(b));
        assert_eq!(pa.cmp(&pb), pa.base().cmp(&pb.base()));
    }
}
