//! # hmtypes — shared vocabulary for the `hetmem` workspace
//!
//! This crate defines the small, dependency-free types that every other
//! crate in the reproduction of *Page Placement Strategies for GPUs within
//! Heterogeneous Memory Systems* (ASPLOS 2015) speaks:
//!
//! * strongly-typed [virtual](VirtAddr) and [physical](PhysAddr) addresses
//!   and their [page](PageNum)/[frame](FrameNum) counterparts,
//! * [`Bandwidth`] and byte-size units,
//! * the two memory pool kinds of the paper ([`MemKind::BandwidthOptimized`]
//!   and [`MemKind::CapacityOptimized`]),
//! * memory [`AccessKind`]s, and
//! * a tiny deterministic RNG ([`SplitMix64`]) used on allocation fast paths
//!   where pulling in a full RNG crate would be disproportionate.
//!
//! # Examples
//!
//! ```
//! use hmtypes::{VirtAddr, PAGE_SIZE, MemKind, Bandwidth};
//!
//! let va = VirtAddr::new(3 * PAGE_SIZE as u64 + 17);
//! assert_eq!(va.page().index(), 3);
//! assert_eq!(va.page_offset(), 17);
//!
//! let bo = Bandwidth::from_gbps(200.0);
//! let co = Bandwidth::from_gbps(80.0);
//! assert!((bo.fraction_of_total(co) - 200.0 / 280.0).abs() < 1e-12);
//! assert_eq!(MemKind::BandwidthOptimized.short_name(), "BO");
//! ```

pub mod addr;
pub mod rng;
pub mod units;

pub use addr::{FrameNum, PageNum, PhysAddr, VirtAddr, LINE_SIZE, PAGE_SIZE};
pub use rng::SplitMix64;
pub use units::{AccessKind, Bandwidth, MemKind, Percent, GB, KB, MB};
