//! A tiny deterministic RNG for allocation fast paths.
//!
//! The paper's BW-AWARE implementation (§3.2.2) draws a random number in
//! `[0, 99]` on every page allocation. The OS fast path cannot afford a
//! heavyweight generator, so we model it with SplitMix64 — a 64-bit
//! splittable PRNG with good statistical quality, one multiply-xor-shift
//! round per output, and trivially reproducible streams.

/// A SplitMix64 pseudo-random number generator.
///
/// Deterministic for a given seed; `Clone` copies the full stream state.
///
/// # Examples
///
/// ```
/// use hmtypes::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let pct = a.next_below(100);
/// assert!(pct < 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator seeded with `seed`.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    ///
    /// Uses the widening-multiply technique (Lemire); bias is < 2^-64 per
    /// draw, far below anything observable in simulation.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0.0, 1.0)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Advances the stream past `n` outputs in O(1) without computing
    /// them — the state stride per output is a constant add, so a bulk
    /// skip is one wrapping multiply-add. Equivalent to calling
    /// [`SplitMix64::next_u64`] `n` times and discarding the results.
    #[inline]
    pub fn skip(&mut self, n: u64) {
        self.state = self
            .state
            .wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }

    /// Forks an independent generator, advancing this one.
    pub fn fork(&mut self) -> Self {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..10_000 {
            assert!(rng.next_below(100) < 100);
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        // The BW-AWARE fast path relies on the [0,100) draw converging to
        // the requested ratio; check 30% of draws land below 30 within 2%.
        let mut rng = SplitMix64::new(12345);
        let n = 100_000;
        let below_30 = (0..n).filter(|_| rng.next_below(100) < 30).count();
        let frac = below_30 as f64 / n as f64;
        assert!((frac - 0.30).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = SplitMix64::new(11);
        let mut c = a.fork();
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
