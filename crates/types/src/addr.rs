//! Address and page-number newtypes.
//!
//! The simulator works on 4 kB pages (the granularity at which the OS
//! places memory) and 128 B cache lines (the granularity at which the GPU
//! memory system moves data), matching the paper's simulated system.

use core::fmt;

/// Page size in bytes (4 kB, the x86/Linux base page the paper places).
pub const PAGE_SIZE: usize = 4096;

/// Cache line / DRAM burst size in bytes (128 B, GPU sector size).
pub const LINE_SIZE: usize = 128;

/// A virtual address in a process (GPU application) address space.
///
/// # Examples
///
/// ```
/// use hmtypes::{VirtAddr, PAGE_SIZE};
/// let va = VirtAddr::new(PAGE_SIZE as u64 + 4);
/// assert_eq!(va.page().index(), 1);
/// assert_eq!(va.page_offset(), 4);
/// assert_eq!(va.line_index(), (PAGE_SIZE as u64 + 4) / 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

/// A physical address in the machine address space.
///
/// Physical addresses are produced by translating a [`VirtAddr`] through a
/// page table; which physical *zone* an address falls in is what the
/// paper's placement policies control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

/// A virtual page number (a [`VirtAddr`] divided by [`PAGE_SIZE`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageNum(u64);

/// A physical page frame number (a [`PhysAddr`] divided by [`PAGE_SIZE`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FrameNum(u64);

macro_rules! addr_impl {
    ($ty:ident, $page_ty:ident, $page_fn:ident) => {
        impl $ty {
            /// Creates an address from a raw byte offset.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw byte value of this address.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the page this address falls in.
            #[inline]
            pub const fn $page_fn(self) -> $page_ty {
                $page_ty(self.0 / PAGE_SIZE as u64)
            }

            /// Byte offset of this address within its page.
            #[inline]
            pub const fn page_offset(self) -> u64 {
                self.0 % PAGE_SIZE as u64
            }

            /// Global cache-line index of this address (raw / [`LINE_SIZE`]).
            #[inline]
            pub const fn line_index(self) -> u64 {
                self.0 / LINE_SIZE as u64
            }

            /// Returns this address rounded down to its cache line start.
            #[inline]
            pub const fn line_aligned(self) -> Self {
                Self(self.0 - self.0 % LINE_SIZE as u64)
            }

            /// Returns the address `bytes` past this one.
            ///
            /// # Panics
            ///
            /// Panics on overflow of the 64-bit address space.
            #[inline]
            pub fn offset(self, bytes: u64) -> Self {
                Self(self.0.checked_add(bytes).expect("address overflow"))
            }
        }

        impl From<u64> for $ty {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$ty> for u64 {
            fn from(addr: $ty) -> u64 {
                addr.0
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }
    };
}

addr_impl!(VirtAddr, PageNum, page);
addr_impl!(PhysAddr, FrameNum, frame);

macro_rules! page_impl {
    ($ty:ident, $addr_ty:ident) => {
        impl $ty {
            /// Creates a page/frame number from its index.
            #[inline]
            pub const fn new(index: u64) -> Self {
                Self(index)
            }

            /// The index of this page/frame (address / [`PAGE_SIZE`]).
            #[inline]
            pub const fn index(self) -> u64 {
                self.0
            }

            /// The first byte address of this page/frame.
            #[inline]
            pub const fn base(self) -> $addr_ty {
                $addr_ty::new(self.0 * PAGE_SIZE as u64)
            }

            /// The page/frame immediately after this one.
            #[inline]
            pub const fn next(self) -> Self {
                Self(self.0 + 1)
            }
        }

        impl From<u64> for $ty {
            fn from(index: u64) -> Self {
                Self(index)
            }
        }

        impl From<$ty> for u64 {
            fn from(p: $ty) -> u64 {
                p.0
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}#{}", stringify!($ty), self.0)
            }
        }
    };
}

page_impl!(PageNum, VirtAddr);
page_impl!(FrameNum, PhysAddr);

/// Number of pages needed to hold `bytes` bytes (ceiling division).
///
/// # Examples
///
/// ```
/// use hmtypes::addr::pages_for;
/// assert_eq!(pages_for(0), 0);
/// assert_eq!(pages_for(1), 1);
/// assert_eq!(pages_for(4096), 1);
/// assert_eq!(pages_for(4097), 2);
/// ```
#[inline]
pub const fn pages_for(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_round_trip() {
        let va = VirtAddr::new(5 * PAGE_SIZE as u64 + 100);
        assert_eq!(va.page(), PageNum::new(5));
        assert_eq!(va.page_offset(), 100);
        assert_eq!(va.page().base().offset(100), va);
    }

    #[test]
    fn frame_round_trip() {
        let pa = PhysAddr::new(9 * PAGE_SIZE as u64);
        assert_eq!(pa.frame(), FrameNum::new(9));
        assert_eq!(pa.frame().base(), pa);
        assert_eq!(pa.page_offset(), 0);
    }

    #[test]
    fn line_alignment() {
        let va = VirtAddr::new(257);
        assert_eq!(va.line_aligned(), VirtAddr::new(256));
        assert_eq!(va.line_index(), 2);
    }

    #[test]
    fn next_page_advances_base_by_page_size() {
        let p = PageNum::new(7);
        assert_eq!(p.next().base().raw() - p.base().raw(), PAGE_SIZE as u64);
    }

    #[test]
    fn pages_for_edge_cases() {
        assert_eq!(pages_for(PAGE_SIZE as u64 * 3), 3);
        assert_eq!(pages_for(PAGE_SIZE as u64 * 3 + 1), 4);
    }

    #[test]
    fn display_is_hex_for_addresses() {
        assert_eq!(VirtAddr::new(255).to_string(), "0xff");
        assert_eq!(format!("{:x}", PhysAddr::new(255)), "ff");
    }

    #[test]
    #[should_panic(expected = "address overflow")]
    fn offset_overflow_panics() {
        let _ = VirtAddr::new(u64::MAX).offset(1);
    }
}
