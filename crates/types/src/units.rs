//! Bandwidth, byte-size units, memory pool kinds, and access kinds.

use core::fmt;

/// One kilobyte (2^10 bytes).
pub const KB: usize = 1024;
/// One megabyte (2^20 bytes).
pub const MB: usize = 1024 * KB;
/// One gigabyte (2^30 bytes).
pub const GB: usize = 1024 * MB;

/// The two memory pool kinds of the paper's heterogeneous system.
///
/// The paper (§1–§2) splits a globally-addressable memory system into a
/// *bandwidth-optimized* (BO) pool — GDDR5/HBM/WIO2-class, GPU-attached —
/// and a *capacity/cost-optimized* (CO) pool — DDR4/LPDDR4-class, usually
/// CPU-attached across a cache-coherent interconnect.
///
/// # Examples
///
/// ```
/// use hmtypes::MemKind;
/// assert_eq!(MemKind::BandwidthOptimized.short_name(), "BO");
/// assert_eq!(MemKind::CapacityOptimized.other(), MemKind::BandwidthOptimized);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemKind {
    /// High-bandwidth, capacity-limited memory (GDDR5/HBM/WIO2), GPU-local.
    BandwidthOptimized,
    /// High-capacity, lower-bandwidth memory (DDR4/LPDDR4), remote to the GPU.
    CapacityOptimized,
}

impl MemKind {
    /// All kinds, in placement-preference order for a GPU process
    /// (local BO first, as Linux `LOCAL` would).
    pub const ALL: [MemKind; 2] = [MemKind::BandwidthOptimized, MemKind::CapacityOptimized];

    /// The paper's shorthand: `"BO"` or `"CO"`.
    pub const fn short_name(self) -> &'static str {
        match self {
            MemKind::BandwidthOptimized => "BO",
            MemKind::CapacityOptimized => "CO",
        }
    }

    /// The other pool kind.
    pub const fn other(self) -> Self {
        match self {
            MemKind::BandwidthOptimized => MemKind::CapacityOptimized,
            MemKind::CapacityOptimized => MemKind::BandwidthOptimized,
        }
    }
}

impl fmt::Display for MemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Whether a memory access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Read`].
    pub const fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "R",
            AccessKind::Write => "W",
        })
    }
}

/// A memory bandwidth, stored as bytes per second.
///
/// Constructed from the GB/s figures the paper quotes (decimal GB, i.e.
/// 10^9 bytes, as memory vendors and the paper use).
///
/// # Examples
///
/// ```
/// use hmtypes::Bandwidth;
/// let bo = Bandwidth::from_gbps(200.0);
/// let co = Bandwidth::from_gbps(80.0);
/// assert_eq!((bo + co).gbps(), 280.0);
/// assert!((bo.ratio_to(co) - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bandwidth {
    bytes_per_sec: f64,
}

impl Bandwidth {
    /// Zero bandwidth (an absent/disabled pool).
    pub const ZERO: Bandwidth = Bandwidth { bytes_per_sec: 0.0 };

    /// Creates a bandwidth from decimal gigabytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is negative or not finite.
    pub fn from_gbps(gbps: f64) -> Self {
        assert!(
            gbps.is_finite() && gbps >= 0.0,
            "bandwidth must be finite and non-negative, got {gbps}"
        );
        Bandwidth {
            bytes_per_sec: gbps * 1e9,
        }
    }

    /// Creates a bandwidth from raw bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is negative or not finite.
    pub fn from_bytes_per_sec(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec >= 0.0,
            "bandwidth must be finite and non-negative, got {bytes_per_sec}"
        );
        Bandwidth { bytes_per_sec }
    }

    /// This bandwidth in decimal GB/s.
    pub fn gbps(self) -> f64 {
        self.bytes_per_sec / 1e9
    }

    /// This bandwidth in raw bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.bytes_per_sec
    }

    /// Bytes moved per clock cycle at `clock_ghz`.
    pub fn bytes_per_cycle(self, clock_ghz: f64) -> f64 {
        self.bytes_per_sec / (clock_ghz * 1e9)
    }

    /// `self / other`, the paper's *BW-Ratio* (Fig. 1).
    ///
    /// Returns `f64::INFINITY` if `other` is zero and `self` is not.
    pub fn ratio_to(self, other: Bandwidth) -> f64 {
        self.bytes_per_sec / other.bytes_per_sec
    }

    /// `self / (self + other)` — the optimal fraction of pages to place in
    /// this pool under BW-AWARE placement (paper §3.1: `fB = bB/(bB+bC)`).
    ///
    /// Returns 0 if both bandwidths are zero.
    pub fn fraction_of_total(self, other: Bandwidth) -> f64 {
        let total = self.bytes_per_sec + other.bytes_per_sec;
        if total == 0.0 {
            0.0
        } else {
            self.bytes_per_sec / total
        }
    }

    /// Scales this bandwidth by a non-negative factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scaled(self, factor: f64) -> Self {
        Bandwidth::from_bytes_per_sec(self.bytes_per_sec * factor)
    }
}

impl core::ops::Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth {
            bytes_per_sec: self.bytes_per_sec + rhs.bytes_per_sec,
        }
    }
}

impl core::iter::Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        iter.fold(Bandwidth::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} GB/s", self.gbps())
    }
}

/// An integer percentage in `[0, 100]`, used for the paper's `xC-yB`
/// placement-ratio notation (§3.2.2).
///
/// # Examples
///
/// ```
/// use hmtypes::Percent;
/// let co = Percent::new(30);
/// assert_eq!(co.complement().value(), 70);
/// assert!((co.as_fraction() - 0.3).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Percent(u8);

impl Percent {
    /// Creates a percentage.
    ///
    /// # Panics
    ///
    /// Panics if `value > 100`.
    pub const fn new(value: u8) -> Self {
        assert!(value <= 100, "percentage must be in [0, 100]");
        Percent(value)
    }

    /// The integer value in `[0, 100]`.
    pub const fn value(self) -> u8 {
        self.0
    }

    /// `100 - self`.
    pub const fn complement(self) -> Self {
        Percent(100 - self.0)
    }

    /// This percentage as a fraction in `[0.0, 1.0]`.
    pub fn as_fraction(self) -> f64 {
        f64::from(self.0) / 100.0
    }

    /// Rounds a fraction in `[0.0, 1.0]` to the nearest percent.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0.0, 1.0]` or not finite.
    pub fn from_fraction(fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && (0.0..=1.0).contains(&fraction),
            "fraction must be in [0.0, 1.0], got {fraction}"
        );
        Percent((fraction * 100.0).round() as u8)
    }
}

impl fmt::Display for Percent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}%", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_paper_baseline_ratio() {
        // Table 1: 200 GB/s BO vs 80 GB/s CO -> ratio 2.5x, fB = 5/7.
        let bo = Bandwidth::from_gbps(200.0);
        let co = Bandwidth::from_gbps(80.0);
        assert!((bo.ratio_to(co) - 2.5).abs() < 1e-12);
        assert!((bo.fraction_of_total(co) - 200.0 / 280.0).abs() < 1e-12);
        // The paper rounds 28C-72B to 30C-70B.
        assert_eq!(Percent::from_fraction(co.fraction_of_total(bo)).value(), 29);
    }

    #[test]
    fn bandwidth_zero_total_fraction_is_zero() {
        assert_eq!(Bandwidth::ZERO.fraction_of_total(Bandwidth::ZERO), 0.0);
    }

    #[test]
    fn bandwidth_bytes_per_cycle() {
        // 200 GB/s at 1.4 GHz SM clock ~= 142.86 B/cycle.
        let bo = Bandwidth::from_gbps(200.0);
        assert!((bo.bytes_per_cycle(1.4) - 142.857).abs() < 1e-2);
    }

    #[test]
    fn bandwidth_sum_and_display() {
        let total: Bandwidth = [Bandwidth::from_gbps(25.0); 8].into_iter().sum();
        assert_eq!(total.to_string(), "200.0 GB/s");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn bandwidth_rejects_negative() {
        let _ = Bandwidth::from_gbps(-1.0);
    }

    #[test]
    fn percent_complement() {
        assert_eq!(Percent::new(30).complement(), Percent::new(70));
        assert_eq!(Percent::new(0).complement(), Percent::new(100));
    }

    #[test]
    #[should_panic(expected = "must be in [0, 100]")]
    fn percent_rejects_over_100() {
        let _ = Percent::new(101);
    }

    #[test]
    fn memkind_other_is_involution() {
        for kind in MemKind::ALL {
            assert_eq!(kind.other().other(), kind);
        }
    }

    #[test]
    fn access_kind_display() {
        assert_eq!(AccessKind::Read.to_string(), "R");
        assert_eq!(AccessKind::Write.to_string(), "W");
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Write.is_read());
    }
}
