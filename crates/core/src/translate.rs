//! Bridging the OS model to the simulator.
//!
//! [`OsTranslator`] implements the simulator's
//! [`gpusim::AddressTranslator`] on top of a
//! [`mempolicy::AddressSpace`]: every first touch of a page runs the OS
//! fault path (policy → zonelist → frame allocation), and the resulting
//! zone index doubles as the simulator's memory-pool index.

use std::cell::RefCell;
use std::rc::Rc;

use gpusim::{AddressTranslator, Placement, SimConfig};
use hmtypes::VirtAddr;
use mempolicy::{AddressSpace, NumaTopology, ZoneSpec};

/// Builds the NUMA topology matching a simulator config: one zone per
/// pool, in pool order, with the given per-zone page capacities.
///
/// Keeping this derivation in one place guarantees the OS zone index and
/// the simulator pool index always agree.
///
/// # Panics
///
/// Panics if `capacities_pages` does not provide one entry per pool.
///
/// # Examples
///
/// ```
/// use gpusim::SimConfig;
/// use hetmem::topology_for;
///
/// let topo = topology_for(&SimConfig::paper_baseline(), &[1024, 4096]);
/// assert_eq!(topo.num_zones(), 2);
/// assert!((topo.bw_ratio() - 2.5).abs() < 1e-12);
/// ```
pub fn topology_for(sim: &SimConfig, capacities_pages: &[u64]) -> NumaTopology {
    assert_eq!(
        capacities_pages.len(),
        sim.pools.len(),
        "one capacity per memory pool"
    );
    let mut b = NumaTopology::builder();
    for (pool, &pages) in sim.pools.iter().zip(capacities_pages) {
        b = b.zone(ZoneSpec::new(
            pool.name.clone(),
            pool.kind,
            pages,
            pool.bandwidth,
            pool.extra_latency,
        ));
    }
    b.build()
}

/// An [`AddressTranslator`] that faults pages in through the OS model.
///
/// The address space is shared (`Rc<RefCell<_>>`) so experiment drivers
/// can inspect placement after — or set placement before — a simulation
/// run that consumed the translator.
#[derive(Debug, Clone)]
pub struct OsTranslator {
    mm: Rc<RefCell<AddressSpace>>,
}

impl OsTranslator {
    /// Wraps a shared address space.
    pub fn new(mm: Rc<RefCell<AddressSpace>>) -> Self {
        OsTranslator { mm }
    }

    /// The shared address space handle.
    pub fn address_space(&self) -> Rc<RefCell<AddressSpace>> {
        Rc::clone(&self.mm)
    }
}

impl AddressTranslator for OsTranslator {
    fn translate(&mut self, addr: VirtAddr) -> Placement {
        let mut mm = self.mm.borrow_mut();
        let page = addr.page();
        let faulted = mm.frame_of(page).is_none();
        let frame = mm
            .ensure_mapped(page)
            .unwrap_or_else(|e| panic!("GPU fault on {addr} failed: {e}"));
        let zone = mm
            .allocator()
            .zone_of(frame)
            .expect("allocated frame belongs to a zone");
        Placement {
            phys: frame.base().offset(addr.page_offset()),
            pool: zone.index(),
            faulted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::SimConfig;
    use hmtypes::PAGE_SIZE;
    use mempolicy::Mempolicy;

    #[test]
    fn topology_mirrors_pools() {
        let sim = SimConfig::paper_baseline();
        let topo = topology_for(&sim, &[100, 200]);
        for (zone, pool) in topo.zones().iter().zip(&sim.pools) {
            assert_eq!(zone.name, pool.name);
            assert_eq!(zone.kind, pool.kind);
            assert_eq!(zone.bandwidth, pool.bandwidth);
            assert_eq!(zone.extra_latency_cycles, pool.extra_latency);
        }
        assert_eq!(
            topo.zone(mempolicy::ZoneId::new(0)).unwrap().capacity_pages,
            100
        );
    }

    #[test]
    #[should_panic(expected = "one capacity per memory pool")]
    fn capacity_arity_checked() {
        let _ = topology_for(&SimConfig::paper_baseline(), &[1]);
    }

    #[test]
    fn translator_faults_pages_under_policy() {
        let sim = SimConfig::paper_baseline();
        let topo = topology_for(&sim, &[64, 64]);
        let mut mm = AddressSpace::new(topo.clone());
        mm.set_mempolicy(Mempolicy::interleave_all(&topo));
        let range = mm.mmap(4 * PAGE_SIZE as u64).unwrap();
        let mm = Rc::new(RefCell::new(mm));
        let mut tr = OsTranslator::new(Rc::clone(&mm));

        let p0 = tr.translate(range.start);
        let p1 = tr.translate(range.start.offset(PAGE_SIZE as u64));
        assert_ne!(p0.pool, p1.pool, "interleave alternates pools");
        assert!(p0.faulted && p1.faulted, "first touches fault");
        // Same page again: same placement, no fault.
        let p0b = tr.translate(range.start.offset(64));
        assert_eq!(p0b.pool, p0.pool);
        assert!(!p0b.faulted);
        assert_eq!(p0b.phys.page_offset(), 64);
        assert_eq!(mm.borrow().mapped_pages(), 2);
    }

    #[test]
    #[should_panic(expected = "GPU fault")]
    fn unmapped_access_panics() {
        let sim = SimConfig::paper_baseline();
        let topo = topology_for(&sim, &[4, 4]);
        let mm = Rc::new(RefCell::new(AddressSpace::new(topo)));
        let mut tr = OsTranslator::new(mm);
        let _ = tr.translate(VirtAddr::new(0));
    }
}
