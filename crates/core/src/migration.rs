//! Extension: post-placement page migration (the paper's §5.5
//! discussion, implemented as a what-if study).
//!
//! The paper measured Linux 3.16 moving pages between NUMA zones at no
//! more than a few GB/s with several microseconds from invalidation to
//! first re-use, and argued that *initial placement* should be solved
//! before online migration. This module quantifies that argument on the
//! simulated system: migrate a capacity-constrained BW-AWARE placement
//! to the oracle placement between kernel invocations, charge the copy
//! cost, and report how many kernel repetitions are needed to break
//! even.

use gpusim::SimConfig;
use mempolicy::Mempolicy;
use profiler::OraclePlacement;

use crate::experiments::{ExpOptions, Table};
use crate::runner::{bo_traffic_target, profile_workload, Capacity, Placement, RunBuilder};
use crate::translate::topology_for;

// The cost model moved next to the online engine; this study is a thin
// consumer of the shared type (same defaults, same arithmetic).
pub use crate::migrate::MigrationModel;

/// One workload's migration what-if result.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationOutcome {
    /// Cycles per kernel invocation before migration (BW-AWARE at the
    /// given capacity).
    pub before_cycles: u64,
    /// Cycles per invocation after migrating to the oracle placement.
    pub after_cycles: u64,
    /// Pages that had to move (into BO plus displaced out of BO).
    pub pages_moved: u64,
    /// One-time migration cost in cycles.
    pub migration_cycles: u64,
}

impl MigrationOutcome {
    /// Kernel invocations needed before migration pays for itself;
    /// `f64::INFINITY` when migration does not help at all.
    pub fn breakeven_invocations(&self) -> f64 {
        if self.after_cycles >= self.before_cycles {
            return f64::INFINITY;
        }
        self.migration_cycles as f64 / (self.before_cycles - self.after_cycles) as f64
    }
}

/// Evaluates migrating one workload from BW-AWARE to oracle placement at
/// `capacity`, using `model`'s costs.
pub fn evaluate_migration(
    spec: &workloads::WorkloadSpec,
    sim: &SimConfig,
    capacity: Capacity,
    model: MigrationModel,
) -> MigrationOutcome {
    let topo = topology_for(sim, &[1, 1]);
    let (hist, _) = profile_workload(spec, sim);

    let before = RunBuilder::new(spec, sim)
        .capacity(capacity)
        .placement(&Placement::Policy(Mempolicy::bw_aware_for(&topo)))
        .run();
    let after = RunBuilder::new(spec, sim)
        .capacity(capacity)
        .placement(&Placement::Oracle(hist.clone()))
        .run();

    // Moves: BW-AWARE filled BO with ~capacity pages of *arbitrary*
    // hotness; the oracle wants its own set there. Upper-bound the moves
    // as evictions plus promotions of the full BO working set.
    let oracle = OraclePlacement::compute(&hist, before.bo_pages, bo_traffic_target(sim));
    let pages_moved = 2 * oracle.bo_page_count() as u64;
    MigrationOutcome {
        before_cycles: before.report.cycles,
        after_cycles: after.report.cycles,
        pages_moved,
        migration_cycles: model.cost_cycles(pages_moved, sim.sm_clock_ghz),
    }
}

/// The migration what-if table across the options' workloads at 10%
/// capacity (columns in kilocycles except the last).
pub fn ext_migration(opts: &ExpOptions) -> Table {
    let model = MigrationModel::default();
    let mut t = Table::new(
        "Extension — migrate BW-AWARE→oracle at 10% capacity (paper §5.5 what-if)",
        vec![
            "before(kcyc)".to_string(),
            "after(kcyc)".to_string(),
            "migrate(kcyc)".to_string(),
            "breakeven(iters)".to_string(),
        ],
    );
    let specs = opts.specs();
    let outcomes = crate::grid::sweep(
        "ext_migration",
        opts,
        &specs,
        |s| s.name.to_string(),
        |s| evaluate_migration(s, &opts.sim, Capacity::FractionOfFootprint(0.10), model),
        |_, _| Vec::new(),
    );
    for (spec, o) in specs.iter().zip(&outcomes) {
        t.push_row(
            spec.name,
            vec![
                o.before_cycles as f64 / 1e3,
                o.after_cycles as f64 / 1e3,
                o.migration_cycles as f64 / 1e3,
                o.breakeven_invocations().min(9999.0),
            ],
        );
    }
    t
}

/// Caps a shared [`TraceProgram`] to a per-epoch memory-operation budget
/// so one workload can be simulated in slices with migration between
/// them.
#[derive(Debug)]
struct EpochProgram<'a> {
    inner: &'a mut workloads::TraceProgram,
    budget: u64,
}

impl gpusim::WarpProgram for EpochProgram<'_> {
    fn warps_per_sm(&self) -> u32 {
        self.inner.warps_per_sm()
    }

    fn mem_level_parallelism(&self) -> u32 {
        self.inner.mem_level_parallelism()
    }

    fn next_op(&mut self, warp: gpusim::WarpId) -> Option<gpusim::WarpOp> {
        if self.budget == 0 {
            return None;
        }
        let op = self.inner.next_op(warp);
        if matches!(op, Some(gpusim::WarpOp::Mem { .. })) {
            self.budget -= 1;
        }
        op
    }
}

/// Result of an online-migration run.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineOutcome {
    /// Kernel cycles summed over all epochs (excluding migration).
    pub compute_cycles: u64,
    /// Cycles spent migrating between epochs.
    pub migration_cycles: u64,
    /// Total pages moved across all epochs.
    pub pages_moved: u64,
    /// Number of epochs executed.
    pub epochs: u32,
}

impl OnlineOutcome {
    /// Total wall-clock cycles including migration overhead.
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles + self.migration_cycles
    }
}

/// Runs `spec` in `epochs` slices under an initial BW-AWARE placement,
/// and — when `migrate` is set — reshuffles pages toward each epoch's
/// observed hot set between slices (an AutoNUMA-style online scheme),
/// charging `model`'s costs.
///
/// With `migrate` false this is the epoch-sliced baseline: comparing the
/// two isolates the value of online migration with identical cache
/// warm-up behaviour, quantifying the paper's §5.5 open question.
pub fn run_online(
    spec: &workloads::WorkloadSpec,
    sim: &SimConfig,
    capacity: Capacity,
    epochs: u32,
    model: MigrationModel,
    migrate: bool,
) -> OnlineOutcome {
    use gpusim::Simulator;
    use hmtypes::MemKind;
    use profiler::PageHistogram;
    use std::rc::Rc;

    assert!(epochs > 0, "need at least one epoch");
    let footprint_pages = spec.footprint_pages();
    let bo_pages = capacity.bo_pages(footprint_pages);
    let topo = topology_for(sim, &[bo_pages, footprint_pages + 64]);
    let mut rt = crate::runtime::HmRuntime::new(topo.clone());
    for s in &spec.structures {
        rt.malloc(s.name, s.bytes).expect("allocation");
    }
    let bases: Vec<_> = rt.allocations().iter().map(|a| a.range.start).collect();
    let mut program = workloads::TraceProgram::new(spec, &bases, sim.num_sms);
    let total_ops = program.total_ops();
    let budget = total_ops.div_ceil(u64::from(epochs));

    let mm = rt.address_space();
    let bo = topo
        .zone_of_kind(MemKind::BandwidthOptimized)
        .expect("BO zone");
    let co = topo
        .zone_of_kind(MemKind::CapacityOptimized)
        .expect("CO zone");
    let target = bo_traffic_target(sim);

    let mut compute_cycles = 0u64;
    let mut migration_cycles = 0u64;
    let mut pages_moved = 0u64;
    for epoch in 0..epochs {
        let slice = EpochProgram {
            inner: &mut program,
            budget,
        };
        let translator = crate::translate::OsTranslator::new(Rc::clone(&mm));
        let report = Simulator::new(sim.clone(), translator, slice)
            .with_page_profiling()
            .run();
        compute_cycles += report.cycles;

        if !migrate || epoch + 1 == epochs {
            continue;
        }
        // Reshuffle toward this epoch's hot set (the online predictor:
        // last epoch's histogram predicts the next).
        let hist = PageHistogram::from_counts(report.page_accesses.expect("profiling enabled"));
        let desired = OraclePlacement::compute(&hist, bo_pages, target);
        let mut mm_mut = mm.borrow_mut();
        let mapped: Vec<_> = mm_mut.mappings().collect();
        let mut moves = 0u64;
        // Demote first to free BO capacity, then promote.
        for &(page, frame) in &mapped {
            if mm_mut.allocator().zone_of(frame) == Some(bo)
                && !desired.is_bo(page)
                && mm_mut.migrate_page(page, co).is_ok()
            {
                moves += 1;
            }
        }
        for &(page, frame) in &mapped {
            if mm_mut.allocator().zone_of(frame) != Some(bo)
                && desired.is_bo(page)
                && mm_mut.migrate_page(page, bo).is_ok()
            {
                moves += 1;
            }
        }
        drop(mm_mut);
        pages_moved += moves;
        if moves > 0 {
            migration_cycles += model.cost_cycles(moves, sim.sm_clock_ghz);
        }
    }
    OnlineOutcome {
        compute_cycles,
        migration_cycles,
        pages_moved,
        epochs,
    }
}

/// Extension table: online migration vs the epoch-sliced static
/// baseline at 10% capacity.
pub fn ext_online(opts: &ExpOptions) -> Table {
    let model = MigrationModel::default();
    let mut t = Table::new(
        "Extension — online (epoch) migration at 10% capacity (vs static BW-AWARE)",
        vec![
            "static(kcyc)".to_string(),
            "online(kcyc)".to_string(),
            "moved(pages)".to_string(),
            "net speedup".to_string(),
        ],
    );
    let cap = Capacity::FractionOfFootprint(0.10);
    let epochs = 4;
    let specs = opts.specs();
    let outcomes = crate::grid::sweep(
        "ext_online",
        opts,
        &specs,
        |s| s.name.to_string(),
        |s| {
            (
                run_online(s, &opts.sim, cap, epochs, model, false),
                run_online(s, &opts.sim, cap, epochs, model, true),
            )
        },
        |_, _| Vec::new(),
    );
    for (spec, (baseline, online)) in specs.iter().zip(&outcomes) {
        t.push_row(
            spec.name,
            vec![
                baseline.total_cycles() as f64 / 1e3,
                online.total_cycles() as f64 / 1e3,
                online.pages_moved as f64,
                baseline.total_cycles() as f64 / online.total_cycles() as f64,
            ],
        );
    }
    t
}

/// The headline question for the online engine: how close does
/// *reactive* migration (the `MIGRATE` policy, no future knowledge) get
/// to the constrained oracle at 10% BO capacity?
///
/// Bandwidth-efficiency is the fraction of the oracle's achieved
/// *demand* bandwidth that the reactive run attains — the `MIGRATE`
/// run's DRAM traffic minus its own copy bytes, over its cycles,
/// relative to the oracle's traffic over the oracle's cycles. 1.0 means
/// migration fully closed the gap; BW-AWARE's number is the floor.
pub fn ext_reactive(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Extension — reactive MIGRATE vs constrained oracle at 10% capacity",
        vec![
            "BWA(kcyc)".to_string(),
            "MIGRATE(kcyc)".to_string(),
            "Oracle(kcyc)".to_string(),
            "moved(pages)".to_string(),
            "bw-eff(BWA)".to_string(),
            "bw-eff(MIG)".to_string(),
        ],
    );
    let cap = Capacity::FractionOfFootprint(0.10);
    let topo = topology_for(&opts.sim, &[1, 1]);
    // Reactive settings scaled to the catalog's run lengths: epochs
    // short enough to act several times per run, a hot threshold low
    // enough to catch the skewed pages.
    let migrate = Mempolicy::parse("MIGRATE:epoch=25000,hot=4", &topo).expect("valid spec");
    let specs = opts.specs();
    let hists = crate::grid::sweep(
        "ext_reactive",
        opts,
        &specs,
        |s| format!("{}/profile", s.name),
        |s| profile_workload(s, &opts.sim).0,
        |_, _| Vec::new(),
    );
    let mut points = Vec::new();
    for (spec, hist) in specs.iter().zip(&hists) {
        let configs = [
            (
                "BW-AWARE",
                Placement::Policy(Mempolicy::bw_aware_for(&topo)),
            ),
            ("MIGRATE", Placement::Policy(migrate.clone())),
            ("Oracle", Placement::Oracle(hist.clone())),
        ];
        for (config, placement) in configs {
            points.push(crate::grid::RunPoint {
                spec: spec.clone(),
                config: config.to_string(),
                sim: opts.sim.clone(),
                capacity: cap,
                placement,
            });
        }
    }
    let runs = crate::grid::run_point_sweep("ext_reactive", opts, &points);
    for (spec, chunk) in specs.iter().zip(runs.chunks(3)) {
        let (bwa, mig, oracle) = (&chunk[0], &chunk[1], &chunk[2]);
        let m = mig.report.migration.expect("MIGRATE run reports migration");
        // Demand bandwidth per cycle, copy traffic excluded.
        let demand = |bytes: u64, cycles: u64| bytes as f64 / cycles as f64;
        let oracle_bw = demand(oracle.report.dram_bytes(), oracle.report.cycles);
        let mig_bw = demand(mig.report.dram_bytes() - m.copy_bytes, mig.report.cycles);
        let bwa_bw = demand(bwa.report.dram_bytes(), bwa.report.cycles);
        t.push_row(
            spec.name,
            vec![
                bwa.report.cycles as f64 / 1e3,
                mig.report.cycles as f64 / 1e3,
                oracle.report.cycles as f64 / 1e3,
                m.pages_migrated() as f64,
                bwa_bw / oracle_bw,
                mig_bw / oracle_bw,
            ],
        );
    }
    t.push_geomean();
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::catalog;

    #[test]
    fn cost_model_matches_paper_scale() {
        let m = MigrationModel::default();
        // 1000 pages = 4 MB at 4 GB/s ~= 1 ms ~= 1.4 M cycles at 1.4 GHz.
        let cycles = m.cost_cycles(1000, 1.4);
        assert!((1_400_000..1_500_000).contains(&cycles), "got {cycles}");
        // Zero pages still pays the pipeline latency.
        assert!(m.cost_cycles(0, 1.4) >= 4_000);
    }

    #[test]
    fn breakeven_math() {
        let o = MigrationOutcome {
            before_cycles: 200_000,
            after_cycles: 100_000,
            pages_moved: 100,
            migration_cycles: 1_000_000,
        };
        assert!((o.breakeven_invocations() - 10.0).abs() < 1e-9);
        let no_gain = MigrationOutcome {
            after_cycles: 200_000,
            ..o
        };
        assert!(no_gain.breakeven_invocations().is_infinite());
    }

    #[test]
    fn online_epochs_cover_all_operations() {
        let mut sim = SimConfig::paper_baseline();
        sim.num_sms = 2;
        let mut spec = catalog::by_name("hotspot").unwrap();
        spec.mem_ops = 12_000;
        let o = run_online(
            &spec,
            &sim,
            Capacity::FractionOfFootprint(0.5),
            3,
            MigrationModel::default(),
            false,
        );
        assert_eq!(o.epochs, 3);
        assert_eq!(o.pages_moved, 0);
        assert_eq!(o.migration_cycles, 0);
        assert!(o.compute_cycles > 0);
    }

    #[test]
    fn online_migration_moves_pages_and_charges_cost() {
        let mut sim = SimConfig::paper_baseline();
        sim.num_sms = 4;
        let mut spec = catalog::by_name("xsbench").unwrap();
        spec.mem_ops = 30_000;
        let o = run_online(
            &spec,
            &sim,
            Capacity::FractionOfFootprint(0.10),
            4,
            MigrationModel::default(),
            true,
        );
        assert!(o.pages_moved > 0, "skewed workload must trigger moves");
        assert!(o.migration_cycles > 0);
        // Compute-only portion should beat the static baseline (the
        // reshuffle tracks the hot set) even if cost eats the gain.
        let baseline = run_online(
            &spec,
            &sim,
            Capacity::FractionOfFootprint(0.10),
            4,
            MigrationModel::default(),
            false,
        );
        assert!(
            o.compute_cycles < baseline.compute_cycles,
            "online compute {} vs static {}",
            o.compute_cycles,
            baseline.compute_cycles
        );
    }

    #[test]
    fn migration_helps_skewed_workload_but_costs_many_iterations() {
        let mut sim = SimConfig::paper_baseline();
        sim.num_sms = 4;
        let mut spec = catalog::by_name("xsbench").unwrap();
        spec.mem_ops = 30_000;
        let o = evaluate_migration(
            &spec,
            &sim,
            Capacity::FractionOfFootprint(0.10),
            MigrationModel::default(),
        );
        assert!(
            o.after_cycles < o.before_cycles,
            "oracle placement should win: {} vs {}",
            o.after_cycles,
            o.before_cycles
        );
        let breakeven = o.breakeven_invocations();
        assert!(
            breakeven > 1.0,
            "migration must not be free (paper §5.5), got {breakeven}"
        );
    }
}
