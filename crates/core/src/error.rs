//! The workspace-level error type.
//!
//! Every fallible layer below has its own narrow error — [`MemError`]
//! from the OS memory model, [`SweepError`] from the parallel sweep
//! engine, [`JsonError`]/[`ProtocolError`] from the wire layer.
//! [`HetmemError`] wraps all of them into one enum with `Display`,
//! `source`, and a **stable machine-readable code**, so `hetmem-serve`
//! can map any failure anywhere in the stack to a structured JSON error
//! response (`{"code":"...","message":"..."}`) instead of a stringly
//! error.

use core::fmt;

use hetmem_harness::protocol::ProtocolError;
use hetmem_harness::sweep::SweepError;
use hetmem_harness::JsonError;
use mempolicy::MemError;

/// Any failure the hetmem stack can surface, with a stable code per
/// variant.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HetmemError {
    /// An OS memory-model operation failed (allocation, mbind, fault).
    Mem(MemError),
    /// A grid point panicked inside the sweep engine.
    Sweep(SweepError),
    /// JSON that should have parsed did not.
    Json(JsonError),
    /// A request line failed protocol decoding.
    Protocol(ProtocolError),
    /// A request named a workload the catalog does not have.
    UnknownWorkload {
        /// The unknown name.
        name: String,
    },
    /// A request was well-formed JSON but semantically invalid.
    InvalidRequest {
        /// What was wrong.
        reason: String,
    },
    /// The request named an operation the server does not expose.
    UnknownOp {
        /// The unknown operation.
        op: String,
    },
    /// The service shed this request under load.
    Overloaded,
    /// The service is draining and accepts no new work.
    ShuttingDown,
    /// The request's deadline expired before the work completed.
    DeadlineExceeded,
    /// The shard worker handling this request died and was restarted;
    /// the request was not completed (retrying is safe and idempotent).
    WorkerRestarted,
    /// A `batch` request carried more sub-requests than the server
    /// accepts in one envelope.
    BatchTooLarge {
        /// How many sub-requests the envelope carried.
        got: usize,
        /// The server's per-envelope ceiling.
        max: usize,
    },
    /// The request envelope named a protocol major version this server
    /// does not speak.
    UnsupportedProtocol {
        /// The version the client asked for.
        proto: u64,
    },
    /// The fleet router could not reach any healthy backend owning this
    /// request's key (every candidate was down, circuit-open, or failed
    /// mid-request). Retrying is safe: the ring reroutes once a backend
    /// recovers.
    BackendUnavailable {
        /// How many backends were tried before giving up.
        tried: usize,
    },
    /// The fleet router is draining and accepts no new work; unlike
    /// `shutting-down` this names the whole fleet, so clients stop
    /// retrying against it.
    FleetDraining,
    /// A request's `fidelity` field named a mode the server does not
    /// have (only `full` and `sampled` exist).
    InvalidFidelity {
        /// The unrecognized mode.
        value: String,
    },
}

impl HetmemError {
    /// Builds an [`HetmemError::InvalidRequest`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        HetmemError::InvalidRequest {
            reason: reason.into(),
        }
    }

    /// The stable, machine-readable error code — what `hetmem-serve`
    /// puts in `error.code`. Codes are part of the wire contract; never
    /// reuse one for a different meaning.
    pub fn code(&self) -> &'static str {
        match self {
            HetmemError::Mem(MemError::OutOfMemory { .. }) => "out-of-memory",
            HetmemError::Mem(MemError::BindExhausted { .. }) => "bind-exhausted",
            HetmemError::Mem(MemError::InvalidPolicySpec { .. }) => "invalid-policy-spec",
            HetmemError::Mem(_) => "mem-error",
            HetmemError::Sweep(SweepError::DeadlineExceeded { .. }) => "deadline-exceeded",
            HetmemError::Sweep(_) => "sim-panic",
            HetmemError::Json(_) => "bad-json",
            HetmemError::Protocol(e) => e.code(),
            HetmemError::UnknownWorkload { .. } => "unknown-workload",
            HetmemError::InvalidRequest { .. } => "invalid-request",
            HetmemError::UnknownOp { .. } => "unknown-op",
            HetmemError::Overloaded => "overloaded",
            HetmemError::ShuttingDown => "shutting-down",
            HetmemError::DeadlineExceeded => "deadline-exceeded",
            HetmemError::WorkerRestarted => "worker-restarted",
            HetmemError::BatchTooLarge { .. } => "batch-too-large",
            HetmemError::UnsupportedProtocol { .. } => "unsupported-protocol",
            HetmemError::BackendUnavailable { .. } => "backend-unavailable",
            HetmemError::FleetDraining => "fleet-draining",
            HetmemError::InvalidFidelity { .. } => "invalid-fidelity",
        }
    }
}

impl fmt::Display for HetmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HetmemError::Mem(e) => write!(f, "memory operation failed: {e}"),
            HetmemError::Sweep(e) => write!(f, "simulation failed: {e}"),
            HetmemError::Json(e) => write!(f, "malformed json: {e}"),
            HetmemError::Protocol(e) => write!(f, "{e}"),
            HetmemError::UnknownWorkload { name } => write!(f, "unknown workload '{name}'"),
            HetmemError::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
            HetmemError::UnknownOp { op } => write!(f, "unknown operation '{op}'"),
            HetmemError::Overloaded => write!(f, "request queue full, load shed"),
            HetmemError::ShuttingDown => write!(f, "service is draining"),
            HetmemError::DeadlineExceeded => write!(f, "deadline exceeded"),
            HetmemError::WorkerRestarted => {
                write!(f, "worker restarted before completing the request")
            }
            HetmemError::BatchTooLarge { got, max } => {
                write!(
                    f,
                    "batch carries {got} sub-requests, server accepts at most {max}"
                )
            }
            HetmemError::UnsupportedProtocol { proto } => {
                write!(
                    f,
                    "protocol version {proto} is not supported (this server speaks 1-2)"
                )
            }
            HetmemError::BackendUnavailable { tried } => {
                write!(f, "no healthy backend after trying {tried}")
            }
            HetmemError::FleetDraining => write!(f, "fleet is draining"),
            HetmemError::InvalidFidelity { value } => {
                write!(
                    f,
                    "unknown fidelity '{value}' (expected 'full' or 'sampled')"
                )
            }
        }
    }
}

impl std::error::Error for HetmemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HetmemError::Mem(e) => Some(e),
            HetmemError::Sweep(e) => Some(e),
            HetmemError::Json(e) => Some(e),
            HetmemError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for HetmemError {
    fn from(e: MemError) -> Self {
        HetmemError::Mem(e)
    }
}

impl From<SweepError> for HetmemError {
    fn from(e: SweepError) -> Self {
        match e {
            // A deadline-cut sweep is a deadline failure, not a panic:
            // surface the dedicated code so clients can retry with a
            // longer budget.
            SweepError::DeadlineExceeded { .. } => HetmemError::DeadlineExceeded,
            e => HetmemError::Sweep(e),
        }
    }
}

impl From<JsonError> for HetmemError {
    fn from(e: JsonError) -> Self {
        HetmemError::Json(e)
    }
}

impl From<ProtocolError> for HetmemError {
    fn from(e: ProtocolError) -> Self {
        HetmemError::Protocol(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtypes::PageNum;

    fn samples() -> Vec<HetmemError> {
        vec![
            HetmemError::Mem(MemError::OutOfMemory {
                page: PageNum::new(1),
            }),
            HetmemError::Mem(MemError::EmptyNodeSet),
            HetmemError::Mem(MemError::InvalidPolicySpec {
                spec: "MIGRATE:hot=x".into(),
                reason: "hot wants an integer".into(),
            }),
            HetmemError::Sweep(SweepError::Panic {
                index: 2,
                label: "bfs/LOCAL".into(),
                message: "boom".into(),
            }),
            HetmemError::Json(JsonError {
                offset: 0,
                message: "expected a JSON value".into(),
            }),
            HetmemError::Protocol(ProtocolError::BadRequest("no id".into())),
            HetmemError::UnknownWorkload {
                name: "nope".into(),
            },
            HetmemError::invalid("capacity_pct out of range"),
            HetmemError::UnknownOp {
                op: "frobnicate".into(),
            },
            HetmemError::Overloaded,
            HetmemError::ShuttingDown,
            HetmemError::DeadlineExceeded,
            HetmemError::WorkerRestarted,
            HetmemError::BatchTooLarge { got: 128, max: 64 },
            HetmemError::UnsupportedProtocol { proto: 9 },
            HetmemError::BackendUnavailable { tried: 3 },
            HetmemError::FleetDraining,
            HetmemError::InvalidFidelity {
                value: "approximate".into(),
            },
        ]
    }

    #[test]
    fn every_variant_has_code_display_and_distinct_meaning() {
        use std::collections::HashSet;
        let mut codes = HashSet::new();
        for e in samples() {
            assert!(!e.to_string().is_empty());
            let code = e.code();
            assert!(
                code.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "code '{code}' must be kebab-case"
            );
            codes.insert(code);
        }
        // Every sampled failure mode maps to its own code.
        assert_eq!(codes.len(), samples().len());
    }

    #[test]
    fn sources_chain_for_wrapped_errors() {
        use std::error::Error;
        let e = HetmemError::from(MemError::EmptyNodeSet);
        assert!(e.source().is_some());
        assert_eq!(e.code(), "mem-error");
        let oom = HetmemError::from(MemError::OutOfMemory {
            page: PageNum::new(9),
        });
        assert_eq!(oom.code(), "out-of-memory");
        assert!(HetmemError::Overloaded.source().is_none());
    }

    #[test]
    fn conversions_from_layer_errors() {
        let _: HetmemError = MemError::EmptyNodeSet.into();
        let panic: HetmemError = SweepError::Panic {
            index: 0,
            label: String::new(),
            message: String::new(),
        }
        .into();
        assert_eq!(panic.code(), "sim-panic");
        // A deadline-cut sweep converts to the dedicated deadline
        // variant, not a wrapped panic.
        let cut: HetmemError = SweepError::DeadlineExceeded {
            completed: 3,
            total: 8,
        }
        .into();
        assert_eq!(cut, HetmemError::DeadlineExceeded);
        assert_eq!(cut.code(), "deadline-exceeded");
        let _: HetmemError = JsonError {
            offset: 3,
            message: "x".into(),
        }
        .into();
        let _: HetmemError = ProtocolError::BadRequest("y".into()).into();
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HetmemError>();
    }
}
