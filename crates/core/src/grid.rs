//! The core ↔ harness glue: every figure's grid runs through the
//! `hetmem-harness` sweep engine, optionally streaming JSONL telemetry.
//!
//! The experiment drivers in [`experiments`](crate::experiments) and
//! [`migration`](crate::migration) build flat point lists (workload ×
//! configuration) and hand them to [`sweep`]; the engine executes them
//! on a worker pool with results in stable grid order, so tables and
//! telemetry files are byte-identical at any thread count. When
//! [`ExpOptions::telemetry`](crate::experiments::ExpOptions) carries a
//! [`TelemetrySink`], each sweep appends one [`RunRecord`] per simulated
//! run to `<dir>/<figure>.jsonl`.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use gpusim::{IntervalReport, SimConfig, SimReport, TraceEventKind};
use hetmem_harness::sweep::{run_grid, SweepOptions};
use hetmem_harness::telemetry::{
    fnv1a, summary, EstimateTelemetry, IntervalPoolTelemetry, IntervalRecord, MigrationTelemetry,
    PoolTelemetry, RunRecord,
};
use hetmem_harness::trace::{ChromeTrace, TraceEvent};
use mempolicy::{PlacementEvent, PlacementEventKind};
use workloads::WorkloadSpec;

use crate::experiments::ExpOptions;
use crate::migrate::MigrationEpochEvent;
use crate::runner::{Capacity, ObservedRun, Placement, RunBuilder, SimTrace, WorkloadRun};

/// Collects per-run telemetry across sweeps and streams it to one JSONL
/// file per figure.
///
/// Records are appended in grid order and without timing fields, so a
/// sweep's file is byte-identical across runs and thread counts. The
/// sink also keeps every record in memory for the end-of-run
/// [`TelemetrySink::summary`].
#[derive(Debug)]
pub struct TelemetrySink {
    dir: PathBuf,
    files: Mutex<Vec<(String, File)>>,
    records: Mutex<Vec<RunRecord>>,
    /// Fsync each file after every append, so records survive a
    /// machine crash, not just a process crash.
    fsync: bool,
}

impl TelemetrySink {
    /// Creates the sink, creating `dir` (and parents) if needed.
    /// Existing `<figure>.jsonl` files are truncated the first time the
    /// figure records into this sink.
    pub fn create(dir: impl AsRef<Path>) -> io::Result<Self> {
        TelemetrySink::create_with_fsync(dir, false)
    }

    /// [`create`](TelemetrySink::create) with durability control: when
    /// `fsync` is true every append is followed by `File::sync_all`, so
    /// each record is on disk before the next grid point runs. Slower;
    /// meant for crash-safe sweeps that will be resumed.
    pub fn create_with_fsync(dir: impl AsRef<Path>, fsync: bool) -> io::Result<Self> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(TelemetrySink {
            dir: dir.as_ref().to_path_buf(),
            files: Mutex::new(Vec::new()),
            records: Mutex::new(Vec::new()),
            fsync,
        })
    }

    /// The directory JSONL files land in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends `records` to `<dir>/<figure>.jsonl` (created on first
    /// use) and to the in-memory record list.
    pub fn record(&self, figure: &str, records: &[RunRecord]) -> io::Result<()> {
        let lines: Vec<String> = records.iter().map(|r| r.jsonl(false)).collect();
        self.record_lines(figure, &lines)?;
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(records);
        Ok(())
    }

    /// Appends pre-serialized JSONL lines (e.g. `interval` records) to
    /// `<dir>/<figure>.jsonl`, sharing the file with [`record`].
    ///
    /// [`record`]: TelemetrySink::record
    pub fn record_lines(&self, figure: &str, lines: &[String]) -> io::Result<()> {
        if lines.is_empty() {
            return Ok(());
        }
        let mut files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        if !files.iter().any(|(name, _)| name == figure) {
            let file = File::create(self.dir.join(format!("{figure}.jsonl")))?;
            files.push((figure.to_string(), file));
        }
        let (_, file) = files
            .iter_mut()
            .find(|(name, _)| name == figure)
            .expect("just ensured");
        let mut buf = String::new();
        for line in lines {
            buf.push_str(line);
            buf.push('\n');
        }
        file.write_all(buf.as_bytes())?;
        file.flush()?;
        if self.fsync {
            file.sync_all()?;
        }
        Ok(())
    }

    /// Every record written so far, in write order.
    pub fn records(&self) -> Vec<RunRecord> {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The end-of-run summary table over everything recorded.
    pub fn summary(&self) -> String {
        summary(&self.records())
    }
}

/// Builds the canonical [`RunRecord`] for one simulated run: stable
/// config hash over the machine + configuration, aggregate and per-pool
/// achieved bandwidth derived from cycles at the SM clock.
pub fn record_for(
    figure: &str,
    workload: &str,
    config: &str,
    sim: &SimConfig,
    run: &WorkloadRun,
) -> RunRecord {
    let ghz = sim.sm_clock_ghz;
    let seconds = run.report.cycles as f64 / (ghz * 1e9);
    let pools = run
        .report
        .pools
        .iter()
        .map(|p| PoolTelemetry {
            name: p.name.clone(),
            bytes_read: p.bytes_read,
            bytes_written: p.bytes_written,
            achieved_gbps: if seconds > 0.0 {
                p.bytes_total() as f64 / seconds / 1e9
            } else {
                0.0
            },
            row_hit_rate: p.row_hit_rate,
        })
        .collect();
    RunRecord {
        sweep: figure.to_string(),
        workload: workload.to_string(),
        config: config.to_string(),
        config_hash: config_hash(figure, workload, config, sim),
        cycles: run.report.cycles,
        completed: run.report.completed,
        mem_ops: run.report.mem_ops,
        achieved_gbps: run.report.achieved_bandwidth(ghz).gbps(),
        l1_hit_rate: run.report.l1_hit_rate(),
        l2_hit_rate: run.report.l2_hit_rate(),
        mshr_stalls: run.report.mshr_stalls,
        energy_joules: run.report.dram_energy_joules(),
        pools,
        migration: run.report.migration.map(|m| MigrationTelemetry {
            pages_migrated: m.pages_migrated(),
            pages_promoted: m.pages_promoted,
            pages_demoted: m.pages_demoted,
            pages_evicted: m.pages_evicted,
            epochs: m.epochs,
            copy_bytes: m.copy_bytes,
            remap_stall_cycles: m.remap_stall_cycles,
        }),
        estimated: run.report.estimated.map(|e| EstimateTelemetry {
            windows_detail: e.windows_detail,
            windows_extrapolated: e.windows_extrapolated,
            ops_simulated: e.ops_simulated,
            ops_extrapolated: e.ops_extrapolated,
            cycles_measured: e.cycles_measured,
            cycles_extrapolated: e.cycles_extrapolated,
            confidence: e.confidence,
        }),
        wall_ms: None,
    }
}

/// The stable config hash shared by a point's `run` record and all its
/// `interval` records: FNV-1a over a canonical machine + configuration
/// description, so two records with equal hashes ran the same machine
/// and placement.
pub fn config_hash(figure: &str, workload: &str, config: &str, sim: &SimConfig) -> u64 {
    let mut canon = format!(
        "{figure}|{workload}|{config}|sms={}|clk={}|mshrs={}",
        sim.num_sms, sim.sm_clock_ghz, sim.l2_mshrs
    );
    for p in &sim.pools {
        use core::fmt::Write as _;
        let _ = write!(
            canon,
            "|{}:{}ch:{}gbps:+{}cyc",
            p.name,
            p.channels,
            p.bandwidth.gbps(),
            p.extra_latency
        );
    }
    fnv1a(canon.as_bytes())
}

/// Converts a run's sampled [`IntervalReport`] series into serializable
/// [`IntervalRecord`]s: per-pool achieved GB/s over the window, bus
/// utilization normalized by the pool's channel count, and the same
/// config hash as the run's [`RunRecord`].
pub fn interval_records_for(
    figure: &str,
    workload: &str,
    config: &str,
    sim: &SimConfig,
    intervals: &[IntervalReport],
) -> Vec<IntervalRecord> {
    let hash = config_hash(figure, workload, config, sim);
    let ghz = sim.sm_clock_ghz;
    intervals
        .iter()
        .map(|iv| {
            let window = (iv.end_cycle - iv.start_cycle) as f64;
            let pools = iv
                .pools
                .iter()
                .zip(&sim.pools)
                .map(|(p, cfg)| IntervalPoolTelemetry {
                    name: cfg.name.clone(),
                    bytes_read: p.bytes_read,
                    bytes_written: p.bytes_written,
                    // bytes / (window / (ghz GHz)) in GB/s.
                    achieved_gbps: (p.bytes_read + p.bytes_written) as f64 * ghz / window,
                    bus_util: (p.busy_cycles / (window * f64::from(cfg.channels))).min(1.0),
                    zone_pages: p.zone_pages,
                })
                .collect();
            IntervalRecord {
                sweep: figure.to_string(),
                workload: workload.to_string(),
                config: config.to_string(),
                config_hash: hash,
                index: iv.index,
                start_cycle: iv.start_cycle,
                end_cycle: iv.end_cycle,
                mem_ops: iv.mem_ops,
                l1_hits: iv.l1_hits,
                l1_misses: iv.l1_misses,
                l2_hits: iv.l2_hits,
                l2_misses: iv.l2_misses,
                mshr_stalls: iv.mshr_stalls,
                mshr_peak: iv.mshr_peak,
                warps_retired: iv.warps_retired,
                pools,
                mode: None,
            }
        })
        .collect()
}

/// [`interval_records_for`] for a sampled fast-forward run: the
/// measured windows are tagged `mode: "detail"` and one synthesized
/// `mode: "extrapolated"` record covers the extrapolated tail (the
/// report's totals minus what the detail windows measured), so a
/// trace file never silently mixes fidelities.
pub fn sampled_interval_records_for(
    figure: &str,
    workload: &str,
    config: &str,
    sim: &SimConfig,
    intervals: &[IntervalReport],
    report: &SimReport,
) -> Vec<IntervalRecord> {
    let mut recs = interval_records_for(figure, workload, config, sim, intervals);
    for r in &mut recs {
        r.mode = Some("detail");
    }
    let start = intervals.iter().map(|iv| iv.end_cycle).max().unwrap_or(0);
    if report.cycles <= start {
        return recs;
    }
    let window = (report.cycles - start) as f64;
    let ghz = sim.sm_clock_ghz;
    let residual = |total: u64, per: fn(&IntervalReport) -> u64| {
        total.saturating_sub(intervals.iter().map(per).sum())
    };
    let pools = report
        .pools
        .iter()
        .enumerate()
        .zip(&sim.pools)
        .map(|((i, p), cfg)| {
            let measured = |f: fn(&gpusim::IntervalPoolReport) -> u64| -> u64 {
                intervals.iter().map(|iv| f(&iv.pools[i])).sum()
            };
            let bytes_read = p.bytes_read.saturating_sub(measured(|q| q.bytes_read));
            let bytes_written = p
                .bytes_written
                .saturating_sub(measured(|q| q.bytes_written));
            let busy: f64 = intervals.iter().map(|iv| iv.pools[i].busy_cycles).sum();
            IntervalPoolTelemetry {
                name: cfg.name.clone(),
                bytes_read,
                bytes_written,
                achieved_gbps: (bytes_read + bytes_written) as f64 * ghz / window,
                bus_util: ((p.bus_busy_cycles - busy).max(0.0)
                    / (window * f64::from(cfg.channels)))
                .min(1.0),
                zone_pages: intervals
                    .iter()
                    .last()
                    .map_or(0, |iv| iv.pools[i].zone_pages),
            }
        })
        .collect();
    recs.push(IntervalRecord {
        sweep: figure.to_string(),
        workload: workload.to_string(),
        config: config.to_string(),
        config_hash: config_hash(figure, workload, config, sim),
        index: intervals.iter().map(|iv| iv.index + 1).max().unwrap_or(0),
        start_cycle: start,
        end_cycle: report.cycles,
        mem_ops: residual(report.mem_ops, |iv| iv.mem_ops),
        l1_hits: residual(report.l1.0, |iv| iv.l1_hits),
        l1_misses: residual(report.l1.1, |iv| iv.l1_misses),
        l2_hits: residual(report.l2.0, |iv| iv.l2_hits),
        l2_misses: residual(report.l2.1, |iv| iv.l2_misses),
        mshr_stalls: residual(report.mshr_stalls, |iv| iv.mshr_stalls),
        mshr_peak: 0,
        warps_retired: residual(u64::from(report.retired_warps), |iv| iv.warps_retired),
        pools,
        mode: Some("extrapolated"),
    });
    recs
}

/// Converts one traced run into a Chrome `trace_event` document with
/// five process tracks: SM request spans (pid 0, tid = SM), DRAM channel
/// bursts and MSHR NACKs (pid 1, tid = global channel), simulator-time
/// page faults (pid 2), the OS mempolicy decision log (pid 3, where
/// `ts` is the decision sequence number, not simulated time), and the
/// online-migration epoch log (pid 4: one `epoch` instant per closed
/// epoch carrying its movement deltas, plus `promote`/`demote`/`evict`
/// instants on their own rows when that epoch moved pages). Timestamps
/// are microseconds at the SM clock. When the tracer's budget dropped
/// events (or capped the decision log), a `truncated` instant carries
/// the drop count.
pub fn chrome_trace_for(
    sim: &SimConfig,
    trace: &SimTrace,
    placements: &[PlacementEvent],
    migration_epochs: &[MigrationEpochEvent],
) -> ChromeTrace {
    let us = |cycles: u64| cycles as f64 / (sim.sm_clock_ghz * 1e3);
    let mut ct = ChromeTrace::new();
    ct.name_process(0, "SM read requests");
    ct.name_process(1, "DRAM channels");
    ct.name_process(2, "page faults (sim time)");
    ct.name_process(3, "mempolicy decisions (seq order)");
    if !migration_epochs.is_empty() {
        ct.name_process(4, "migration epochs (sim time)");
    }
    for ev in &trace.events {
        match ev.kind {
            TraceEventKind::Request { sm, vline, .. } => {
                ct.push(
                    TraceEvent::complete(
                        "mem_req",
                        "request",
                        us(ev.start),
                        us(ev.dur),
                        0,
                        sm.into(),
                    )
                    .arg("vline", vline.to_string()),
                );
            }
            TraceEventKind::DramService { slice, pool, read } => {
                let name = if read { "dram_rd" } else { "dram_wr" };
                ct.push(
                    TraceEvent::complete(name, "dram", us(ev.start), us(ev.dur), 1, slice.into())
                        .arg("pool", pool.to_string()),
                );
            }
            TraceEventKind::MshrNack { slice, pool } => {
                ct.push(
                    TraceEvent::instant("mshr_nack", "stall", us(ev.start), 1, slice.into())
                        .arg("pool", pool.to_string()),
                );
            }
            TraceEventKind::PagePlaced { pool } => {
                ct.push(TraceEvent::instant(
                    "page_fault",
                    "placement",
                    us(ev.start),
                    2,
                    pool as u64,
                ));
            }
        }
    }
    // The OS decision log has no simulator timestamps (decisions made
    // while pre-placing happen before cycle 0); plot it as its own
    // sequence-ordered track, capped by the same budget.
    let kept = placements.len().min(trace.budget);
    for pe in &placements[..kept] {
        let (name, detail) = match pe.kind {
            PlacementEventKind::Fault { fallback_depth } => ("fault", fallback_depth as u64),
            PlacementEventKind::Explicit { fallback_depth } => ("explicit", fallback_depth as u64),
            PlacementEventKind::Migrate { from } => ("migrate", from.index() as u64),
        };
        ct.push(
            TraceEvent::instant(name, "mempolicy", pe.seq as f64, 3, pe.zone.index() as u64)
                .arg("page", pe.page.index().to_string())
                .arg("detail", detail.to_string()),
        );
    }
    // Migration epochs are already bounded (one event per epoch), so
    // they are not budget-capped. tid 0 holds the per-epoch summary;
    // tids 1-3 put promotions, demotions, and evictions on their own
    // rows so the movement kinds read as separate lanes.
    for me in migration_epochs {
        let ts = us(me.cycle);
        ct.push(
            TraceEvent::instant("epoch", "migration", ts, 4, 0)
                .arg("index", me.index.to_string())
                .arg("promoted", me.promoted.to_string())
                .arg("demoted", me.demoted.to_string())
                .arg("evicted", me.evicted.to_string())
                .arg("copy_pages", me.copy_pages.to_string()),
        );
        for (name, tid, pages) in [
            ("promote", 1, me.promoted),
            ("demote", 2, me.demoted),
            ("evict", 3, me.evicted),
        ] {
            if pages > 0 {
                ct.push(
                    TraceEvent::instant(name, "migration", ts, 4, tid)
                        .arg("pages", pages.to_string()),
                );
            }
        }
    }
    let dropped = trace.dropped + (placements.len() - kept) as u64;
    if dropped > 0 {
        ct.push(
            TraceEvent::instant("truncated", "meta", 0.0, 1, 0)
                .arg("dropped", dropped.to_string())
                .arg("budget", trace.budget.to_string()),
        );
    }
    ct
}

/// One `(workload, configuration)` grid point of a figure sweep.
#[derive(Debug, Clone)]
pub(crate) struct RunPoint {
    pub spec: WorkloadSpec,
    pub config: String,
    pub sim: SimConfig,
    pub capacity: Capacity,
    pub placement: Placement,
}

impl RunPoint {
    fn label(&self) -> String {
        format!("{}/{}", self.spec.name, self.config)
    }
}

/// Runs a figure's grid through the harness sweep engine. `records`
/// turns each `(point, result)` into telemetry records (empty for
/// profiling passes); they are written only when the options carry a
/// sink.
///
/// # Panics
///
/// Panics with the failing point's identity if any grid point panics,
/// or if the telemetry sink cannot be written.
pub(crate) fn sweep<P, R>(
    figure: &str,
    opts: &ExpOptions,
    points: &[P],
    label: impl Fn(&P) -> String + Sync,
    run: impl Fn(&P) -> R + Sync,
    records: impl Fn(&P, &R) -> Vec<RunRecord>,
) -> Vec<R>
where
    P: Sync,
    R: Send,
{
    let sweep_opts = SweepOptions {
        threads: opts.threads,
        progress: opts.verbose,
        ..SweepOptions::default()
    };
    let results = run_grid(points, &sweep_opts, &label, |p, _ctx| run(p))
        .unwrap_or_else(|e| panic!("{figure}: {e}"));
    if let Some(sink) = &opts.telemetry {
        let recs: Vec<RunRecord> = points
            .iter()
            .zip(&results)
            .flat_map(|(p, r)| records(p, r))
            .collect();
        sink.record(figure, &recs)
            .unwrap_or_else(|e| panic!("{figure}: telemetry write failed: {e}"));
    }
    results
}

/// [`sweep`] specialized to [`RunPoint`] grids: runs every point's
/// workload and records one [`RunRecord`] per run. When the options ask
/// for observation (interval sampling and/or tracing), every point runs
/// through the observed simulator instead; interval records append to
/// the figure's JSONL after its run records, and one Chrome trace file
/// per point lands in the trace directory — all in grid order, so
/// output stays byte-identical at any thread count.
pub(crate) fn run_point_sweep(
    figure: &'static str,
    opts: &ExpOptions,
    points: &[RunPoint],
) -> Vec<WorkloadRun> {
    let Some(ocfg) = opts.observe_config() else {
        return sweep(
            figure,
            opts,
            points,
            RunPoint::label,
            |p| {
                RunBuilder::new(&p.spec, &p.sim)
                    .capacity(p.capacity)
                    .placement(&p.placement)
                    .fidelity(opts.fidelity)
                    .run()
            },
            |p, r| vec![record_for(figure, p.spec.name, &p.config, &p.sim, r)],
        );
    };
    let results: Vec<ObservedRun> = sweep(
        figure,
        opts,
        points,
        RunPoint::label,
        |p| {
            RunBuilder::new(&p.spec, &p.sim)
                .capacity(p.capacity)
                .placement(&p.placement)
                .observe(ocfg.clone())
                .fidelity(opts.fidelity)
                .run_observed()
        },
        |p, r| vec![record_for(figure, p.spec.name, &p.config, &p.sim, &r.run)],
    );
    if let (Some(sink), Some(_)) = (&opts.telemetry, opts.sample_cycles) {
        let lines: Vec<String> = points
            .iter()
            .zip(&results)
            .flat_map(|(p, r)| {
                if r.run.report.estimated.is_some() {
                    sampled_interval_records_for(
                        figure,
                        p.spec.name,
                        &p.config,
                        &p.sim,
                        &r.intervals,
                        &r.run.report,
                    )
                } else {
                    interval_records_for(figure, p.spec.name, &p.config, &p.sim, &r.intervals)
                }
            })
            .map(|rec| rec.jsonl())
            .collect();
        sink.record_lines(figure, &lines)
            .unwrap_or_else(|e| panic!("{figure}: interval telemetry write failed: {e}"));
    }
    if let Some(dir) = &opts.trace {
        fs::create_dir_all(dir).unwrap_or_else(|e| panic!("{figure}: trace dir: {e}"));
        for (i, (p, r)) in points.iter().zip(&results).enumerate() {
            let Some(tr) = &r.trace else { continue };
            let ct = chrome_trace_for(&p.sim, tr, &r.placements, &r.migration_epochs);
            let name = format!(
                "{figure}-{i:03}-{}-{}.json",
                p.spec.name,
                sanitize_label(&p.config)
            );
            fs::write(dir.join(name), ct.render())
                .unwrap_or_else(|e| panic!("{figure}: trace write failed: {e}"));
        }
    }
    results.into_iter().map(|r| r.run).collect()
}

/// Makes a config label filesystem-safe (`30C-70B` stays as-is; spaces,
/// slashes and other punctuation become `-`).
fn sanitize_label(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempolicy::Mempolicy;
    use workloads::catalog;

    fn quick_run() -> (SimConfig, WorkloadRun) {
        let mut sim = SimConfig::paper_baseline();
        sim.num_sms = 2;
        let mut spec = catalog::by_name("hotspot").unwrap();
        spec.mem_ops = 5_000;
        let run = RunBuilder::new(&spec, &sim)
            .placement(&Placement::Policy(Mempolicy::local()))
            .run();
        (sim, run)
    }

    #[test]
    fn record_matches_report() {
        let (sim, run) = quick_run();
        let rec = record_for("fig3", "hotspot", "LOCAL", &sim, &run);
        assert_eq!(rec.cycles, run.report.cycles);
        assert_eq!(rec.mem_ops, run.report.mem_ops);
        assert_eq!(rec.pools.len(), run.report.pools.len());
        let total: u64 = rec
            .pools
            .iter()
            .map(|p| p.bytes_read + p.bytes_written)
            .sum();
        assert_eq!(total, run.report.dram_bytes());
        // Pool bandwidths sum to the aggregate (same cycle base).
        let pool_sum: f64 = rec.pools.iter().map(|p| p.achieved_gbps).sum();
        assert!((pool_sum - rec.achieved_gbps).abs() < 1e-9);
        // The hash covers the config label.
        let other = record_for("fig3", "hotspot", "INTERLEAVE", &sim, &run);
        assert_ne!(rec.config_hash, other.config_hash);
    }

    #[test]
    fn sink_streams_one_file_per_figure() {
        let dir = std::env::temp_dir().join(format!("hetmem-sink-{}", std::process::id()));
        let sink = TelemetrySink::create(&dir).unwrap();
        let (sim, run) = quick_run();
        let rec = record_for("figX", "hotspot", "LOCAL", &sim, &run);
        sink.record("figX", &[rec.clone()]).unwrap();
        sink.record("figX", &[rec.clone()]).unwrap();
        sink.record("figY", std::slice::from_ref(&rec)).unwrap();
        // Empty batches create no file.
        sink.record("figZ", &[]).unwrap();

        let x = fs::read_to_string(dir.join("figX.jsonl")).unwrap();
        assert_eq!(x.lines().count(), 2, "appended across batches");
        assert_eq!(x.lines().next().unwrap(), rec.jsonl(false));
        assert!(dir.join("figY.jsonl").exists());
        assert!(!dir.join("figZ.jsonl").exists());
        assert_eq!(sink.records().len(), 3);
        assert!(sink.summary().contains("total: 3 runs"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chrome_trace_renders_migration_epoch_track() {
        let sim = SimConfig::paper_baseline();
        let trace = SimTrace {
            events: Vec::new(),
            dropped: 0,
            budget: 100,
        };
        let epochs = [
            MigrationEpochEvent {
                cycle: 2_000,
                index: 1,
                promoted: 2,
                demoted: 1,
                evicted: 1,
                copy_pages: 4,
            },
            MigrationEpochEvent {
                cycle: 4_000,
                index: 2,
                ..MigrationEpochEvent::default()
            },
        ];
        let doc = chrome_trace_for(&sim, &trace, &[], &epochs).render();
        assert!(doc.contains("migration epochs (sim time)"));
        assert!(doc.contains(r#""name":"epoch""#));
        for kind in ["promote", "demote", "evict"] {
            assert!(
                doc.contains(&format!(r#""name":"{kind}""#)),
                "missing {kind}"
            );
        }
        assert!(doc.contains(r#""copy_pages":4"#));
        // A quiet epoch contributes only its summary instant; epoch 2
        // must not add movement instants.
        assert_eq!(doc.matches(r#""name":"promote""#).count(), 1);
        // Without epochs the track (and its process name) is absent.
        let bare = chrome_trace_for(&sim, &trace, &[], &[]).render();
        assert!(!bare.contains("migration epochs"));
    }

    #[test]
    fn run_point_sweep_is_thread_count_invariant() {
        let mut sim = SimConfig::paper_baseline();
        sim.num_sms = 2;
        let mut spec = catalog::by_name("hotspot").unwrap();
        spec.mem_ops = 5_000;
        let points: Vec<RunPoint> = ["LOCAL", "INTERLEAVE"]
            .iter()
            .map(|&config| RunPoint {
                spec: spec.clone(),
                config: config.to_string(),
                sim: sim.clone(),
                capacity: Capacity::Unconstrained,
                placement: Placement::Policy(Mempolicy::local()),
            })
            .collect();
        let cycles = |threads: usize| {
            let opts = ExpOptions {
                threads,
                ..ExpOptions::quick()
            };
            run_point_sweep("t", &opts, &points)
                .iter()
                .map(|r| r.report.cycles)
                .collect::<Vec<_>>()
        };
        assert_eq!(cycles(1), cycles(2));
    }
}
