//! The core ↔ harness glue: every figure's grid runs through the
//! `hetmem-harness` sweep engine, optionally streaming JSONL telemetry.
//!
//! The experiment drivers in [`experiments`](crate::experiments) and
//! [`migration`](crate::migration) build flat point lists (workload ×
//! configuration) and hand them to [`sweep`]; the engine executes them
//! on a worker pool with results in stable grid order, so tables and
//! telemetry files are byte-identical at any thread count. When
//! [`ExpOptions::telemetry`](crate::experiments::ExpOptions) carries a
//! [`TelemetrySink`], each sweep appends one [`RunRecord`] per simulated
//! run to `<dir>/<figure>.jsonl`.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use gpusim::SimConfig;
use hetmem_harness::sweep::{run_grid, SweepOptions};
use hetmem_harness::telemetry::{fnv1a, summary, PoolTelemetry, RunRecord};
use workloads::WorkloadSpec;

use crate::experiments::ExpOptions;
use crate::runner::{run_workload, Capacity, Placement, WorkloadRun};

/// Collects per-run telemetry across sweeps and streams it to one JSONL
/// file per figure.
///
/// Records are appended in grid order and without timing fields, so a
/// sweep's file is byte-identical across runs and thread counts. The
/// sink also keeps every record in memory for the end-of-run
/// [`TelemetrySink::summary`].
#[derive(Debug)]
pub struct TelemetrySink {
    dir: PathBuf,
    files: Mutex<Vec<(String, File)>>,
    records: Mutex<Vec<RunRecord>>,
}

impl TelemetrySink {
    /// Creates the sink, creating `dir` (and parents) if needed.
    /// Existing `<figure>.jsonl` files are truncated the first time the
    /// figure records into this sink.
    pub fn create(dir: impl AsRef<Path>) -> io::Result<Self> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(TelemetrySink {
            dir: dir.as_ref().to_path_buf(),
            files: Mutex::new(Vec::new()),
            records: Mutex::new(Vec::new()),
        })
    }

    /// The directory JSONL files land in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends `records` to `<dir>/<figure>.jsonl` (created on first
    /// use) and to the in-memory record list.
    pub fn record(&self, figure: &str, records: &[RunRecord]) -> io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let mut files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        if !files.iter().any(|(name, _)| name == figure) {
            let file = File::create(self.dir.join(format!("{figure}.jsonl")))?;
            files.push((figure.to_string(), file));
        }
        let (_, file) = files
            .iter_mut()
            .find(|(name, _)| name == figure)
            .expect("just ensured");
        let mut buf = String::new();
        for r in records {
            buf.push_str(&r.jsonl(false));
            buf.push('\n');
        }
        file.write_all(buf.as_bytes())?;
        file.flush()?;
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(records);
        Ok(())
    }

    /// Every record written so far, in write order.
    pub fn records(&self) -> Vec<RunRecord> {
        self.records
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The end-of-run summary table over everything recorded.
    pub fn summary(&self) -> String {
        summary(&self.records())
    }
}

/// Builds the canonical [`RunRecord`] for one simulated run: stable
/// config hash over the machine + configuration, aggregate and per-pool
/// achieved bandwidth derived from cycles at the SM clock.
pub fn record_for(
    figure: &str,
    workload: &str,
    config: &str,
    sim: &SimConfig,
    run: &WorkloadRun,
) -> RunRecord {
    // Canonical machine+configuration description behind the hash: two
    // records with equal hashes ran the same machine and placement.
    let mut canon = format!(
        "{figure}|{workload}|{config}|sms={}|clk={}|mshrs={}",
        sim.num_sms, sim.sm_clock_ghz, sim.l2_mshrs
    );
    for p in &sim.pools {
        use core::fmt::Write as _;
        let _ = write!(
            canon,
            "|{}:{}ch:{}gbps:+{}cyc",
            p.name,
            p.channels,
            p.bandwidth.gbps(),
            p.extra_latency
        );
    }
    let ghz = sim.sm_clock_ghz;
    let seconds = run.report.cycles as f64 / (ghz * 1e9);
    let pools = run
        .report
        .pools
        .iter()
        .map(|p| PoolTelemetry {
            name: p.name.clone(),
            bytes_read: p.bytes_read,
            bytes_written: p.bytes_written,
            achieved_gbps: if seconds > 0.0 {
                p.bytes_total() as f64 / seconds / 1e9
            } else {
                0.0
            },
        })
        .collect();
    RunRecord {
        sweep: figure.to_string(),
        workload: workload.to_string(),
        config: config.to_string(),
        config_hash: fnv1a(canon.as_bytes()),
        cycles: run.report.cycles,
        mem_ops: run.report.mem_ops,
        achieved_gbps: run.report.achieved_bandwidth(ghz).gbps(),
        pools,
        wall_ms: None,
    }
}

/// One `(workload, configuration)` grid point of a figure sweep.
#[derive(Debug, Clone)]
pub(crate) struct RunPoint {
    pub spec: WorkloadSpec,
    pub config: String,
    pub sim: SimConfig,
    pub capacity: Capacity,
    pub placement: Placement,
}

impl RunPoint {
    fn label(&self) -> String {
        format!("{}/{}", self.spec.name, self.config)
    }

    fn run(&self) -> WorkloadRun {
        run_workload(&self.spec, &self.sim, self.capacity, &self.placement)
    }
}

/// Runs a figure's grid through the harness sweep engine. `records`
/// turns each `(point, result)` into telemetry records (empty for
/// profiling passes); they are written only when the options carry a
/// sink.
///
/// # Panics
///
/// Panics with the failing point's identity if any grid point panics,
/// or if the telemetry sink cannot be written.
pub(crate) fn sweep<P, R>(
    figure: &str,
    opts: &ExpOptions,
    points: &[P],
    label: impl Fn(&P) -> String + Sync,
    run: impl Fn(&P) -> R + Sync,
    records: impl Fn(&P, &R) -> Vec<RunRecord>,
) -> Vec<R>
where
    P: Sync,
    R: Send,
{
    let sweep_opts = SweepOptions {
        threads: opts.threads,
        progress: opts.verbose,
        ..SweepOptions::default()
    };
    let results = run_grid(points, &sweep_opts, &label, |p, _ctx| run(p))
        .unwrap_or_else(|e| panic!("{figure}: {e}"));
    if let Some(sink) = &opts.telemetry {
        let recs: Vec<RunRecord> = points
            .iter()
            .zip(&results)
            .flat_map(|(p, r)| records(p, r))
            .collect();
        sink.record(figure, &recs)
            .unwrap_or_else(|e| panic!("{figure}: telemetry write failed: {e}"));
    }
    results
}

/// [`sweep`] specialized to [`RunPoint`] grids: runs every point's
/// workload and records one [`RunRecord`] per run.
pub(crate) fn run_point_sweep(
    figure: &'static str,
    opts: &ExpOptions,
    points: &[RunPoint],
) -> Vec<WorkloadRun> {
    sweep(
        figure,
        opts,
        points,
        RunPoint::label,
        RunPoint::run,
        |p, r| vec![record_for(figure, p.spec.name, &p.config, &p.sim, r)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mempolicy::Mempolicy;
    use workloads::catalog;

    fn quick_run() -> (SimConfig, WorkloadRun) {
        let mut sim = SimConfig::paper_baseline();
        sim.num_sms = 2;
        let mut spec = catalog::by_name("hotspot").unwrap();
        spec.mem_ops = 5_000;
        let run = run_workload(
            &spec,
            &sim,
            Capacity::Unconstrained,
            &Placement::Policy(Mempolicy::local()),
        );
        (sim, run)
    }

    #[test]
    fn record_matches_report() {
        let (sim, run) = quick_run();
        let rec = record_for("fig3", "hotspot", "LOCAL", &sim, &run);
        assert_eq!(rec.cycles, run.report.cycles);
        assert_eq!(rec.mem_ops, run.report.mem_ops);
        assert_eq!(rec.pools.len(), run.report.pools.len());
        let total: u64 = rec
            .pools
            .iter()
            .map(|p| p.bytes_read + p.bytes_written)
            .sum();
        assert_eq!(total, run.report.dram_bytes());
        // Pool bandwidths sum to the aggregate (same cycle base).
        let pool_sum: f64 = rec.pools.iter().map(|p| p.achieved_gbps).sum();
        assert!((pool_sum - rec.achieved_gbps).abs() < 1e-9);
        // The hash covers the config label.
        let other = record_for("fig3", "hotspot", "INTERLEAVE", &sim, &run);
        assert_ne!(rec.config_hash, other.config_hash);
    }

    #[test]
    fn sink_streams_one_file_per_figure() {
        let dir = std::env::temp_dir().join(format!("hetmem-sink-{}", std::process::id()));
        let sink = TelemetrySink::create(&dir).unwrap();
        let (sim, run) = quick_run();
        let rec = record_for("figX", "hotspot", "LOCAL", &sim, &run);
        sink.record("figX", &[rec.clone()]).unwrap();
        sink.record("figX", &[rec.clone()]).unwrap();
        sink.record("figY", std::slice::from_ref(&rec)).unwrap();
        // Empty batches create no file.
        sink.record("figZ", &[]).unwrap();

        let x = fs::read_to_string(dir.join("figX.jsonl")).unwrap();
        assert_eq!(x.lines().count(), 2, "appended across batches");
        assert_eq!(x.lines().next().unwrap(), rec.jsonl(false));
        assert!(dir.join("figY.jsonl").exists());
        assert!(!dir.join("figZ.jsonl").exists());
        assert_eq!(sink.records().len(), 3);
        assert!(sink.summary().contains("total: 3 runs"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_point_sweep_is_thread_count_invariant() {
        let mut sim = SimConfig::paper_baseline();
        sim.num_sms = 2;
        let mut spec = catalog::by_name("hotspot").unwrap();
        spec.mem_ops = 5_000;
        let points: Vec<RunPoint> = ["LOCAL", "INTERLEAVE"]
            .iter()
            .map(|&config| RunPoint {
                spec: spec.clone(),
                config: config.to_string(),
                sim: sim.clone(),
                capacity: Capacity::Unconstrained,
                placement: Placement::Policy(Mempolicy::local()),
            })
            .collect();
        let cycles = |threads: usize| {
            let opts = ExpOptions {
                threads,
                ..ExpOptions::quick()
            };
            run_point_sweep("t", &opts, &points)
                .iter()
                .map(|r| r.report.cycles)
                .collect::<Vec<_>>()
        };
        assert_eq!(cycles(1), cycles(2));
    }
}
