//! Experiment drivers regenerating every table and figure of the
//! paper's evaluation.
//!
//! Each `figN` function returns a [`Table`] (or richer data for the CDF
//! figures) whose rows/series mirror what the paper plots; the
//! `hetmem-bench` crate wraps each in a binary and a Criterion bench.
//! Absolute numbers differ from the paper (different substrate); the
//! *shapes* — who wins, by what factor, where crossovers fall — are the
//! reproduction targets recorded in `EXPERIMENTS.md`.

use std::path::PathBuf;
use std::sync::Arc;

use gpusim::{Fidelity, SimConfig};
use hmtypes::{Bandwidth, Percent};
use mempolicy::Mempolicy;
use profiler::{Cdf, PageHistogram, RunProfile};
use workloads::{catalog, WorkloadSpec};

use crate::grid::{self, RunPoint, TelemetrySink};
use crate::runner::{
    geomean, hints_from_profile, profile_workload, Capacity, ObserveConfig, Placement,
};
use crate::translate::topology_for;

/// Options shared by all experiment drivers.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// The simulated machine (defaults to Table 1).
    pub sim: SimConfig,
    /// Scales every workload's `mem_ops` (1.0 = full scale; benches use
    /// less).
    pub ops_scale: f64,
    /// Restrict to these workloads (`None` = all 19).
    pub workloads: Option<Vec<String>>,
    /// Print per-run progress to stderr.
    pub verbose: bool,
    /// Worker threads for grid sweeps (`0` = one per available CPU).
    /// Results are identical at any thread count.
    pub threads: usize,
    /// When set, every sweep appends its run records to the sink's
    /// per-figure JSONL files.
    pub telemetry: Option<Arc<TelemetrySink>>,
    /// When set, figure sweeps run observed and emit one `interval`
    /// record per this-many-cycles window through the telemetry sink
    /// (requires `telemetry` for the records to land anywhere).
    pub sample_cycles: Option<u64>,
    /// When set, figure sweeps run observed and write one Chrome trace
    /// file per grid point into this directory.
    pub trace: Option<PathBuf>,
    /// Event budget per traced run (drops beyond it are counted and
    /// flagged with a `truncated` marker in the trace).
    pub trace_budget: usize,
    /// Simulation fidelity for every grid point (default
    /// [`Fidelity::Full`]; sampled runs carry `estimated` blocks and
    /// mode-tagged interval records).
    pub fidelity: Fidelity,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            sim: SimConfig::paper_baseline(),
            ops_scale: 1.0,
            workloads: None,
            verbose: false,
            threads: 0,
            telemetry: None,
            sample_cycles: None,
            trace: None,
            trace_budget: ObserveConfig::DEFAULT_TRACE_BUDGET,
            fidelity: Fidelity::Full,
        }
    }
}

impl ExpOptions {
    /// A scaled-down configuration for tests and smoke runs: 4 SMs,
    /// ~15% of the memory operations, three representative workloads.
    pub fn quick() -> Self {
        let mut sim = SimConfig::paper_baseline();
        sim.num_sms = 4;
        ExpOptions {
            sim,
            ops_scale: 0.15,
            workloads: Some(vec![
                "bfs".to_string(),
                "lbm".to_string(),
                "sgemm".to_string(),
            ]),
            verbose: false,
            threads: 0,
            telemetry: None,
            sample_cycles: None,
            trace: None,
            trace_budget: ObserveConfig::DEFAULT_TRACE_BUDGET,
            fidelity: Fidelity::Full,
        }
    }

    /// The observer configuration the options ask for, or `None` when
    /// neither sampling nor tracing is requested (sweeps then run the
    /// plain, observer-free simulator).
    pub fn observe_config(&self) -> Option<ObserveConfig> {
        if self.sample_cycles.is_none() && self.trace.is_none() {
            return None;
        }
        Some(ObserveConfig {
            sample_cycles: self.sample_cycles,
            trace: self.trace.is_some(),
            trace_budget: self.trace_budget,
        })
    }

    /// The selected workload specs, ops-scaled.
    pub fn specs(&self) -> Vec<WorkloadSpec> {
        catalog::all()
            .into_iter()
            .filter(|w| {
                self.workloads
                    .as_ref()
                    .is_none_or(|names| names.iter().any(|n| n == w.name))
            })
            .map(|w| self.scale(w))
            .collect()
    }

    /// Applies the ops scale to one spec.
    pub fn scale(&self, mut spec: WorkloadSpec) -> WorkloadSpec {
        spec.mem_ops = ((spec.mem_ops as f64 * self.ops_scale) as u64).max(5_000);
        spec
    }
}

/// A labelled numeric table: one row per workload (plus summary rows),
/// one column per configuration — the shape every figure reduces to.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table caption (figure id and what it shows).
    pub title: String,
    /// Column headers (not counting the row-label column).
    pub columns: Vec<String>,
    /// `(row label, one value per column)`.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Table {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count differs from the column count.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row arity");
        self.rows.push((label.into(), values));
    }

    /// Appends a geometric-mean summary row over the current rows.
    pub fn push_geomean(&mut self) {
        let cols = self.columns.len();
        let values = (0..cols)
            .map(|c| geomean(&self.rows.iter().map(|(_, v)| v[c]).collect::<Vec<_>>()))
            .collect();
        self.rows.push(("geomean".to_string(), values));
    }

    /// The value at `(row_label, column_label)`, if present.
    pub fn value(&self, row: &str, column: &str) -> Option<f64> {
        let c = self.columns.iter().position(|x| x == column)?;
        let (_, vals) = self.rows.iter().find(|(l, _)| l == row)?;
        vals.get(c).copied()
    }
}

impl core::fmt::Display for Table {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let widths: Vec<usize> = self.columns.iter().map(|c| c.len().max(11) + 1).collect();
        writeln!(f, "{}", self.title)?;
        write!(f, "{:<22}", "")?;
        for (c, w) in self.columns.iter().zip(&widths) {
            write!(f, "{c:>w$}")?;
        }
        writeln!(f)?;
        for (label, values) in &self.rows {
            write!(f, "{label:<22}")?;
            for (v, w) in values.iter().zip(&widths) {
                write!(f, "{v:>w$.3}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Fig. 1: BW-Ratio of bandwidth- vs capacity-optimized memory for
/// likely HPC, desktop, and mobile systems.
pub fn fig1() -> Table {
    let mut t = Table::new(
        "Fig. 1 — BW-Ratio of BO vs CO memory pools per system class",
        vec![
            "BO GB/s".to_string(),
            "CO GB/s".to_string(),
            "BW-Ratio".to_string(),
        ],
    );
    // (class, BO tech & aggregate bandwidth, CO tech & bandwidth).
    let systems = [
        ("HPC (4xHBM+DDR4)", 800.0, 100.0),
        ("Desktop (GDDR5+DDR4)", 200.0, 80.0),
        ("Mobile (WIO2+LPDDR4)", 51.2, 25.6),
    ];
    for (name, bo, co) in systems {
        t.push_row(name, vec![bo, co, bo / co]);
    }
    t
}

/// Table 1: the simulated system configuration, formatted.
pub fn table1(sim: &SimConfig) -> String {
    let mut s = String::new();
    use core::fmt::Write;
    let _ = writeln!(s, "Table 1 — Simulation environment");
    let _ = writeln!(
        s,
        "  GPU Cores        {} SMs @ {:.1} GHz",
        sim.num_sms, sim.sm_clock_ghz
    );
    let _ = writeln!(
        s,
        "  L1 Caches        {} kB/SM, {} ways",
        sim.l1.capacity_bytes / 1024,
        sim.l1.ways
    );
    let _ = writeln!(
        s,
        "  L2 Caches        memory side, {} kB/DRAM channel, {} ways",
        sim.l2.capacity_bytes / 1024,
        sim.l2.ways
    );
    let _ = writeln!(s, "  L2 MSHRs         {} entries/L2 slice", sim.l2_mshrs);
    for p in &sim.pools {
        let _ = writeln!(
            s,
            "  {:<16} {} channels, {} aggregate, +{} cycles",
            p.name, p.channels, p.bandwidth, p.extra_latency
        );
    }
    let t = sim.pools[0].timing;
    let _ = writeln!(
        s,
        "  DRAM timings     RCD={} RP={} RC={} CL=WR={} (SM cycles)",
        t.rcd, t.rp, t.rc, t.cl
    );
    s
}

/// Fig. 2a: performance sensitivity to memory bandwidth. Each value is
/// speedup relative to the 1.0× column under `LOCAL` placement.
pub fn fig2a(opts: &ExpOptions) -> Table {
    let factors = [0.5, 0.75, 1.0, 1.5, 2.0];
    let mut t = Table::new(
        "Fig. 2a — GPU performance sensitivity to bandwidth scaling (vs 1.0x)",
        factors.iter().map(|f| format!("{f:.2}x")).collect(),
    );
    let specs = opts.specs();
    let points: Vec<RunPoint> = specs
        .iter()
        .flat_map(|spec| {
            factors.iter().map(move |&f| RunPoint {
                spec: spec.clone(),
                config: format!("{f:.2}x"),
                sim: opts.sim.clone().with_bo_bandwidth_scaled(f),
                capacity: Capacity::Unconstrained,
                placement: Placement::Policy(Mempolicy::local()),
            })
        })
        .collect();
    let runs = grid::run_point_sweep("fig2a", opts, &points);
    for (spec, chunk) in specs.iter().zip(runs.chunks(factors.len())) {
        let base = chunk[2].report.cycles as f64;
        t.push_row(
            spec.name,
            chunk
                .iter()
                .map(|r| base / r.report.cycles as f64)
                .collect(),
        );
    }
    t.push_geomean();
    t
}

/// Fig. 2b: performance sensitivity to added memory latency. Values are
/// speedup relative to the +0 column (≤ 1.0 means slowdown).
pub fn fig2b(opts: &ExpOptions) -> Table {
    let extra = [0u64, 100, 200, 400];
    let mut t = Table::new(
        "Fig. 2b — GPU performance sensitivity to added latency (vs +0)",
        extra.iter().map(|e| format!("+{e}cyc")).collect(),
    );
    let specs = opts.specs();
    let points: Vec<RunPoint> = specs
        .iter()
        .flat_map(|spec| {
            extra.iter().map(move |&e| RunPoint {
                spec: spec.clone(),
                config: format!("+{e}cyc"),
                sim: opts.sim.clone().with_extra_latency(e),
                capacity: Capacity::Unconstrained,
                placement: Placement::Policy(Mempolicy::local()),
            })
        })
        .collect();
    let runs = grid::run_point_sweep("fig2b", opts, &points);
    for (spec, chunk) in specs.iter().zip(runs.chunks(extra.len())) {
        let base = chunk[0].report.cycles as f64;
        t.push_row(
            spec.name,
            chunk
                .iter()
                .map(|r| base / r.report.cycles as f64)
                .collect(),
        );
    }
    t.push_geomean();
    t
}

/// Fig. 3: performance across `xC-yB` placement ratios plus the Linux
/// `LOCAL` and `INTERLEAVE` policies, unconstrained capacity, normalized
/// to `LOCAL`.
pub fn fig3(opts: &ExpOptions) -> Table {
    let ratios: [u8; 7] = [0, 10, 20, 30, 50, 70, 90];
    let mut columns = vec!["LOCAL".to_string(), "INTERLEAVE".to_string()];
    columns.extend(ratios.iter().map(|r| format!("{}C-{}B", r, 100 - r)));
    let mut t = Table::new(
        "Fig. 3 — placement-ratio sweep, unconstrained capacity (perf vs LOCAL)",
        columns,
    );
    let topo = topology_for(&opts.sim, &[1, 1]);
    let mut policies: Vec<(String, Mempolicy)> = vec![
        ("LOCAL".to_string(), Mempolicy::local()),
        ("INTERLEAVE".to_string(), Mempolicy::interleave_all(&topo)),
    ];
    policies.extend(ratios.iter().map(|&r| {
        (
            format!("{}C-{}B", r, 100 - r),
            Mempolicy::ratio_co(Percent::new(r)),
        )
    }));
    let specs = opts.specs();
    let points: Vec<RunPoint> = specs
        .iter()
        .flat_map(|spec| {
            policies.iter().map(move |(config, policy)| RunPoint {
                spec: spec.clone(),
                config: config.clone(),
                sim: opts.sim.clone(),
                capacity: Capacity::Unconstrained,
                placement: Placement::Policy(policy.clone()),
            })
        })
        .collect();
    let runs = grid::run_point_sweep("fig3", opts, &points);
    for (spec, chunk) in specs.iter().zip(runs.chunks(policies.len())) {
        let local = &chunk[0];
        t.push_row(
            spec.name,
            chunk.iter().map(|r| r.speedup_over(local)).collect(),
        );
    }
    t.push_geomean();
    t
}

/// Fig. 4: BW-AWARE performance as BO capacity shrinks relative to the
/// footprint, normalized to the 100% point per workload.
pub fn fig4(opts: &ExpOptions) -> Table {
    let fractions = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1];
    let mut t = Table::new(
        "Fig. 4 — BW-AWARE performance vs BO capacity (fraction of footprint)",
        fractions
            .iter()
            .map(|f| format!("{:.0}%", f * 100.0))
            .collect(),
    );
    let topo = topology_for(&opts.sim, &[1, 1]);
    let specs = opts.specs();
    let points: Vec<RunPoint> = specs
        .iter()
        .flat_map(|spec| {
            let topo = &topo;
            fractions.iter().map(move |&f| RunPoint {
                spec: spec.clone(),
                config: format!("{:.0}%", f * 100.0),
                sim: opts.sim.clone(),
                capacity: Capacity::FractionOfFootprint(f),
                placement: Placement::Policy(Mempolicy::bw_aware_for(topo)),
            })
        })
        .collect();
    let runs = grid::run_point_sweep("fig4", opts, &points);
    for (spec, chunk) in specs.iter().zip(runs.chunks(fractions.len())) {
        let base = chunk[0].report.cycles as f64;
        t.push_row(
            spec.name,
            chunk
                .iter()
                .map(|r| base / r.report.cycles as f64)
                .collect(),
        );
    }
    t.push_geomean();
    t
}

/// Fig. 5: policy comparison as CO bandwidth varies, geomean speedup
/// over `LOCAL` at the paper's 80 GB/s baseline.
pub fn fig5(opts: &ExpOptions) -> Table {
    let co_gbps = [10.0, 40.0, 80.0, 120.0, 160.0, 200.0];
    let mut t = Table::new(
        "Fig. 5 — policies vs CO-pool bandwidth (geomean speedup over LOCAL@80)",
        co_gbps.iter().map(|b| format!("{b:.0}GB/s")).collect(),
    );
    let specs = opts.specs();
    // Per-workload LOCAL baseline at 80 GB/s CO (the Table 1 machine).
    let base_points: Vec<RunPoint> = specs
        .iter()
        .map(|spec| RunPoint {
            spec: spec.clone(),
            config: "LOCAL@80".to_string(),
            sim: opts.sim.clone(),
            capacity: Capacity::Unconstrained,
            placement: Placement::Policy(Mempolicy::local()),
        })
        .collect();
    let baselines: Vec<f64> = grid::run_point_sweep("fig5", opts, &base_points)
        .iter()
        .map(|r| r.report.cycles as f64)
        .collect();

    /// A named policy constructor over a topology.
    type NamedPolicy = (&'static str, fn(&mempolicy::NumaTopology) -> Mempolicy);
    let policies: [NamedPolicy; 3] = [
        ("LOCAL", |_| Mempolicy::local()),
        ("INTERLEAVE", Mempolicy::interleave_all),
        ("BW-AWARE", Mempolicy::bw_aware_for),
    ];
    let mut points = Vec::new();
    for (name, make_policy) in policies {
        for &bw in &co_gbps {
            let sim = opts.sim.clone().with_co_bandwidth(Bandwidth::from_gbps(bw));
            let topo = topology_for(&sim, &[1, 1]);
            let policy = make_policy(&topo);
            for spec in &specs {
                points.push(RunPoint {
                    spec: spec.clone(),
                    config: format!("{name}@{bw:.0}"),
                    sim: sim.clone(),
                    capacity: Capacity::Unconstrained,
                    placement: Placement::Policy(policy.clone()),
                });
            }
        }
    }
    let runs = grid::run_point_sweep("fig5", opts, &points);
    for (pi, (name, _)) in policies.iter().enumerate() {
        let values: Vec<f64> = (0..co_gbps.len())
            .map(|bi| {
                let chunk = &runs[(pi * co_gbps.len() + bi) * specs.len()..][..specs.len()];
                let speedups: Vec<f64> = chunk
                    .iter()
                    .zip(&baselines)
                    .map(|(r, &base)| base / r.report.cycles as f64)
                    .collect();
                geomean(&speedups)
            })
            .collect();
        t.push_row(*name, values);
    }
    t
}

/// Fig. 6: the per-workload bandwidth CDFs, plus a summary table of
/// traffic concentration (share of DRAM traffic from the hottest 10%
/// and 30% of pages).
pub fn fig6(opts: &ExpOptions) -> (Vec<(String, Cdf)>, Table) {
    let mut cdfs = Vec::new();
    let mut t = Table::new(
        "Fig. 6 — page access CDF summary (traffic share of hottest pages)",
        vec![
            "top10%".to_string(),
            "top30%".to_string(),
            "pages".to_string(),
        ],
    );
    let specs = opts.specs();
    let hists = grid::sweep(
        "fig6",
        opts,
        &specs,
        |s| format!("{}/profile", s.name),
        |s| profile_workload(s, &opts.sim).0,
        |_, _| Vec::new(),
    );
    for (spec, hist) in specs.iter().zip(&hists) {
        let cdf = hist.cdf();
        t.push_row(
            spec.name,
            vec![
                cdf.traffic_in_top(0.10),
                cdf.traffic_in_top(0.30),
                hist.touched_pages() as f64,
            ],
        );
        cdfs.push((spec.name.to_string(), cdf));
    }
    (cdfs, t)
}

/// Fig. 7 result for one workload: the per-structure attribution that
/// the CDF-vs-address scatter is colored by.
#[derive(Debug, Clone)]
pub struct Fig7Workload {
    /// Workload name.
    pub name: String,
    /// Per structure: (name, footprint share, traffic share, hotness/byte).
    pub structures: Vec<(String, f64, f64, f64)>,
    /// Traffic share of the hottest 10% of pages.
    pub top10: f64,
    /// Fraction of allocated pages never touched.
    pub untouched_frac: f64,
}

/// Fig. 7: CDF vs virtual-address layout for `bfs`, `mummergpu`, and
/// `needle` (the paper's three contrasting examples).
pub fn fig7(opts: &ExpOptions) -> Vec<Fig7Workload> {
    let specs: Vec<WorkloadSpec> = ["bfs", "mummergpu", "needle"]
        .iter()
        .map(|name| opts.scale(catalog::by_name(name).expect("catalog workload")))
        .collect();
    let profiles = grid::sweep(
        "fig7",
        opts,
        &specs,
        |s| format!("{}/profile", s.name),
        |s| profile_workload(s, &opts.sim),
        |_, _| Vec::new(),
    );
    specs
        .iter()
        .zip(profiles)
        .map(|(spec, (hist, profile))| {
            let footprint: u64 = spec.structures.iter().map(|s| s.bytes).sum();
            let structures = profile
                .structures()
                .iter()
                .map(|s| {
                    (
                        s.range.name.clone(),
                        s.range.bytes() as f64 / footprint as f64,
                        s.traffic_share,
                        s.hotness,
                    )
                })
                .collect();
            let allocated_pages: u64 = spec.structures.iter().map(|s| s.pages()).sum();
            Fig7Workload {
                name: spec.name.to_string(),
                structures,
                top10: hist.cdf().traffic_in_top(0.10),
                untouched_frac: 1.0 - hist.touched_pages() as f64 / allocated_pages as f64,
            }
        })
        .collect()
}

/// Fig. 8: oracle vs BW-AWARE placement, unconstrained and at 10% BO
/// capacity, normalized to unconstrained BW-AWARE.
pub fn fig8(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Fig. 8 — oracle vs BW-AWARE, unconstrained & 10% capacity (vs BW-AWARE@100%)",
        vec![
            "BWA@100%".to_string(),
            "Oracle@100%".to_string(),
            "BWA@10%".to_string(),
            "Oracle@10%".to_string(),
        ],
    );
    let topo = topology_for(&opts.sim, &[1, 1]);
    let specs = opts.specs();
    let hists: Vec<PageHistogram> = grid::sweep(
        "fig8",
        opts,
        &specs,
        |s| format!("{}/profile", s.name),
        |s| profile_workload(s, &opts.sim).0,
        |_, _| Vec::new(),
    );
    let mut points = Vec::new();
    for (spec, hist) in specs.iter().zip(&hists) {
        let bwa = Placement::Policy(Mempolicy::bw_aware_for(&topo));
        let oracle = Placement::Oracle(hist.clone());
        let configs = [
            ("BWA@100%", Capacity::Unconstrained, bwa.clone()),
            ("Oracle@100%", Capacity::Unconstrained, oracle.clone()),
            ("BWA@10%", Capacity::FractionOfFootprint(0.10), bwa),
            ("Oracle@10%", Capacity::FractionOfFootprint(0.10), oracle),
        ];
        for (config, capacity, placement) in configs {
            points.push(RunPoint {
                spec: spec.clone(),
                config: config.to_string(),
                sim: opts.sim.clone(),
                capacity,
                placement,
            });
        }
    }
    let runs = grid::run_point_sweep("fig8", opts, &points);
    for (spec, chunk) in specs.iter().zip(runs.chunks(4)) {
        let base = &chunk[0];
        t.push_row(
            spec.name,
            std::iter::once(1.0)
                .chain(chunk[1..].iter().map(|r| r.speedup_over(base)))
                .collect(),
        );
    }
    t.push_geomean();
    t
}

/// Fig. 10: annotation-hinted placement vs INTERLEAVE, BW-AWARE, and
/// oracle at 10% BO capacity, normalized to INTERLEAVE.
pub fn fig10(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Fig. 10 — profile-annotated placement at 10% capacity (vs INTERLEAVE)",
        vec![
            "INTERLEAVE".to_string(),
            "BW-AWARE".to_string(),
            "Annotated".to_string(),
            "Oracle".to_string(),
        ],
    );
    let cap = Capacity::FractionOfFootprint(0.10);
    let topo = topology_for(&opts.sim, &[1, 1]);
    let specs = opts.specs();
    let profiles = grid::sweep(
        "fig10",
        opts,
        &specs,
        |s| format!("{}/profile", s.name),
        |s| profile_workload(s, &opts.sim),
        |_, _| Vec::new(),
    );
    let mut points = Vec::new();
    for (spec, (hist, profile)) in specs.iter().zip(&profiles) {
        let hints = hints_from_profile(profile, spec, &opts.sim, cap);
        let configs = [
            (
                "INTERLEAVE",
                Placement::Policy(Mempolicy::interleave_all(&topo)),
            ),
            (
                "BW-AWARE",
                Placement::Policy(Mempolicy::bw_aware_for(&topo)),
            ),
            ("Annotated", Placement::Hinted(hints)),
            ("Oracle", Placement::Oracle(hist.clone())),
        ];
        for (config, placement) in configs {
            points.push(RunPoint {
                spec: spec.clone(),
                config: config.to_string(),
                sim: opts.sim.clone(),
                capacity: cap,
                placement,
            });
        }
    }
    let runs = grid::run_point_sweep("fig10", opts, &points);
    for (spec, chunk) in specs.iter().zip(runs.chunks(4)) {
        let inter = &chunk[0];
        t.push_row(
            spec.name,
            std::iter::once(1.0)
                .chain(chunk[1..].iter().map(|r| r.speedup_over(inter)))
                .collect(),
        );
    }
    t.push_geomean();
    t
}

/// Fig. 11: hint robustness across input datasets. Hints are computed
/// from dataset 0 (training); each row is one (workload, dataset) pair
/// with speedups over that dataset's INTERLEAVE run.
pub fn fig11(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Fig. 11 — annotated placement across datasets, trained on dataset 0 (vs INTERLEAVE)",
        vec![
            "INTERLEAVE".to_string(),
            "BW-AWARE".to_string(),
            "Annotated".to_string(),
            "Oracle".to_string(),
        ],
    );
    let cap = Capacity::FractionOfFootprint(0.10);
    let topo = topology_for(&opts.sim, &[1, 1]);
    let names = ["bfs", "xsbench", "minife", "mummergpu"];
    let families: Vec<(&str, Vec<WorkloadSpec>)> = names
        .iter()
        .map(|&name| {
            (
                name,
                catalog::datasets(name)
                    .into_iter()
                    .map(|s| opts.scale(s))
                    .collect(),
            )
        })
        .collect();
    // Train on each family's dataset 0.
    let train_specs: Vec<WorkloadSpec> = families.iter().map(|(_, sets)| sets[0].clone()).collect();
    let train_profiles: Vec<RunProfile> = grid::sweep(
        "fig11",
        opts,
        &train_specs,
        |s| format!("{}/train", s.name),
        |s| profile_workload(s, &opts.sim).1,
        |_, _| Vec::new(),
    );
    // Evaluate every other dataset: profile (for the oracle), then the
    // four placements.
    let evals: Vec<(usize, usize, WorkloadSpec)> = families
        .iter()
        .enumerate()
        .flat_map(|(fi, (_, sets))| {
            sets.iter()
                .enumerate()
                .skip(1)
                .map(move |(i, spec)| (fi, i, spec.clone()))
        })
        .collect();
    let eval_specs: Vec<WorkloadSpec> = evals.iter().map(|(_, _, s)| s.clone()).collect();
    let eval_hists: Vec<PageHistogram> = grid::sweep(
        "fig11",
        opts,
        &eval_specs,
        |s| format!("{}/profile", s.name),
        |s| profile_workload(s, &opts.sim).0,
        |_, _| Vec::new(),
    );
    let mut points = Vec::new();
    for ((fi, i, spec), hist) in evals.iter().zip(&eval_hists) {
        let hints = hints_from_profile(&train_profiles[*fi], spec, &opts.sim, cap);
        let configs = [
            (
                "INTERLEAVE",
                Placement::Policy(Mempolicy::interleave_all(&topo)),
            ),
            (
                "BW-AWARE",
                Placement::Policy(Mempolicy::bw_aware_for(&topo)),
            ),
            ("Annotated", Placement::Hinted(hints)),
            ("Oracle", Placement::Oracle(hist.clone())),
        ];
        for (config, placement) in configs {
            points.push(RunPoint {
                spec: spec.clone(),
                config: format!("{config}/ds{i}"),
                sim: opts.sim.clone(),
                capacity: cap,
                placement,
            });
        }
    }
    let runs = grid::run_point_sweep("fig11", opts, &points);
    for ((fi, i, _), chunk) in evals.iter().zip(runs.chunks(4)) {
        let inter = &chunk[0];
        t.push_row(
            format!("{}/ds{i}", families[*fi].0),
            std::iter::once(1.0)
                .chain(chunk[1..].iter().map(|r| r.speedup_over(inter)))
                .collect(),
        );
    }
    t.push_geomean();
    t
}

/// Extension: DRAM access energy per placement policy (the paper's §2.1
/// motivation — GDDR5 costs significantly more energy per access than
/// DDR4 — quantified for the placement policies). Energy in millijoules;
/// the last column is BW-AWARE's energy-delay product relative to LOCAL
/// (< 1 means BW-AWARE is better on both axes combined).
pub fn ext_energy(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Extension — DRAM access energy by placement policy (mJ; EDP vs LOCAL)",
        vec![
            "LOCAL".to_string(),
            "INTERLEAVE".to_string(),
            "BW-AWARE".to_string(),
            "BWA EDP/LOCAL".to_string(),
        ],
    );
    let topo = topology_for(&opts.sim, &[1, 1]);
    let ghz = opts.sim.sm_clock_ghz;
    let policies = [
        ("LOCAL", Mempolicy::local()),
        ("INTERLEAVE", Mempolicy::interleave_all(&topo)),
        ("BW-AWARE", Mempolicy::bw_aware_for(&topo)),
    ];
    let specs = opts.specs();
    let points: Vec<RunPoint> = specs
        .iter()
        .flat_map(|spec| {
            policies.iter().map(move |(config, policy)| RunPoint {
                spec: spec.clone(),
                config: config.to_string(),
                sim: opts.sim.clone(),
                capacity: Capacity::Unconstrained,
                placement: Placement::Policy(policy.clone()),
            })
        })
        .collect();
    let runs = grid::run_point_sweep("ext_energy", opts, &points);
    for (spec, chunk) in specs.iter().zip(runs.chunks(policies.len())) {
        let edp_rel =
            chunk[2].report.energy_delay_product(ghz) / chunk[0].report.energy_delay_product(ghz);
        t.push_row(
            spec.name,
            vec![
                chunk[0].report.dram_energy_joules() * 1e3,
                chunk[1].report.dram_energy_joules() * 1e3,
                chunk[2].report.dram_energy_joules() * 1e3,
                edp_rel,
            ],
        );
    }
    t.push_geomean();
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext_energy_bw_aware_wins_edp() {
        // Moving 30% of traffic to the lower-energy DDR4 pool reduces
        // DRAM energy while also being faster: EDP must clearly favor
        // BW-AWARE for a bandwidth-bound workload.
        let mut opts = ExpOptions::quick();
        opts.workloads = Some(vec!["lbm".to_string()]);
        let t = ext_energy(&opts);
        let local = t.value("lbm", "LOCAL").unwrap();
        let bwa = t.value("lbm", "BW-AWARE").unwrap();
        assert!(bwa < local, "BW-AWARE energy {bwa} vs LOCAL {local}");
        assert!(t.value("lbm", "BWA EDP/LOCAL").unwrap() < 0.9);
    }

    #[test]
    fn fig1_ratios_match_paper_classes() {
        let t = fig1();
        assert_eq!(t.rows.len(), 3);
        let hpc = t.value("HPC (4xHBM+DDR4)", "BW-Ratio").unwrap();
        let desktop = t.value("Desktop (GDDR5+DDR4)", "BW-Ratio").unwrap();
        let mobile = t.value("Mobile (WIO2+LPDDR4)", "BW-Ratio").unwrap();
        assert!(hpc >= 8.0);
        assert!((desktop - 2.5).abs() < 1e-12);
        assert!((mobile - 2.0).abs() < 1e-12);
    }

    #[test]
    fn table1_mentions_all_parts() {
        let s = table1(&SimConfig::paper_baseline());
        for needle in [
            "15 SMs",
            "16 kB/SM",
            "128 kB/DRAM channel",
            "GDDR5",
            "DDR4",
            "128 entries",
        ] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn table_push_and_lookup() {
        let mut t = Table::new("t", vec!["a".to_string(), "b".to_string()]);
        t.push_row("r1", vec![2.0, 8.0]);
        t.push_row("r2", vec![8.0, 2.0]);
        t.push_geomean();
        assert_eq!(t.value("geomean", "a"), Some(4.0));
        assert_eq!(t.value("r1", "b"), Some(8.0));
        assert_eq!(t.value("nope", "a"), None);
        let shown = t.to_string();
        assert!(shown.contains("geomean"));
    }

    #[test]
    fn quick_fig3_shape() {
        // The core claim at small scale: for a bandwidth-bound workload
        // the 30C-70B column beats LOCAL and INTERLEAVE.
        let mut opts = ExpOptions::quick();
        opts.workloads = Some(vec!["lbm".to_string()]);
        let t = fig3(&opts);
        let bwa = t.value("lbm", "30C-70B").unwrap();
        let inter = t.value("lbm", "INTERLEAVE").unwrap();
        assert!(bwa > 1.02, "BW-AWARE vs LOCAL: {bwa}");
        assert!(bwa > inter, "BW-AWARE {bwa} vs INTERLEAVE {inter}");
    }

    #[test]
    fn quick_fig2_sensitivity_classes() {
        let mut opts = ExpOptions::quick();
        opts.workloads = Some(vec![
            "lbm".to_string(),
            "sgemm".to_string(),
            "comd".to_string(),
        ]);
        let a = fig2a(&opts);
        // lbm scales with bandwidth; comd does not.
        assert!(a.value("lbm", "2.00x").unwrap() > 1.25);
        assert!(a.value("comd", "2.00x").unwrap() < 1.10);
        let b = fig2b(&opts);
        // sgemm suffers from latency; lbm tolerates it.
        assert!(b.value("sgemm", "+400cyc").unwrap() < 0.75);
        assert!(b.value("lbm", "+400cyc").unwrap() > 0.85);
    }
}
