//! Experiment drivers regenerating every table and figure of the
//! paper's evaluation.
//!
//! Each `figN` function returns a [`Table`] (or richer data for the CDF
//! figures) whose rows/series mirror what the paper plots; the
//! `hetmem-bench` crate wraps each in a binary and a Criterion bench.
//! Absolute numbers differ from the paper (different substrate); the
//! *shapes* — who wins, by what factor, where crossovers fall — are the
//! reproduction targets recorded in `EXPERIMENTS.md`.

use gpusim::SimConfig;
use hmtypes::{Bandwidth, Percent};
use mempolicy::Mempolicy;
use profiler::Cdf;
use workloads::{catalog, WorkloadSpec};

use crate::runner::{
    geomean, hints_from_profile, profile_workload, run_workload, Capacity, Placement,
};
use crate::translate::topology_for;

/// Options shared by all experiment drivers.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// The simulated machine (defaults to Table 1).
    pub sim: SimConfig,
    /// Scales every workload's `mem_ops` (1.0 = full scale; benches use
    /// less).
    pub ops_scale: f64,
    /// Restrict to these workloads (`None` = all 19).
    pub workloads: Option<Vec<String>>,
    /// Print per-run progress to stderr.
    pub verbose: bool,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            sim: SimConfig::paper_baseline(),
            ops_scale: 1.0,
            workloads: None,
            verbose: false,
        }
    }
}

impl ExpOptions {
    /// A scaled-down configuration for tests and smoke runs: 4 SMs,
    /// ~15% of the memory operations, three representative workloads.
    pub fn quick() -> Self {
        let mut sim = SimConfig::paper_baseline();
        sim.num_sms = 4;
        ExpOptions {
            sim,
            ops_scale: 0.15,
            workloads: Some(vec![
                "bfs".to_string(),
                "lbm".to_string(),
                "sgemm".to_string(),
            ]),
            verbose: false,
        }
    }

    /// The selected workload specs, ops-scaled.
    pub fn specs(&self) -> Vec<WorkloadSpec> {
        catalog::all()
            .into_iter()
            .filter(|w| {
                self.workloads
                    .as_ref()
                    .is_none_or(|names| names.iter().any(|n| n == w.name))
            })
            .map(|w| self.scale(w))
            .collect()
    }

    /// Applies the ops scale to one spec.
    pub fn scale(&self, mut spec: WorkloadSpec) -> WorkloadSpec {
        spec.mem_ops = ((spec.mem_ops as f64 * self.ops_scale) as u64).max(5_000);
        spec
    }

    fn progress(&self, msg: &str) {
        if self.verbose {
            eprintln!("  [{msg}]");
        }
    }
}

/// A labelled numeric table: one row per workload (plus summary rows),
/// one column per configuration — the shape every figure reduces to.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table caption (figure id and what it shows).
    pub title: String,
    /// Column headers (not counting the row-label column).
    pub columns: Vec<String>,
    /// `(row label, one value per column)`.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Table {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count differs from the column count.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row arity");
        self.rows.push((label.into(), values));
    }

    /// Appends a geometric-mean summary row over the current rows.
    pub fn push_geomean(&mut self) {
        let cols = self.columns.len();
        let values = (0..cols)
            .map(|c| geomean(&self.rows.iter().map(|(_, v)| v[c]).collect::<Vec<_>>()))
            .collect();
        self.rows.push(("geomean".to_string(), values));
    }

    /// The value at `(row_label, column_label)`, if present.
    pub fn value(&self, row: &str, column: &str) -> Option<f64> {
        let c = self.columns.iter().position(|x| x == column)?;
        let (_, vals) = self.rows.iter().find(|(l, _)| l == row)?;
        vals.get(c).copied()
    }
}

impl core::fmt::Display for Table {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let widths: Vec<usize> = self.columns.iter().map(|c| c.len().max(11) + 1).collect();
        writeln!(f, "{}", self.title)?;
        write!(f, "{:<22}", "")?;
        for (c, w) in self.columns.iter().zip(&widths) {
            write!(f, "{c:>w$}")?;
        }
        writeln!(f)?;
        for (label, values) in &self.rows {
            write!(f, "{label:<22}")?;
            for (v, w) in values.iter().zip(&widths) {
                write!(f, "{v:>w$.3}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Fig. 1: BW-Ratio of bandwidth- vs capacity-optimized memory for
/// likely HPC, desktop, and mobile systems.
pub fn fig1() -> Table {
    let mut t = Table::new(
        "Fig. 1 — BW-Ratio of BO vs CO memory pools per system class",
        vec![
            "BO GB/s".to_string(),
            "CO GB/s".to_string(),
            "BW-Ratio".to_string(),
        ],
    );
    // (class, BO tech & aggregate bandwidth, CO tech & bandwidth).
    let systems = [
        ("HPC (4xHBM+DDR4)", 800.0, 100.0),
        ("Desktop (GDDR5+DDR4)", 200.0, 80.0),
        ("Mobile (WIO2+LPDDR4)", 51.2, 25.6),
    ];
    for (name, bo, co) in systems {
        t.push_row(name, vec![bo, co, bo / co]);
    }
    t
}

/// Table 1: the simulated system configuration, formatted.
pub fn table1(sim: &SimConfig) -> String {
    let mut s = String::new();
    use core::fmt::Write;
    let _ = writeln!(s, "Table 1 — Simulation environment");
    let _ = writeln!(
        s,
        "  GPU Cores        {} SMs @ {:.1} GHz",
        sim.num_sms, sim.sm_clock_ghz
    );
    let _ = writeln!(
        s,
        "  L1 Caches        {} kB/SM, {} ways",
        sim.l1.capacity_bytes / 1024,
        sim.l1.ways
    );
    let _ = writeln!(
        s,
        "  L2 Caches        memory side, {} kB/DRAM channel, {} ways",
        sim.l2.capacity_bytes / 1024,
        sim.l2.ways
    );
    let _ = writeln!(s, "  L2 MSHRs         {} entries/L2 slice", sim.l2_mshrs);
    for p in &sim.pools {
        let _ = writeln!(
            s,
            "  {:<16} {} channels, {} aggregate, +{} cycles",
            p.name, p.channels, p.bandwidth, p.extra_latency
        );
    }
    let t = sim.pools[0].timing;
    let _ = writeln!(
        s,
        "  DRAM timings     RCD={} RP={} RC={} CL=WR={} (SM cycles)",
        t.rcd, t.rp, t.rc, t.cl
    );
    s
}

/// Fig. 2a: performance sensitivity to memory bandwidth. Each value is
/// speedup relative to the 1.0× column under `LOCAL` placement.
pub fn fig2a(opts: &ExpOptions) -> Table {
    let factors = [0.5, 0.75, 1.0, 1.5, 2.0];
    let mut t = Table::new(
        "Fig. 2a — GPU performance sensitivity to bandwidth scaling (vs 1.0x)",
        factors.iter().map(|f| format!("{f:.2}x")).collect(),
    );
    for spec in opts.specs() {
        opts.progress(spec.name);
        let runs: Vec<_> = factors
            .iter()
            .map(|&f| {
                let sim = opts.sim.clone().with_bo_bandwidth_scaled(f);
                run_workload(
                    &spec,
                    &sim,
                    Capacity::Unconstrained,
                    &Placement::Policy(Mempolicy::local()),
                )
            })
            .collect();
        let base = runs[2].report.cycles as f64;
        t.push_row(
            spec.name,
            runs.iter().map(|r| base / r.report.cycles as f64).collect(),
        );
    }
    t.push_geomean();
    t
}

/// Fig. 2b: performance sensitivity to added memory latency. Values are
/// speedup relative to the +0 column (≤ 1.0 means slowdown).
pub fn fig2b(opts: &ExpOptions) -> Table {
    let extra = [0u64, 100, 200, 400];
    let mut t = Table::new(
        "Fig. 2b — GPU performance sensitivity to added latency (vs +0)",
        extra.iter().map(|e| format!("+{e}cyc")).collect(),
    );
    for spec in opts.specs() {
        opts.progress(spec.name);
        let runs: Vec<_> = extra
            .iter()
            .map(|&e| {
                let sim = opts.sim.clone().with_extra_latency(e);
                run_workload(
                    &spec,
                    &sim,
                    Capacity::Unconstrained,
                    &Placement::Policy(Mempolicy::local()),
                )
            })
            .collect();
        let base = runs[0].report.cycles as f64;
        t.push_row(
            spec.name,
            runs.iter().map(|r| base / r.report.cycles as f64).collect(),
        );
    }
    t.push_geomean();
    t
}

/// Fig. 3: performance across `xC-yB` placement ratios plus the Linux
/// `LOCAL` and `INTERLEAVE` policies, unconstrained capacity, normalized
/// to `LOCAL`.
pub fn fig3(opts: &ExpOptions) -> Table {
    let ratios: [u8; 7] = [0, 10, 20, 30, 50, 70, 90];
    let mut columns = vec!["LOCAL".to_string(), "INTERLEAVE".to_string()];
    columns.extend(ratios.iter().map(|r| format!("{}C-{}B", r, 100 - r)));
    let mut t = Table::new(
        "Fig. 3 — placement-ratio sweep, unconstrained capacity (perf vs LOCAL)",
        columns,
    );
    let topo = topology_for(&opts.sim, &[1, 1]);
    for spec in opts.specs() {
        opts.progress(spec.name);
        let local = run_workload(
            &spec,
            &opts.sim,
            Capacity::Unconstrained,
            &Placement::Policy(Mempolicy::local()),
        );
        let inter = run_workload(
            &spec,
            &opts.sim,
            Capacity::Unconstrained,
            &Placement::Policy(Mempolicy::interleave_all(&topo)),
        );
        let mut values = vec![1.0, inter.speedup_over(&local)];
        for &r in &ratios {
            let run = run_workload(
                &spec,
                &opts.sim,
                Capacity::Unconstrained,
                &Placement::Policy(Mempolicy::ratio_co(Percent::new(r))),
            );
            values.push(run.speedup_over(&local));
        }
        t.push_row(spec.name, values);
    }
    t.push_geomean();
    t
}

/// Fig. 4: BW-AWARE performance as BO capacity shrinks relative to the
/// footprint, normalized to the 100% point per workload.
pub fn fig4(opts: &ExpOptions) -> Table {
    let fractions = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1];
    let mut t = Table::new(
        "Fig. 4 — BW-AWARE performance vs BO capacity (fraction of footprint)",
        fractions
            .iter()
            .map(|f| format!("{:.0}%", f * 100.0))
            .collect(),
    );
    let topo = topology_for(&opts.sim, &[1, 1]);
    for spec in opts.specs() {
        opts.progress(spec.name);
        let runs: Vec<_> = fractions
            .iter()
            .map(|&f| {
                run_workload(
                    &spec,
                    &opts.sim,
                    Capacity::FractionOfFootprint(f),
                    &Placement::Policy(Mempolicy::bw_aware_for(&topo)),
                )
            })
            .collect();
        let base = runs[0].report.cycles as f64;
        t.push_row(
            spec.name,
            runs.iter().map(|r| base / r.report.cycles as f64).collect(),
        );
    }
    t.push_geomean();
    t
}

/// Fig. 5: policy comparison as CO bandwidth varies, geomean speedup
/// over `LOCAL` at the paper's 80 GB/s baseline.
pub fn fig5(opts: &ExpOptions) -> Table {
    let co_gbps = [10.0, 40.0, 80.0, 120.0, 160.0, 200.0];
    let mut t = Table::new(
        "Fig. 5 — policies vs CO-pool bandwidth (geomean speedup over LOCAL@80)",
        co_gbps.iter().map(|b| format!("{b:.0}GB/s")).collect(),
    );
    let specs = opts.specs();
    // Per-workload LOCAL baseline at 80 GB/s CO (the Table 1 machine).
    let baselines: Vec<f64> = specs
        .iter()
        .map(|spec| {
            run_workload(
                spec,
                &opts.sim,
                Capacity::Unconstrained,
                &Placement::Policy(Mempolicy::local()),
            )
            .report
            .cycles as f64
        })
        .collect();

    /// A named policy constructor over a topology.
    type NamedPolicy = (&'static str, fn(&mempolicy::NumaTopology) -> Mempolicy);
    let policies: [NamedPolicy; 3] = [
        ("LOCAL", |_| Mempolicy::local()),
        ("INTERLEAVE", Mempolicy::interleave_all),
        ("BW-AWARE", Mempolicy::bw_aware_for),
    ];
    for (name, make_policy) in policies {
        opts.progress(name);
        let mut values = Vec::new();
        for &bw in &co_gbps {
            let sim = opts.sim.clone().with_co_bandwidth(Bandwidth::from_gbps(bw));
            let topo = topology_for(&sim, &[1, 1]);
            let speedups: Vec<f64> = specs
                .iter()
                .zip(&baselines)
                .map(|(spec, &base)| {
                    let run = run_workload(
                        spec,
                        &sim,
                        Capacity::Unconstrained,
                        &Placement::Policy(make_policy(&topo)),
                    );
                    base / run.report.cycles as f64
                })
                .collect();
            values.push(geomean(&speedups));
        }
        t.push_row(name, values);
    }
    t
}

/// Fig. 6: the per-workload bandwidth CDFs, plus a summary table of
/// traffic concentration (share of DRAM traffic from the hottest 10%
/// and 30% of pages).
pub fn fig6(opts: &ExpOptions) -> (Vec<(String, Cdf)>, Table) {
    let mut cdfs = Vec::new();
    let mut t = Table::new(
        "Fig. 6 — page access CDF summary (traffic share of hottest pages)",
        vec![
            "top10%".to_string(),
            "top30%".to_string(),
            "pages".to_string(),
        ],
    );
    for spec in opts.specs() {
        opts.progress(spec.name);
        let (hist, _) = profile_workload(&spec, &opts.sim);
        let cdf = hist.cdf();
        t.push_row(
            spec.name,
            vec![
                cdf.traffic_in_top(0.10),
                cdf.traffic_in_top(0.30),
                hist.touched_pages() as f64,
            ],
        );
        cdfs.push((spec.name.to_string(), cdf));
    }
    (cdfs, t)
}

/// Fig. 7 result for one workload: the per-structure attribution that
/// the CDF-vs-address scatter is colored by.
#[derive(Debug, Clone)]
pub struct Fig7Workload {
    /// Workload name.
    pub name: String,
    /// Per structure: (name, footprint share, traffic share, hotness/byte).
    pub structures: Vec<(String, f64, f64, f64)>,
    /// Traffic share of the hottest 10% of pages.
    pub top10: f64,
    /// Fraction of allocated pages never touched.
    pub untouched_frac: f64,
}

/// Fig. 7: CDF vs virtual-address layout for `bfs`, `mummergpu`, and
/// `needle` (the paper's three contrasting examples).
pub fn fig7(opts: &ExpOptions) -> Vec<Fig7Workload> {
    ["bfs", "mummergpu", "needle"]
        .iter()
        .map(|name| {
            opts.progress(name);
            let spec = opts.scale(catalog::by_name(name).expect("catalog workload"));
            let (hist, profile) = profile_workload(&spec, &opts.sim);
            let footprint: u64 = spec.structures.iter().map(|s| s.bytes).sum();
            let structures = profile
                .structures()
                .iter()
                .map(|s| {
                    (
                        s.range.name.clone(),
                        s.range.bytes() as f64 / footprint as f64,
                        s.traffic_share,
                        s.hotness,
                    )
                })
                .collect();
            let allocated_pages: u64 = spec.structures.iter().map(|s| s.pages()).sum();
            Fig7Workload {
                name: name.to_string(),
                structures,
                top10: hist.cdf().traffic_in_top(0.10),
                untouched_frac: 1.0 - hist.touched_pages() as f64 / allocated_pages as f64,
            }
        })
        .collect()
}

/// Fig. 8: oracle vs BW-AWARE placement, unconstrained and at 10% BO
/// capacity, normalized to unconstrained BW-AWARE.
pub fn fig8(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Fig. 8 — oracle vs BW-AWARE, unconstrained & 10% capacity (vs BW-AWARE@100%)",
        vec![
            "BWA@100%".to_string(),
            "Oracle@100%".to_string(),
            "BWA@10%".to_string(),
            "Oracle@10%".to_string(),
        ],
    );
    let topo = topology_for(&opts.sim, &[1, 1]);
    for spec in opts.specs() {
        opts.progress(spec.name);
        let (hist, _) = profile_workload(&spec, &opts.sim);
        let bwa = Placement::Policy(Mempolicy::bw_aware_for(&topo));
        let oracle = Placement::Oracle(hist);
        let base = run_workload(&spec, &opts.sim, Capacity::Unconstrained, &bwa);
        let runs = [
            run_workload(&spec, &opts.sim, Capacity::Unconstrained, &oracle),
            run_workload(&spec, &opts.sim, Capacity::FractionOfFootprint(0.10), &bwa),
            run_workload(
                &spec,
                &opts.sim,
                Capacity::FractionOfFootprint(0.10),
                &oracle,
            ),
        ];
        t.push_row(
            spec.name,
            std::iter::once(1.0)
                .chain(runs.iter().map(|r| r.speedup_over(&base)))
                .collect(),
        );
    }
    t.push_geomean();
    t
}

/// Fig. 10: annotation-hinted placement vs INTERLEAVE, BW-AWARE, and
/// oracle at 10% BO capacity, normalized to INTERLEAVE.
pub fn fig10(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Fig. 10 — profile-annotated placement at 10% capacity (vs INTERLEAVE)",
        vec![
            "INTERLEAVE".to_string(),
            "BW-AWARE".to_string(),
            "Annotated".to_string(),
            "Oracle".to_string(),
        ],
    );
    let cap = Capacity::FractionOfFootprint(0.10);
    let topo = topology_for(&opts.sim, &[1, 1]);
    for spec in opts.specs() {
        opts.progress(spec.name);
        let (hist, profile) = profile_workload(&spec, &opts.sim);
        let hints = hints_from_profile(&profile, &spec, &opts.sim, cap);
        let inter = run_workload(
            &spec,
            &opts.sim,
            cap,
            &Placement::Policy(Mempolicy::interleave_all(&topo)),
        );
        let bwa = run_workload(
            &spec,
            &opts.sim,
            cap,
            &Placement::Policy(Mempolicy::bw_aware_for(&topo)),
        );
        let annotated = run_workload(&spec, &opts.sim, cap, &Placement::Hinted(hints));
        let oracle = run_workload(&spec, &opts.sim, cap, &Placement::Oracle(hist));
        t.push_row(
            spec.name,
            vec![
                1.0,
                bwa.speedup_over(&inter),
                annotated.speedup_over(&inter),
                oracle.speedup_over(&inter),
            ],
        );
    }
    t.push_geomean();
    t
}

/// Fig. 11: hint robustness across input datasets. Hints are computed
/// from dataset 0 (training); each row is one (workload, dataset) pair
/// with speedups over that dataset's INTERLEAVE run.
pub fn fig11(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Fig. 11 — annotated placement across datasets, trained on dataset 0 (vs INTERLEAVE)",
        vec![
            "INTERLEAVE".to_string(),
            "BW-AWARE".to_string(),
            "Annotated".to_string(),
            "Oracle".to_string(),
        ],
    );
    let cap = Capacity::FractionOfFootprint(0.10);
    let topo = topology_for(&opts.sim, &[1, 1]);
    for name in ["bfs", "xsbench", "minife", "mummergpu"] {
        let sets: Vec<WorkloadSpec> = catalog::datasets(name)
            .into_iter()
            .map(|s| opts.scale(s))
            .collect();
        // Train on dataset 0.
        opts.progress(&format!("{name}: training"));
        let (_, train_profile) = profile_workload(&sets[0], &opts.sim);
        for (i, spec) in sets.iter().enumerate().skip(1) {
            opts.progress(&format!("{name}: dataset {i}"));
            let hints = hints_from_profile(&train_profile, spec, &opts.sim, cap);
            let (eval_hist, _) = profile_workload(spec, &opts.sim);
            let inter = run_workload(
                spec,
                &opts.sim,
                cap,
                &Placement::Policy(Mempolicy::interleave_all(&topo)),
            );
            let bwa = run_workload(
                spec,
                &opts.sim,
                cap,
                &Placement::Policy(Mempolicy::bw_aware_for(&topo)),
            );
            let annotated = run_workload(spec, &opts.sim, cap, &Placement::Hinted(hints));
            let oracle = run_workload(spec, &opts.sim, cap, &Placement::Oracle(eval_hist));
            t.push_row(
                format!("{name}/ds{i}"),
                vec![
                    1.0,
                    bwa.speedup_over(&inter),
                    annotated.speedup_over(&inter),
                    oracle.speedup_over(&inter),
                ],
            );
        }
    }
    t.push_geomean();
    t
}

/// Extension: DRAM access energy per placement policy (the paper's §2.1
/// motivation — GDDR5 costs significantly more energy per access than
/// DDR4 — quantified for the placement policies). Energy in millijoules;
/// the last column is BW-AWARE's energy-delay product relative to LOCAL
/// (< 1 means BW-AWARE is better on both axes combined).
pub fn ext_energy(opts: &ExpOptions) -> Table {
    let mut t = Table::new(
        "Extension — DRAM access energy by placement policy (mJ; EDP vs LOCAL)",
        vec![
            "LOCAL".to_string(),
            "INTERLEAVE".to_string(),
            "BW-AWARE".to_string(),
            "BWA EDP/LOCAL".to_string(),
        ],
    );
    let topo = topology_for(&opts.sim, &[1, 1]);
    let ghz = opts.sim.sm_clock_ghz;
    for spec in opts.specs() {
        opts.progress(spec.name);
        let runs: Vec<_> = [
            Mempolicy::local(),
            Mempolicy::interleave_all(&topo),
            Mempolicy::bw_aware_for(&topo),
        ]
        .into_iter()
        .map(|p| {
            run_workload(&spec, &opts.sim, Capacity::Unconstrained, &Placement::Policy(p))
        })
        .collect();
        let edp_rel = runs[2].report.energy_delay_product(ghz)
            / runs[0].report.energy_delay_product(ghz);
        t.push_row(
            spec.name,
            vec![
                runs[0].report.dram_energy_joules() * 1e3,
                runs[1].report.dram_energy_joules() * 1e3,
                runs[2].report.dram_energy_joules() * 1e3,
                edp_rel,
            ],
        );
    }
    t.push_geomean();
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext_energy_bw_aware_wins_edp() {
        // Moving 30% of traffic to the lower-energy DDR4 pool reduces
        // DRAM energy while also being faster: EDP must clearly favor
        // BW-AWARE for a bandwidth-bound workload.
        let mut opts = ExpOptions::quick();
        opts.workloads = Some(vec!["lbm".to_string()]);
        let t = ext_energy(&opts);
        let local = t.value("lbm", "LOCAL").unwrap();
        let bwa = t.value("lbm", "BW-AWARE").unwrap();
        assert!(bwa < local, "BW-AWARE energy {bwa} vs LOCAL {local}");
        assert!(t.value("lbm", "BWA EDP/LOCAL").unwrap() < 0.9);
    }

    #[test]
    fn fig1_ratios_match_paper_classes() {
        let t = fig1();
        assert_eq!(t.rows.len(), 3);
        let hpc = t.value("HPC (4xHBM+DDR4)", "BW-Ratio").unwrap();
        let desktop = t.value("Desktop (GDDR5+DDR4)", "BW-Ratio").unwrap();
        let mobile = t.value("Mobile (WIO2+LPDDR4)", "BW-Ratio").unwrap();
        assert!(hpc >= 8.0);
        assert!((desktop - 2.5).abs() < 1e-12);
        assert!((mobile - 2.0).abs() < 1e-12);
    }

    #[test]
    fn table1_mentions_all_parts() {
        let s = table1(&SimConfig::paper_baseline());
        for needle in [
            "15 SMs",
            "16 kB/SM",
            "128 kB/DRAM channel",
            "GDDR5",
            "DDR4",
            "128 entries",
        ] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn table_push_and_lookup() {
        let mut t = Table::new("t", vec!["a".to_string(), "b".to_string()]);
        t.push_row("r1", vec![2.0, 8.0]);
        t.push_row("r2", vec![8.0, 2.0]);
        t.push_geomean();
        assert_eq!(t.value("geomean", "a"), Some(4.0));
        assert_eq!(t.value("r1", "b"), Some(8.0));
        assert_eq!(t.value("nope", "a"), None);
        let shown = t.to_string();
        assert!(shown.contains("geomean"));
    }

    #[test]
    fn quick_fig3_shape() {
        // The core claim at small scale: for a bandwidth-bound workload
        // the 30C-70B column beats LOCAL and INTERLEAVE.
        let mut opts = ExpOptions::quick();
        opts.workloads = Some(vec!["lbm".to_string()]);
        let t = fig3(&opts);
        let bwa = t.value("lbm", "30C-70B").unwrap();
        let inter = t.value("lbm", "INTERLEAVE").unwrap();
        assert!(bwa > 1.02, "BW-AWARE vs LOCAL: {bwa}");
        assert!(bwa > inter, "BW-AWARE {bwa} vs INTERLEAVE {inter}");
    }

    #[test]
    fn quick_fig2_sensitivity_classes() {
        let mut opts = ExpOptions::quick();
        opts.workloads = Some(vec![
            "lbm".to_string(),
            "sgemm".to_string(),
            "comd".to_string(),
        ]);
        let a = fig2a(&opts);
        // lbm scales with bandwidth; comd does not.
        assert!(a.value("lbm", "2.00x").unwrap() > 1.25);
        assert!(a.value("comd", "2.00x").unwrap() < 1.10);
        let b = fig2b(&opts);
        // sgemm suffers from latency; lbm tolerates it.
        assert!(b.value("sgemm", "+400cyc").unwrap() < 0.75);
        assert!(b.value("lbm", "+400cyc").unwrap() > 0.85);
    }
}
