//! The cycle-level online page-migration engine behind the `MIGRATE`
//! policy.
//!
//! [`OnlineMigrator`] implements [`gpusim::PageMigrator`] on top of the
//! OS model's shared [`AddressSpace`] — the same handle the simulator's
//! translator faults pages through. The simulator calls it on every
//! DRAM-level access (the cache-filtered stream the paper's Figure 6
//! profiles); at self-scheduled epoch boundaries the engine ranks the
//! epoch's hot pages, rewrites the page table (`migrate_page`, the
//! `migrate_pages(2)` analog), and returns the physical copies for the
//! simulator to charge as real DRAM channel traffic. A freshly moved
//! page additionally stalls its next accesses for the remap latency —
//! the paper's "several microseconds" from invalidation to first
//! re-use, shared with the offline what-if study via
//! [`MigrationModel`].
//!
//! The decision scheme is deliberately AutoNUMA-flavoured:
//!
//! * pages with at least `hot` DRAM accesses in the epoch are promoted
//!   into the bandwidth-optimized zone, hottest first, capped at
//!   `batch` per epoch;
//! * when the BO zone is full, the least-recently-touched BO page is
//!   evicted to capacity-optimized memory to make room;
//! * pages colder than `cold` are demoted eagerly (off by default).
//!
//! Every ranking ties on the page number, so a run is deterministic —
//! byte-identical reports at any sweep thread count.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use gpusim::{MigrationCounters, PageCopy, PageMigrator, SimConfig};
use hmtypes::{Bandwidth, MemKind, PageNum, PAGE_SIZE};
use mempolicy::{AddressSpace, MigrateSpec, ZoneId};

/// Cost model for moving pages between memory zones — the single
/// source of truth shared by the online engine (remap latency) and the
/// offline what-if study in [`crate::migration`] (bulk copy cost).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationModel {
    /// Sustained page-copy bandwidth (paper: "not possible to migrate
    /// pages between NUMA memory zones at a rate faster than several
    /// GB/s" on Linux 3.16).
    pub copy_bandwidth: Bandwidth,
    /// One-time latency from invalidation to first re-use, in
    /// microseconds (paper: "several microseconds").
    pub pipeline_latency_us: f64,
}

impl Default for MigrationModel {
    fn default() -> Self {
        MigrationModel {
            copy_bandwidth: Bandwidth::from_gbps(4.0),
            pipeline_latency_us: 3.0,
        }
    }
}

impl MigrationModel {
    /// SM cycles to migrate `pages` pages at `sm_clock_ghz`, bulk copy
    /// plus one pipeline drain — the offline study's charge.
    pub fn cost_cycles(&self, pages: u64, sm_clock_ghz: f64) -> u64 {
        let bytes = pages as f64 * PAGE_SIZE as f64;
        let seconds = bytes / self.copy_bandwidth.bytes_per_sec() + self.pipeline_latency_us * 1e-6;
        (seconds * sm_clock_ghz * 1e9).ceil() as u64
    }

    /// SM cycles from invalidation to first re-use of one remapped page
    /// — the per-page stall the online engine charges. The copy itself
    /// is not included: the simulator charges it as DRAM channel
    /// occupancy instead.
    pub fn remap_cycles(&self, sm_clock_ghz: f64) -> u64 {
        (self.pipeline_latency_us * 1e-6 * sm_clock_ghz * 1e9).ceil() as u64
    }
}

/// One epoch boundary's page-movement summary: the per-epoch deltas
/// behind the run-level [`MigrationCounters`] aggregate. Collected by
/// [`OnlineMigrator`] into a shared log (see
/// [`OnlineMigrator::epoch_log`]) so observed runs can render epochs as
/// their own Chrome-trace track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MigrationEpochEvent {
    /// SM cycle at which the epoch closed.
    pub cycle: u64,
    /// 1-based index of the epoch that just closed.
    pub index: u64,
    /// Pages promoted into bandwidth-optimized memory this epoch.
    pub promoted: u64,
    /// Cold pages demoted to capacity-optimized memory this epoch.
    pub demoted: u64,
    /// LRU victims evicted to make room for promotions this epoch.
    pub evicted: u64,
    /// Physical page copies issued (promoted + demoted + evicted).
    pub copy_pages: u64,
}

/// The `MIGRATE` policy's engine: epoch-based hotness tracking over the
/// shared address space, with promotion, LRU eviction, and demotion.
///
/// Constructed by the run paths in [`crate::runner`] whenever the
/// effective [`mempolicy::Mempolicy`] carries a [`MigrateSpec`]; the
/// base placement faults pages in as usual and this engine rewrites the
/// page table mid-run.
#[derive(Debug)]
pub struct OnlineMigrator {
    mm: Rc<RefCell<AddressSpace>>,
    spec: MigrateSpec,
    bo: ZoneId,
    co: ZoneId,
    remap_cycles: u64,
    next_epoch: u64,
    /// 1-based index of the epoch currently being accumulated.
    epoch_index: u64,
    /// DRAM accesses per virtual page within the current epoch.
    counts: HashMap<u64, u64>,
    /// Cumulative accesses per page across all epochs (shared out via
    /// [`OnlineMigrator::hotness_tally`] so tests can reconcile it
    /// against the profiler's histogram).
    tally: Rc<RefCell<HashMap<u64, u64>>>,
    /// Last epoch each page was touched in (LRU eviction order).
    last_access: HashMap<u64, u64>,
    /// Pages mid-migration: page → cycle its new mapping is usable.
    pending: HashMap<u64, u64>,
    counters: MigrationCounters,
    /// Per-epoch movement log (shared out via
    /// [`OnlineMigrator::epoch_log`], same pattern as the tally).
    epochs: Rc<RefCell<Vec<MigrationEpochEvent>>>,
}

impl OnlineMigrator {
    /// Builds the engine over the run's shared address space. The remap
    /// latency comes from `spec` when given, else from
    /// [`MigrationModel::default`] at the machine's SM clock.
    pub fn new(mm: Rc<RefCell<AddressSpace>>, spec: MigrateSpec, sim: &SimConfig) -> Self {
        let (bo, co) = {
            let mm_ref = mm.borrow();
            let topo = mm_ref.topology();
            (
                topo.zone_of_kind(MemKind::BandwidthOptimized)
                    .unwrap_or(ZoneId::new(0)),
                topo.zone_of_kind(MemKind::CapacityOptimized)
                    .unwrap_or(ZoneId::new(0)),
            )
        };
        let remap_cycles = spec
            .remap_cycles
            .unwrap_or_else(|| MigrationModel::default().remap_cycles(sim.sm_clock_ghz));
        OnlineMigrator {
            mm,
            spec,
            bo,
            co,
            remap_cycles,
            next_epoch: spec.epoch_cycles.max(1),
            epoch_index: 1,
            counts: HashMap::new(),
            tally: Rc::new(RefCell::new(HashMap::new())),
            last_access: HashMap::new(),
            pending: HashMap::new(),
            counters: MigrationCounters::default(),
            epochs: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Shared handle to the cumulative per-page access tally. Clone it
    /// before handing the migrator to the simulator; after the run it
    /// holds exactly the accesses every epoch counted.
    pub fn hotness_tally(&self) -> Rc<RefCell<HashMap<u64, u64>>> {
        Rc::clone(&self.tally)
    }

    /// Shared handle to the per-epoch movement log. Clone it before
    /// handing the migrator to the simulator; after the run it holds
    /// one [`MigrationEpochEvent`] per closed epoch, in cycle order.
    pub fn epoch_log(&self) -> Rc<RefCell<Vec<MigrationEpochEvent>>> {
        Rc::clone(&self.epochs)
    }

    /// The per-page remap stall this engine charges, in cycles.
    pub fn remap_latency_cycles(&self) -> u64 {
        self.remap_cycles
    }

    /// Moves `page` to `dst`, returning the physical copy to charge, or
    /// `None` when the zone is full (the caller then evicts).
    fn move_page(mm: &mut AddressSpace, page: u64, dst: ZoneId) -> Option<PageCopy> {
        let page = PageNum::new(page);
        let old = mm.frame_of(page)?;
        let src = mm.allocator().zone_of(old)?;
        let new = mm.migrate_page(page, dst).ok()?;
        Some(PageCopy {
            src_pool: src.index(),
            src_line: old.base().line_index(),
            dst_pool: dst.index(),
            dst_line: new.base().line_index(),
        })
    }
}

impl PageMigrator for OnlineMigrator {
    fn record_access(&mut self, _now: u64, page: u64) {
        *self.counts.entry(page).or_insert(0) += 1;
        *self.tally.borrow_mut().entry(page).or_insert(0) += 1;
        self.last_access.insert(page, self.epoch_index);
    }

    fn remap_stall(&mut self, now: u64, page: u64) -> u64 {
        match self.pending.get(&page) {
            Some(&ready) => ready.saturating_sub(now),
            None => 0,
        }
    }

    fn next_epoch(&self) -> u64 {
        self.next_epoch
    }

    fn epoch(&mut self, now: u64) -> Vec<PageCopy> {
        let before = self.counters;
        let closed_index = self.epoch_index;
        self.counters.epochs += 1;
        self.epoch_index += 1;
        self.next_epoch = now + self.spec.epoch_cycles.max(1);
        self.pending.retain(|_, ready| *ready > now);

        let mut mm = self.mm.borrow_mut();
        let mut copies = Vec::new();

        // Residency snapshot in page order (the dense page table
        // iterates low to high), the base order every ranking below
        // ties back to — keeping each epoch fully deterministic.
        let resident: Vec<(u64, ZoneId)> = mm
            .mappings()
            .filter_map(|(page, frame)| mm.allocator().zone_of(frame).map(|z| (page.index(), z)))
            .collect();
        let zone_of: HashMap<u64, ZoneId> = resident.iter().copied().collect();

        // Demote cold BO pages first so their frames are reusable.
        let mut demoted = HashSet::new();
        if self.spec.cold_threshold > 0 {
            for &(page, zone) in &resident {
                if zone != self.bo {
                    continue;
                }
                let count = self.counts.get(&page).copied().unwrap_or(0);
                if count >= self.spec.cold_threshold {
                    continue;
                }
                if let Some(copy) = Self::move_page(&mut mm, page, self.co) {
                    copies.push(copy);
                    self.counters.demoted += 1;
                    self.pending.insert(page, now + self.remap_cycles);
                    demoted.insert(page);
                }
            }
        }

        // Promotion candidates: pages outside BO that crossed the hot
        // threshold this epoch, hottest first, capped at the batch.
        let mut hot: Vec<(u64, u64)> = self
            .counts
            .iter()
            .filter(|&(page, &count)| {
                count >= self.spec.hot_threshold && zone_of.get(page) == Some(&self.co)
            })
            .map(|(&page, &count)| (count, page))
            .collect();
        hot.sort_by_key(|&(count, page)| (std::cmp::Reverse(count), page));
        hot.truncate(self.spec.batch_pages as usize);

        // Eviction order: least-recently-touched BO page first, the
        // hot set and already-demoted pages excluded.
        let hot_set: HashSet<u64> = hot.iter().map(|&(_, page)| page).collect();
        let mut victims: Vec<u64> = resident
            .iter()
            .filter(|(page, zone)| {
                *zone == self.bo && !demoted.contains(page) && !hot_set.contains(page)
            })
            .map(|&(page, _)| page)
            .collect();
        victims.sort_by_key(|page| (self.last_access.get(page).copied().unwrap_or(0), *page));
        let mut victims = victims.into_iter();

        for (_, page) in hot {
            loop {
                if let Some(copy) = Self::move_page(&mut mm, page, self.bo) {
                    copies.push(copy);
                    self.counters.promoted += 1;
                    self.pending.insert(page, now + self.remap_cycles);
                    break;
                }
                // BO full: evict the LRU victim, then retry the promote.
                let Some(victim) = victims.next() else { break };
                let Some(copy) = Self::move_page(&mut mm, victim, self.co) else {
                    break;
                };
                copies.push(copy);
                self.counters.evicted += 1;
                self.pending.insert(victim, now + self.remap_cycles);
            }
        }

        self.counts.clear();
        self.epochs.borrow_mut().push(MigrationEpochEvent {
            cycle: now,
            index: closed_index,
            promoted: self.counters.promoted - before.promoted,
            demoted: self.counters.demoted - before.demoted,
            evicted: self.counters.evicted - before.evicted,
            copy_pages: copies.len() as u64,
        });
        copies
    }

    fn counters(&self) -> MigrationCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::topology_for;
    use hmtypes::PAGE_SIZE;

    fn setup(bo_pages: u64) -> (Rc<RefCell<AddressSpace>>, SimConfig) {
        let sim = SimConfig::paper_baseline();
        let topo = topology_for(&sim, &[bo_pages, 64]);
        let mm = AddressSpace::new(topo);
        (Rc::new(RefCell::new(mm)), sim)
    }

    fn map_pages(mm: &Rc<RefCell<AddressSpace>>, n: u64, zone: ZoneId) -> Vec<u64> {
        let mut m = mm.borrow_mut();
        let range = m.mmap(n * PAGE_SIZE as u64).unwrap();
        let mut pages = Vec::new();
        for page in range.pages() {
            m.ensure_mapped_in(page, &[zone]).unwrap();
            pages.push(page.index());
        }
        pages
    }

    #[test]
    fn remap_cycles_derive_from_shared_model() {
        // 3 us at 1.4 GHz = 4200 cycles.
        assert_eq!(MigrationModel::default().remap_cycles(1.4), 4200);
        let (mm, sim) = setup(4);
        let mig = OnlineMigrator::new(mm, MigrateSpec::default(), &sim);
        assert_eq!(mig.remap_latency_cycles(), 4200);
        let spec = MigrateSpec {
            remap_cycles: Some(77),
            ..MigrateSpec::default()
        };
        let (mm2, sim2) = setup(4);
        assert_eq!(
            OnlineMigrator::new(mm2, spec, &sim2).remap_latency_cycles(),
            77
        );
    }

    #[test]
    fn hot_page_promotes_and_stalls_until_remapped() {
        let (mm, sim) = setup(4);
        let co = ZoneId::new(1);
        let pages = map_pages(&mm, 2, co);
        let mut mig = OnlineMigrator::new(Rc::clone(&mm), MigrateSpec::default(), &sim);
        assert_eq!(mig.next_epoch(), 100_000);
        for _ in 0..10 {
            mig.record_access(50, pages[0]);
        }
        let copies = mig.epoch(100_000);
        assert_eq!(copies.len(), 1);
        assert_eq!(copies[0].src_pool, 1);
        assert_eq!(copies[0].dst_pool, 0);
        assert_eq!(mig.counters().promoted, 1);
        assert_eq!(mig.next_epoch(), 200_000);
        assert_eq!(
            mm.borrow().zone_of_page(PageNum::new(pages[0])),
            Some(ZoneId::new(0))
        );
        // The rewritten mapping stalls accesses until it settles.
        assert_eq!(mig.remap_stall(100_000, pages[0]), 4200);
        assert_eq!(mig.remap_stall(103_000, pages[0]), 1200);
        assert_eq!(mig.remap_stall(105_000, pages[0]), 0);
        assert_eq!(mig.remap_stall(100_000, pages[1]), 0);
        // Cold page stays put; counts reset between epochs.
        assert!(mig.epoch(200_000).is_empty());
        assert_eq!(mig.counters().epochs, 2);
    }

    #[test]
    fn full_bo_evicts_lru_victim_to_make_room() {
        let (mm, sim) = setup(1);
        let bo = ZoneId::new(0);
        let co = ZoneId::new(1);
        let cold = map_pages(&mm, 1, bo);
        let pages = map_pages(&mm, 2, co);
        let mut mig = OnlineMigrator::new(Rc::clone(&mm), MigrateSpec::default(), &sim);
        for _ in 0..10 {
            mig.record_access(10, pages[1]);
        }
        let copies = mig.epoch(100_000);
        // The untouched BO page was evicted, then the hot page promoted.
        assert_eq!(copies.len(), 2);
        assert_eq!(mig.counters().evicted, 1);
        assert_eq!(mig.counters().promoted, 1);
        assert_eq!(
            mm.borrow().zone_of_page(PageNum::new(cold[0])),
            Some(co),
            "LRU victim lands in CO"
        );
        assert_eq!(mm.borrow().zone_of_page(PageNum::new(pages[1])), Some(bo));
    }

    #[test]
    fn cold_threshold_demotes_idle_bo_pages() {
        let (mm, sim) = setup(4);
        let bo = ZoneId::new(0);
        let pages = map_pages(&mm, 2, bo);
        let spec = MigrateSpec {
            cold_threshold: 3,
            ..MigrateSpec::default()
        };
        let mut mig = OnlineMigrator::new(Rc::clone(&mm), spec, &sim);
        // pages[0] stays warm enough; pages[1] is cold.
        for _ in 0..5 {
            mig.record_access(1, pages[0]);
        }
        mig.record_access(1, pages[1]);
        let copies = mig.epoch(100_000);
        assert_eq!(copies.len(), 1);
        assert_eq!(mig.counters().demoted, 1);
        assert_eq!(
            mm.borrow().zone_of_page(PageNum::new(pages[1])),
            Some(ZoneId::new(1))
        );
        assert_eq!(mm.borrow().zone_of_page(PageNum::new(pages[0])), Some(bo));
    }

    #[test]
    fn epoch_log_records_per_epoch_deltas() {
        let (mm, sim) = setup(1);
        let bo = ZoneId::new(0);
        let co = ZoneId::new(1);
        map_pages(&mm, 1, bo);
        let pages = map_pages(&mm, 2, co);
        let mut mig = OnlineMigrator::new(Rc::clone(&mm), MigrateSpec::default(), &sim);
        let log = mig.epoch_log();
        for _ in 0..10 {
            mig.record_access(10, pages[1]);
        }
        mig.epoch(100_000); // evict + promote
        mig.epoch(200_000); // quiet epoch
        let events = log.borrow();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0],
            MigrationEpochEvent {
                cycle: 100_000,
                index: 1,
                promoted: 1,
                demoted: 0,
                evicted: 1,
                copy_pages: 2,
            }
        );
        assert_eq!(events[1].cycle, 200_000);
        assert_eq!(events[1].index, 2);
        assert_eq!(events[1].copy_pages, 0);
        // Deltas reconcile with the run-level aggregate.
        let total: u64 = events
            .iter()
            .map(|e| e.promoted + e.demoted + e.evicted)
            .sum();
        let c = mig.counters();
        assert_eq!(total, c.promoted + c.demoted + c.evicted);
        assert_eq!(events.len() as u64, c.epochs);
    }

    #[test]
    fn tally_accumulates_across_epochs() {
        let (mm, sim) = setup(4);
        let pages = map_pages(&mm, 2, ZoneId::new(1));
        let mut mig = OnlineMigrator::new(mm, MigrateSpec::default(), &sim);
        let tally = mig.hotness_tally();
        for _ in 0..3 {
            mig.record_access(1, pages[0]);
        }
        mig.epoch(100_000);
        for _ in 0..2 {
            mig.record_access(150_000, pages[0]);
        }
        mig.record_access(150_000, pages[1]);
        assert_eq!(tally.borrow().get(&pages[0]), Some(&5));
        assert_eq!(tally.borrow().get(&pages[1]), Some(&1));
    }
}
