//! The experiment engine: run one workload under one placement strategy.
//!
//! This is the glue every figure of the paper is regenerated through:
//! allocate the workload's data structures through the runtime, apply a
//! placement strategy (an OS policy, profile-derived hints, or the
//! two-phase oracle), simulate, and report.

use std::cell::RefCell;
use std::rc::Rc;

use gpusim::{
    run_sampled, EventTracer, Fidelity, IntervalReport, IntervalSampler, NullMigrator,
    NullObserver, ProbeObserver, SimConfig, SimReport, SimTraceEvent, Simulator,
};
use hmtypes::MemKind;
use mempolicy::{AddressSpace, Mempolicy, MigrateSpec, PlacementEvent, ZoneId};
use profiler::{get_allocation, MemHint, OraclePlacement, PageHistogram, RunProfile};
use workloads::{TraceProgram, WorkloadSpec};

use crate::migrate::{MigrationEpochEvent, OnlineMigrator};
use crate::runtime::HmRuntime;
use crate::translate::{topology_for, OsTranslator};

/// How much bandwidth-optimized capacity the machine has, relative to
/// the workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Capacity {
    /// BO comfortably holds the whole footprint (the paper's §3 setting).
    Unconstrained,
    /// BO holds only this fraction of the application footprint (the
    /// paper's §4/§5 setting; 0.10 for the headline experiments).
    FractionOfFootprint(f64),
}

impl Capacity {
    /// Concrete BO page budget for a given footprint.
    pub fn bo_pages(self, footprint_pages: u64) -> u64 {
        match self {
            // Headroom beyond the footprint so guard gaps never constrain.
            Capacity::Unconstrained => footprint_pages + 64,
            Capacity::FractionOfFootprint(f) => {
                assert!((0.0..=1.0).contains(&f), "fraction out of range");
                ((footprint_pages as f64 * f).ceil() as u64).max(1)
            }
        }
    }
}

/// A placement strategy for one run.
#[derive(Debug, Clone)]
pub enum Placement {
    /// Fault pages in under an OS policy (`LOCAL`, `INTERLEAVE`,
    /// `BW-AWARE`, or any explicit `xC-yB` ratio).
    Policy(Mempolicy),
    /// Per-structure hints, in allocation order (paper §5; produce them
    /// with [`hints_from_profile`] or [`profiler::get_allocation`]).
    Hinted(Vec<MemHint>),
    /// Perfect-knowledge placement from a profiling pass (paper §4.2):
    /// hottest pages into BO until the bandwidth-service target or BO
    /// capacity is reached.
    Oracle(PageHistogram),
}

/// Result of one workload run.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// The simulator's report.
    pub report: SimReport,
    /// Mapped pages per zone after the run.
    pub placement: Vec<u64>,
    /// The workload's footprint in pages.
    pub footprint_pages: u64,
    /// The BO page budget the run had.
    pub bo_pages: u64,
    /// The named allocation ranges of the run (profiler input).
    pub ranges: Vec<profiler::AllocRange>,
}

impl WorkloadRun {
    /// Relative performance vs `baseline` (`baseline.cycles / cycles`).
    pub fn speedup_over(&self, baseline: &WorkloadRun) -> f64 {
        self.report.speedup_over(&baseline.report)
    }
}

/// What to observe during an instrumented run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObserveConfig {
    /// Emit one interval sample every this many cycles (`None` = off).
    pub sample_cycles: Option<u64>,
    /// Collect a Chrome-trace-convertible event stream.
    pub trace: bool,
    /// Event budget for the tracer (drops beyond it are counted).
    pub trace_budget: usize,
}

impl ObserveConfig {
    /// Default tracer budget: plenty for a quick run, bounded for a
    /// full one (~20 MB of JSON worst case).
    pub const DEFAULT_TRACE_BUDGET: usize = 100_000;
}

impl Default for ObserveConfig {
    fn default() -> Self {
        ObserveConfig {
            sample_cycles: None,
            trace: false,
            trace_budget: Self::DEFAULT_TRACE_BUDGET,
        }
    }
}

/// The raw event stream from one traced run.
#[derive(Debug, Clone)]
pub struct SimTrace {
    /// Retained events, in retirement order.
    pub events: Vec<SimTraceEvent>,
    /// Events dropped once the budget was exhausted.
    pub dropped: u64,
    /// The budget the tracer ran with.
    pub budget: usize,
}

/// A [`WorkloadRun`] plus everything the observers collected.
#[derive(Debug, Clone)]
pub struct ObservedRun {
    /// The plain run result (identical to an unobserved run).
    pub run: WorkloadRun,
    /// Per-interval time-series (empty when sampling was off).
    pub intervals: Vec<IntervalReport>,
    /// The event trace (`None` when tracing was off).
    pub trace: Option<SimTrace>,
    /// Every OS placement decision, in decision order.
    pub placements: Vec<PlacementEvent>,
    /// Per-epoch migration deltas, in cycle order (empty unless the
    /// placement carried a `MIGRATE` spec).
    pub migration_epochs: Vec<MigrationEpochEvent>,
}

/// The BW-AWARE bandwidth-service target for the BO pool
/// (`bB / (bB + bC)` from the simulated machine's pools).
pub fn bo_traffic_target(sim: &SimConfig) -> f64 {
    let bo: f64 = sim
        .pools
        .iter()
        .filter(|p| p.kind == MemKind::BandwidthOptimized)
        .map(|p| p.bandwidth.bytes_per_sec())
        .sum();
    let total: f64 = sim.pools.iter().map(|p| p.bandwidth.bytes_per_sec()).sum();
    if total == 0.0 {
        0.0
    } else {
        bo / total
    }
}

/// The unified session API for running one workload: every run — plain,
/// profiled, or observed — is configured through this one builder, which
/// replaced the `run_workload` / `run_workload_profiled` /
/// `run_workload_observed` function trio.
///
/// Unset knobs take the paper's defaults: unconstrained BO capacity,
/// BW-AWARE placement (the proposed GPU default, §3.2.2), no page
/// profiling, no observers, and the workload's own RNG seed.
///
/// # Examples
///
/// ```
/// use gpusim::SimConfig;
/// use hetmem::runner::{Capacity, Placement, RunBuilder};
/// use mempolicy::Mempolicy;
/// use workloads::catalog;
///
/// let mut sim = SimConfig::paper_baseline();
/// sim.num_sms = 2;
/// let mut spec = catalog::by_name("hotspot").unwrap();
/// spec.mem_ops = 5_000;
///
/// let run = RunBuilder::new(&spec, &sim)
///     .capacity(Capacity::FractionOfFootprint(0.5))
///     .placement(&Placement::Policy(Mempolicy::local()))
///     .run();
/// assert!(run.report.completed);
/// ```
#[derive(Debug, Clone)]
pub struct RunBuilder<'a> {
    spec: &'a WorkloadSpec,
    sim: &'a SimConfig,
    capacity: Capacity,
    placement: Option<&'a Placement>,
    profile_pages: bool,
    observe: ObserveConfig,
    seed: Option<u64>,
    fidelity: Fidelity,
}

impl<'a> RunBuilder<'a> {
    /// Starts a run of `spec` on the machine `sim` with default knobs.
    pub fn new(spec: &'a WorkloadSpec, sim: &'a SimConfig) -> Self {
        RunBuilder {
            spec,
            sim,
            capacity: Capacity::Unconstrained,
            placement: None,
            profile_pages: false,
            observe: ObserveConfig::default(),
            seed: None,
            fidelity: Fidelity::Full,
        }
    }

    /// Sets the BO capacity regime (default: unconstrained).
    pub fn capacity(mut self, capacity: Capacity) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets the placement strategy (default: the task-wide BW-AWARE
    /// policy derived from the machine's pools).
    pub fn placement(mut self, placement: &'a Placement) -> Self {
        self.placement = Some(placement);
        self
    }

    /// Additionally collects the per-page DRAM access histogram
    /// (slower; what profiling passes read).
    pub fn profiled(mut self) -> Self {
        self.profile_pages = true;
        self
    }

    /// Attaches the observability layer per `obs` on the observed run
    /// path ([`RunBuilder::run_observed`]).
    pub fn observe(mut self, obs: ObserveConfig) -> Self {
        self.observe = obs;
        self
    }

    /// Overrides the workload's base RNG seed for this run.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the simulation fidelity (default: [`Fidelity::Full`]).
    /// [`Fidelity::Sampled`] runs the SMARTS-style fast-forward engine:
    /// the report's [`SimReport::estimated`] block is then always
    /// present and aggregate counters are model extrapolations, not
    /// exact counts.
    pub fn fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Resolves the effective spec (seed override) and placement
    /// (BW-AWARE default), then hands both to `body`.
    fn with_effective<R>(&self, body: impl FnOnce(&WorkloadSpec, &Placement) -> R) -> R {
        let seeded;
        let spec = match self.seed {
            Some(seed) => {
                let mut s = self.spec.clone();
                s.seed = seed;
                seeded = s;
                &seeded
            }
            None => self.spec,
        };
        let default_placement;
        let placement = match self.placement {
            Some(p) => p,
            None => {
                default_placement = Placement::Policy(Mempolicy::bw_aware_for(
                    &crate::translate::topology_for(self.sim, &vec![1; self.sim.pools.len()]),
                ));
                &default_placement
            }
        };
        body(spec, placement)
    }

    /// Executes the run and returns the plain typed output.
    ///
    /// # Panics
    ///
    /// Panics if the strategy is [`Placement::Hinted`] with the wrong
    /// number of hints, or if the simulated machine runs out of total
    /// memory.
    pub fn run(&self) -> WorkloadRun {
        self.with_effective(|spec, placement| {
            let mut prep = prepare_run(spec, self.sim, self.capacity, placement, false);
            let (translator, program) = prep.take_sim_parts();
            if let Fidelity::Sampled(sc) = self.fidelity {
                let report = if let Some(ms) = migrate_spec_of(placement) {
                    let mig = OnlineMigrator::new(Rc::clone(&prep.mm), ms, self.sim);
                    run_sampled(
                        self.sim.clone(),
                        translator,
                        program,
                        sc,
                        NullObserver,
                        mig,
                        self.profile_pages,
                    )
                    .0
                } else {
                    run_sampled(
                        self.sim.clone(),
                        translator,
                        program,
                        sc,
                        NullObserver,
                        NullMigrator,
                        self.profile_pages,
                    )
                    .0
                };
                return prep.finish(report);
            }
            if let Some(ms) = migrate_spec_of(placement) {
                let mig = OnlineMigrator::new(Rc::clone(&prep.mm), ms, self.sim);
                let mut simulator =
                    Simulator::new(self.sim.clone(), translator, program).with_migrator(mig);
                if self.profile_pages {
                    simulator = simulator.with_page_profiling();
                }
                return prep.finish(simulator.run());
            }
            let mut simulator = Simulator::new(self.sim.clone(), translator, program);
            if self.profile_pages {
                simulator = simulator.with_page_profiling();
            }
            let report = simulator.run();
            prep.finish(report)
        })
    }

    /// Executes the run like [`RunBuilder::run`], additionally returning
    /// the engine's throughput counters ([`gpusim::EngineStats`]) — the
    /// `hetmem-perf` benchmark path. The `WorkloadRun` is identical to
    /// what [`RunBuilder::run`] produces.
    ///
    /// # Panics
    ///
    /// Same conditions as [`RunBuilder::run`].
    pub fn run_instrumented(&self) -> (WorkloadRun, gpusim::EngineStats) {
        self.with_effective(|spec, placement| {
            let mut prep = prepare_run(spec, self.sim, self.capacity, placement, false);
            let (translator, program) = prep.take_sim_parts();
            if let Fidelity::Sampled(sc) = self.fidelity {
                let (report, stats) = if let Some(ms) = migrate_spec_of(placement) {
                    let mig = OnlineMigrator::new(Rc::clone(&prep.mm), ms, self.sim);
                    let (r, _obs, s) = run_sampled(
                        self.sim.clone(),
                        translator,
                        program,
                        sc,
                        NullObserver,
                        mig,
                        self.profile_pages,
                    );
                    (r, s)
                } else {
                    let (r, _obs, s) = run_sampled(
                        self.sim.clone(),
                        translator,
                        program,
                        sc,
                        NullObserver,
                        NullMigrator,
                        self.profile_pages,
                    );
                    (r, s)
                };
                return (prep.finish(report), stats);
            }
            if let Some(ms) = migrate_spec_of(placement) {
                let mig = OnlineMigrator::new(Rc::clone(&prep.mm), ms, self.sim);
                let mut simulator =
                    Simulator::new(self.sim.clone(), translator, program).with_migrator(mig);
                if self.profile_pages {
                    simulator = simulator.with_page_profiling();
                }
                let (report, _obs, stats) = simulator.run_instrumented();
                return (prep.finish(report), stats);
            }
            let mut simulator = Simulator::new(self.sim.clone(), translator, program);
            if self.profile_pages {
                simulator = simulator.with_page_profiling();
            }
            let (report, _obs, stats) = simulator.run_instrumented();
            (prep.finish(report), stats)
        })
    }

    /// Executes the run with the observability layer attached (interval
    /// sampler and/or event tracer per the builder's [`ObserveConfig`],
    /// plus the OS placement decision log) and returns the observed
    /// typed output. With observers configured off this produces exactly
    /// the cycle counts and report of [`RunBuilder::run`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`RunBuilder::run`].
    pub fn run_observed(&self) -> ObservedRun {
        self.with_effective(|spec, placement| {
            let obs = &self.observe;
            let mut prep = prepare_run(spec, self.sim, self.capacity, placement, true);
            let (translator, program) = prep.take_sim_parts();
            let probe = ProbeObserver::new(
                obs.sample_cycles
                    .map(|n| IntervalSampler::new(n, self.sim.pools.len())),
                obs.trace.then(|| EventTracer::new(obs.trace_budget)),
            );
            let mut epoch_log = None;
            let (report, probe) = if let Fidelity::Sampled(sc) = self.fidelity {
                // Observers see only the detail windows; the returned
                // report is the extrapolated one.
                if let Some(ms) = migrate_spec_of(placement) {
                    let mig = OnlineMigrator::new(Rc::clone(&prep.mm), ms, self.sim);
                    epoch_log = Some(mig.epoch_log());
                    let (r, probe, _stats) =
                        run_sampled(self.sim.clone(), translator, program, sc, probe, mig, false);
                    (r, probe)
                } else {
                    let (r, probe, _stats) = run_sampled(
                        self.sim.clone(),
                        translator,
                        program,
                        sc,
                        probe,
                        NullMigrator,
                        false,
                    );
                    (r, probe)
                }
            } else if let Some(ms) = migrate_spec_of(placement) {
                let mig = OnlineMigrator::new(Rc::clone(&prep.mm), ms, self.sim);
                epoch_log = Some(mig.epoch_log());
                Simulator::new(self.sim.clone(), translator, program)
                    .with_observer(probe)
                    .with_migrator(mig)
                    .run_observed()
            } else {
                Simulator::new(self.sim.clone(), translator, program)
                    .with_observer(probe)
                    .run_observed()
            };
            let placements = prep.mm.borrow_mut().take_placement_log();
            let migration_epochs = epoch_log.map_or_else(Vec::new, |log| log.borrow().clone());
            let run = prep.finish(report);
            ObservedRun {
                run,
                intervals: probe
                    .sampler
                    .map(IntervalSampler::into_reports)
                    .unwrap_or_default(),
                trace: probe.tracer.map(|t| {
                    let budget = t.budget();
                    let (events, dropped) = t.into_parts();
                    SimTrace {
                        events,
                        dropped,
                        budget,
                    }
                }),
                placements,
                migration_epochs,
            }
        })
    }
}

/// Runs `spec` on `sim` with the given BO capacity and placement.
///
/// # Panics
///
/// Panics if the strategy is [`Placement::Hinted`] with the wrong number
/// of hints, or if the simulated machine runs out of total memory.
#[deprecated(since = "0.2.0", note = "use RunBuilder::new(spec, sim)…run()")]
pub fn run_workload(
    spec: &WorkloadSpec,
    sim: &SimConfig,
    capacity: Capacity,
    placement: &Placement,
) -> WorkloadRun {
    RunBuilder::new(spec, sim)
        .capacity(capacity)
        .placement(placement)
        .run()
}

/// Like [`run_workload`], additionally collecting the per-page DRAM
/// access histogram (slower; used by profiling passes).
#[deprecated(
    since = "0.2.0",
    note = "use RunBuilder::new(spec, sim)…profiled().run()"
)]
pub fn run_workload_profiled(
    spec: &WorkloadSpec,
    sim: &SimConfig,
    capacity: Capacity,
    placement: &Placement,
) -> WorkloadRun {
    RunBuilder::new(spec, sim)
        .capacity(capacity)
        .placement(placement)
        .profiled()
        .run()
}

/// Everything shared between the plain and observed run paths: the
/// allocated/placed address space, the program, and the run metadata.
struct PreparedRun {
    mm: Rc<RefCell<AddressSpace>>,
    translator: OsTranslator,
    program: Option<TraceProgram>,
    ranges: Vec<profiler::AllocRange>,
    footprint_pages: u64,
    bo_pages: u64,
}

impl PreparedRun {
    /// Splits off the simulator inputs, leaving the post-run metadata.
    fn take_sim_parts(&mut self) -> (OsTranslator, TraceProgram) {
        (
            self.translator.clone(),
            self.program.take().expect("program taken once"),
        )
    }

    /// Builds the final [`WorkloadRun`] once the simulator has reported.
    fn finish(self, report: SimReport) -> WorkloadRun {
        let placement_hist = self.mm.borrow().placement_histogram();
        WorkloadRun {
            report,
            placement: placement_hist,
            footprint_pages: self.footprint_pages,
            bo_pages: self.bo_pages,
            ranges: self.ranges,
        }
    }
}

/// The `MIGRATE` spec of a policy placement, if any — what decides
/// whether a run path attaches an [`OnlineMigrator`].
fn migrate_spec_of(placement: &Placement) -> Option<MigrateSpec> {
    match placement {
        Placement::Policy(p) => p.migrate_spec().copied(),
        _ => None,
    }
}

/// Allocates, places, and wires up one run. `log_placements` turns the
/// OS decision log on *before* the placement strategy is applied, so
/// hinted and oracle pre-placements are captured too.
fn prepare_run(
    spec: &WorkloadSpec,
    sim: &SimConfig,
    capacity: Capacity,
    placement: &Placement,
    log_placements: bool,
) -> PreparedRun {
    spec.validate();
    let footprint_pages = spec.footprint_pages();
    let bo_pages = capacity.bo_pages(footprint_pages);
    // The CO pool always holds the spill (the paper's systems never OOM:
    // CO is the high-capacity pool).
    let co_pages = footprint_pages + 64;
    let topo = topology_for(sim, &[bo_pages, co_pages]);
    let mut rt = HmRuntime::new(topo.clone());
    if log_placements {
        rt.address_space().borrow_mut().enable_placement_log();
    }

    match placement {
        Placement::Policy(p) => {
            rt.set_policy(p.clone());
            for s in &spec.structures {
                rt.malloc(s.name, s.bytes).expect("allocation");
            }
        }
        Placement::Hinted(hints) => {
            assert_eq!(hints.len(), spec.structures.len(), "one hint per structure");
            for (s, &h) in spec.structures.iter().zip(hints) {
                rt.malloc_with_hint(s.name, s.bytes, h).expect("allocation");
            }
        }
        Placement::Oracle(histogram) => {
            for s in &spec.structures {
                rt.malloc(s.name, s.bytes).expect("allocation");
            }
            preplace_oracle(&rt, histogram, bo_pages, bo_traffic_target(sim));
        }
    }

    let bases: Vec<_> = rt.allocations().iter().map(|a| a.range.start).collect();
    let program = TraceProgram::new(spec, &bases, sim.num_sms);
    let mm = rt.address_space();
    let translator = OsTranslator::new(Rc::clone(&mm));
    let ranges = rt.alloc_ranges();
    PreparedRun {
        mm,
        translator,
        program: Some(program),
        ranges,
        footprint_pages,
        bo_pages,
    }
}

/// Like [`run_workload`], with the observability layer attached: an
/// interval sampler and/or event tracer per `obs`, plus the OS placement
/// decision log. With observers configured off this produces exactly the
/// cycle counts and report of [`run_workload`].
#[deprecated(
    since = "0.2.0",
    note = "use RunBuilder::new(spec, sim)…observe(obs).run_observed()"
)]
pub fn run_workload_observed(
    spec: &WorkloadSpec,
    sim: &SimConfig,
    capacity: Capacity,
    placement: &Placement,
    obs: &ObserveConfig,
) -> ObservedRun {
    RunBuilder::new(spec, sim)
        .capacity(capacity)
        .placement(placement)
        .observe(obs.clone())
        .run_observed()
}

/// Pre-places every allocated page per the oracle ranking, hottest pages
/// first so BO capacity always goes to the top of the ranking.
fn preplace_oracle(rt: &HmRuntime, histogram: &PageHistogram, bo_pages: u64, target: f64) {
    let oracle = OraclePlacement::compute(histogram, bo_pages, target);
    let mm = rt.address_space();
    let mut mm = mm.borrow_mut();
    let topo = mm.topology().clone();
    let bo = topo
        .zone_of_kind(MemKind::BandwidthOptimized)
        .unwrap_or(ZoneId::new(0));
    let co = topo
        .zone_of_kind(MemKind::CapacityOptimized)
        .unwrap_or(ZoneId::new(0));
    let ranges = rt.alloc_ranges();

    // BO set first (capacity guarantee), then everything else to CO;
    // `bo_pages()` iterates in page order, keeping placement (and hence
    // frame assignment) deterministic.
    for page in oracle.bo_pages() {
        mm.ensure_mapped_in(page, &[bo, co])
            .expect("oracle BO page");
    }
    for range in &ranges {
        for page in range.pages() {
            if !oracle.is_bo(page) {
                mm.ensure_mapped_in(page, &[co, bo])
                    .expect("oracle CO page");
            }
        }
    }
}

/// Runs the profiling pass of the two-phase flows (paper §4.2, §5.1):
/// unconstrained capacity, BW-AWARE placement, page counting on. Returns
/// the page histogram and the per-structure attribution.
pub fn profile_workload(spec: &WorkloadSpec, sim: &SimConfig) -> (PageHistogram, RunProfile) {
    let policy = Mempolicy::bw_aware_for(&topology_for(sim, &vec![1; sim.pools.len()]));
    let run = RunBuilder::new(spec, sim)
        .placement(&Placement::Policy(policy))
        .profiled()
        .run();
    let histogram = PageHistogram::from_counts(
        run.report
            .page_accesses
            .expect("profiling run collects page counts"),
    );
    let profile = RunProfile::attribute(run.ranges, &histogram);
    (histogram, profile)
}

/// Computes annotation hints for `spec` from a (possibly different
/// dataset's) profile, under the given BO capacity — the full §5.3 flow:
/// profile → annotation arrays → `GetAllocation`.
pub fn hints_from_profile(
    profile: &RunProfile,
    spec: &WorkloadSpec,
    sim: &SimConfig,
    capacity: Capacity,
) -> Vec<MemHint> {
    // Sizes come from *this* run's allocations (the program knows its
    // sizes at runtime); hotness comes from the training profile.
    let sizes: Vec<u64> = spec.structures.iter().map(|s| s.bytes).collect();
    let hotness: Vec<f64> = profile.structures().iter().map(|s| s.hotness).collect();
    let bo_bytes = capacity.bo_pages(spec.footprint_pages()) * hmtypes::PAGE_SIZE as u64;
    get_allocation(&sizes, &hotness, bo_bytes, bo_traffic_target(sim))
}

/// Geometric mean of positive values; 0.0 for an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtypes::Percent;
    use workloads::catalog;

    fn quick_sim() -> SimConfig {
        let mut sim = SimConfig::paper_baseline();
        sim.num_sms = 4;
        sim
    }

    fn quick_spec(name: &str) -> WorkloadSpec {
        let mut spec = catalog::by_name(name).unwrap();
        spec.mem_ops = 30_000;
        spec
    }

    #[test]
    fn local_unconstrained_places_everything_in_bo() {
        let spec = quick_spec("hotspot");
        let run = RunBuilder::new(&spec, &quick_sim())
            .placement(&Placement::Policy(Mempolicy::local()))
            .run();
        assert!(run.report.completed);
        assert_eq!(run.placement[1], 0, "no CO pages under unconstrained LOCAL");
        assert!(run.report.pool_traffic_fraction(0) > 0.99);
    }

    #[test]
    fn ratio_policy_splits_dram_traffic() {
        let spec = quick_spec("hotspot");
        let run = RunBuilder::new(&spec, &quick_sim())
            .placement(&Placement::Policy(Mempolicy::ratio_co(Percent::new(30))))
            .run();
        let co = run.report.pool_traffic_fraction(1);
        assert!((co - 0.30).abs() < 0.08, "CO traffic fraction {co}");
    }

    #[test]
    fn bw_aware_beats_local_and_interleave_for_streaming() {
        let spec = quick_spec("lbm");
        let sim = quick_sim();
        let local = RunBuilder::new(&spec, &sim)
            .placement(&Placement::Policy(Mempolicy::local()))
            .run();
        let inter = RunBuilder::new(&spec, &sim)
            .placement(&Placement::Policy(Mempolicy::ratio_co(Percent::new(50))))
            .run();
        let bwa = RunBuilder::new(&spec, &sim)
            .placement(&Placement::Policy(Mempolicy::ratio_co(Percent::new(30))))
            .run();
        assert!(
            bwa.speedup_over(&local) > 1.05,
            "BW-AWARE vs LOCAL: {}",
            bwa.speedup_over(&local)
        );
        assert!(
            bwa.speedup_over(&inter) > 1.05,
            "BW-AWARE vs INTERLEAVE: {}",
            bwa.speedup_over(&inter)
        );
    }

    #[test]
    fn capacity_fraction_limits_bo_pages() {
        let spec = quick_spec("bfs");
        let run = RunBuilder::new(&spec, &quick_sim())
            .capacity(Capacity::FractionOfFootprint(0.10))
            .placement(&Placement::Policy(Mempolicy::local()))
            .run();
        let bo_budget = Capacity::FractionOfFootprint(0.10).bo_pages(spec.footprint_pages());
        assert!(run.placement[0] <= bo_budget);
        assert!(run.placement[1] > 0, "spill to CO under constraint");
    }

    #[test]
    fn profile_attributes_all_structures() {
        let spec = quick_spec("bfs");
        let (hist, profile) = profile_workload(&spec, &quick_sim());
        assert!(hist.total_accesses() > 0);
        assert_eq!(profile.structures().len(), spec.structures.len());
        assert_eq!(profile.unattributed(), 0, "all traffic attributed");
        // The paper's bfs observation: hot structures are hot.
        let visited = profile
            .structures()
            .iter()
            .find(|s| s.range.name == "d_graph_visited")
            .unwrap();
        let edges = profile
            .structures()
            .iter()
            .find(|s| s.range.name == "d_graph_edges")
            .unwrap();
        assert!(visited.hotness > edges.hotness);
    }

    #[test]
    fn oracle_beats_bw_aware_under_capacity_constraint() {
        let spec = quick_spec("xsbench");
        let sim = quick_sim();
        let (hist, _) = profile_workload(&spec, &sim);
        let cap = Capacity::FractionOfFootprint(0.10);
        let bwa = RunBuilder::new(&spec, &sim)
            .capacity(cap)
            .placement(&Placement::Policy(Mempolicy::ratio_co(Percent::new(30))))
            .run();
        let oracle = RunBuilder::new(&spec, &sim)
            .capacity(cap)
            .placement(&Placement::Oracle(hist))
            .run();
        assert!(
            oracle.speedup_over(&bwa) > 1.02,
            "oracle vs BW-AWARE at 10% capacity: {}",
            oracle.speedup_over(&bwa)
        );
    }

    #[test]
    fn hinted_placement_runs_and_respects_structure_count() {
        let spec = quick_spec("minife");
        let sim = quick_sim();
        let (_, profile) = profile_workload(&spec, &sim);
        let cap = Capacity::FractionOfFootprint(0.2);
        let hints = hints_from_profile(&profile, &spec, &sim, cap);
        assert_eq!(hints.len(), spec.structures.len());
        let run = RunBuilder::new(&spec, &sim)
            .capacity(cap)
            .placement(&Placement::Hinted(hints))
            .run();
        assert!(run.report.completed);
    }

    #[test]
    fn builder_defaults_are_unconstrained_bw_aware() {
        let spec = quick_spec("hotspot");
        let sim = quick_sim();
        let defaulted = RunBuilder::new(&spec, &sim).run();
        let topo = crate::translate::topology_for(&sim, &vec![1; sim.pools.len()]);
        let explicit = RunBuilder::new(&spec, &sim)
            .capacity(Capacity::Unconstrained)
            .placement(&Placement::Policy(Mempolicy::bw_aware_for(&topo)))
            .run();
        assert_eq!(defaulted.report.cycles, explicit.report.cycles);
        assert_eq!(defaulted.placement, explicit.placement);
    }

    #[test]
    fn builder_seed_overrides_spec_seed() {
        let spec = quick_spec("hotspot");
        let sim = quick_sim();
        let base = RunBuilder::new(&spec, &sim).run();
        let same = RunBuilder::new(&spec, &sim).seed(spec.seed).run();
        let different = RunBuilder::new(&spec, &sim).seed(spec.seed ^ 0xDEAD).run();
        assert_eq!(base.report.cycles, same.report.cycles);
        assert_ne!(base.report.cycles, different.report.cycles);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_builder() {
        let spec = quick_spec("hotspot");
        let sim = quick_sim();
        let placement = Placement::Policy(Mempolicy::local());
        let legacy = run_workload(&spec, &sim, Capacity::Unconstrained, &placement);
        let built = RunBuilder::new(&spec, &sim).placement(&placement).run();
        assert_eq!(legacy.report.cycles, built.report.cycles);
        assert_eq!(legacy.placement, built.placement);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn bo_traffic_target_matches_paper() {
        assert!((bo_traffic_target(&SimConfig::paper_baseline()) - 5.0 / 7.0).abs() < 1e-12);
    }
}
