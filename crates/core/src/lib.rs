//! # hetmem — page placement for GPUs on heterogeneous memory
//!
//! The core crate of the reproduction of *Page Placement Strategies for
//! GPUs within Heterogeneous Memory Systems* (ASPLOS 2015). It wires the
//! OS memory-policy model (`mempolicy`), the GPU memory-system simulator
//! (`gpusim`), the benchmark models (`workloads`), and the profiler
//! (`profiler`) into the paper's three placement systems:
//!
//! 1. **BW-AWARE placement** — `MPOL_BWAWARE` weighted by the SBIT
//!    (§3): see [`mempolicy::Mempolicy::bw_aware_for`] and the
//!    [`runner`] strategies.
//! 2. **Oracle placement** — two-phase perfect-knowledge page ranking
//!    (§4.2): [`runner::Placement::Oracle`].
//! 3. **Annotation-hinted placement** — profile → `GetAllocation` →
//!    hinted `cudaMalloc` (§5): [`HmRuntime::malloc_with_hint`] and
//!    [`runner::hints_from_profile`].
//!
//! The [`experiments`] module regenerates every table and figure of the
//! paper's evaluation; `cargo run -p hetmem-bench --bin figN` prints
//! them.
//!
//! # Examples
//!
//! ```
//! use gpusim::SimConfig;
//! use hetmem::runner::{Placement, RunBuilder};
//! use mempolicy::Mempolicy;
//! use workloads::catalog;
//!
//! let mut sim = SimConfig::paper_baseline();
//! sim.num_sms = 2; // scaled down for a doc example
//! let mut spec = catalog::by_name("hotspot").unwrap();
//! spec.mem_ops = 5_000;
//!
//! let run = RunBuilder::new(&spec, &sim)
//!     .placement(&Placement::Policy(Mempolicy::bw_aware_for(
//!         &hetmem::topology_for(&sim, &[1, 1]),
//!     )))
//!     .run();
//! assert!(run.report.completed);
//! ```

pub mod error;
pub mod experiments;
pub mod grid;
pub mod migrate;
pub mod migration;
pub mod runner;
pub mod runtime;
pub mod translate;

pub use error::HetmemError;
pub use grid::{
    chrome_trace_for, config_hash, interval_records_for, record_for, sampled_interval_records_for,
    TelemetrySink,
};
pub use migrate::{MigrationEpochEvent, MigrationModel, OnlineMigrator};
pub use migration::{
    evaluate_migration, ext_migration, ext_online, ext_reactive, run_online, MigrationOutcome,
    OnlineOutcome,
};
pub use runner::{
    bo_traffic_target, geomean, hints_from_profile, profile_workload, Capacity, ObserveConfig,
    ObservedRun, Placement, RunBuilder, SimTrace, WorkloadRun,
};
#[allow(deprecated)]
pub use runner::{run_workload, run_workload_observed, run_workload_profiled};
pub use runtime::{is_heterogeneous, AllocRequest, Allocation, HmRuntime};
pub use translate::{topology_for, OsTranslator};
