//! The GPU runtime: `cudaMalloc` with placement hints (paper §5.2).
//!
//! [`HmRuntime`] models the CUDA allocator the paper extends: allocations
//! carry an optional machine-abstract [`MemHint`] (BO / CO / BW-AWARE),
//! which the runtime translates to zone bindings through `mbind`, using
//! the SBIT to discover which zones are bandwidth- or capacity-optimized.
//! Hints are best-effort: a full pool falls back to the other, exactly
//! as the paper specifies ("memory hints are honored unless the memory
//! pool is filled to capacity").

use std::cell::RefCell;
use std::rc::Rc;

use hmtypes::MemKind;
use mempolicy::{AddressSpace, MemError, Mempolicy, NumaTopology, VmaRange};
use profiler::{AllocRange, MemHint};

/// One allocation the runtime performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// The data-structure name given at allocation.
    pub name: String,
    /// The reserved virtual range.
    pub range: VmaRange,
    /// The hint it was allocated under, if any.
    pub hint: Option<MemHint>,
}

/// One allocation request — the builder form of the paper's extended
/// `cudaMalloc(devPtr, size, hint)` (§5.2). Both legacy entry points
/// ([`HmRuntime::malloc`] and [`HmRuntime::malloc_with_hint`]) route
/// through this.
///
/// By default hints are best-effort, exactly as the paper specifies
/// ("memory hints are honored unless the memory pool is filled to
/// capacity"): a full preferred pool falls back to the other.
/// [`AllocRequest::strict`] turns the fallback off, making a full pool a
/// hard [`MemError::BindExhausted`] at fault time — what a what-if query
/// wants when asking whether a placement *fits*.
///
/// # Examples
///
/// ```
/// use hetmem::{topology_for, AllocRequest, HmRuntime};
/// use gpusim::SimConfig;
/// use profiler::MemHint;
///
/// let topo = topology_for(&SimConfig::paper_baseline(), &[256, 1024]);
/// let mut rt = HmRuntime::new(topo);
/// let r = rt.alloc(AllocRequest::new("d_graph", 64 * 4096).hint(MemHint::BO))?;
/// assert_eq!(rt.allocations()[0].hint, Some(MemHint::BO));
/// # let _ = r;
/// # Ok::<(), mempolicy::MemError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AllocRequest<'a> {
    name: &'a str,
    bytes: u64,
    hint: Option<MemHint>,
    fallback: bool,
}

impl<'a> AllocRequest<'a> {
    /// Starts a request: `name` for the profiler's call-site map,
    /// `bytes` to reserve.
    pub fn new(name: &'a str, bytes: u64) -> Self {
        AllocRequest {
            name,
            bytes,
            hint: None,
            fallback: true,
        }
    }

    /// Attaches a machine-abstract placement hint (default: none — the
    /// allocation faults in under the task-wide policy).
    pub fn hint(mut self, hint: MemHint) -> Self {
        self.hint = Some(hint);
        self
    }

    /// Sets the hint from an `Option` (convenience for plumbing through
    /// per-structure hint arrays).
    pub fn maybe_hint(mut self, hint: Option<MemHint>) -> Self {
        self.hint = hint;
        self
    }

    /// Disables the capacity fallback: a `Preferred` hint whose pool
    /// fills up fails the faulting access instead of spilling to the
    /// other pool.
    pub fn strict(mut self) -> Self {
        self.fallback = false;
        self
    }

    /// The requested size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The requested name.
    pub fn name(&self) -> &str {
        self.name
    }
}

/// The `cudaMalloc`-with-hints runtime over the OS memory model.
///
/// # Examples
///
/// ```
/// use hetmem::{topology_for, HmRuntime};
/// use gpusim::SimConfig;
/// use profiler::MemHint;
///
/// let topo = topology_for(&SimConfig::paper_baseline(), &[256, 1024]);
/// let mut rt = HmRuntime::new(topo);
/// let d_graph = rt.malloc_with_hint("d_graph", 64 * 4096, MemHint::BO)?;
/// let d_cost = rt.malloc("d_cost", 16 * 4096)?; // falls back to task policy
/// assert!(d_graph.start < d_cost.start);
/// # Ok::<(), mempolicy::MemError>(())
/// ```
#[derive(Debug)]
pub struct HmRuntime {
    mm: Rc<RefCell<AddressSpace>>,
    allocations: Vec<Allocation>,
}

impl HmRuntime {
    /// Creates a runtime over a fresh address space; the default task
    /// policy is BW-AWARE derived from the topology's SBIT (the paper's
    /// proposed GPU default, §3.2.2).
    pub fn new(topo: NumaTopology) -> Self {
        let mut mm = AddressSpace::new(topo.clone());
        mm.set_mempolicy(Mempolicy::bw_aware_for(&topo));
        HmRuntime {
            mm: Rc::new(RefCell::new(mm)),
            allocations: Vec::new(),
        }
    }

    /// Replaces the task-wide policy used by unhinted allocations.
    pub fn set_policy(&mut self, policy: Mempolicy) {
        self.mm.borrow_mut().set_mempolicy(policy);
    }

    /// Performs one allocation request — the single entry point every
    /// allocation path routes through.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadRange`] for a zero-size allocation and
    /// [`MemError::EmptyNodeSet`] only if a strict hint resolves to no
    /// zone (impossible on well-formed topologies).
    pub fn alloc(&mut self, req: AllocRequest<'_>) -> Result<VmaRange, MemError> {
        let mut mm = self.mm.borrow_mut();
        let range = mm.mmap_named(req.bytes, req.name)?;
        if let Some(hint) = req.hint {
            let topo = mm.topology().clone();
            let policy = Self::policy_for_hint(hint, &topo, req.fallback)?;
            mm.mbind(range, policy)?;
        }
        drop(mm);
        self.allocations.push(Allocation {
            name: req.name.to_string(),
            range,
            hint: req.hint,
        });
        Ok(range)
    }

    /// Allocates `bytes` with no hint: pages fault in under the task
    /// policy. (Thin wrapper over [`HmRuntime::alloc`].)
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadRange`] for a zero-size allocation.
    pub fn malloc(&mut self, name: &str, bytes: u64) -> Result<VmaRange, MemError> {
        self.alloc(AllocRequest::new(name, bytes))
    }

    /// Allocates `bytes` with a placement hint (the paper's extended
    /// `cudaMalloc(devPtr, size, hint)`). (Thin wrapper over
    /// [`HmRuntime::alloc`].)
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadRange`] for a zero-size allocation.
    pub fn malloc_with_hint(
        &mut self,
        name: &str,
        bytes: u64,
        hint: MemHint,
    ) -> Result<VmaRange, MemError> {
        self.alloc(AllocRequest::new(name, bytes).hint(hint))
    }

    /// The `mbind` policy implementing a hint on this machine: abstract
    /// BO/CO hints resolve to concrete zones via the topology (the
    /// runtime's job per §5.2 — programs never name zones). With
    /// `fallback` off, a `Preferred` hint becomes a hard `BIND` to its
    /// zone instead of best-effort.
    fn policy_for_hint(
        hint: MemHint,
        topo: &NumaTopology,
        fallback: bool,
    ) -> Result<Mempolicy, MemError> {
        Ok(match hint {
            MemHint::Preferred(kind) => match topo.zone_of_kind(kind) {
                Some(zone) if fallback => Mempolicy::preferred(zone),
                Some(zone) => Mempolicy::bind(vec![zone])?,
                // Machine without that kind: hint degrades to BW-AWARE.
                None => Mempolicy::bw_aware_for(topo),
            },
            MemHint::BwAware => Mempolicy::bw_aware_for(topo),
        })
    }

    /// The shared address space (for wiring into the simulator).
    pub fn address_space(&self) -> Rc<RefCell<AddressSpace>> {
        Rc::clone(&self.mm)
    }

    /// Allocations in program order.
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocations
    }

    /// The allocation registry as profiler ranges (the `cudaMalloc`
    /// call-site map of §5.1).
    pub fn alloc_ranges(&self) -> Vec<AllocRange> {
        self.allocations
            .iter()
            .map(|a| AllocRange::new(a.name.clone(), a.range.start, a.range.end()))
            .collect()
    }

    /// Count of mapped pages per zone (placement distribution so far).
    pub fn placement_histogram(&self) -> Vec<u64> {
        self.mm.borrow().placement_histogram()
    }
}

/// Convenience: does this machine's topology even have both pools?
pub fn is_heterogeneous(topo: &NumaTopology) -> bool {
    topo.zone_of_kind(MemKind::BandwidthOptimized).is_some()
        && topo.zone_of_kind(MemKind::CapacityOptimized).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::topology_for;
    use gpusim::SimConfig;
    use hmtypes::PAGE_SIZE;

    fn runtime(bo_pages: u64, co_pages: u64) -> HmRuntime {
        HmRuntime::new(topology_for(
            &SimConfig::paper_baseline(),
            &[bo_pages, co_pages],
        ))
    }

    #[test]
    fn bo_hint_places_in_bo() {
        let mut rt = runtime(64, 64);
        let r = rt
            .malloc_with_hint("a", 8 * PAGE_SIZE as u64, MemHint::BO)
            .unwrap();
        rt.address_space().borrow_mut().populate(r).unwrap();
        assert_eq!(rt.placement_histogram(), vec![8, 0]);
    }

    #[test]
    fn co_hint_places_in_co() {
        let mut rt = runtime(64, 64);
        let r = rt
            .malloc_with_hint("a", 8 * PAGE_SIZE as u64, MemHint::CO)
            .unwrap();
        rt.address_space().borrow_mut().populate(r).unwrap();
        assert_eq!(rt.placement_histogram(), vec![0, 8]);
    }

    #[test]
    fn full_bo_hint_falls_back_to_co() {
        let mut rt = runtime(4, 64);
        let r = rt
            .malloc_with_hint("a", 8 * PAGE_SIZE as u64, MemHint::BO)
            .unwrap();
        rt.address_space().borrow_mut().populate(r).unwrap();
        assert_eq!(rt.placement_histogram(), vec![4, 4]);
    }

    #[test]
    fn unhinted_allocation_uses_bw_aware_default() {
        let mut rt = runtime(4096, 4096);
        let r = rt.malloc("a", 2000 * PAGE_SIZE as u64).unwrap();
        rt.address_space().borrow_mut().populate(r).unwrap();
        let hist = rt.placement_histogram();
        let bo_frac = hist[0] as f64 / 2000.0;
        assert!((bo_frac - 5.0 / 7.0).abs() < 0.05, "got {bo_frac}");
    }

    #[test]
    fn bw_hint_matches_bw_aware() {
        let mut rt = runtime(4096, 4096);
        let r = rt
            .malloc_with_hint("a", 2000 * PAGE_SIZE as u64, MemHint::BwAware)
            .unwrap();
        rt.address_space().borrow_mut().populate(r).unwrap();
        let hist = rt.placement_histogram();
        let bo_frac = hist[0] as f64 / 2000.0;
        assert!((bo_frac - 5.0 / 7.0).abs() < 0.05, "got {bo_frac}");
    }

    #[test]
    fn registry_tracks_allocations_in_order() {
        let mut rt = runtime(64, 64);
        rt.malloc_with_hint("first", PAGE_SIZE as u64, MemHint::BO)
            .unwrap();
        rt.malloc("second", PAGE_SIZE as u64).unwrap();
        let ranges = rt.alloc_ranges();
        assert_eq!(ranges.len(), 2);
        assert_eq!(ranges[0].name, "first");
        assert_eq!(ranges[1].name, "second");
        assert!(ranges[0].end.raw() <= ranges[1].start.raw());
        assert_eq!(rt.allocations()[0].hint, Some(MemHint::BO));
        assert_eq!(rt.allocations()[1].hint, None);
    }

    #[test]
    fn alloc_request_routes_both_legacy_paths() {
        let mut rt = runtime(64, 64);
        rt.alloc(AllocRequest::new("plain", PAGE_SIZE as u64))
            .unwrap();
        rt.alloc(AllocRequest::new("hinted", PAGE_SIZE as u64).hint(MemHint::CO))
            .unwrap();
        rt.alloc(AllocRequest::new("maybe", PAGE_SIZE as u64).maybe_hint(None))
            .unwrap();
        assert_eq!(rt.allocations()[0].hint, None);
        assert_eq!(rt.allocations()[1].hint, Some(MemHint::CO));
        assert_eq!(rt.allocations()[2].hint, None);
    }

    #[test]
    fn strict_bo_hint_fails_instead_of_spilling() {
        let mut rt = runtime(4, 64);
        let r = rt
            .alloc(
                AllocRequest::new("a", 8 * PAGE_SIZE as u64)
                    .hint(MemHint::BO)
                    .strict(),
            )
            .unwrap();
        let err = rt.address_space().borrow_mut().populate(r).unwrap_err();
        assert!(
            matches!(err, MemError::BindExhausted { .. }),
            "expected bind exhaustion, got {err:?}"
        );
        // The best-effort default spills to CO instead (see
        // full_bo_hint_falls_back_to_co above).
    }

    #[test]
    fn heterogeneity_check() {
        let topo = topology_for(&SimConfig::paper_baseline(), &[1, 1]);
        assert!(is_heterogeneous(&topo));
    }
}
