//! A micro-benchmark timing runner replacing `criterion`.
//!
//! Criterion is excellent, but it is a third-party crate and this
//! workspace builds with zero network access. The bench targets in
//! `crates/bench/benches` need far less: run a closure repeatedly for a
//! small time budget and report min/mean per-iteration time. That is
//! exactly what [`Bencher`] does.
//!
//! Environment knobs: `HM_BENCH_SECS` (per-benchmark time budget,
//! default 1.0) and `HM_BENCH_ITERS` (fixed iteration count overriding
//! the budget — useful for smoke runs in CI).

use std::time::Instant;

use crate::metrics::Histogram;

/// One benchmark's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark id (e.g. `fig3/bw_aware_run_lbm`).
    pub name: String,
    /// Measured iterations (after one warm-up call).
    pub iters: u64,
    /// Mean wall time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Fastest iteration, nanoseconds.
    pub min_ns: f64,
    /// Median iteration, nanoseconds (log-bucket midpoint estimate,
    /// within 1/16 relative error of the true order statistic).
    pub p50_ns: f64,
    /// 99th-percentile iteration, nanoseconds (same estimator).
    pub p99_ns: f64,
}

impl BenchResult {
    fn fmt_line(&self) -> String {
        format!(
            "{:<44}{:>8} iters   mean {:>12}   min {:>12}   p50 {:>12}   p99 {:>12}",
            self.name,
            self.iters,
            fmt_ns(self.mean_ns),
            fmt_ns(self.min_ns),
            fmt_ns(self.p50_ns),
            fmt_ns(self.p99_ns)
        )
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The timing runner: measures closures and prints a summary table on
/// [`Bencher::finish`].
#[derive(Debug)]
pub struct Bencher {
    suite: String,
    budget_secs: f64,
    fixed_iters: Option<u64>,
    results: Vec<BenchResult>,
}

impl Bencher {
    /// Creates a runner for `suite`, honoring `HM_BENCH_SECS` /
    /// `HM_BENCH_ITERS`.
    pub fn from_env(suite: &str) -> Self {
        let budget_secs = std::env::var("HM_BENCH_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.0);
        let fixed_iters = std::env::var("HM_BENCH_ITERS")
            .ok()
            .and_then(|v| v.parse().ok());
        Bencher {
            suite: suite.to_string(),
            budget_secs,
            fixed_iters,
            results: Vec::new(),
        }
    }

    /// Measures `f` (one warm-up call, then iterations until the time
    /// budget or the fixed iteration count is reached) and records the
    /// result.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &BenchResult {
        self.bench_with_setup(name, || (), |()| f())
    }

    /// Like [`Bencher::bench`] for closures that consume fresh state per
    /// iteration (criterion's `iter_batched`); `setup` time is excluded
    /// from the measurement.
    pub fn bench_with_setup<S, R>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> R,
    ) -> &BenchResult {
        // Warm-up (also primes lazy state so the first sample is honest).
        std::hint::black_box(f(setup()));

        let budget_ns = self.budget_secs * 1e9;
        let max_iters = self.fixed_iters.unwrap_or(u64::MAX).max(1);
        let mut iters = 0u64;
        let mut total_ns = 0.0f64;
        let mut min_ns = f64::INFINITY;
        // Per-iteration samples (warm-up excluded) feed a log-bucketed
        // histogram, giving tail quantiles without storing the series.
        let samples = Histogram::new();
        while iters < max_iters {
            let state = setup();
            let start = Instant::now();
            std::hint::black_box(f(state));
            let ns = start.elapsed().as_nanos() as f64;
            samples.record(start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
            total_ns += ns;
            min_ns = min_ns.min(ns);
            iters += 1;
            if self.fixed_iters.is_none() && total_ns >= budget_ns {
                break;
            }
        }
        let snap = samples.snapshot();
        let result = BenchResult {
            name: name.to_string(),
            iters,
            mean_ns: total_ns / iters as f64,
            min_ns,
            p50_ns: snap.quantile(0.50) as f64,
            p99_ns: snap.quantile(0.99) as f64,
        };
        eprintln!("{}", result.fmt_line());
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// The results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the suite summary table to stdout.
    pub fn finish(self) {
        println!("== {} — {} benchmark(s) ==", self.suite, self.results.len());
        for r in &self.results {
            println!("{}", r.fmt_line());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut b = Bencher {
            suite: "t".into(),
            budget_secs: 0.01,
            fixed_iters: Some(5),
            results: Vec::new(),
        };
        let r = b.bench("t/sum", || (0..1000u64).sum::<u64>()).clone();
        assert_eq!(r.iters, 5);
        assert!(r.min_ns <= r.mean_ns);
        // Quantiles are bucket-midpoint estimates over real samples:
        // ordered, positive, and p99 within the sampled range's bucket.
        assert!(r.p50_ns > 0.0);
        assert!(r.p50_ns <= r.p99_ns);
        assert_eq!(b.results().len(), 1);
        b.finish();
    }

    #[test]
    fn setup_state_is_fresh_each_iteration() {
        let mut b = Bencher {
            suite: "t".into(),
            budget_secs: 0.01,
            fixed_iters: Some(3),
            results: Vec::new(),
        };
        b.bench_with_setup(
            "t/drain",
            || vec![1u64, 2, 3],
            |mut v| {
                assert_eq!(v.len(), 3, "setup must rebuild per iteration");
                v.clear();
            },
        );
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(1500.0), "1.500 us");
        assert_eq!(fmt_ns(2.5e6), "2.500 ms");
        assert_eq!(fmt_ns(3.2e9), "3.200 s");
    }
}
