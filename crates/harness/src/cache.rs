//! A content-addressed LRU result cache.
//!
//! `hetmem-serve` answers repeated `simulate` queries from this cache:
//! the key is the canonical JSON of everything that determines the
//! result (workload, configuration, policy, seed), and the value is the
//! already-serialized response body. Because the simulator is
//! deterministic and the JSON writer is byte-stable, a cache hit is
//! **byte-identical** to recomputing — callers can assert equality, not
//! just equivalence.
//!
//! The cache is thread-safe (internal mutex, no lock held across
//! compute) and bounded: inserting beyond capacity evicts the least
//! recently used entry. Hit/miss/eviction counters feed the server's
//! `stats` endpoint.
//!
//! Every entry carries an FNV-1a checksum taken at insert time, and
//! [`ResultCache::get`] verifies it before returning: an entry whose
//! bytes no longer match (bit rot, or chaos-injected corruption via
//! [`ResultCache::corrupt`]) is dropped and counted instead of served.
//! A corrupted lookup therefore degrades to a miss — the caller
//! recomputes and the byte-identity contract holds.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::telemetry::fnv1a;

/// Point-in-time counters for one [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries written (including overwrites of an existing key).
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries dropped because their bytes failed the integrity check.
    pub corruptions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries.
    pub capacity: usize,
}

#[derive(Debug)]
struct Entry {
    value: String,
    /// FNV-1a over `value` at insert time; verified on every get.
    checksum: u64,
    last_use: u64,
}

#[derive(Debug)]
struct CacheInner {
    /// key -> entry. Recency is a monotonic counter rather than a
    /// linked list: eviction scans for the minimum, which is O(n) but n
    /// is the configured capacity (hundreds), and it keeps the
    /// structure trivially correct.
    map: HashMap<String, Entry>,
    tick: u64,
    stats: CacheStats,
}

/// A bounded, thread-safe, content-addressed LRU cache from canonical
/// key strings to pre-serialized result strings.
///
/// # Examples
///
/// ```
/// use hetmem_harness::cache::ResultCache;
///
/// let cache = ResultCache::new(2);
/// assert_eq!(cache.get("a"), None);
/// cache.insert("a", "1".to_string());
/// assert_eq!(cache.get("a").as_deref(), Some("1"));
/// cache.insert("b", "2".to_string());
/// cache.insert("c", "3".to_string()); // full: evicts "a", the LRU entry
/// assert_eq!(cache.get("a"), None);
/// assert_eq!(cache.stats().evictions, 1);
/// ```
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<CacheInner>,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
                stats: CacheStats {
                    capacity: capacity.max(1),
                    ..CacheStats::default()
                },
            }),
        }
    }

    /// Looks up `key`, refreshing its recency and verifying the entry's
    /// checksum. A verified lookup counts a hit; a missing key counts a
    /// miss; a corrupted entry is removed, counted as a corruption
    /// **and** a miss, and `None` is returned so the caller recomputes.
    pub fn get(&self, key: &str) -> Option<String> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                if fnv1a(entry.value.as_bytes()) != entry.checksum {
                    inner.map.remove(key);
                    inner.stats.corruptions += 1;
                    inner.stats.misses += 1;
                    inner.stats.entries = inner.map.len();
                    return None;
                }
                entry.last_use = tick;
                let v = entry.value.clone();
                inner.stats.hits += 1;
                Some(v)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or overwrites) `key`, evicting the least recently used
    /// entry if the cache is full. The entry's checksum is taken here.
    pub fn insert(&self, key: &str, value: String) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        let capacity = inner.stats.capacity;
        if !inner.map.contains_key(key) && inner.map.len() >= capacity {
            if let Some(lru) = inner
                .map
                .iter()
                .min_by_key(|(_, entry)| entry.last_use)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&lru);
                inner.stats.evictions += 1;
            }
        }
        let checksum = fnv1a(value.as_bytes());
        inner.map.insert(
            key.to_string(),
            Entry {
                value,
                checksum,
                last_use: tick,
            },
        );
        inner.stats.insertions += 1;
        inner.stats.entries = inner.map.len();
    }

    /// Chaos hook: flips one byte of `key`'s resident value **without**
    /// updating its checksum, simulating in-memory bit rot. Returns
    /// whether an entry was corrupted. The next [`get`](Self::get) of
    /// the key detects the mismatch and drops the entry.
    pub fn corrupt(&self, key: &str) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let Some(entry) = inner.map.get_mut(key) else {
            return false;
        };
        if entry.value.is_empty() {
            entry.value.push('!');
            return true;
        }
        // Flip the low bit of the middle byte within ASCII so the
        // String stays valid UTF-8.
        let mid = entry.value.len() / 2;
        let mut bytes = std::mem::take(&mut entry.value).into_bytes();
        bytes[mid] = if bytes[mid].is_ascii() {
            bytes[mid] ^ 1
        } else {
            b'?'
        };
        entry.value = String::from_utf8(bytes).unwrap_or_else(|e| {
            // Non-ASCII middle byte was replaced wholesale; re-validate.
            String::from_utf8_lossy(e.as_bytes()).into_owned()
        });
        true
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut stats = inner.stats;
        stats.entries = inner.map.len();
        stats
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.stats().entries
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let c = ResultCache::new(4);
        assert_eq!(c.get("k"), None);
        c.insert("k", "v".into());
        assert_eq!(c.get("k").as_deref(), Some("v"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = ResultCache::new(2);
        c.insert("a", "1".into());
        c.insert("b", "2".into());
        assert_eq!(c.get("a").as_deref(), Some("1")); // refresh "a"
        c.insert("c", "3".into()); // must evict "b"
        assert_eq!(c.get("b"), None);
        assert_eq!(c.get("a").as_deref(), Some("1"));
        assert_eq!(c.get("c").as_deref(), Some("3"));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn overwrite_does_not_evict() {
        let c = ResultCache::new(2);
        c.insert("a", "1".into());
        c.insert("b", "2".into());
        c.insert("a", "1b".into());
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get("a").as_deref(), Some("1b"));
        assert_eq!(c.get("b").as_deref(), Some("2"));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let c = ResultCache::new(0);
        c.insert("a", "1".into());
        assert_eq!(c.get("a").as_deref(), Some("1"));
        c.insert("b", "2".into());
        assert_eq!(c.get("a"), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn corrupted_entries_are_detected_and_dropped() {
        let c = ResultCache::new(4);
        c.insert("k", r#"{"cycles":100}"#.into());
        assert!(c.corrupt("k"), "resident entry must be corruptible");
        // The corrupted entry is never served: the lookup degrades to a
        // counted miss and the entry is gone.
        assert_eq!(c.get("k"), None);
        let s = c.stats();
        assert_eq!(s.corruptions, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 0);
        assert_eq!(s.entries, 0);
        // Recomputing and re-inserting restores byte-identical hits.
        c.insert("k", r#"{"cycles":100}"#.into());
        assert_eq!(c.get("k").as_deref(), Some(r#"{"cycles":100}"#));
        // Corrupting a missing key is a no-op.
        assert!(!c.corrupt("nope"));
    }

    #[test]
    fn corrupt_handles_tiny_values() {
        let c = ResultCache::new(2);
        c.insert("empty", String::new());
        c.insert("one", "x".into());
        assert!(c.corrupt("empty"));
        assert!(c.corrupt("one"));
        assert_eq!(c.get("empty"), None);
        assert_eq!(c.get("one"), None);
        assert_eq!(c.stats().corruptions, 2);
    }

    #[test]
    fn concurrent_access_is_safe_and_counted() {
        use std::sync::Arc;
        let c = Arc::new(ResultCache::new(64));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for i in 0..50 {
                        let key = format!("k{}", (t + i) % 16);
                        if c.get(&key).is_none() {
                            c.insert(&key, format!("v{}", (t + i) % 16));
                        }
                    }
                });
            }
        });
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 400);
        assert!(s.entries <= 16);
    }
}
