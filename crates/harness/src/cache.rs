//! A content-addressed LRU result cache.
//!
//! `hetmem-serve` answers repeated `simulate` queries from this cache:
//! the key is the canonical JSON of everything that determines the
//! result (workload, configuration, policy, seed), and the value is the
//! already-serialized response body. Because the simulator is
//! deterministic and the JSON writer is byte-stable, a cache hit is
//! **byte-identical** to recomputing — callers can assert equality, not
//! just equivalence.
//!
//! The cache is thread-safe (internal mutex, no lock held across
//! compute) and bounded: inserting beyond capacity evicts the least
//! recently used entry. Hit/miss/eviction counters feed the server's
//! `stats` endpoint.

use std::collections::HashMap;
use std::sync::Mutex;

/// Point-in-time counters for one [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries written (including overwrites of an existing key).
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries.
    pub capacity: usize,
}

#[derive(Debug)]
struct CacheInner {
    /// key -> (value, last-use tick). Recency is a monotonic counter
    /// rather than a linked list: eviction scans for the minimum, which
    /// is O(n) but n is the configured capacity (hundreds), and it keeps
    /// the structure trivially correct.
    map: HashMap<String, (String, u64)>,
    tick: u64,
    stats: CacheStats,
}

/// A bounded, thread-safe, content-addressed LRU cache from canonical
/// key strings to pre-serialized result strings.
///
/// # Examples
///
/// ```
/// use hetmem_harness::cache::ResultCache;
///
/// let cache = ResultCache::new(2);
/// assert_eq!(cache.get("a"), None);
/// cache.insert("a", "1".to_string());
/// assert_eq!(cache.get("a").as_deref(), Some("1"));
/// cache.insert("b", "2".to_string());
/// cache.insert("c", "3".to_string()); // full: evicts "a", the LRU entry
/// assert_eq!(cache.get("a"), None);
/// assert_eq!(cache.stats().evictions, 1);
/// ```
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<CacheInner>,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
                stats: CacheStats {
                    capacity: capacity.max(1),
                    ..CacheStats::default()
                },
            }),
        }
    }

    /// Looks up `key`, refreshing its recency. Counts a hit or a miss.
    pub fn get(&self, key: &str) -> Option<String> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some((value, last_use)) => {
                *last_use = tick;
                let v = value.clone();
                inner.stats.hits += 1;
                Some(v)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or overwrites) `key`, evicting the least recently used
    /// entry if the cache is full.
    pub fn insert(&self, key: &str, value: String) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.tick += 1;
        let tick = inner.tick;
        let capacity = inner.stats.capacity;
        if !inner.map.contains_key(key) && inner.map.len() >= capacity {
            if let Some(lru) = inner
                .map
                .iter()
                .min_by_key(|(_, (_, last_use))| *last_use)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&lru);
                inner.stats.evictions += 1;
            }
        }
        inner.map.insert(key.to_string(), (value, tick));
        inner.stats.insertions += 1;
        inner.stats.entries = inner.map.len();
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut stats = inner.stats;
        stats.entries = inner.map.len();
        stats
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.stats().entries
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let c = ResultCache::new(4);
        assert_eq!(c.get("k"), None);
        c.insert("k", "v".into());
        assert_eq!(c.get("k").as_deref(), Some("v"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = ResultCache::new(2);
        c.insert("a", "1".into());
        c.insert("b", "2".into());
        assert_eq!(c.get("a").as_deref(), Some("1")); // refresh "a"
        c.insert("c", "3".into()); // must evict "b"
        assert_eq!(c.get("b"), None);
        assert_eq!(c.get("a").as_deref(), Some("1"));
        assert_eq!(c.get("c").as_deref(), Some("3"));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn overwrite_does_not_evict() {
        let c = ResultCache::new(2);
        c.insert("a", "1".into());
        c.insert("b", "2".into());
        c.insert("a", "1b".into());
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get("a").as_deref(), Some("1b"));
        assert_eq!(c.get("b").as_deref(), Some("2"));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let c = ResultCache::new(0);
        c.insert("a", "1".into());
        assert_eq!(c.get("a").as_deref(), Some("1"));
        c.insert("b", "2".into());
        assert_eq!(c.get("a"), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn concurrent_access_is_safe_and_counted() {
        use std::sync::Arc;
        let c = Arc::new(ResultCache::new(64));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for i in 0..50 {
                        let key = format!("k{}", (t + i) % 16);
                        if c.get(&key).is_none() {
                            c.insert(&key, format!("v{}", (t + i) % 16));
                        }
                    }
                });
            }
        });
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 400);
        assert!(s.entries <= 16);
    }
}
