//! A lock-cheap, std-only metrics registry: counters, gauges, and
//! log-bucketed latency histograms.
//!
//! The serve stack (`hetmem-bench::serve`) embeds a [`MetricsRegistry`]
//! to time every request phase and exposes it through the `metrics`
//! protocol op in two formats: a JSON document for `hetmem-top` and
//! scripts, and Prometheus text exposition for standard scrapers.
//!
//! Design constraints, in order:
//!
//! - **Hot-path cheapness.** Recording a value is a handful of relaxed
//!   atomic ops on an `Arc`'d metric handle — no locks, no allocation,
//!   no formatting. The registry's `Mutex` is touched only at
//!   registration and render time.
//! - **Exact counts.** Histogram bucket counts and totals are exact
//!   (`AtomicU64`); only the *position* of a value inside its bucket is
//!   approximate.
//! - **Deterministic merge.** [`HistogramSnapshot::merge`] is
//!   bucket-wise addition, so it is associative, commutative, and
//!   conserves counts — merging per-shard snapshots in any order yields
//!   identical results (property-tested in `tests/metrics_props.rs`).
//! - **Bounded quantile error.** [`HistogramSnapshot::quantile`]
//!   returns a value guaranteed to lie within the bounds of the bucket
//!   containing the requested rank. Buckets are log-spaced with 16
//!   linear sub-buckets per octave, so the relative error is ≤ 1/16
//!   (values 0–31 are exact).
//!
//! Histograms are unit-agnostic `u64`s; the serve stack records
//! microseconds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::{array, JsonObject};

/// Linear sub-buckets per octave (power of two). 16 sub-buckets keep
/// the worst-case relative quantile error at 1/16 ≈ 6.25%.
const SUB_BUCKETS: u64 = 16;

/// Values below this are stored exactly, one bucket per value.
const EXACT_LIMIT: u64 = 2 * SUB_BUCKETS; // 32

/// Total bucket count for the full `u64` range.
/// 32 exact + (64 - 5) octaves × 16 sub-buckets.
pub const NUM_BUCKETS: usize = (EXACT_LIMIT + (64 - 5) * SUB_BUCKETS) as usize;

/// Maps a value to its bucket index. Total over `u64`, monotone in `v`.
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v < EXACT_LIMIT {
        return v as usize;
    }
    let h = 63 - u64::from(v.leading_zeros()); // highest set bit, >= 5
    let sub = (v >> (h - 4)) & (SUB_BUCKETS - 1);
    (EXACT_LIMIT + (h - 5) * SUB_BUCKETS + sub) as usize
}

/// The inclusive `[lo, hi]` value range covered by bucket `i`.
///
/// # Panics
///
/// Panics when `i >= NUM_BUCKETS`.
#[must_use]
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < NUM_BUCKETS, "bucket index {i} out of range");
    let i = i as u64;
    if i < EXACT_LIMIT {
        return (i, i);
    }
    let h = 5 + (i - EXACT_LIMIT) / SUB_BUCKETS;
    let sub = (i - EXACT_LIMIT) % SUB_BUCKETS;
    let width = 1u64 << (h - 4);
    let lo = (SUB_BUCKETS + sub) << (h - 4);
    (lo, lo + (width - 1))
}

/// A monotonically increasing counter.
///
/// [`Counter::store`] exists for mirroring an *external* monotonic
/// source (e.g. cache statistics kept elsewhere) into the registry at
/// scrape time; metrics owned by the registry should only `inc`/`add`.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value (for scrape-time mirroring of an external
    /// monotonic source only).
    pub fn store(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A log-bucketed histogram of `u64` values (lock-free recording).
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
}

impl Histogram {
    /// An empty histogram covering the full `u64` range.
    #[must_use]
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        // Saturating: a sum overflow must not wrap counts backwards.
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// A consistent-enough point-in-time copy (bucket loads are not
    /// mutually atomic; counts already recorded are never lost).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// An immutable copy of a [`Histogram`], supporting deterministic merge
/// and bounded-error quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            sum: 0,
        }
    }

    /// Total number of recorded values (exact).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of recorded values (saturating at `u64::MAX`).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of recorded values, `0.0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum as f64 / n as f64
    }

    /// Bucket-wise addition: associative, commutative, count-conserving.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The quantile estimate for `q ∈ [0, 1]`: the midpoint of the
    /// bucket containing the rank-`⌈q·n⌉` value, clamped to that
    /// bucket's `[lo, hi]` bounds (so the true value of that rank is
    /// within one bucket width). Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * n as f64).ceil() as u64).max(1).min(n);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                return lo + (hi - lo) / 2;
            }
        }
        unreachable!("rank {rank} <= count {n} must land in a bucket")
    }

    /// Largest non-empty bucket's upper bound, 0 when empty.
    #[must_use]
    pub fn max_bound(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| bucket_bounds(i).1)
    }

    /// Non-empty `(bucket_upper_bound, cumulative_count)` pairs, in
    /// ascending bound order — the Prometheus `le` series minus `+Inf`.
    #[must_use]
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                cum += c;
                out.push((bucket_bounds(i).1, cum));
            }
        }
        out
    }
}

/// The kind of metric behind a registry entry.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// One registered metric family: a name, help text, and one entry per
/// label set.
#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    entries: Vec<(Vec<(String, String)>, Metric)>,
}

/// A registry of named metric families. Registration and rendering
/// lock; recording through the returned `Arc` handles never does.
///
/// Families and entries render in registration order, so output is
/// deterministic for a fixed registration sequence.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<Vec<Family>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut families = self.families.lock().unwrap();
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => f,
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    entries: Vec::new(),
                });
                families.last_mut().unwrap()
            }
        };
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        if let Some((_, metric)) = family.entries.iter().find(|(l, _)| *l == labels) {
            return metric.clone();
        }
        let metric = make();
        family.entries.push((labels, metric.clone()));
        metric
    }

    /// Registers (or retrieves) a counter.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered with a different type.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, help, labels, || {
            Metric::Counter(Arc::new(Counter::new()))
        }) {
            Metric::Counter(c) => c,
            other => panic!("{name} already registered as {}", other.type_name()),
        }
    }

    /// Registers (or retrieves) a gauge.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered with a different type.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, help, labels, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("{name} already registered as {}", other.type_name()),
        }
    }

    /// Registers (or retrieves) a histogram.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered with a different type.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.register(name, help, labels, || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("{name} already registered as {}", other.type_name()),
        }
    }

    /// Renders every family as one JSON object:
    /// `{"metrics":[{name,type,help,series:[{labels,...}]}]}`.
    /// Histogram series carry exact `count`/`sum` plus precomputed
    /// `p50`/`p90`/`p95`/`p99`/`max` and the non-empty cumulative
    /// buckets.
    #[must_use]
    pub fn render_json(&self) -> String {
        let families = self.families.lock().unwrap();
        let rendered = families.iter().map(|f| {
            let series = f.entries.iter().map(|(labels, metric)| {
                let mut lab = JsonObject::new();
                for (k, v) in labels {
                    lab = lab.str(k, v);
                }
                let obj = JsonObject::new().raw("labels", &lab.finish());
                match metric {
                    Metric::Counter(c) => obj.u64("value", c.get()).finish(),
                    Metric::Gauge(g) => obj.u64("value", g.get()).finish(),
                    Metric::Histogram(h) => {
                        let snap = h.snapshot();
                        let buckets =
                            array(snap.cumulative_buckets().into_iter().map(|(le, cum)| {
                                JsonObject::new().u64("le", le).u64("cum", cum).finish()
                            }));
                        obj.u64("count", snap.count())
                            .u64("sum", snap.sum())
                            .u64("p50", snap.quantile(0.50))
                            .u64("p90", snap.quantile(0.90))
                            .u64("p95", snap.quantile(0.95))
                            .u64("p99", snap.quantile(0.99))
                            .u64("max", snap.max_bound())
                            .raw("buckets", &buckets)
                            .finish()
                    }
                }
            });
            JsonObject::new()
                .str("name", &f.name)
                .str(
                    "type",
                    f.entries.first().map_or("counter", |(_, m)| m.type_name()),
                )
                .str("help", &f.help)
                .raw("series", &array(series))
                .finish()
        });
        JsonObject::new().raw("metrics", &array(rendered)).finish()
    }

    /// Renders every family in Prometheus text exposition format:
    /// `# HELP`/`# TYPE` once per family, histograms as cumulative
    /// `_bucket{le=...}` series (non-empty buckets plus `+Inf`),
    /// `_sum`, and `_count`.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().unwrap();
        let mut out = String::new();
        for f in families.iter() {
            let Some((_, first)) = f.entries.first() else {
                continue;
            };
            out.push_str(&format!("# HELP {} {}\n", f.name, f.help));
            out.push_str(&format!("# TYPE {} {}\n", f.name, first.type_name()));
            for (labels, metric) in &f.entries {
                match metric {
                    Metric::Counter(c) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            f.name,
                            prom_labels(labels, None),
                            c.get()
                        ));
                    }
                    Metric::Gauge(g) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            f.name,
                            prom_labels(labels, None),
                            g.get()
                        ));
                    }
                    Metric::Histogram(h) => {
                        let snap = h.snapshot();
                        for (le, cum) in snap.cumulative_buckets() {
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                f.name,
                                prom_labels(labels, Some(&le.to_string())),
                                cum
                            ));
                        }
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            f.name,
                            prom_labels(labels, Some("+Inf")),
                            snap.count()
                        ));
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            f.name,
                            prom_labels(labels, None),
                            snap.sum()
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            f.name,
                            prom_labels(labels, None),
                            snap.count()
                        ));
                    }
                }
            }
        }
        out
    }
}

/// Serializes a label set (plus an optional `le`) as `{k="v",...}`;
/// empty when there are no labels.
fn prom_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&prom_escape(v));
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
    out
}

fn prom_escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Validates Prometheus text exposition format. Returns the number of
/// samples on success.
///
/// This is the strict subset the registry emits plus standard comments:
/// `# HELP name text`, `# TYPE name <counter|gauge|histogram|summary|untyped>`,
/// other `#` comments, blank lines, and samples
/// `name[{label="value",...}] value [timestamp]`.
///
/// # Errors
///
/// Returns `"line N: message"` for the first malformed line.
pub fn parse_prometheus(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {lineno}: bad metric name in TYPE: {name:?}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {lineno}: bad metric type {kind:?}"));
                }
            } else if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split_whitespace().next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {lineno}: bad metric name in HELP: {name:?}"));
                }
            }
            continue;
        }
        parse_sample(line).map_err(|e| format!("line {lineno}: {e}"))?;
        samples += 1;
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<(), String> {
    let (name_part, rest) = match line.find('{') {
        Some(open) => {
            let close = line[open..]
                .find('}')
                .ok_or_else(|| "unterminated label set".to_string())?
                + open;
            parse_labels(&line[open + 1..close])?;
            (&line[..open], line[close + 1..].trim_start())
        }
        None => {
            let sp = line
                .find(' ')
                .ok_or_else(|| "sample missing value".to_string())?;
            (&line[..sp], line[sp + 1..].trim_start())
        }
    };
    if !valid_metric_name(name_part) {
        return Err(format!("bad metric name {name_part:?}"));
    }
    let mut parts = rest.split_whitespace();
    let value = parts
        .next()
        .ok_or_else(|| "sample missing value".to_string())?;
    let value_ok =
        value.parse::<f64>().is_ok() || matches!(value, "+Inf" | "-Inf" | "NaN" | "Nan" | "nan");
    if !value_ok {
        return Err(format!("bad sample value {value:?}"));
    }
    if let Some(ts) = parts.next() {
        ts.parse::<i64>()
            .map_err(|_| format!("bad timestamp {ts:?}"))?;
    }
    if parts.next().is_some() {
        return Err("trailing tokens after sample".to_string());
    }
    Ok(())
}

fn parse_labels(body: &str) -> Result<(), String> {
    let body = body.trim();
    if body.is_empty() {
        return Ok(());
    }
    // Split on commas outside quotes (escaped quotes stay inside).
    let mut rest = body;
    loop {
        let eq = rest
            .find('=')
            .ok_or_else(|| "label missing '='".to_string())?;
        let name = rest[..eq].trim();
        if !valid_label_name(name) {
            return Err(format!("bad label name {name:?}"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("label {name:?} value not quoted"));
        }
        let mut end = None;
        let bytes = after.as_bytes();
        let mut j = 1;
        while j < bytes.len() {
            match bytes[j] {
                b'\\' => j += 2,
                b'"' => {
                    end = Some(j);
                    break;
                }
                _ => j += 1,
            }
        }
        let end = end.ok_or_else(|| format!("label {name:?} value unterminated"))?;
        rest = after[end + 1..].trim_start();
        if rest.is_empty() {
            return Ok(());
        }
        rest = rest
            .strip_prefix(',')
            .ok_or_else(|| "expected ',' between labels".to_string())?
            .trim_start();
        if rest.is_empty() {
            return Ok(()); // trailing comma is tolerated
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_total_and_monotone() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        let mut prev = 0;
        for v in [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1000,
            1 << 20,
            1 << 40,
            u64::MAX,
        ] {
            let b = bucket_index(v);
            assert!(b >= prev, "bucket_index not monotone at {v}");
            prev = b;
        }
    }

    #[test]
    fn bucket_bounds_invert_bucket_index() {
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi of bucket {i}");
            if i + 1 < NUM_BUCKETS {
                assert_eq!(bucket_bounds(i + 1).0, hi.wrapping_add(1), "gap after {i}");
            } else {
                assert_eq!(hi, u64::MAX);
            }
        }
    }

    #[test]
    fn bounded_relative_error() {
        for v in [32u64, 100, 999, 12_345, 1 << 30] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi);
            // Bucket width is <= 1/16 of the bucket's magnitude for v >= 32.
            assert!((hi - lo + 1) * SUB_BUCKETS <= hi + 1, "width at {v}");
        }
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let h = Histogram::new();
        for v in [5u64, 5, 10, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum(), 1120);
        assert_eq!(s.quantile(0.0), 5); // exact bucket
        assert_eq!(s.quantile(0.4), 5);
        let p99 = s.quantile(0.99);
        let (lo, hi) = bucket_bounds(bucket_index(1000));
        assert!(p99 >= lo && p99 <= hi, "p99={p99} not in [{lo},{hi}]");
        assert_eq!(s.max_bound(), hi);
    }

    #[test]
    fn empty_snapshot_is_zeroes() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.max_bound(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s, HistogramSnapshot::empty());
    }

    #[test]
    fn merge_adds_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        a.record(20);
        b.record(10_000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 3);
        assert_eq!(m.sum(), 10_030);
    }

    #[test]
    fn registry_renders_json_and_prometheus() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("hm_requests_total", "Completed requests.", &[]);
        let g = reg.gauge("hm_queue_depth", "Queue depth.", &[("shard", "0")]);
        let h = reg.histogram("hm_request_us", "Latency.", &[("op", "simulate")]);
        c.add(3);
        g.set(7);
        h.record(100);
        h.record(2000);

        let json = reg.render_json();
        let v = crate::json::JsonValue::parse(&json).expect("registry JSON parses");
        let metrics = v.get("metrics").unwrap().as_array().unwrap();
        assert_eq!(metrics.len(), 3);
        assert_eq!(
            metrics[0].get("name").unwrap().as_str(),
            Some("hm_requests_total")
        );
        let series = metrics[2].get("series").unwrap().as_array().unwrap();
        assert_eq!(series[0].get("count").unwrap().as_u64(), Some(2));
        assert!(series[0].get("p50").unwrap().as_u64().is_some());

        let prom = reg.render_prometheus();
        assert!(prom.contains("# TYPE hm_requests_total counter"));
        assert!(prom.contains("hm_requests_total 3"));
        assert!(prom.contains("hm_queue_depth{shard=\"0\"} 7"));
        assert!(prom.contains("hm_request_us_bucket{op=\"simulate\",le=\"+Inf\"} 2"));
        assert!(prom.contains("hm_request_us_count{op=\"simulate\"} 2"));
        let samples = parse_prometheus(&prom).expect("own output validates");
        assert!(samples >= 6, "got {samples} samples");
    }

    #[test]
    fn registration_is_idempotent_per_label_set() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hm_x_total", "x", &[("op", "a")]);
        let b = reg.counter("hm_x_total", "x", &[("op", "a")]);
        let c = reg.counter("hm_x_total", "x", &[("op", "b")]);
        a.inc();
        b.inc();
        c.inc();
        assert_eq!(a.get(), 2, "same label set shares storage");
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn parse_prometheus_rejects_garbage() {
        assert!(parse_prometheus("ok_metric 1\n").is_ok());
        assert!(parse_prometheus("1bad_name 1\n").is_err());
        assert!(parse_prometheus("m{le=\"10\"} notanumber\n").is_err());
        assert!(parse_prometheus("m{unterminated=\"\n").is_err());
        assert!(parse_prometheus("# TYPE m sideways\n").is_err());
        assert!(
            parse_prometheus("m{l=\"v\"} 1 123\n").is_ok(),
            "timestamps allowed"
        );
        assert!(
            parse_prometheus("m{l=\"a\\\"b\"} 2\n").is_ok(),
            "escaped quote in label"
        );
    }

    #[test]
    fn counter_store_mirrors_external_source() {
        let c = Counter::new();
        c.store(41);
        c.inc();
        assert_eq!(c.get(), 42);
    }
}
