//! Consistent-hash routing for the `hetmem-fleet` router.
//!
//! A [`HashRing`] places `vnodes` virtual points per backend on a
//! 64-bit hash circle; a key routes to the backend owning the first
//! point at or clockwise of the key's hash. Two properties make this
//! the right router for a sharded result cache (both property-tested
//! in `tests/ring_props.rs`):
//!
//! 1. **Balance** — with enough virtual points, every backend owns a
//!    bounded share of the key space, so no cache shard runs hot.
//! 2. **Minimal remap** — excluding a backend (crash, circuit open)
//!    moves *only* the keys that backend owned; every other key keeps
//!    its owner, so the surviving backends' caches stay warm and their
//!    hits stay byte-identical.
//!
//! Failover order is the ring's successor walk: [`HashRing::successors`]
//! lists every backend in the order a key would reach them, and
//! [`HashRing::route_filtered`] takes the first one a health predicate
//! accepts.

use crate::telemetry::fnv1a;

/// Virtual points per backend when the caller doesn't choose.
pub const DEFAULT_VNODES: usize = 64;

/// splitmix64 finalizer over the FNV-1a digest. FNV alone clusters on
/// near-identical inputs (`backend-0/vnode-1` vs `.../vnode-2` differ
/// in one trailing byte), which skews ring arcs badly; the finalizer's
/// avalanche spreads the points uniformly around the circle.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// The ring's hash for any label or key.
fn ring_hash(bytes: &[u8]) -> u64 {
    mix(fnv1a(bytes))
}

/// A consistent-hash ring over backends `0..n`.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point hash, backend)` sorted by hash.
    points: Vec<(u64, usize)>,
    backends: usize,
}

impl HashRing {
    /// Builds a ring with `vnodes` virtual points for each of
    /// `backends` backends (0 of either falls back to sane minimums).
    pub fn new(backends: usize, vnodes: usize) -> Self {
        let backends = backends.max(1);
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(backends * vnodes);
        for backend in 0..backends {
            for vnode in 0..vnodes {
                let label = format!("backend-{backend}/vnode-{vnode}");
                points.push((ring_hash(label.as_bytes()), backend));
            }
        }
        // Ties (hash collisions) resolve to the lower backend index so
        // ownership is deterministic regardless of build order.
        points.sort_unstable();
        HashRing { points, backends }
    }

    /// How many backends the ring spans.
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// The hash a key routes by.
    fn key_hash(key: &str) -> u64 {
        ring_hash(key.as_bytes())
    }

    /// Index into `points` of the first point at or after the key's
    /// hash (wrapping past the top of the circle).
    fn first_point(&self, key: &str) -> usize {
        let h = Self::key_hash(key);
        match self.points.binary_search(&(h, 0)) {
            Ok(i) => i,
            Err(i) => i % self.points.len(),
        }
    }

    /// The backend owning `key` with every backend eligible.
    pub fn route(&self, key: &str) -> usize {
        self.points[self.first_point(key)].1
    }

    /// The backend owning `key` among those `healthy` accepts: the
    /// successor walk skips ineligible backends, so only keys owned by
    /// an excluded backend move (and they move to their next
    /// successor). `None` when nothing is eligible.
    pub fn route_filtered(&self, key: &str, healthy: impl Fn(usize) -> bool) -> Option<usize> {
        self.successors(key).into_iter().find(|&b| healthy(b))
    }

    /// Every distinct backend in the order the successor walk from
    /// `key` reaches them — the failover order. The first element is
    /// [`HashRing::route`]'s answer.
    pub fn successors(&self, key: &str) -> Vec<usize> {
        let start = self.first_point(key);
        let mut seen = vec![false; self.backends];
        let mut order = Vec::with_capacity(self.backends);
        for i in 0..self.points.len() {
            let backend = self.points[(start + i) % self.points.len()].1;
            if !seen[backend] {
                seen[backend] = true;
                order.push(backend);
                if order.len() == self.backends {
                    break;
                }
            }
        }
        order
    }

    /// Each backend's share of the hash circle, in `[0, 1]` summing to
    /// 1 — the ring-ownership gauge's source.
    pub fn shares(&self) -> Vec<f64> {
        let mut arc = vec![0u128; self.backends];
        for (i, &(hash, backend)) in self.points.iter().enumerate() {
            let prev = if i == 0 {
                // The arc from the last point wraps through u64::MAX.
                self.points[self.points.len() - 1].0
            } else {
                self.points[i - 1].0
            };
            let len = hash.wrapping_sub(prev);
            let len = if self.points.len() == 1 {
                u128::from(u64::MAX) + 1
            } else {
                u128::from(len)
            };
            arc[backend] += len;
        }
        let total = u128::from(u64::MAX) + 1;
        arc.iter().map(|&a| a as f64 / total as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_is_deterministic_and_first_successor() {
        let ring = HashRing::new(4, 16);
        for i in 0..100 {
            let key = format!("key-{i}");
            assert_eq!(ring.route(&key), ring.route(&key));
            assert_eq!(ring.route(&key), ring.successors(&key)[0]);
        }
    }

    #[test]
    fn successors_cover_every_backend_once() {
        let ring = HashRing::new(5, 8);
        let order = ring.successors("some-key");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn filtered_route_skips_excluded_backends() {
        let ring = HashRing::new(3, 32);
        let key = "cache-key";
        let owner = ring.route(key);
        let rerouted = ring.route_filtered(key, |b| b != owner).unwrap();
        assert_ne!(rerouted, owner);
        assert!(ring.route_filtered(key, |_| false).is_none());
        assert_eq!(ring.route_filtered(key, |_| true), Some(owner));
    }

    #[test]
    fn shares_sum_to_one() {
        let ring = HashRing::new(4, 64);
        let shares = ring.shares();
        assert_eq!(shares.len(), 4);
        let total: f64 = shares.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "got {total}");
        assert!(shares.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn degenerate_sizes_clamp() {
        let ring = HashRing::new(0, 0);
        assert_eq!(ring.backends(), 1);
        assert_eq!(ring.route("anything"), 0);
        assert_eq!(ring.shares(), vec![1.0]);
    }
}
