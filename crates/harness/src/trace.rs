//! A Chrome `trace_event` format writer (Perfetto / `chrome://tracing`
//! loadable), built on the deterministic in-tree JSON writer.
//!
//! The format is the "JSON object" flavor: a top-level object with a
//! `traceEvents` array. Each event carries a phase (`"X"` complete
//! events with a duration, `"i"` instants, `"M"` metadata), a timestamp
//! in microseconds, and `pid`/`tid` track coordinates. See the Trace
//! Event Format spec (Google, public) for the field meanings; only the
//! subset emitted here is needed for Perfetto to render tracks.
//!
//! ```
//! use hetmem_harness::trace::{ChromeTrace, TraceEvent};
//!
//! let mut t = ChromeTrace::new();
//! t.name_process(0, "SMs");
//! t.push(TraceEvent::complete("mem", "request", 1.5, 2.0, 0, 3));
//! let json = t.render();
//! assert!(json.starts_with(r#"{"traceEvents":["#));
//! ```

use crate::json::{array, quote, JsonObject};

/// One trace event. Build with the constructors, attach extra context
/// with [`TraceEvent::arg`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Display name of the event.
    pub name: String,
    /// Category (comma-separated tags; used for filtering in the UI).
    pub cat: String,
    /// Phase: `X` complete, `i` instant, `M` metadata.
    pub ph: char,
    /// Timestamp in microseconds.
    pub ts: f64,
    /// Duration in microseconds (complete events only).
    pub dur: Option<f64>,
    /// Process track.
    pub pid: u64,
    /// Thread track within the process.
    pub tid: u64,
    /// Extra `args` fields as (key, pre-serialized JSON value) pairs.
    pub args: Vec<(String, String)>,
}

impl TraceEvent {
    /// A complete (`"ph":"X"`) event spanning `[ts, ts + dur)` µs.
    pub fn complete(name: &str, cat: &str, ts: f64, dur: f64, pid: u64, tid: u64) -> Self {
        TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'X',
            ts,
            dur: Some(dur),
            pid,
            tid,
            args: Vec::new(),
        }
    }

    /// An instant (`"ph":"i"`) event at `ts` µs.
    pub fn instant(name: &str, cat: &str, ts: f64, pid: u64, tid: u64) -> Self {
        TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'i',
            ts,
            dur: None,
            pid,
            tid,
            args: Vec::new(),
        }
    }

    /// Adds an `args` entry (`value` must be valid JSON, e.g. from
    /// [`fmt_f64`](crate::json::fmt_f64) or a quoted string).
    pub fn arg(mut self, key: &str, value: impl Into<String>) -> Self {
        self.args.push((key.to_string(), value.into()));
        self
    }

    fn json(&self) -> String {
        let mut obj = JsonObject::new()
            .str("name", &self.name)
            .str("cat", &self.cat)
            .str("ph", &self.ph.to_string())
            .f64("ts", self.ts);
        if let Some(dur) = self.dur {
            obj = obj.f64("dur", dur);
        }
        obj = obj.u64("pid", self.pid).u64("tid", self.tid);
        if self.ph == 'i' {
            // Instant scope: thread-level keeps the marker on its track.
            obj = obj.str("s", "t");
        }
        if !self.args.is_empty() {
            let mut args = JsonObject::new();
            for (k, v) in &self.args {
                args = args.raw(k, v);
            }
            obj = obj.raw("args", &args.finish());
        }
        obj.finish()
    }
}

/// An in-memory trace; render once every event is pushed.
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    events: Vec<TraceEvent>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Appends one event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were collected.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names a process track via a metadata event (shows as the group
    /// title in Perfetto).
    pub fn name_process(&mut self, pid: u64, name: &str) {
        self.events.push(TraceEvent {
            name: "process_name".to_string(),
            cat: "__metadata".to_string(),
            ph: 'M',
            ts: 0.0,
            dur: None,
            pid,
            tid: 0,
            args: vec![("name".to_string(), quote(name))],
        });
    }

    /// Serializes the whole trace as one JSON document.
    pub fn render(&self) -> String {
        JsonObject::new()
            .raw("traceEvents", &array(self.events.iter().map(|e| e.json())))
            .str("displayTimeUnit", "ns")
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    #[test]
    fn renders_loadable_trace_json() {
        let mut t = ChromeTrace::new();
        t.name_process(0, "SMs");
        t.push(TraceEvent::complete("mem", "request", 1.0, 2.5, 0, 3).arg("pool", "0"));
        t.push(TraceEvent::instant("mshr_nack", "stall", 4.0, 1, 2));
        let json = t.render();
        let v = JsonValue::parse(&json).expect("trace must be valid JSON");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("M"));
        let complete = &events[1];
        assert_eq!(complete.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(complete.get("dur").unwrap().as_f64(), Some(2.5));
        assert_eq!(
            complete.get("args").unwrap().get("pool").unwrap().as_u64(),
            Some(0)
        );
        let instant = &events[2];
        assert_eq!(instant.get("s").unwrap().as_str(), Some("t"));
        assert!(instant.get("dur").is_none());
    }

    #[test]
    fn render_is_deterministic() {
        let mut t = ChromeTrace::new();
        t.push(TraceEvent::complete("a", "c", 0.0, 1.0, 0, 0));
        assert_eq!(t.render(), t.clone().render());
    }
}
