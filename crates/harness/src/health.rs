//! Per-backend health state for the `hetmem-fleet` router: a
//! closed/open/half-open circuit breaker with a deterministic, seeded
//! cooldown schedule.
//!
//! * **Closed** — requests flow; consecutive failures are counted and
//!   `threshold` of them in a row trip the breaker.
//! * **Open** — requests are refused without touching the backend
//!   until the cooldown elapses. The cooldown comes from a seeded
//!   [`Backoff`] schedule keyed by how many times this breaker has
//!   tripped in a row, so repeated trips wait longer and a chaos run's
//!   recovery timing is reproducible from the seed.
//! * **Half-open** — one trial request (the health probe) is admitted.
//!   Success closes the breaker and resets the trip streak; failure
//!   re-opens it with the next, longer cooldown.
//!
//! The breaker is internally synchronized: the prober and every
//! forwarding thread share one per-backend instance.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::backoff::Backoff;

/// The observable breaker state, for `stats` reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Requests are refused until the cooldown elapses.
    Open,
    /// One trial request is (or has been) admitted.
    HalfOpen,
}

impl BreakerState {
    /// The state's stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

#[derive(Debug)]
enum Inner {
    Closed {
        consecutive_failures: u32,
    },
    Open {
        until: Instant,
    },
    /// `trialed` flips when the single half-open trial is handed out.
    HalfOpen {
        trialed: bool,
    },
}

/// A closed/open/half-open circuit breaker with deterministic seeded
/// cooldowns.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Backoff,
    inner: Mutex<(Inner, u32)>, // (state, consecutive trips)
}

impl CircuitBreaker {
    /// A breaker tripping after `threshold` consecutive failures, with
    /// cooldowns drawn from the seeded `cooldown` schedule (trip
    /// streak N sleeps `cooldown.delay_ms(N)`).
    pub fn new(threshold: u32, cooldown: Backoff) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            inner: Mutex::new((
                Inner::Closed {
                    consecutive_failures: 0,
                },
                0,
            )),
        }
    }

    /// Whether a request may proceed at `now`. In the open state this
    /// flips to half-open once the cooldown has elapsed and admits
    /// exactly one trial until an outcome is recorded.
    pub fn allows(&self, now: Instant) -> bool {
        let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match &mut guard.0 {
            Inner::Closed { .. } => true,
            Inner::Open { until } => {
                if now < *until {
                    false
                } else {
                    guard.0 = Inner::HalfOpen { trialed: true };
                    true
                }
            }
            Inner::HalfOpen { trialed } => {
                if *trialed {
                    false
                } else {
                    *trialed = true;
                    true
                }
            }
        }
    }

    /// Records a successful interaction: closes the breaker and resets
    /// both the failure count and the trip streak.
    pub fn record_success(&self) {
        let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        guard.0 = Inner::Closed {
            consecutive_failures: 0,
        };
        guard.1 = 0;
    }

    /// Records a failed interaction at `now`: counts toward the trip
    /// threshold when closed, re-opens immediately from half-open.
    pub fn record_failure(&self, now: Instant) {
        let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let (state, trips) = &mut *guard;
        match state {
            Inner::Closed {
                consecutive_failures,
            } => {
                *consecutive_failures += 1;
                if *consecutive_failures >= self.threshold {
                    let delay = self.cooldown.delay_ms(*trips);
                    *trips = trips.saturating_add(1);
                    *state = Inner::Open {
                        until: now + Duration::from_millis(delay),
                    };
                }
            }
            Inner::Open { .. } => {}
            Inner::HalfOpen { .. } => {
                let delay = self.cooldown.delay_ms(*trips);
                *trips = trips.saturating_add(1);
                *state = Inner::Open {
                    until: now + Duration::from_millis(delay),
                };
            }
        }
    }

    /// The current state, for reporting.
    pub fn state(&self) -> BreakerState {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match guard.0 {
            Inner::Closed { .. } => BreakerState::Closed,
            Inner::Open { .. } => BreakerState::Open,
            Inner::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32) -> CircuitBreaker {
        CircuitBreaker::new(threshold, Backoff::new(100, 1_000, 7))
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let b = breaker(3);
        let now = Instant::now();
        for _ in 0..2 {
            b.record_failure(now);
            assert_eq!(b.state(), BreakerState::Closed);
        }
        b.record_failure(now);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allows(now));
    }

    #[test]
    fn success_resets_the_failure_count() {
        let b = breaker(2);
        let now = Instant::now();
        b.record_failure(now);
        b.record_success();
        b.record_failure(now);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_admits_one_trial_then_closes_or_reopens() {
        let b = breaker(1);
        let t0 = Instant::now();
        b.record_failure(t0);
        assert!(!b.allows(t0));
        // Past the first cooldown (<= 1 s cap) the breaker half-opens
        // and admits exactly one trial.
        let later = t0 + Duration::from_secs(2);
        assert!(b.allows(later));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allows(later), "second request during the trial waits");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allows(later));

        // A failed trial re-opens with a longer (monotone) cooldown.
        b.record_failure(later);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allows(later + Duration::from_secs(2)));
        b.record_failure(later + Duration::from_secs(2));
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn cooldowns_are_deterministic_per_seed() {
        // Two breakers with the same schedule trip to the same `until`
        // offsets; assert via allows() at the schedule's delay bounds.
        let schedule = Backoff::new(50, 400, 21);
        let b = CircuitBreaker::new(1, schedule);
        let t0 = Instant::now();
        b.record_failure(t0);
        let d0 = schedule.delay_ms(0);
        assert!(!b.allows(t0 + Duration::from_millis(d0.saturating_sub(10))));
        assert!(b.allows(t0 + Duration::from_millis(d0 + 10)));
    }
}
