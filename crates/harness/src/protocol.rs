//! The `hetmem-serve` wire protocol: one JSON object per line, in both
//! directions.
//!
//! A **request** names an operation and carries an opaque parameter
//! object; the `id` is echoed on the response so clients can pipeline:
//!
//! ```text
//! {"id":1,"op":"simulate","params":{"workload":"bfs","policy":"BW-AWARE"}}
//! ```
//!
//! A **response** is either a result or a structured error — never a
//! bare string, so clients can always branch on `ok` and machine-read
//! `error.code`:
//!
//! ```text
//! {"id":1,"ok":true,"result":{...}}
//! {"id":1,"ok":false,"error":{"code":"overloaded","message":"queue full"}}
//! ```
//!
//! Both directions round-trip through the strict in-tree JSON layer
//! ([`json`](crate::json)): encoding is byte-deterministic (a cached
//! `result` re-encodes to identical bytes) and decoding rejects
//! malformed lines with an offset-carrying error.
//!
//! ## Versioning and batching (protocol v2)
//!
//! The envelope carries an optional `proto` field (default `1`, omitted
//! on the wire at the default so v1 bytes are unchanged). Version 2
//! adds the `batch` op: `params.requests` holds an array of full
//! request envelopes, the result is `{"responses":[...]}` with one full
//! response object per sub-request, **in sub-request order**. Each
//! element encodes to exactly the bytes the bare single-request
//! response line would have, so a batch of one is byte-equivalent to an
//! unbatched call. Servers answer unknown major versions with the
//! stable `unsupported-protocol` code and oversized batches with
//! `batch-too-large`.

use crate::json::{JsonError, JsonObject, JsonValue};

/// The protocol version implied by an envelope with no `proto` field.
pub const PROTO_V1: u64 = 1;
/// The newest protocol version this crate speaks (adds `batch`).
pub const PROTO_V2: u64 = 2;

/// One decoded request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// Protocol major version of this envelope. Defaults to
    /// [`PROTO_V1`] and is omitted from the wire at the default, so
    /// pre-versioning request bytes are unchanged. Version
    /// [`PROTO_V2`] unlocks the `batch` op; servers refuse anything
    /// they don't speak with the `unsupported-protocol` code.
    pub proto: u64,
    /// Operation name (e.g. `place`, `simulate`, `stats`, `shutdown`).
    pub op: String,
    /// Optional per-request deadline budget, milliseconds from the
    /// moment the server decodes the line. The server refuses to start
    /// work past the deadline and answers `deadline-exceeded`; work is
    /// cut cooperatively at grid-point boundaries, so an in-flight
    /// simulation point still runs to completion.
    pub deadline_ms: Option<u64>,
    /// Optional request-scoped trace id, echoed in error responses,
    /// success responses, and every server telemetry line touching this
    /// request — the join key between client retry logs and server-side
    /// records. Unlike `id` (a per-connection pipelining counter), a
    /// `request_id` is globally meaningful; the server generates one
    /// (`srv-N`) for telemetry when the client omits it, but only
    /// client-supplied ids are echoed on responses (so responses stay
    /// byte-identical for identical request lines).
    pub request_id: Option<String>,
    /// Opt-in per-request span logging: when set, the server emits
    /// `serve-span` telemetry lines covering every phase of this
    /// request, renderable onto a Chrome trace timeline
    /// (`hetmem-trace spans`).
    pub trace: bool,
    /// Operation parameters; `{}` when the line omits `params`.
    pub params: JsonValue,
}

impl Request {
    /// Builds a request with empty params and no deadline.
    pub fn new(id: u64, op: &str) -> Self {
        Request {
            id,
            proto: PROTO_V1,
            op: op.to_string(),
            deadline_ms: None,
            request_id: None,
            trace: false,
            params: JsonValue::Object(Vec::new()),
        }
    }

    /// Builds a request with the given params object and no deadline.
    pub fn with_params(id: u64, op: &str, params: JsonValue) -> Self {
        Request {
            params,
            ..Request::new(id, op)
        }
    }

    /// Sets the request's deadline budget in milliseconds.
    #[must_use]
    pub fn deadline(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Sets the envelope's protocol major version.
    #[must_use]
    pub fn proto(mut self, version: u64) -> Self {
        self.proto = version;
        self
    }

    /// Sets the request-scoped trace id.
    #[must_use]
    pub fn request_id(mut self, rid: &str) -> Self {
        self.request_id = Some(rid.to_string());
        self
    }

    /// Enables per-request span logging.
    #[must_use]
    pub fn trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Encodes the request as one JSON line (no trailing newline).
    /// `request_id` and `trace` are emitted only when set, so requests
    /// that don't use them encode to the same bytes as before they
    /// existed.
    pub fn encode(&self) -> String {
        let mut obj = JsonObject::new().u64("id", self.id).str("op", &self.op);
        if self.proto != PROTO_V1 {
            obj = obj.u64("proto", self.proto);
        }
        if let Some(rid) = &self.request_id {
            obj = obj.str("request_id", rid);
        }
        if let Some(ms) = self.deadline_ms {
            obj = obj.u64("deadline_ms", ms);
        }
        if self.trace {
            obj = obj.bool("trace", true);
        }
        obj.raw("params", &self.params.render()).finish()
    }

    /// Decodes one request line.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadJson`] when the line is not valid JSON,
    /// [`ProtocolError::BadRequest`] when it is JSON but not a valid
    /// request envelope (missing/ill-typed `id` or `op`).
    pub fn decode(line: &str) -> Result<Request, ProtocolError> {
        let v = JsonValue::parse(line).map_err(ProtocolError::BadJson)?;
        Request::from_value(&v)
    }

    /// Decodes a request envelope from an already-parsed JSON value —
    /// the same validation as [`Request::decode`], used for the
    /// elements of a `batch` op's `requests` array.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadRequest`] when the value is not a valid
    /// request envelope.
    pub fn from_value(v: &JsonValue) -> Result<Request, ProtocolError> {
        let id = v
            .get("id")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| ProtocolError::bad_request("missing or non-integer 'id'"))?;
        let op = v
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ProtocolError::bad_request("missing or non-string 'op'"))?
            .to_string();
        if op.is_empty() {
            return Err(ProtocolError::bad_request("empty 'op'"));
        }
        let proto = match v.get("proto") {
            None => PROTO_V1,
            Some(p) => p.as_u64().ok_or_else(|| {
                ProtocolError::bad_request("'proto' must be a non-negative integer")
            })?,
        };
        let deadline_ms = match v.get("deadline_ms") {
            None => None,
            Some(d) => Some(d.as_u64().ok_or_else(|| {
                ProtocolError::bad_request("'deadline_ms' must be a non-negative integer")
            })?),
        };
        let request_id = match v.get("request_id") {
            None => None,
            Some(r) => {
                let rid = r
                    .as_str()
                    .ok_or_else(|| ProtocolError::bad_request("'request_id' must be a string"))?;
                if rid.is_empty() {
                    return Err(ProtocolError::bad_request("'request_id' must be non-empty"));
                }
                Some(rid.to_string())
            }
        };
        let trace = match v.get("trace") {
            None => false,
            Some(t) => t
                .as_bool()
                .ok_or_else(|| ProtocolError::bad_request("'trace' must be a boolean"))?,
        };
        let params = match v.get("params") {
            Some(JsonValue::Object(fields)) => JsonValue::Object(fields.clone()),
            None => JsonValue::Object(Vec::new()),
            Some(_) => return Err(ProtocolError::bad_request("'params' must be an object")),
        };
        Ok(Request {
            id,
            proto,
            op,
            deadline_ms,
            request_id,
            trace,
            params,
        })
    }
}

/// Wraps sub-requests into one protocol-v2 `batch` envelope. The
/// server dispatches each sub-request as if it had arrived on its own
/// line and answers with `{"responses":[...]}` in sub-request order.
pub fn batch_request(id: u64, subs: &[Request]) -> Request {
    let requests: Vec<JsonValue> = subs
        .iter()
        .map(|sub| JsonValue::parse(&sub.encode()).expect("request encoding is valid JSON"))
        .collect();
    Request::with_params(
        id,
        "batch",
        JsonValue::Object(vec![("requests".to_string(), JsonValue::Array(requests))]),
    )
    .proto(PROTO_V2)
}

/// One response line: a result or a structured error.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success; `result` is a pre-serialized JSON value.
    Ok {
        /// Echoed request id.
        id: u64,
        /// Echoed client-supplied trace id (never server-generated, so
        /// identical request lines keep byte-identical responses).
        request_id: Option<String>,
        /// The result body, already serialized (often straight from the
        /// result cache, so bytes are stable).
        result: String,
    },
    /// Failure with a machine-readable code.
    Err {
        /// Echoed request id (0 when the request never parsed).
        id: u64,
        /// Echoed client-supplied trace id, so retry logs can be joined
        /// against server-side telemetry.
        request_id: Option<String>,
        /// Stable error code (e.g. `overloaded`, `unknown-workload`).
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Builds a success response from a pre-serialized result.
    pub fn ok(id: u64, result: String) -> Self {
        Response::Ok {
            id,
            request_id: None,
            result,
        }
    }

    /// Builds an error response.
    pub fn err(id: u64, code: &str, message: &str) -> Self {
        Response::Err {
            id,
            request_id: None,
            code: code.to_string(),
            message: message.to_string(),
        }
    }

    /// Attaches (or clears) the echoed trace id.
    #[must_use]
    pub fn with_request_id(mut self, rid: Option<String>) -> Self {
        match &mut self {
            Response::Ok { request_id, .. } | Response::Err { request_id, .. } => {
                *request_id = rid;
            }
        }
        self
    }

    /// The echoed request id.
    pub fn id(&self) -> u64 {
        match self {
            Response::Ok { id, .. } | Response::Err { id, .. } => *id,
        }
    }

    /// The echoed trace id, if the request carried one.
    pub fn request_id(&self) -> Option<&str> {
        match self {
            Response::Ok { request_id, .. } | Response::Err { request_id, .. } => {
                request_id.as_deref()
            }
        }
    }

    /// Whether this is a success response.
    pub fn is_ok(&self) -> bool {
        matches!(self, Response::Ok { .. })
    }

    /// Encodes the response as one JSON line (no trailing newline).
    /// `request_id` is emitted only when present, keeping responses to
    /// id-less requests byte-identical to the pre-`request_id` wire
    /// format.
    pub fn encode(&self) -> String {
        match self {
            Response::Ok {
                id,
                request_id,
                result,
            } => {
                let mut obj = JsonObject::new().u64("id", *id).bool("ok", true);
                if let Some(rid) = request_id {
                    obj = obj.str("request_id", rid);
                }
                obj.raw("result", result).finish()
            }
            Response::Err {
                id,
                request_id,
                code,
                message,
            } => {
                let mut obj = JsonObject::new().u64("id", *id).bool("ok", false);
                if let Some(rid) = request_id {
                    obj = obj.str("request_id", rid);
                }
                obj.raw(
                    "error",
                    &JsonObject::new()
                        .str("code", code)
                        .str("message", message)
                        .finish(),
                )
                .finish()
            }
        }
    }

    /// Decodes one response line.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadJson`] for malformed JSON,
    /// [`ProtocolError::BadRequest`] for a JSON value that is not a
    /// valid response envelope.
    pub fn decode(line: &str) -> Result<Response, ProtocolError> {
        let v = JsonValue::parse(line).map_err(ProtocolError::BadJson)?;
        Response::from_value(&v)
    }

    /// Decodes a response envelope from an already-parsed JSON value —
    /// used for the elements of a batch result's `responses` array.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadRequest`] when the value is not a valid
    /// response envelope.
    pub fn from_value(v: &JsonValue) -> Result<Response, ProtocolError> {
        let id = v
            .get("id")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| ProtocolError::bad_request("missing or non-integer 'id'"))?;
        let request_id = match v.get("request_id") {
            None => None,
            Some(r) => Some(
                r.as_str()
                    .ok_or_else(|| ProtocolError::bad_request("'request_id' must be a string"))?
                    .to_string(),
            ),
        };
        match v.get("ok").and_then(JsonValue::as_bool) {
            Some(true) => {
                let result = v
                    .get("result")
                    .ok_or_else(|| ProtocolError::bad_request("ok response without 'result'"))?;
                Ok(Response::Ok {
                    id,
                    request_id,
                    result: result.render(),
                })
            }
            Some(false) => {
                let error = v
                    .get("error")
                    .ok_or_else(|| ProtocolError::bad_request("err response without 'error'"))?;
                let code = error
                    .get("code")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| ProtocolError::bad_request("error without 'code'"))?;
                let message = error
                    .get("message")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("");
                Ok(Response::err(id, code, message).with_request_id(request_id))
            }
            None => Err(ProtocolError::bad_request("missing or non-boolean 'ok'")),
        }
    }

    /// Splits a successful `batch` response into its per-sub-request
    /// responses, in sub-request order.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadRequest`] when this response is an error
    /// envelope or its result does not carry a `responses` array of
    /// valid response objects.
    pub fn batch_responses(&self) -> Result<Vec<Response>, ProtocolError> {
        let result = match self {
            Response::Ok { result, .. } => result,
            Response::Err { code, .. } => {
                return Err(ProtocolError::BadRequest(format!(
                    "batch failed as a whole: {code}"
                )))
            }
        };
        let v = JsonValue::parse(result).map_err(ProtocolError::BadJson)?;
        let items = v
            .get("responses")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| ProtocolError::bad_request("batch result without 'responses' array"))?;
        items.iter().map(Response::from_value).collect()
    }
}

/// A protocol-layer decode failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The line was not valid JSON.
    BadJson(JsonError),
    /// The line was JSON but not a valid envelope.
    BadRequest(String),
}

impl ProtocolError {
    fn bad_request(message: &str) -> Self {
        ProtocolError::BadRequest(message.to_string())
    }

    /// The stable error code for a structured error response.
    pub fn code(&self) -> &'static str {
        match self {
            ProtocolError::BadJson(_) => "bad-json",
            ProtocolError::BadRequest(_) => "bad-request",
        }
    }
}

impl core::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProtocolError::BadJson(e) => write!(f, "malformed json: {e}"),
            ProtocolError::BadRequest(m) => write!(f, "bad request: {m}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::BadJson(e) => Some(e),
            ProtocolError::BadRequest(_) => None,
        }
    }
}

/// Serializes a `&str`-keyed list of string pairs as a params object —
/// a convenience for simple clients.
pub fn params_object(pairs: &[(&str, &str)]) -> JsonValue {
    JsonValue::Object(
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_string(), JsonValue::Str((*v).to_string())))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let params = JsonValue::parse(r#"{"workload":"bfs","capacity_pct":10}"#).unwrap();
        let req = Request::with_params(7, "simulate", params);
        let line = req.encode();
        assert_eq!(
            line,
            r#"{"id":7,"op":"simulate","params":{"workload":"bfs","capacity_pct":10}}"#
        );
        assert_eq!(Request::decode(&line).unwrap(), req);
    }

    #[test]
    fn request_params_default_to_empty() {
        let req = Request::decode(r#"{"id":1,"op":"stats"}"#).unwrap();
        assert_eq!(req.params, JsonValue::Object(Vec::new()));
        assert_eq!(req.encode(), r#"{"id":1,"op":"stats","params":{}}"#);
    }

    #[test]
    fn request_deadline_roundtrips_and_is_optional() {
        let req = Request::new(5, "simulate").deadline(1500);
        let line = req.encode();
        assert_eq!(
            line,
            r#"{"id":5,"op":"simulate","deadline_ms":1500,"params":{}}"#
        );
        assert_eq!(Request::decode(&line).unwrap(), req);
        assert_eq!(Request::decode(&line).unwrap().deadline_ms, Some(1500));
        // Absent deadline stays absent.
        let plain = Request::decode(r#"{"id":1,"op":"stats"}"#).unwrap();
        assert_eq!(plain.deadline_ms, None);
        assert!(!plain.encode().contains("deadline_ms"));
    }

    #[test]
    fn request_id_and_trace_roundtrip() {
        let req = Request::new(9, "simulate").request_id("cli-42").trace();
        let line = req.encode();
        assert_eq!(
            line,
            r#"{"id":9,"op":"simulate","request_id":"cli-42","trace":true,"params":{}}"#
        );
        assert_eq!(Request::decode(&line).unwrap(), req);
        // Absent fields stay absent — old wire bytes are unchanged.
        let plain = Request::new(1, "stats");
        assert_eq!(plain.encode(), r#"{"id":1,"op":"stats","params":{}}"#);
        let decoded = Request::decode(&plain.encode()).unwrap();
        assert_eq!(decoded.request_id, None);
        assert!(!decoded.trace);
    }

    #[test]
    fn response_echoes_request_id_only_when_present() {
        let ok = Response::ok(2, "{}".to_string()).with_request_id(Some("cli-42".into()));
        assert_eq!(
            ok.encode(),
            r#"{"id":2,"ok":true,"request_id":"cli-42","result":{}}"#
        );
        assert_eq!(Response::decode(&ok.encode()).unwrap(), ok);
        assert_eq!(ok.request_id(), Some("cli-42"));

        let err =
            Response::err(3, "overloaded", "queue full").with_request_id(Some("cli-43".into()));
        assert_eq!(
            err.encode(),
            r#"{"id":3,"ok":false,"request_id":"cli-43","error":{"code":"overloaded","message":"queue full"}}"#
        );
        assert_eq!(Response::decode(&err.encode()).unwrap(), err);

        // Without an id the wire format is exactly the old one.
        let bare = Response::ok(2, "{}".to_string());
        assert_eq!(bare.encode(), r#"{"id":2,"ok":true,"result":{}}"#);
        assert_eq!(bare.request_id(), None);
    }

    #[test]
    fn request_rejects_bad_envelopes() {
        assert!(matches!(
            Request::decode("not json"),
            Err(ProtocolError::BadJson(_))
        ));
        for bad in [
            r#"{"op":"x"}"#,
            r#"{"id":"one","op":"x"}"#,
            r#"{"id":1}"#,
            r#"{"id":1,"op":""}"#,
            r#"{"id":1,"op":"x","params":[1]}"#,
            r#"{"id":1,"op":"x","deadline_ms":"soon"}"#,
            r#"{"id":1,"op":"x","deadline_ms":-5}"#,
            r#"{"id":1,"op":"x","request_id":7}"#,
            r#"{"id":1,"op":"x","request_id":""}"#,
            r#"{"id":1,"op":"x","trace":"yes"}"#,
        ] {
            assert!(
                matches!(Request::decode(bad), Err(ProtocolError::BadRequest(_))),
                "accepted {bad}"
            );
        }
    }

    #[test]
    fn response_roundtrip_ok_and_err() {
        let ok = Response::ok(3, r#"{"cycles":100}"#.to_string());
        assert_eq!(ok.encode(), r#"{"id":3,"ok":true,"result":{"cycles":100}}"#);
        assert_eq!(Response::decode(&ok.encode()).unwrap(), ok);
        assert!(ok.is_ok());

        let err = Response::err(4, "overloaded", "queue full");
        assert_eq!(
            err.encode(),
            r#"{"id":4,"ok":false,"error":{"code":"overloaded","message":"queue full"}}"#
        );
        assert_eq!(Response::decode(&err.encode()).unwrap(), err);
        assert!(!err.is_ok());
        assert_eq!(err.id(), 4);
    }

    #[test]
    fn response_rejects_bad_envelopes() {
        for bad in [
            r#"{"id":1}"#,
            r#"{"id":1,"ok":true}"#,
            r#"{"id":1,"ok":false}"#,
            r#"{"id":1,"ok":false,"error":{}}"#,
        ] {
            assert!(Response::decode(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn params_object_builds_string_params() {
        let p = params_object(&[("workload", "bfs"), ("policy", "LOCAL")]);
        assert_eq!(p.render(), r#"{"workload":"bfs","policy":"LOCAL"}"#);
    }

    #[test]
    fn proto_defaults_to_v1_and_is_omitted_on_the_wire() {
        let plain = Request::new(1, "stats");
        assert_eq!(plain.proto, PROTO_V1);
        assert_eq!(plain.encode(), r#"{"id":1,"op":"stats","params":{}}"#);
        assert_eq!(Request::decode(&plain.encode()).unwrap().proto, PROTO_V1);

        let v2 = Request::new(2, "stats").proto(PROTO_V2);
        assert_eq!(
            v2.encode(),
            r#"{"id":2,"op":"stats","proto":2,"params":{}}"#
        );
        assert_eq!(Request::decode(&v2.encode()).unwrap(), v2);

        // Any non-negative integer decodes; acceptance is the server's
        // call (it answers `unsupported-protocol`).
        let future = Request::decode(r#"{"id":3,"op":"stats","proto":9}"#).unwrap();
        assert_eq!(future.proto, 9);
        for bad in [
            r#"{"id":1,"op":"x","proto":"two"}"#,
            r#"{"id":1,"op":"x","proto":-1}"#,
            r#"{"id":1,"op":"x","proto":1.5}"#,
        ] {
            assert!(
                matches!(Request::decode(bad), Err(ProtocolError::BadRequest(_))),
                "accepted {bad}"
            );
        }
    }

    #[test]
    fn batch_request_wraps_subs_verbatim_and_in_order() {
        let subs = [
            Request::new(1, "stats"),
            Request::with_params(
                2,
                "simulate",
                JsonValue::parse(r#"{"workload":"bfs"}"#).unwrap(),
            )
            .deadline(500)
            .request_id("cli-7"),
        ];
        let batch = batch_request(40, &subs);
        assert_eq!(batch.op, "batch");
        assert_eq!(batch.proto, PROTO_V2);
        let line = batch.encode();
        assert_eq!(
            line,
            concat!(
                r#"{"id":40,"op":"batch","proto":2,"params":{"requests":["#,
                r#"{"id":1,"op":"stats","params":{}},"#,
                r#"{"id":2,"op":"simulate","request_id":"cli-7","deadline_ms":500,"params":{"workload":"bfs"}}"#,
                r#"]}}"#
            )
        );
        // The embedded envelopes decode back to the originals.
        let decoded = Request::decode(&line).unwrap();
        let items = decoded.params.get("requests").unwrap().as_array().unwrap();
        for (item, sub) in items.iter().zip(&subs) {
            assert_eq!(&Request::from_value(item).unwrap(), sub);
        }
    }

    #[test]
    fn batch_responses_split_in_order_and_reject_whole_batch_errors() {
        let body = concat!(
            r#"{"responses":["#,
            r#"{"id":1,"ok":true,"result":{"cycles":9}},"#,
            r#"{"id":2,"ok":false,"error":{"code":"overloaded","message":"queue full"}}"#,
            r#"]}"#
        );
        let resp = Response::ok(40, body.to_string());
        let subs = resp.batch_responses().unwrap();
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0], Response::ok(1, r#"{"cycles":9}"#.to_string()));
        assert_eq!(subs[1], Response::err(2, "overloaded", "queue full"));

        let whole = Response::err(40, "batch-too-large", "too many");
        assert!(whole.batch_responses().is_err());
        let not_batch = Response::ok(40, "{}".to_string());
        assert!(not_batch.batch_responses().is_err());
    }
}
