//! A minimal in-tree property-test kit replacing `proptest`.
//!
//! Design goals, in order: **zero dependencies**, **deterministic by
//! default** (a fixed seed per property derived from its name, so
//! `cargo test` is reproducible byte-for-byte), and **shrinking-lite**
//! (on failure, the failing case is re-generated at smaller *sizes* from
//! the same case seed, and the smallest still-failing size is reported).
//!
//! Properties are written with the [`props!`](crate::props) macro:
//!
//! ```
//! hetmem_harness::props! {
//!     cases = 32;
//!
//!     /// Addition commutes.
//!     fn add_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         assert_eq!(a + b, b + a);
//!     }
//! }
//! # fn main() {}
//! ```
//!
//! Inside the body plain `assert!`/`assert_eq!` are used (no
//! `prop_assert!` dialect); the runner catches panics per case.
//!
//! Case generation is *sized*: case `i` of `n` draws values from a
//! range scaled by a size factor ramping from ~10% up to 100% of the
//! declared span, so small inputs are explored first and the full range
//! by the end of the run. Failures report the property name, case seed,
//! and a `HM_PROP_SEED` environment override for replay; `HM_PROP_CASES`
//! scales the number of cases globally.

use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::{mix, Xoshiro256StarStar};

/// The per-case generation context handed to property bodies (via the
/// macro) and to [`Sample`] implementations.
#[derive(Debug)]
pub struct Gen {
    rng: Xoshiro256StarStar,
    size: f64,
}

impl Gen {
    /// Creates a generator for one case. `size` in `(0, 1]` scales the
    /// span of every sampled range (shrinking-lite re-runs a failing
    /// case at smaller sizes).
    pub fn new(case_seed: u64, size: f64) -> Self {
        Gen {
            rng: Xoshiro256StarStar::new(case_seed),
            size: size.clamp(0.001, 1.0),
        }
    }

    /// The current size factor in `(0, 1]`.
    pub fn size(&self) -> f64 {
        self.size
    }

    /// Raw 64-bit draw (unsized; prefer [`Gen::sample`]).
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform draw in `[0, bound)` (unsized).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.rng.next_below(bound)
    }

    /// Uniform `f64` in `[0, 1)` (unsized).
    pub fn next_f64(&mut self) -> f64 {
        self.rng.next_f64()
    }

    /// Samples a value from any [`Sample`] source.
    pub fn sample<S: Sample>(&mut self, source: &S) -> S::Output {
        source.sample(self)
    }

    /// Applies the size factor to an integer span, keeping at least one
    /// representable value.
    fn sized_span(&self, span: u64) -> u64 {
        if span <= 1 {
            return span;
        }
        (((span as f64) * self.size).ceil() as u64).clamp(1, span)
    }
}

/// A source of sized pseudo-random values — the kit's analogue of a
/// proptest `Strategy`. Implemented for primitive ranges, tuples of
/// sources, and [`VecOf`].
pub trait Sample {
    /// The generated value type.
    type Output;
    /// Draws one value.
    fn sample(&self, g: &mut Gen) -> Self::Output;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl Sample for Range<$t> {
            type Output = $t;
            fn sample(&self, g: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                let eff = g.sized_span(span);
                self.start + g.next_below(eff) as $t
            }
        }
        impl Sample for RangeInclusive<$t> {
            type Output = $t;
            fn sample(&self, g: &mut Gen) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    // Full-width range: size-scaling by bitmask instead.
                    let bits = (64.0 * g.size).ceil() as u32;
                    let mask = if bits >= 64 { u64::MAX } else { (1u64 << bits) - 1 };
                    return (g.next_u64() & mask) as $t;
                }
                let eff = g.sized_span(span + 1);
                lo + g.next_below(eff) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize);

impl Sample for Range<f64> {
    type Output = f64;
    fn sample(&self, g: &mut Gen) -> f64 {
        assert!(self.start < self.end, "empty range");
        let span = (self.end - self.start) * g.size;
        self.start + g.next_f64() * span
    }
}

macro_rules! impl_sample_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Sample),+> Sample for ($($name,)+) {
            type Output = ($($name::Output,)+);
            fn sample(&self, g: &mut Gen) -> Self::Output {
                ($(self.$idx.sample(g),)+)
            }
        }
    };
}

impl_sample_tuple!(A: 0, B: 1);
impl_sample_tuple!(A: 0, B: 1, C: 2);
impl_sample_tuple!(A: 0, B: 1, C: 2, D: 3);

/// A sized vector source: `vec_of(elem, len_range)` — the kit's
/// `proptest::collection::vec`.
#[derive(Debug, Clone)]
pub struct VecOf<S> {
    elem: S,
    len: Range<usize>,
}

/// Builds a [`VecOf`] source sampling `len`-many `elem` values.
pub fn vec_of<S: Sample>(elem: S, len: Range<usize>) -> VecOf<S> {
    VecOf { elem, len }
}

impl<S: Sample> Sample for VecOf<S> {
    type Output = Vec<S::Output>;
    fn sample(&self, g: &mut Gen) -> Vec<S::Output> {
        let n = self.len.sample(g);
        (0..n).map(|_| self.elem.sample(g)).collect()
    }
}

/// Full-range `u64` source (`proptest`'s `any::<u64>()`).
pub fn any_u64() -> RangeInclusive<u64> {
    0..=u64::MAX
}

/// FNV-1a over a byte string; used to derive a stable per-property seed
/// from its name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    Some(parsed.unwrap_or_else(|_| panic!("{name} must be an integer, got {raw:?}")))
}

/// Size ramp: early cases are small, the last case samples the full
/// declared ranges.
fn size_for(case: u32, cases: u32) -> f64 {
    if cases <= 1 {
        return 1.0;
    }
    let t = f64::from(case) / f64::from(cases - 1);
    0.1 + 0.9 * t
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `cases` generated cases of the property `f`, with deterministic
/// per-name seeding and shrinking-lite on failure. The [`props!`]
/// (crate::props) macro expands each property into a `#[test]` calling
/// this.
///
/// Environment overrides: `HM_PROP_SEED` (base seed; decimal or `0x`
/// hex) and `HM_PROP_CASES` (case count for every property).
///
/// # Panics
///
/// Panics (failing the test) when a case fails, reporting the property
/// name, case index, case seed, the smallest failing size factor, and
/// the original assertion message.
pub fn run_prop<F: Fn(&mut Gen)>(name: &str, cases: u32, f: F) {
    let base_seed = env_u64("HM_PROP_SEED").unwrap_or_else(|| fnv1a(name.as_bytes()));
    let cases = env_u64("HM_PROP_CASES").map_or(cases, |c| c.max(1) as u32);

    let run_case = |seed: u64, size: f64| -> Result<(), String> {
        let mut g = Gen::new(seed, size);
        catch_unwind(AssertUnwindSafe(|| f(&mut g))).map_err(panic_message)
    };

    for case in 0..cases {
        let case_seed = mix(base_seed ^ mix(u64::from(case).wrapping_add(1)));
        let size = size_for(case, cases);
        if run_case(case_seed, size).is_ok() {
            continue;
        }
        // Shrinking-lite: same case seed, smaller sizes, smallest
        // failure wins. Probe ascending so the first hit is minimal.
        let mut failing_size = size;
        for probe in [size / 16.0, size / 8.0, size / 4.0, size / 2.0] {
            if probe >= 0.001 && run_case(case_seed, probe).is_err() {
                failing_size = probe;
                break;
            }
        }
        let message = run_case(case_seed, failing_size)
            .expect_err("case must still fail at the reported size");
        panic!(
            "property `{name}` failed: case {case}/{cases}, case seed {case_seed:#x}, \
             size {failing_size:.3}\n  {message}\n  replay: \
             HM_PROP_SEED={base_seed:#x} HM_PROP_CASES={cases} cargo test {name}"
        );
    }
}

/// Declares deterministic property tests (see the [module docs]
/// (self) for the dialect). Each `fn name(arg in source, ...) { body }`
/// expands to a `#[test]` running [`run_prop`]; an optional leading
/// `cases = N;` sets the per-property case count (default 64).
#[macro_export]
macro_rules! props {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $source:expr),+ $(,)?) $body:block)*) => {
        $crate::props! { cases = 64; $($(#[$meta])* fn $name($($arg in $source),+) $body)* }
    };
    (cases = $cases:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $source:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                $crate::prop::run_prop(stringify!($name), $cases, |g: &mut $crate::prop::Gen| {
                    $(let $arg = g.sample(&($source));)+
                    $body
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut g = Gen::new(1, 1.0);
        for _ in 0..1000 {
            let x = g.sample(&(10u64..20));
            assert!((10..20).contains(&x));
            let y = g.sample(&(0u8..=100));
            assert!(y <= 100);
            let z = g.sample(&(1.5f64..2.5));
            assert!((1.5..2.5).contains(&z));
            let v = g.sample(&vec_of(0u32..5, 2..6));
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 5));
            let (a, b, c) = g.sample(&(0u64..3, 0u32..3, 0u64..3));
            assert!(a < 3 && b < 3 && c < 3);
        }
    }

    #[test]
    fn small_size_shrinks_spans() {
        let mut g = Gen::new(9, 0.01);
        for _ in 0..200 {
            // 1% of a 0..10000 span: all draws land near the bottom.
            assert!(g.sample(&(0u64..10_000)) <= 100);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let draw = || {
            let mut g = Gen::new(77, 0.7);
            (0..32).map(|_| g.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn passing_property_passes() {
        run_prop("passing", 50, |g| {
            let x = g.sample(&(0u64..100));
            assert!(x < 100);
        });
    }

    #[test]
    fn failing_property_reports_identity() {
        let err = std::panic::catch_unwind(|| {
            run_prop("always_fails", 10, |g| {
                let x = g.sample(&(0u64..100));
                assert!(x == u64::MAX, "x was {x}");
            });
        })
        .expect_err("property must fail");
        let msg = panic_message(err);
        assert!(msg.contains("always_fails"), "missing name: {msg}");
        assert!(msg.contains("case seed"), "missing seed: {msg}");
        assert!(msg.contains("HM_PROP_SEED"), "missing replay hint: {msg}");
    }

    #[test]
    fn shrinking_reports_smaller_size() {
        // Fails at every size; the shrinker should settle on the
        // smallest probe rather than the original ramp size.
        let err = std::panic::catch_unwind(|| {
            run_prop("fails_everywhere", 8, |_| panic!("boom"));
        })
        .expect_err("property must fail");
        let msg = panic_message(err);
        assert!(msg.contains("boom"), "original message preserved: {msg}");
        assert!(msg.contains("size 0.0"), "shrunk size reported: {msg}");
    }

    props! {
        cases = 16;

        /// The macro itself: multiple bindings and a tuple source.
        fn macro_smoke(a in 0u64..50, pair in (0u32..4, 0.0f64..1.0)) {
            assert!(a < 50);
            assert!(pair.0 < 4);
            assert!((0.0..1.0).contains(&pair.1));
        }
    }
}
