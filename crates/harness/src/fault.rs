//! Deterministic fault injection for chaos testing the serve + sweep
//! stack.
//!
//! A [`FaultPlan`] declares *what* can go wrong and how often; a
//! [`FaultInjector`] turns the plan into concrete injection decisions
//! drawn from the in-tree seeded PRNG, so the decision *stream* of a
//! chaos run is reproducible from the plan's seed. (Which decision
//! lands on which request still depends on thread interleaving — the
//! guarantee is a reproducible fault mix, not a reproducible schedule.)
//!
//! Seven fault classes, matching the failure modes the service must
//! absorb:
//!
//! * **worker panics** — a shard worker dies mid-job; supervision must
//!   restart it and the client must get `worker-restarted`, not a hang.
//! * **artificial latency** — a job stalls before executing; deadline
//!   propagation must turn overruns into `deadline-exceeded`.
//! * **wire errors** — a response is cut short on the socket; clients
//!   must detect the torn line and retry.
//! * **cache corruption** — a cached result's bytes rot; the integrity
//!   check in [`ResultCache`](crate::cache::ResultCache) must detect
//!   the mismatch and recompute instead of serving garbage.
//!
//! Plus three **connection-level** classes for the poll front end (and
//! the fleet router's backend links):
//!
//! * **connection drops** — the socket dies mid-write; the peer sees a
//!   reset/EOF and must retry, never hang.
//! * **partial-write stalls** — a response's prefix lands and then the
//!   writer goes silent; the peer's read timeout must fire.
//! * **accept refusals** — a new connection is accepted and instantly
//!   closed, modeling a backend at its fd limit.
//!
//! Every injection is counted ([`FaultCounts`]) so tests and the `stats`
//! endpoint can report exactly how much chaos a run absorbed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::rng::Xoshiro256StarStar;

/// Declarative chaos configuration: per-class injection probabilities
/// plus the seed the decision stream derives from. The default plan
/// injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injection decision stream.
    pub seed: u64,
    /// Probability a worker panics when picking up a job, in `[0, 1]`.
    pub panic_prob: f64,
    /// Probability a job stalls before executing, in `[0, 1]`.
    pub latency_prob: f64,
    /// Stall duration upper bound, milliseconds (the actual stall is a
    /// deterministic draw in `[1, latency_ms]`).
    pub latency_ms: u64,
    /// Probability a response write is torn mid-line, in `[0, 1]`.
    pub wire_prob: f64,
    /// Probability a cached entry is corrupted before lookup, in
    /// `[0, 1]`.
    pub corrupt_prob: f64,
    /// Probability a connection is dropped outright mid-write, in
    /// `[0, 1]`.
    pub conn_drop_prob: f64,
    /// Probability a response write lands partially and then stalls
    /// (no close, no more bytes), in `[0, 1]`.
    pub stall_prob: f64,
    /// Probability a freshly accepted connection is refused (closed
    /// before reading anything), in `[0, 1]`.
    pub refuse_prob: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            panic_prob: 0.0,
            latency_prob: 0.0,
            latency_ms: 0,
            wire_prob: 0.0,
            corrupt_prob: 0.0,
            conn_drop_prob: 0.0,
            stall_prob: 0.0,
            refuse_prob: 0.0,
        }
    }
}

impl FaultPlan {
    /// Whether the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.panic_prob > 0.0
            || (self.latency_prob > 0.0 && self.latency_ms > 0)
            || self.wire_prob > 0.0
            || self.corrupt_prob > 0.0
            || self.conn_drop_prob > 0.0
            || self.stall_prob > 0.0
            || self.refuse_prob > 0.0
    }

    /// Parses a compact CLI spec: comma-separated `key=value` pairs with
    /// keys `seed`, `panic`, `latency` (probability), `latency-ms`,
    /// `wire`, `corrupt`, `conn-drop`, `stall`, `refuse`. Example:
    /// `seed=7,panic=0.1,latency=0.5,latency-ms=40,wire=0.2,corrupt=0.3`.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending pair.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("fault spec pair '{pair}' is not key=value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("fault spec '{key}={v}' is not a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault probability '{key}={v}' must be in [0, 1]"));
                }
                Ok(p)
            };
            match key.trim() {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("fault spec 'seed={value}' is not an integer"))?;
                }
                "panic" => plan.panic_prob = prob(value)?,
                "latency" => plan.latency_prob = prob(value)?,
                "latency-ms" => {
                    plan.latency_ms = value.parse().map_err(|_| {
                        format!("fault spec 'latency-ms={value}' is not an integer")
                    })?;
                }
                "wire" => plan.wire_prob = prob(value)?,
                "corrupt" => plan.corrupt_prob = prob(value)?,
                "conn-drop" => plan.conn_drop_prob = prob(value)?,
                "stall" => plan.stall_prob = prob(value)?,
                "refuse" => plan.refuse_prob = prob(value)?,
                other => return Err(format!("unknown fault spec key '{other}'")),
            }
        }
        if plan.latency_prob > 0.0 && plan.latency_ms == 0 {
            plan.latency_ms = 20;
        }
        Ok(plan)
    }
}

/// Point-in-time injection counters for one [`FaultInjector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounts {
    /// Worker panics injected.
    pub panics: u64,
    /// Latency stalls injected.
    pub latencies: u64,
    /// Wire tears injected.
    pub wire_errors: u64,
    /// Cache corruptions injected.
    pub corruptions: u64,
    /// Connections dropped mid-write.
    pub conn_drops: u64,
    /// Partial-write stalls injected.
    pub stalls: u64,
    /// Accepted connections refused.
    pub refusals: u64,
    /// Total injection decisions taken (injected or not).
    pub decisions: u64,
}

impl FaultCounts {
    /// Total faults actually injected across all classes.
    pub fn injected(&self) -> u64 {
        self.panics
            + self.latencies
            + self.wire_errors
            + self.corruptions
            + self.conn_drops
            + self.stalls
            + self.refusals
    }
}

/// The marker every injected panic message starts with, so tests (and
/// humans reading a `sim-panic` error) can tell injected chaos from a
/// real bug.
pub const INJECTED_PANIC_MARKER: &str = "injected fault:";

#[derive(Default)]
struct Counters {
    panics: AtomicU64,
    latencies: AtomicU64,
    wire_errors: AtomicU64,
    corruptions: AtomicU64,
    conn_drops: AtomicU64,
    stalls: AtomicU64,
    refusals: AtomicU64,
    decisions: AtomicU64,
}

/// Executes a [`FaultPlan`]: draws injection decisions from a seeded
/// xoshiro256** stream and counts everything it injects. Thread-safe;
/// a disabled injector (the default plan) never injects and costs one
/// atomic load per call.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Mutex<Xoshiro256StarStar>,
    counts: Counters,
}

impl std::fmt::Debug for Counters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counters")
            .field("decisions", &self.decisions.load(Ordering::Relaxed))
            .finish()
    }
}

impl FaultInjector {
    /// Builds an injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = Xoshiro256StarStar::new(plan.seed);
        FaultInjector {
            plan,
            rng: Mutex::new(rng),
            counts: Counters::default(),
        }
    }

    /// An injector that never injects anything.
    pub fn disabled() -> Self {
        FaultInjector::new(FaultPlan::default())
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether any fault class is active.
    pub fn is_active(&self) -> bool {
        self.plan.is_active()
    }

    /// One Bernoulli draw from the seeded stream; counts the decision.
    fn roll(&self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        self.counts.decisions.fetch_add(1, Ordering::Relaxed);
        let draw = {
            let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
            rng.next_f64()
        };
        draw < p
    }

    /// Panics with an [`INJECTED_PANIC_MARKER`]-prefixed message when
    /// the plan's worker-panic class fires. `site` names the injection
    /// point for the panic message.
    pub fn maybe_panic(&self, site: &str) {
        if self.roll(self.plan.panic_prob) {
            self.counts.panics.fetch_add(1, Ordering::Relaxed);
            panic!("{INJECTED_PANIC_MARKER} worker panic at {site}");
        }
    }

    /// The artificial stall to apply before executing a job, if the
    /// latency class fires. The duration is a deterministic draw in
    /// `[1, latency_ms]`.
    pub fn maybe_latency(&self) -> Option<Duration> {
        if self.plan.latency_ms == 0 || !self.roll(self.plan.latency_prob) {
            return None;
        }
        self.counts.latencies.fetch_add(1, Ordering::Relaxed);
        let ms = {
            let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
            1 + rng.next_below(self.plan.latency_ms)
        };
        Some(Duration::from_millis(ms))
    }

    /// Whether to tear the next response write mid-line.
    pub fn maybe_wire_error(&self) -> bool {
        let fire = self.roll(self.plan.wire_prob);
        if fire {
            self.counts.wire_errors.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Whether to corrupt a cache entry before the next lookup.
    pub fn maybe_corrupt(&self) -> bool {
        let fire = self.roll(self.plan.corrupt_prob);
        if fire {
            self.counts.corruptions.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Whether to drop the connection outright before the next write.
    pub fn maybe_conn_drop(&self) -> bool {
        let fire = self.roll(self.plan.conn_drop_prob);
        if fire {
            self.counts.conn_drops.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Whether to write only a prefix of the next response and then go
    /// silent (the peer's read timeout is what ends the exchange).
    pub fn maybe_stall(&self) -> bool {
        let fire = self.roll(self.plan.stall_prob);
        if fire {
            self.counts.stalls.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Whether to refuse (close immediately) the next accepted
    /// connection.
    pub fn maybe_refuse_accept(&self) -> bool {
        let fire = self.roll(self.plan.refuse_prob);
        if fire {
            self.counts.refusals.fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Current injection counters.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            panics: self.counts.panics.load(Ordering::Relaxed),
            latencies: self.counts.latencies.load(Ordering::Relaxed),
            wire_errors: self.counts.wire_errors.load(Ordering::Relaxed),
            corruptions: self.counts.corruptions.load(Ordering::Relaxed),
            conn_drops: self.counts.conn_drops.load(Ordering::Relaxed),
            stalls: self.counts.stalls.load(Ordering::Relaxed),
            refusals: self.counts.refusals.load(Ordering::Relaxed),
            decisions: self.counts.decisions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires() {
        let inj = FaultInjector::disabled();
        for _ in 0..100 {
            inj.maybe_panic("test");
            assert!(inj.maybe_latency().is_none());
            assert!(!inj.maybe_wire_error());
            assert!(!inj.maybe_corrupt());
            assert!(!inj.maybe_conn_drop());
            assert!(!inj.maybe_stall());
            assert!(!inj.maybe_refuse_accept());
        }
        assert_eq!(inj.counts(), FaultCounts::default());
        assert!(!inj.is_active());
    }

    #[test]
    fn probabilities_roughly_hold_and_are_counted() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 9,
            wire_prob: 0.3,
            ..FaultPlan::default()
        });
        let n: u32 = 10_000;
        let fired = (0..n).filter(|_| inj.maybe_wire_error()).count();
        let frac = fired as f64 / f64::from(n);
        assert!((frac - 0.3).abs() < 0.03, "got {frac}");
        let c = inj.counts();
        assert_eq!(c.wire_errors, fired as u64);
        assert_eq!(c.decisions, u64::from(n));
        assert_eq!(c.injected(), fired as u64);
    }

    #[test]
    fn decision_stream_is_deterministic_per_seed() {
        let stream = |seed: u64| {
            let inj = FaultInjector::new(FaultPlan {
                seed,
                wire_prob: 0.5,
                ..FaultPlan::default()
            });
            (0..64).map(|_| inj.maybe_wire_error()).collect::<Vec<_>>()
        };
        assert_eq!(stream(3), stream(3));
        assert_ne!(stream(3), stream(4));
    }

    #[test]
    fn injected_panic_is_marked() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 1,
            panic_prob: 1.0,
            ..FaultPlan::default()
        });
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inj.maybe_panic("here");
        }))
        .expect_err("must panic at probability 1");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.starts_with(INJECTED_PANIC_MARKER), "got {msg}");
        assert!(msg.contains("here"));
        assert_eq!(inj.counts().panics, 1);
    }

    #[test]
    fn latency_is_bounded_by_the_plan() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 2,
            latency_prob: 1.0,
            latency_ms: 25,
            ..FaultPlan::default()
        });
        for _ in 0..200 {
            let d = inj.maybe_latency().expect("probability 1");
            assert!((1..=25).contains(&(d.as_millis() as u64)), "got {d:?}");
        }
        assert_eq!(inj.counts().latencies, 200);
    }

    #[test]
    fn connection_faults_fire_and_are_counted() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 11,
            conn_drop_prob: 1.0,
            stall_prob: 1.0,
            refuse_prob: 1.0,
            ..FaultPlan::default()
        });
        assert!(inj.is_active());
        for _ in 0..10 {
            assert!(inj.maybe_conn_drop());
            assert!(inj.maybe_stall());
            assert!(inj.maybe_refuse_accept());
        }
        let c = inj.counts();
        assert_eq!((c.conn_drops, c.stalls, c.refusals), (10, 10, 10));
        assert_eq!(c.injected(), 30);
        assert_eq!(c.decisions, 30);
    }

    #[test]
    fn parse_roundtrips_the_full_spec() {
        let plan = FaultPlan::parse(
            "seed=7,panic=0.1,latency=0.5,latency-ms=40,wire=0.2,corrupt=0.3,\
             conn-drop=0.05,stall=0.04,refuse=0.03",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.panic_prob, 0.1);
        assert_eq!(plan.latency_prob, 0.5);
        assert_eq!(plan.latency_ms, 40);
        assert_eq!(plan.wire_prob, 0.2);
        assert_eq!(plan.corrupt_prob, 0.3);
        assert_eq!(plan.conn_drop_prob, 0.05);
        assert_eq!(plan.stall_prob, 0.04);
        assert_eq!(plan.refuse_prob, 0.03);
        assert!(plan.is_active());
        // Latency probability without a bound defaults the bound.
        assert_eq!(FaultPlan::parse("latency=1").unwrap().latency_ms, 20);
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
    }

    #[test]
    fn parse_rejects_bad_specs() {
        for bad in [
            "panic",
            "panic=2.0",
            "panic=-0.5",
            "panic=abc",
            "seed=x",
            "latency-ms=x",
            "frobnicate=1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad}");
        }
    }
}
