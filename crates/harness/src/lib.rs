//! # hetmem-harness — the deterministic experiment engine
//!
//! The execution subsystem the whole hetmem workspace runs through,
//! built on **std only** (this crate has zero dependencies, which is
//! what lets `cargo build --release && cargo test -q` succeed with no
//! network and no crates-io index). Three layers:
//!
//! 1. **[`sweep`]** — a scoped-thread worker pool executing
//!    `(workload × config)` grid points concurrently, with deterministic
//!    per-point seeding and results in stable grid order: identical
//!    output at any thread count.
//! 2. **[`telemetry`] / [`json`]** — per-run records emitted as JSON
//!    Lines through a hand-rolled serializer (no serde), plus the
//!    end-of-sweep summary. Byte-identical across runs and thread
//!    counts.
//! 3. **The determinism/testing kit** — [`rng`] (SplitMix64 +
//!    xoshiro256**, replacing `rand`), [`prop`] and the [`props!`]
//!    macro (seeded case generation with shrinking-lite, replacing
//!    `proptest`), and [`timing`] (a micro-benchmark runner, replacing
//!    `criterion`).
//! 4. **The serving kit** — [`protocol`] (the `hetmem-serve` JSONL
//!    request/response envelope), [`cache`] (a content-addressed LRU
//!    result cache whose hits are byte-identical to recomputation), and
//!    [`queue`] (bounded backpressure queues with close-and-drain
//!    shutdown), and [`metrics`] (a lock-cheap counter/gauge/histogram
//!    registry rendering JSON and Prometheus text exposition).
//!
//! # Examples
//!
//! A parallel sweep with stable output order:
//!
//! ```
//! use hetmem_harness::sweep::{run_grid, SweepOptions};
//!
//! let grid: Vec<(u64, u64)> =
//!     (0..4).flat_map(|w| (0..3).map(move |c| (w, c))).collect();
//! let opts = SweepOptions { threads: 8, ..SweepOptions::default() };
//! let results = run_grid(
//!     &grid,
//!     &opts,
//!     |(w, c)| format!("w{w}/c{c}"),
//!     |(w, c), ctx| w * 100 + c + (ctx.seed & 0), // deterministic work
//! )
//! .unwrap();
//! assert_eq!(results.len(), 12);
//! assert_eq!(results[7], 201); // grid order: (2, 1)
//! ```

pub mod backoff;
pub mod cache;
pub mod checkpoint;
pub mod fault;
pub mod health;
pub mod json;
pub mod metrics;
pub mod prop;
pub mod protocol;
pub mod queue;
pub mod ring;
pub mod rng;
pub mod sweep;
pub mod telemetry;
pub mod timing;
pub mod trace;

pub use backoff::Backoff;
pub use cache::{CacheStats, ResultCache};
pub use checkpoint::{read_checkpoint, run_grid_resumable, CheckpointEntry, CheckpointWriter};
pub use fault::{FaultCounts, FaultInjector, FaultPlan, INJECTED_PANIC_MARKER};
pub use health::{BreakerState, CircuitBreaker};
pub use json::{validate_jsonl, JsonError, JsonValue};
pub use metrics::{
    parse_prometheus, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry,
};
pub use prop::{any_u64, vec_of, Gen, Sample};
pub use protocol::{batch_request, ProtocolError, Request, Response, PROTO_V1, PROTO_V2};
pub use queue::{BoundedQueue, PushError};
pub use ring::{HashRing, DEFAULT_VNODES};
pub use rng::{SplitMix64, Xoshiro256StarStar};
pub use sweep::{run_grid, PointCtx, SweepError, SweepOptions};
pub use telemetry::{
    fnv1a, hit_rate, summary, IntervalPoolTelemetry, IntervalRecord, MigrationTelemetry,
    PoolTelemetry, RunRecord,
};
pub use timing::{BenchResult, Bencher};
pub use trace::{ChromeTrace, TraceEvent};
