//! The deterministic parallel sweep engine.
//!
//! Every figure of the paper is a grid — workloads × configurations —
//! whose points are independent simulations. This module executes such
//! grids on a scoped-thread worker pool (std only) with three hard
//! guarantees:
//!
//! 1. **Stable order**: results come back in grid order, regardless of
//!    thread count or scheduling. A sweep at 1, 2, or 8 threads produces
//!    identical output bytes.
//! 2. **Deterministic seeding**: each point gets a seed derived from
//!    `(sweep seed, point index)` only, available via [`PointCtx`].
//! 3. **Fail fast with identity**: a panic in one grid point aborts the
//!    sweep and surfaces as a [`SweepError`] naming the point, instead
//!    of poisoning a lock or hanging the pool.
//!
//! ```
//! use hetmem_harness::sweep::{run_grid, SweepOptions};
//!
//! let points: Vec<u64> = (0..32).collect();
//! let opts = SweepOptions { threads: 4, ..SweepOptions::default() };
//! let squares =
//!     run_grid(&points, &opts, |p| format!("point {p}"), |p, _ctx| p * p).unwrap();
//! assert_eq!(squares[5], 25);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::rng::mix;

/// Sweep-wide execution options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOptions {
    /// Worker threads; `0` means one per available CPU.
    pub threads: usize,
    /// Base seed every per-point seed is derived from.
    pub seed: u64,
    /// Print one progress line per completed point to stderr.
    pub progress: bool,
    /// Cooperative deadline, checked at grid-point boundaries: no new
    /// point starts after this instant (a point already running finishes
    /// — single points are never interrupted mid-simulation). When the
    /// deadline expires before the grid completes, the sweep returns
    /// [`SweepError::DeadlineExceeded`].
    pub deadline: Option<Instant>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: 0,
            seed: DEFAULT_SEED,
            progress: false,
            deadline: None,
        }
    }
}

/// The default sweep seed.
pub const DEFAULT_SEED: u64 = 0x5EED_0F9A_6E51_0EED;

/// Per-point execution context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointCtx {
    /// This point's index in grid order.
    pub index: usize,
    /// Total number of grid points.
    pub total: usize,
    /// Deterministic per-point seed (a pure function of the sweep seed
    /// and `index`).
    pub seed: u64,
}

/// Why a sweep failed: a panicking point, or the deadline expiring
/// before the grid completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// One grid point panicked.
    Panic {
        /// Grid index of the failing point.
        index: usize,
        /// The failing point's label.
        label: String,
        /// The panic message raised inside the point.
        message: String,
    },
    /// The cooperative deadline expired with points still pending.
    DeadlineExceeded {
        /// Points that completed before the deadline.
        completed: usize,
        /// Total points in the grid.
        total: usize,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Panic {
                index,
                label,
                message,
            } => write!(f, "grid point {index} ({label}) panicked: {message}"),
            SweepError::DeadlineExceeded { completed, total } => write!(
                f,
                "deadline exceeded with {completed}/{total} grid points completed"
            ),
        }
    }
}

impl std::error::Error for SweepError {}

/// Resolves a requested thread count: `0` = available parallelism,
/// never more threads than points.
pub fn effective_threads(requested: usize, points: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let n = if requested == 0 { hw } else { requested };
    n.clamp(1, points.max(1))
}

/// The deterministic per-point seed (exposed so callers can reproduce a
/// single point without running the sweep).
pub fn point_seed(sweep_seed: u64, index: usize) -> u64 {
    mix(sweep_seed ^ mix(index as u64 ^ 0xA5A5_A5A5_A5A5_A5A5))
}

/// Executes `run` over every point of the grid on a worker pool and
/// returns the results **in grid order**.
///
/// `label` names a point for progress lines and errors. `run` must not
/// rely on execution order; everything else — thread count, scheduling,
/// work stealing — is invisible in the output.
///
/// # Errors
///
/// Returns [`SweepError::Panic`] naming the first failing point (in
/// grid order) if any point panics; in-flight points finish, queued
/// points are abandoned. Returns [`SweepError::DeadlineExceeded`] when
/// [`SweepOptions::deadline`] expires with points still pending (the
/// check is cooperative, at grid-point boundaries).
pub fn run_grid<T, R, L, F>(
    points: &[T],
    opts: &SweepOptions,
    label: L,
    run: F,
) -> Result<Vec<R>, SweepError>
where
    T: Sync,
    R: Send,
    L: Fn(&T) -> String + Sync,
    F: Fn(&T, PointCtx) -> R + Sync,
{
    let total = points.len();
    if total == 0 {
        return Ok(Vec::new());
    }
    let threads = effective_threads(opts.threads, total);
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let expired = AtomicBool::new(false);
    let completed = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, String>>>> =
        (0..total).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                if let Some(deadline) = opts.deadline {
                    if Instant::now() >= deadline {
                        expired.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= total {
                    break;
                }
                let ctx = PointCtx {
                    index,
                    total,
                    seed: point_seed(opts.seed, index),
                };
                let point = &points[index];
                let started = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| run(point, ctx)));
                let entry = match outcome {
                    Ok(result) => {
                        if opts.progress {
                            let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                            eprintln!(
                                "  [{done}/{total}] {} ({:.2}s)",
                                label(point),
                                started.elapsed().as_secs_f64()
                            );
                        }
                        Ok(result)
                    }
                    Err(payload) => {
                        abort.store(true, Ordering::Relaxed);
                        Err(panic_message(payload))
                    }
                };
                *slots[index].lock().unwrap_or_else(|e| e.into_inner()) = Some(entry);
            });
        }
    });

    let mut entries = Vec::with_capacity(total);
    for slot in slots {
        entries.push(slot.into_inner().unwrap_or_else(|e| e.into_inner()));
    }
    // Surface the earliest failure in *grid* order for a stable message.
    if let Some((index, message)) = entries.iter().enumerate().find_map(|(i, e)| match e {
        Some(Err(m)) => Some((i, m.clone())),
        _ => None,
    }) {
        return Err(SweepError::Panic {
            index,
            label: label(&points[index]),
            message,
        });
    }
    if expired.load(Ordering::Relaxed) {
        let done = entries.iter().filter(|e| e.is_some()).count();
        if done < total {
            return Err(SweepError::DeadlineExceeded {
                completed: done,
                total,
            });
        }
        // Every point finished despite the flag (a worker raced the
        // deadline after the last point was claimed): a full result set
        // is a success.
    }
    Ok(entries
        .into_iter()
        .map(|e| match e {
            Some(Ok(r)) => r,
            // Unreachable: every slot is filled unless a failure
            // aborted the sweep, which returned above.
            _ => unreachable!("unfilled grid slot without a sweep error"),
        })
        .collect())
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_grid_is_fine() {
        let r: Vec<u64> = run_grid(
            &[],
            &SweepOptions::default(),
            |_: &u64| String::new(),
            |p, _| *p,
        )
        .unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn results_in_grid_order() {
        let points: Vec<usize> = (0..100).collect();
        let opts = SweepOptions {
            threads: 7,
            ..SweepOptions::default()
        };
        let out = run_grid(
            &points,
            &opts,
            |p| p.to_string(),
            |p, ctx| {
                assert_eq!(*p, ctx.index);
                p * 3
            },
        )
        .unwrap();
        assert_eq!(out, (0..100).map(|p| p * 3).collect::<Vec<_>>());
    }

    #[test]
    fn point_seeds_depend_only_on_index() {
        let opts = SweepOptions::default();
        let seeds = |threads: usize| {
            let o = SweepOptions {
                threads,
                ..opts.clone()
            };
            run_grid(&[0usize, 1, 2, 3], &o, |p| p.to_string(), |_, ctx| ctx.seed).unwrap()
        };
        assert_eq!(seeds(1), seeds(4));
        let s = seeds(1);
        assert_eq!(s.len(), 4);
        assert!(s.windows(2).all(|w| w[0] != w[1]));
        assert_eq!(s[2], point_seed(opts.seed, 2));
    }

    #[test]
    fn expired_deadline_fails_before_starting_points() {
        let points: Vec<u64> = (0..8).collect();
        let opts = SweepOptions {
            threads: 2,
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
            ..SweepOptions::default()
        };
        let err = run_grid(&points, &opts, |p| p.to_string(), |p, _| *p).unwrap_err();
        match err {
            SweepError::DeadlineExceeded { completed, total } => {
                assert_eq!(total, 8);
                assert_eq!(completed, 0, "no point may start past the deadline");
            }
            other => panic!("expected deadline error, got {other}"),
        }
    }

    #[test]
    fn generous_deadline_does_not_perturb_results() {
        let points: Vec<u64> = (0..16).collect();
        let opts = SweepOptions {
            threads: 4,
            deadline: Some(Instant::now() + std::time::Duration::from_secs(600)),
            ..SweepOptions::default()
        };
        let out = run_grid(&points, &opts, |p| p.to_string(), |p, _| p * 2).unwrap();
        assert_eq!(out, (0..16).map(|p| p * 2).collect::<Vec<_>>());
    }

    #[test]
    fn mid_sweep_deadline_reports_progress() {
        let points: Vec<u64> = (0..64).collect();
        let opts = SweepOptions {
            threads: 1,
            deadline: Some(Instant::now() + std::time::Duration::from_millis(30)),
            ..SweepOptions::default()
        };
        // Each point sleeps long enough that the grid cannot finish.
        let result = run_grid(
            &points,
            &opts,
            |p| p.to_string(),
            |p, _| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                *p
            },
        );
        match result {
            Err(SweepError::DeadlineExceeded { completed, total }) => {
                assert_eq!(total, 64);
                assert!(completed < 64, "the deadline must cut the grid short");
            }
            other => panic!("expected deadline error, got {other:?}"),
        }
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(5, 0), 1);
    }
}
