//! Run telemetry: per-run JSONL records and the end-of-sweep summary.
//!
//! Each simulated run produces one [`RunRecord`] — workload, config
//! label, a stable config hash, cycles, per-pool traffic, achieved
//! bandwidth. Records serialize to JSON Lines through the in-tree
//! [`json`](crate::json) writer, so a sweep's telemetry file is
//! **byte-identical** across repeated runs and across thread counts
//! (results are collected in grid order; see
//! [`sweep`](crate::sweep)).
//!
//! Wall-clock time is the one nondeterministic field: it is carried on
//! the record for progress/summary display but **excluded from the
//! JSONL by default** (`include_timing` opts it in for ad-hoc
//! profiling, forfeiting byte-identity).

use crate::json::{array, JsonObject};

/// Per-pool traffic telemetry for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolTelemetry {
    /// Pool name (e.g. `GDDR5`).
    pub name: String,
    /// Bytes read from DRAM in this pool.
    pub bytes_read: u64,
    /// Bytes written to DRAM in this pool.
    pub bytes_written: u64,
    /// Achieved bandwidth over the run for this pool, GB/s.
    pub achieved_gbps: f64,
}

/// One run of one `(workload, config)` grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The sweep this run belongs to (e.g. `fig3`).
    pub sweep: String,
    /// Workload name.
    pub workload: String,
    /// Configuration label within the sweep (e.g. `30C-70B`).
    pub config: String,
    /// FNV-1a hash over the canonical configuration description; two
    /// records with equal hashes ran the same machine + placement.
    pub config_hash: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Warp memory operations issued.
    pub mem_ops: u64,
    /// Aggregate achieved DRAM bandwidth, GB/s.
    pub achieved_gbps: f64,
    /// Per-pool traffic.
    pub pools: Vec<PoolTelemetry>,
    /// Host wall-clock for the point, milliseconds (nondeterministic;
    /// not serialized unless asked).
    pub wall_ms: Option<f64>,
}

impl RunRecord {
    /// Serializes the record as one JSON line (no trailing newline).
    /// `include_timing` adds the nondeterministic `wall_ms` field.
    pub fn jsonl(&self, include_timing: bool) -> String {
        let pools = array(self.pools.iter().map(|p| {
            JsonObject::new()
                .str("name", &p.name)
                .u64("bytes_read", p.bytes_read)
                .u64("bytes_written", p.bytes_written)
                .f64("achieved_gbps", p.achieved_gbps)
                .finish()
        }));
        let mut obj = JsonObject::new()
            .str("sweep", &self.sweep)
            .str("workload", &self.workload)
            .str("config", &self.config)
            .str("config_hash", &format!("{:016x}", self.config_hash))
            .u64("cycles", self.cycles)
            .u64("mem_ops", self.mem_ops)
            .f64("achieved_gbps", self.achieved_gbps)
            .raw("pools", &pools);
        if include_timing {
            if let Some(ms) = self.wall_ms {
                obj = obj.f64("wall_ms", ms);
            }
        }
        obj.finish()
    }
}

/// FNV-1a over a byte string — the stable hash behind
/// [`RunRecord::config_hash`].
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Formats the end-of-sweep summary table: per-config run counts, cycle
/// totals, and aggregate achieved bandwidth, plus a grand total line.
pub fn summary(records: &[RunRecord]) -> String {
    use std::fmt::Write;

    let mut out = String::new();
    if records.is_empty() {
        out.push_str("sweep summary: no runs recorded\n");
        return out;
    }
    // Group by (sweep, config) preserving first-appearance order.
    let mut groups: Vec<(String, u64, u64, f64)> = Vec::new();
    for r in records {
        let key = format!("{}/{}", r.sweep, r.config);
        match groups.iter_mut().find(|(k, ..)| *k == key) {
            Some((_, n, cycles, gbps)) => {
                *n += 1;
                *cycles += r.cycles;
                *gbps += r.achieved_gbps;
            }
            None => groups.push((key, 1, r.cycles, r.achieved_gbps)),
        }
    }
    let _ = writeln!(
        out,
        "{:<34}{:>6}{:>16}{:>14}",
        "sweep/config", "runs", "total kcycles", "mean GB/s"
    );
    for (key, n, cycles, gbps) in &groups {
        let _ = writeln!(
            out,
            "{:<34}{:>6}{:>16.1}{:>14.2}",
            key,
            n,
            *cycles as f64 / 1e3,
            gbps / *n as f64
        );
    }
    let total_runs = records.len();
    let total_cycles: u64 = records.iter().map(|r| r.cycles).sum();
    let wall: f64 = records.iter().filter_map(|r| r.wall_ms).sum();
    let _ = writeln!(
        out,
        "total: {total_runs} runs, {:.1} Mcycles simulated{}",
        total_cycles as f64 / 1e6,
        if wall > 0.0 {
            format!(", {:.2}s wall", wall / 1e3)
        } else {
            String::new()
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(config: &str, cycles: u64) -> RunRecord {
        RunRecord {
            sweep: "fig3".into(),
            workload: "bfs".into(),
            config: config.into(),
            config_hash: fnv1a(config.as_bytes()),
            cycles,
            mem_ops: 100,
            achieved_gbps: 12.5,
            pools: vec![PoolTelemetry {
                name: "GDDR5".into(),
                bytes_read: 4096,
                bytes_written: 1024,
                achieved_gbps: 10.0,
            }],
            wall_ms: Some(3.25),
        }
    }

    #[test]
    fn jsonl_is_deterministic_and_excludes_timing_by_default() {
        let r = record("30C-70B", 1000);
        let line = r.jsonl(false);
        assert_eq!(line, r.clone().jsonl(false));
        assert!(!line.contains("wall_ms"));
        assert!(line.starts_with(r#"{"sweep":"fig3","workload":"bfs""#));
        assert!(line.contains(r#""pools":[{"name":"GDDR5""#));
        assert!(r.jsonl(true).contains(r#""wall_ms":3.25"#));
    }

    #[test]
    fn config_hash_is_stable() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        // FNV-1a known answer for the empty string.
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
    }

    #[test]
    fn summary_groups_by_config() {
        let records = vec![
            record("LOCAL", 1000),
            record("LOCAL", 2000),
            record("30C-70B", 1500),
        ];
        let s = summary(&records);
        assert!(s.contains("fig3/LOCAL"), "{s}");
        assert!(s.contains("fig3/30C-70B"), "{s}");
        assert!(s.contains("total: 3 runs"), "{s}");
    }

    #[test]
    fn summary_of_nothing() {
        assert!(summary(&[]).contains("no runs"));
    }
}
