//! Run telemetry: per-run and per-interval JSONL records and the
//! end-of-sweep summary.
//!
//! Each simulated run produces one [`RunRecord`] — workload, config
//! label, a stable config hash, cycles, per-pool traffic, achieved
//! bandwidth, cache hit rates, and energy. Observed runs additionally
//! produce one [`IntervalRecord`] per sampling window. Records
//! serialize to JSON Lines through the in-tree [`json`](crate::json)
//! writer, so a sweep's telemetry file is **byte-identical** across
//! repeated runs and across thread counts (results are collected in
//! grid order; see [`sweep`](crate::sweep)). The two record types share
//! one file, distinguished by the leading `"record"` field (`"run"` vs
//! `"interval"`).
//!
//! Wall-clock time is the one nondeterministic field: it is carried on
//! the record for progress/summary display but **excluded from the
//! JSONL by default** (`include_timing` opts it in for ad-hoc
//! profiling, forfeiting byte-identity).

use std::collections::HashMap;

use crate::json::{array, JsonObject};

/// Per-pool traffic telemetry for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolTelemetry {
    /// Pool name (e.g. `GDDR5`).
    pub name: String,
    /// Bytes read from DRAM in this pool.
    pub bytes_read: u64,
    /// Bytes written to DRAM in this pool.
    pub bytes_written: u64,
    /// Achieved bandwidth over the run for this pool, GB/s.
    pub achieved_gbps: f64,
    /// DRAM row-buffer hit rate over the run, in `[0.0, 1.0]`.
    pub row_hit_rate: f64,
}

/// One run of one `(workload, config)` grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The sweep this run belongs to (e.g. `fig3`).
    pub sweep: String,
    /// Workload name.
    pub workload: String,
    /// Configuration label within the sweep (e.g. `30C-70B`).
    pub config: String,
    /// FNV-1a hash over the canonical configuration description; two
    /// records with equal hashes ran the same machine + placement.
    pub config_hash: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Whether the run finished within the cycle limit.
    pub completed: bool,
    /// Warp memory operations issued.
    pub mem_ops: u64,
    /// Aggregate achieved DRAM bandwidth, GB/s.
    pub achieved_gbps: f64,
    /// L1 hit rate over the run, in `[0.0, 1.0]`.
    pub l1_hit_rate: f64,
    /// L2 hit rate over the run, in `[0.0, 1.0]`.
    pub l2_hit_rate: f64,
    /// Reads held at L2 slices on MSHR exhaustion.
    pub mshr_stalls: u64,
    /// Total DRAM access energy across pools, joules.
    pub energy_joules: f64,
    /// Per-pool traffic.
    pub pools: Vec<PoolTelemetry>,
    /// Online migration counters — present (and serialized) only for
    /// runs driven by the `MIGRATE` policy.
    pub migration: Option<MigrationTelemetry>,
    /// Fast-forward extrapolation block — present (and serialized) only
    /// for `fidelity: sampled` runs, so full-fidelity record bytes are
    /// unchanged.
    pub estimated: Option<EstimateTelemetry>,
    /// Host wall-clock for the point, milliseconds (nondeterministic;
    /// not serialized unless asked).
    pub wall_ms: Option<f64>,
}

/// What a sampled fast-forward run extrapolated (mirrors
/// `gpusim::EstimateReport`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateTelemetry {
    /// Windows simulated at full fidelity (including warm-up).
    pub windows_detail: u64,
    /// Windows drained and extrapolated.
    pub windows_extrapolated: u64,
    /// Warp operations simulated in detail.
    pub ops_simulated: u64,
    /// Warp operations drained and extrapolated.
    pub ops_extrapolated: u64,
    /// Cycles actually simulated (the concatenated detail timeline).
    pub cycles_measured: u64,
    /// Cycles added by the extrapolation model.
    pub cycles_extrapolated: u64,
    /// Model self-confidence in `[0, 1]`.
    pub confidence: f64,
}

/// What the online migration engine did during one `MIGRATE` run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationTelemetry {
    /// Total pages physically moved (promoted + demoted + evicted).
    pub pages_migrated: u64,
    /// Pages promoted into the bandwidth-optimized pool.
    pub pages_promoted: u64,
    /// Pages demoted by the cold threshold.
    pub pages_demoted: u64,
    /// Pages evicted to make room for promotions.
    pub pages_evicted: u64,
    /// Epoch boundaries processed.
    pub epochs: u64,
    /// Bytes of page-copy traffic charged to DRAM.
    pub copy_bytes: u64,
    /// Cycles accesses stalled on freshly rewritten mappings.
    pub remap_stall_cycles: u64,
}

impl RunRecord {
    /// Serializes the record as one JSON line (no trailing newline).
    /// `include_timing` adds the nondeterministic `wall_ms` field.
    pub fn jsonl(&self, include_timing: bool) -> String {
        let pools = array(self.pools.iter().map(|p| {
            JsonObject::new()
                .str("name", &p.name)
                .u64("bytes_read", p.bytes_read)
                .u64("bytes_written", p.bytes_written)
                .f64("achieved_gbps", p.achieved_gbps)
                .f64("row_hit_rate", p.row_hit_rate)
                .finish()
        }));
        let mut obj = JsonObject::new()
            .str("record", "run")
            .str("sweep", &self.sweep)
            .str("workload", &self.workload)
            .str("config", &self.config)
            .str("config_hash", &format!("{:016x}", self.config_hash))
            .u64("cycles", self.cycles)
            .bool("completed", self.completed)
            .u64("mem_ops", self.mem_ops)
            .f64("achieved_gbps", self.achieved_gbps)
            .f64("l1_hit_rate", self.l1_hit_rate)
            .f64("l2_hit_rate", self.l2_hit_rate)
            .u64("mshr_stalls", self.mshr_stalls)
            .f64("energy_joules", self.energy_joules)
            .raw("pools", &pools);
        if let Some(m) = &self.migration {
            let mig = JsonObject::new()
                .u64("pages_migrated", m.pages_migrated)
                .u64("pages_promoted", m.pages_promoted)
                .u64("pages_demoted", m.pages_demoted)
                .u64("pages_evicted", m.pages_evicted)
                .u64("epochs", m.epochs)
                .u64("copy_bytes", m.copy_bytes)
                .u64("remap_stall_cycles", m.remap_stall_cycles)
                .finish();
            obj = obj.raw("migration", &mig);
        }
        if let Some(e) = &self.estimated {
            let est = JsonObject::new()
                .u64("windows_detail", e.windows_detail)
                .u64("windows_extrapolated", e.windows_extrapolated)
                .u64("ops_simulated", e.ops_simulated)
                .u64("ops_extrapolated", e.ops_extrapolated)
                .u64("cycles_measured", e.cycles_measured)
                .u64("cycles_extrapolated", e.cycles_extrapolated)
                .f64("confidence", e.confidence)
                .finish();
            obj = obj.raw("estimated", &est);
        }
        if include_timing {
            if let Some(ms) = self.wall_ms {
                obj = obj.f64("wall_ms", ms);
            }
        }
        obj.finish()
    }
}

/// Per-pool telemetry for one sampling window of an observed run.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalPoolTelemetry {
    /// Pool name (e.g. `GDDR5`).
    pub name: String,
    /// Bytes read from this pool's DRAM during the window.
    pub bytes_read: u64,
    /// Bytes written to this pool's DRAM during the window.
    pub bytes_written: u64,
    /// Achieved bandwidth during the window, GB/s.
    pub achieved_gbps: f64,
    /// Fraction of the window's channel-cycles the pool's data buses
    /// were busy, in `[0.0, 1.0]`.
    pub bus_util: f64,
    /// Pages resident in this pool's zone by window end (cumulative
    /// faults observed by the simulator).
    pub zone_pages: u64,
}

/// One sampling window of one observed run, serialized alongside
/// [`RunRecord`]s with `"record":"interval"`.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalRecord {
    /// The sweep this run belongs to.
    pub sweep: String,
    /// Workload name.
    pub workload: String,
    /// Configuration label within the sweep.
    pub config: String,
    /// Same stable hash as the run's [`RunRecord::config_hash`].
    pub config_hash: u64,
    /// Window index (`start_cycle / sample_cycles`).
    pub index: u64,
    /// First cycle of the window.
    pub start_cycle: u64,
    /// One past the last cycle of the window.
    pub end_cycle: u64,
    /// Warp memory operations issued in the window.
    pub mem_ops: u64,
    /// L1 hits in the window.
    pub l1_hits: u64,
    /// L1 misses in the window.
    pub l1_misses: u64,
    /// L2 hits in the window.
    pub l2_hits: u64,
    /// L2 misses in the window.
    pub l2_misses: u64,
    /// Reads held on MSHR exhaustion in the window.
    pub mshr_stalls: u64,
    /// Peak single-slice MSHR occupancy in the window.
    pub mshr_peak: u64,
    /// Warps retired in the window.
    pub warps_retired: u64,
    /// Per-pool window telemetry.
    pub pools: Vec<IntervalPoolTelemetry>,
    /// For sampled runs: whether this window was simulated in detail
    /// (`"detail"`) or synthesized by the extrapolation model
    /// (`"extrapolated"`). `None` for full-fidelity runs, keeping their
    /// record bytes unchanged.
    pub mode: Option<&'static str>,
}

impl IntervalRecord {
    /// Serializes the record as one JSON line (no trailing newline).
    /// Interval records carry no nondeterministic fields.
    pub fn jsonl(&self) -> String {
        let pools = array(self.pools.iter().map(|p| {
            JsonObject::new()
                .str("name", &p.name)
                .u64("bytes_read", p.bytes_read)
                .u64("bytes_written", p.bytes_written)
                .f64("achieved_gbps", p.achieved_gbps)
                .f64("bus_util", p.bus_util)
                .u64("zone_pages", p.zone_pages)
                .finish()
        }));
        let mut obj = JsonObject::new()
            .str("record", "interval")
            .str("sweep", &self.sweep)
            .str("workload", &self.workload)
            .str("config", &self.config)
            .str("config_hash", &format!("{:016x}", self.config_hash))
            .u64("index", self.index)
            .u64("start_cycle", self.start_cycle)
            .u64("end_cycle", self.end_cycle)
            .u64("mem_ops", self.mem_ops)
            .u64("l1_hits", self.l1_hits)
            .u64("l1_misses", self.l1_misses)
            .f64("l1_hit_rate", hit_rate(self.l1_hits, self.l1_misses))
            .u64("l2_hits", self.l2_hits)
            .u64("l2_misses", self.l2_misses)
            .f64("l2_hit_rate", hit_rate(self.l2_hits, self.l2_misses))
            .u64("mshr_stalls", self.mshr_stalls)
            .u64("mshr_peak", self.mshr_peak)
            .u64("warps_retired", self.warps_retired)
            .raw("pools", &pools);
        if let Some(mode) = self.mode {
            obj = obj.str("mode", mode);
        }
        obj.finish()
    }
}

/// `hits / (hits + misses)`, or `0.0` with no accesses.
pub fn hit_rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// FNV-1a over a byte string — the stable hash behind
/// [`RunRecord::config_hash`].
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Formats the end-of-sweep summary table: per-config run counts, cycle
/// totals, and aggregate achieved bandwidth, plus a grand total line.
pub fn summary(records: &[RunRecord]) -> String {
    use std::fmt::Write;

    let mut out = String::new();
    if records.is_empty() {
        out.push_str("sweep summary: no runs recorded\n");
        return out;
    }
    // Group by (sweep, config) preserving first-appearance order; the
    // HashMap indexes into the ordered Vec so grouping stays linear in
    // the record count.
    let mut groups: Vec<(String, u64, u64, f64)> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    for r in records {
        let key = format!("{}/{}", r.sweep, r.config);
        match index.get(&key) {
            Some(&i) => {
                let (_, n, cycles, gbps) = &mut groups[i];
                *n += 1;
                *cycles += r.cycles;
                *gbps += r.achieved_gbps;
            }
            None => {
                index.insert(key.clone(), groups.len());
                groups.push((key, 1, r.cycles, r.achieved_gbps));
            }
        }
    }
    let _ = writeln!(
        out,
        "{:<34}{:>6}{:>16}{:>14}",
        "sweep/config", "runs", "total kcycles", "mean GB/s"
    );
    for (key, n, cycles, gbps) in &groups {
        let _ = writeln!(
            out,
            "{:<34}{:>6}{:>16.1}{:>14.2}",
            key,
            n,
            *cycles as f64 / 1e3,
            gbps / *n as f64
        );
    }
    let total_runs = records.len();
    let total_cycles: u64 = records.iter().map(|r| r.cycles).sum();
    let wall: f64 = records.iter().filter_map(|r| r.wall_ms).sum();
    let _ = writeln!(
        out,
        "total: {total_runs} runs, {:.1} Mcycles simulated{}",
        total_cycles as f64 / 1e6,
        if wall > 0.0 {
            format!(", {:.2}s wall", wall / 1e3)
        } else {
            String::new()
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(config: &str, cycles: u64) -> RunRecord {
        RunRecord {
            sweep: "fig3".into(),
            workload: "bfs".into(),
            config: config.into(),
            config_hash: fnv1a(config.as_bytes()),
            cycles,
            completed: true,
            mem_ops: 100,
            achieved_gbps: 12.5,
            l1_hit_rate: 0.5,
            l2_hit_rate: 0.25,
            mshr_stalls: 3,
            energy_joules: 1e-6,
            pools: vec![PoolTelemetry {
                name: "GDDR5".into(),
                bytes_read: 4096,
                bytes_written: 1024,
                achieved_gbps: 10.0,
                row_hit_rate: 0.75,
            }],
            migration: None,
            estimated: None,
            wall_ms: Some(3.25),
        }
    }

    #[test]
    fn jsonl_is_deterministic_and_excludes_timing_by_default() {
        let r = record("30C-70B", 1000);
        let line = r.jsonl(false);
        assert_eq!(line, r.clone().jsonl(false));
        assert!(!line.contains("wall_ms"));
        assert!(line.starts_with(r#"{"record":"run","sweep":"fig3","workload":"bfs""#));
        assert!(line.contains(r#""completed":true"#));
        assert!(line.contains(r#""l1_hit_rate":0.5"#));
        assert!(line.contains(r#""mshr_stalls":3"#));
        assert!(line.contains(r#""pools":[{"name":"GDDR5""#));
        assert!(line.contains(r#""row_hit_rate":0.75"#));
        assert!(r.jsonl(true).contains(r#""wall_ms":3.25"#));
    }

    #[test]
    fn migration_block_serialized_only_when_present() {
        let plain = record("LOCAL", 1000);
        assert!(!plain.jsonl(false).contains("migration"));
        let mut migrated = record("MIGRATE", 1000);
        migrated.migration = Some(MigrationTelemetry {
            pages_migrated: 6,
            pages_promoted: 4,
            pages_demoted: 1,
            pages_evicted: 1,
            epochs: 3,
            copy_bytes: 49152,
            remap_stall_cycles: 8400,
        });
        let line = migrated.jsonl(false);
        assert!(line.contains(r#""migration":{"pages_migrated":6,"pages_promoted":4"#));
        assert!(line.contains(r#""epochs":3"#));
        // The block sits between the pools array and end of record.
        assert!(line.find("pools").unwrap() < line.find("migration").unwrap());
    }

    #[test]
    fn interval_jsonl_has_discriminator_and_derived_rates() {
        let rec = IntervalRecord {
            sweep: "fig3".into(),
            workload: "bfs".into(),
            config: "LOCAL".into(),
            config_hash: 7,
            index: 2,
            start_cycle: 2000,
            end_cycle: 3000,
            mem_ops: 64,
            l1_hits: 30,
            l1_misses: 10,
            l2_hits: 5,
            l2_misses: 5,
            mshr_stalls: 1,
            mshr_peak: 12,
            warps_retired: 0,
            pools: vec![IntervalPoolTelemetry {
                name: "GDDR5".into(),
                bytes_read: 2048,
                bytes_written: 0,
                achieved_gbps: 2.9,
                bus_util: 0.4,
                zone_pages: 17,
            }],
            mode: None,
        };
        let line = rec.jsonl();
        assert_eq!(line, rec.clone().jsonl());
        assert!(line.starts_with(r#"{"record":"interval","sweep":"fig3""#));
        assert!(line.contains(r#""index":2,"start_cycle":2000,"end_cycle":3000"#));
        assert!(line.contains(r#""l1_hit_rate":0.75"#));
        assert!(line.contains(r#""l2_hit_rate":0.5"#));
        assert!(line.contains(r#""bus_util":0.4"#));
        assert!(line.contains(r#""zone_pages":17"#));
        assert!(!line.contains("mode"), "full-fidelity bytes unchanged");
        let mut sampled = rec.clone();
        sampled.mode = Some("extrapolated");
        assert!(sampled.jsonl().ends_with(r#""mode":"extrapolated"}"#));
    }

    #[test]
    fn estimated_block_serialized_only_when_present() {
        let plain = record("LOCAL", 1000);
        assert!(!plain.jsonl(false).contains("estimated"));
        let mut sampled = record("LOCAL", 1000);
        sampled.estimated = Some(EstimateTelemetry {
            windows_detail: 14,
            windows_extrapolated: 378,
            ops_simulated: 14_336,
            ops_extrapolated: 387_072,
            cycles_measured: 9_000,
            cycles_extrapolated: 240_000,
            confidence: 0.93,
        });
        let line = sampled.jsonl(false);
        assert!(line.contains(r#""estimated":{"windows_detail":14,"windows_extrapolated":378"#));
        assert!(line.contains(r#""confidence":0.93"#));
        // The block sits after the pools array, like migration.
        assert!(line.find("pools").unwrap() < line.find("estimated").unwrap());
    }

    #[test]
    fn hit_rate_handles_zero_accesses() {
        assert_eq!(hit_rate(0, 0), 0.0);
        assert_eq!(hit_rate(3, 1), 0.75);
    }

    #[test]
    fn config_hash_is_stable() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        // FNV-1a known answer for the empty string.
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
    }

    #[test]
    fn summary_groups_by_config() {
        let records = vec![
            record("LOCAL", 1000),
            record("LOCAL", 2000),
            record("30C-70B", 1500),
        ];
        let s = summary(&records);
        assert!(s.contains("fig3/LOCAL"), "{s}");
        assert!(s.contains("fig3/30C-70B"), "{s}");
        assert!(s.contains("total: 3 runs"), "{s}");
    }

    #[test]
    fn summary_of_nothing() {
        assert!(summary(&[]).contains("no runs"));
    }
}
