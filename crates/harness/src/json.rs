//! A hand-rolled, deterministic JSON writer (no serde).
//!
//! The telemetry layer needs exactly one thing from JSON: emitting flat
//! records whose bytes are identical for identical inputs. This module
//! provides an append-only object builder — insertion order is
//! preserved, `f64`s use Rust's shortest-roundtrip formatting (stable
//! across runs and platforms), and non-finite floats become `null`
//! (JSON has no NaN).
//!
//! ```
//! use hetmem_harness::json::JsonObject;
//!
//! let line = JsonObject::new()
//!     .str("workload", "bfs")
//!     .u64("cycles", 12345)
//!     .f64("gbps", 1.5)
//!     .finish();
//! assert_eq!(line, r#"{"workload":"bfs","cycles":12345,"gbps":1.5}"#);
//! ```

/// An append-only JSON object builder.
#[derive(Debug, Clone)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, key: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        escape_into(key, &mut self.buf);
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push('"');
        escape_into(value, &mut self.buf);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Adds a float field (`null` when not finite).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        self.buf.push_str(&fmt_f64(value));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a pre-serialized JSON value (e.g. a nested array built from
    /// other [`JsonObject`]s).
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        JsonObject::new()
    }
}

/// Serializes a list of pre-serialized values as a JSON array.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

/// Formats an `f64` deterministically: shortest roundtrip via `{}`,
/// `null` for NaN/infinity.
pub fn fmt_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

fn escape_into(s: &str, buf: &mut String) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_flat_objects() {
        let line = JsonObject::new()
            .str("a", "x")
            .u64("b", 7)
            .bool("c", true)
            .finish();
        assert_eq!(line, r#"{"a":"x","b":7,"c":true}"#);
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn escapes_specials() {
        let line = JsonObject::new().str("k", "a\"b\\c\nd\u{1}").finish();
        assert_eq!(line, r#"{"k":"a\"b\\c\nd\u0001"}"#);
    }

    #[test]
    fn floats_are_shortest_roundtrip_and_null_for_nan() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(0.1 + 0.2), "0.30000000000000004");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        let line = JsonObject::new().f64("x", 2.0).finish();
        assert_eq!(line, r#"{"x":2}"#);
    }

    #[test]
    fn arrays_and_raw_nesting() {
        let inner = array(vec![
            JsonObject::new().u64("i", 0).finish(),
            JsonObject::new().u64("i", 1).finish(),
        ]);
        let line = JsonObject::new().raw("items", &inner).finish();
        assert_eq!(line, r#"{"items":[{"i":0},{"i":1}]}"#);
    }
}
