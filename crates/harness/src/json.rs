//! A hand-rolled, deterministic JSON writer and a small parser (no
//! serde).
//!
//! The telemetry layer needs exactly one thing from JSON on the way
//! out: emitting flat records whose bytes are identical for identical
//! inputs. This module provides an append-only object builder —
//! insertion order is preserved, `f64`s use Rust's shortest-roundtrip
//! formatting (stable across runs and platforms), and non-finite floats
//! become `null` (JSON has no NaN).
//!
//! On the way back in, [`JsonValue::parse`] is a strict
//! recursive-descent parser used by the trace inspection CLI and the CI
//! line checker ([`validate_jsonl`]) — it accepts exactly one JSON value
//! per input and preserves object key order.
//!
//! ```
//! use hetmem_harness::json::JsonObject;
//!
//! let line = JsonObject::new()
//!     .str("workload", "bfs")
//!     .u64("cycles", 12345)
//!     .f64("gbps", 1.5)
//!     .finish();
//! assert_eq!(line, r#"{"workload":"bfs","cycles":12345,"gbps":1.5}"#);
//! ```

/// An append-only JSON object builder.
#[derive(Debug, Clone)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, key: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        escape_into(key, &mut self.buf);
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push('"');
        escape_into(value, &mut self.buf);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Adds a float field (`null` when not finite).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        self.buf.push_str(&fmt_f64(value));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a pre-serialized JSON value (e.g. a nested array built from
    /// other [`JsonObject`]s).
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        JsonObject::new()
    }
}

/// Serializes a list of pre-serialized values as a JSON array.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

/// Formats an `f64` deterministically: shortest roundtrip via `{}`,
/// `null` for NaN/infinity.
pub fn fmt_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// Serializes a string as a quoted, escaped JSON string value.
pub fn quote(s: &str) -> String {
    let mut buf = String::with_capacity(s.len() + 2);
    buf.push('"');
    escape_into(s, &mut buf);
    buf.push('"');
    buf
}

/// A parsed JSON value. Objects keep their key order (a `Vec`, not a
/// map — telemetry records are small and order is part of the schema).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish int from float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source key order.
    Object(Vec<(String, JsonValue)>),
}

/// A parse failure: byte offset plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for JsonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses exactly one JSON value; trailing non-whitespace is an
    /// error.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] locating the first malformed byte.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Serializes the value back to canonical JSON text: object keys in
    /// stored order, floats via [`fmt_f64`], strings escaped exactly as
    /// the writer does. `parse(render(v)) == v` for every value, and
    /// values built through [`JsonObject`] render to identical bytes.
    pub fn render(&self) -> String {
        let mut buf = String::new();
        self.render_into(&mut buf);
        buf
    }

    fn render_into(&self, buf: &mut String) {
        match self {
            JsonValue::Null => buf.push_str("null"),
            JsonValue::Bool(b) => buf.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => buf.push_str(&fmt_f64(*n)),
            JsonValue::Str(s) => {
                buf.push('"');
                escape_into(s, buf);
                buf.push('"');
            }
            JsonValue::Array(items) => {
                buf.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        buf.push(',');
                    }
                    item.render_into(buf);
                }
                buf.push(']');
            }
            JsonValue::Object(fields) => {
                buf.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        buf.push(',');
                    }
                    buf.push('"');
                    escape_into(k, buf);
                    buf.push_str("\":");
                    v.render_into(buf);
                }
                buf.push('}');
            }
        }
    }

    /// Looks up `key` in an object; `None` for missing keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Combine surrogate pairs; lone surrogates
                            // become the replacement character.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = core::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = core::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| JsonError {
                offset: start,
                message: format!("bad number '{text}'"),
            })
    }
}

/// Checks that every non-empty line of `text` parses as a JSON value.
/// Returns the number of lines validated.
///
/// # Errors
///
/// Returns the 1-based line number and parse error of the first bad
/// line.
pub fn validate_jsonl(text: &str) -> Result<usize, (usize, JsonError)> {
    let mut count = 0;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        JsonValue::parse(line).map_err(|e| (i + 1, e))?;
        count += 1;
    }
    Ok(count)
}

fn escape_into(s: &str, buf: &mut String) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_flat_objects() {
        let line = JsonObject::new()
            .str("a", "x")
            .u64("b", 7)
            .bool("c", true)
            .finish();
        assert_eq!(line, r#"{"a":"x","b":7,"c":true}"#);
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn escapes_specials() {
        let line = JsonObject::new().str("k", "a\"b\\c\nd\u{1}").finish();
        assert_eq!(line, r#"{"k":"a\"b\\c\nd\u0001"}"#);
    }

    #[test]
    fn floats_are_shortest_roundtrip_and_null_for_nan() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(0.1 + 0.2), "0.30000000000000004");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        let line = JsonObject::new().f64("x", 2.0).finish();
        assert_eq!(line, r#"{"x":2}"#);
    }

    #[test]
    fn arrays_and_raw_nesting() {
        let inner = array(vec![
            JsonObject::new().u64("i", 0).finish(),
            JsonObject::new().u64("i", 1).finish(),
        ]);
        let line = JsonObject::new().raw("items", &inner).finish();
        assert_eq!(line, r#"{"items":[{"i":0},{"i":1}]}"#);
    }

    #[test]
    fn parser_roundtrips_writer_output() {
        let line = JsonObject::new()
            .str("name", "a\"b\\c\nd")
            .u64("n", 42)
            .f64("x", 0.1 + 0.2)
            .bool("ok", true)
            .raw("items", &array(vec!["1".into(), "null".into()]))
            .finish();
        let v = JsonValue::parse(&line).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("a\"b\\c\nd"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("x").unwrap().as_f64(), Some(0.1 + 0.2));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(
            v.get("items").unwrap().as_array(),
            Some(&[JsonValue::Num(1.0), JsonValue::Null][..])
        );
    }

    #[test]
    fn parser_preserves_object_key_order() {
        let v = JsonValue::parse(r#"{"z":1,"a":2}"#).unwrap();
        let JsonValue::Object(fields) = v else {
            panic!("not an object")
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn parser_handles_nesting_whitespace_and_escapes() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , { \"b\" : \"\\u0041\\u00e9\" } ] } ").unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0], JsonValue::Num(1.0));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("Aé"));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            r#"{"a":}"#,
            r#"{"a":1} extra"#,
            "truer",
            "\"unterminated",
            "nan",
            "01x",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parser_combines_surrogate_pairs() {
        let v = JsonValue::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        // A lone surrogate degrades to the replacement character.
        let v = JsonValue::parse(r#""\ud83dx""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{FFFD}x"));
    }

    #[test]
    fn render_roundtrips_and_matches_writer_bytes() {
        let line = JsonObject::new()
            .str("name", "a\"b\\c\nd")
            .u64("n", 42)
            .f64("x", 0.1 + 0.2)
            .bool("ok", true)
            .raw("items", &array(vec!["1".into(), "null".into()]))
            .finish();
        let v = JsonValue::parse(&line).unwrap();
        assert_eq!(v.render(), line, "render reproduces writer bytes");
        assert_eq!(JsonValue::parse(&v.render()).unwrap(), v);
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::parse("[ 1 , 2 ]").unwrap().render(), "[1,2]");
    }

    #[test]
    fn validate_jsonl_counts_lines_and_locates_failures() {
        assert_eq!(validate_jsonl("{\"a\":1}\n\n{\"b\":2}\n"), Ok(2));
        let err = validate_jsonl("{\"a\":1}\nnot json\n").unwrap_err();
        assert_eq!(err.0, 2);
    }
}
