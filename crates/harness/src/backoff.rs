//! Capped exponential backoff with deterministic jitter.
//!
//! The retry schedule `hetmem-client` sleeps on between attempts. Three
//! properties are load-bearing (and property-tested):
//!
//! 1. **Monotone non-decreasing**: `delay_ms(n + 1) >= delay_ms(n)` for
//!    every attempt, jitter included. Retries never get more aggressive.
//! 2. **Capped**: no delay exceeds `cap_ms`, jitter included.
//! 3. **Deterministic per seed**: the whole schedule is a pure function
//!    of `(base_ms, cap_ms, seed)`, so a chaos run's retry timing is
//!    reproducible.
//!
//! Jitter is additive and bounded by the un-jittered delay itself:
//! `delay(n) = min(cap, base * 2^n + jitter_n)` with
//! `jitter_n in [0, base * 2^n)`. Because the raw delay doubles per
//! attempt and the jitter never exceeds one raw delay, the jittered
//! schedule stays monotone: `raw(n+1) = 2 * raw(n) >= raw(n) + jitter_n`.

use crate::rng::mix;

/// A capped exponential backoff schedule with deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// First-retry delay, milliseconds.
    pub base_ms: u64,
    /// Upper bound on any delay, milliseconds (jitter included).
    pub cap_ms: u64,
    /// Jitter seed; equal seeds give byte-equal schedules.
    pub seed: u64,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            base_ms: 50,
            cap_ms: 2_000,
            seed: 0,
        }
    }
}

impl Backoff {
    /// Builds a schedule starting at `base_ms`, capped at `cap_ms`,
    /// jittered deterministically from `seed`.
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Self {
        Backoff {
            base_ms: base_ms.max(1),
            cap_ms: cap_ms.max(1),
            seed,
        }
    }

    /// The delay before retry `attempt` (0-based), in milliseconds.
    /// Monotone non-decreasing in `attempt`, never above `cap_ms`, and a
    /// pure function of the schedule fields.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let cap = self.cap_ms.max(1);
        let base = self.base_ms.max(1);
        // base * 2^attempt without overflow: saturate through the cap.
        let raw = if attempt >= 63 {
            u64::MAX
        } else {
            base.saturating_mul(1u64 << attempt)
        };
        if raw >= cap {
            return cap;
        }
        // Jitter in [0, raw): a 53-bit uniform fraction of the raw
        // delay, derived statelessly so the schedule needs no RNG state.
        let frac = (mix(self.seed ^ mix(u64::from(attempt).wrapping_add(1))) >> 11) as f64
            / (1u64 << 53) as f64;
        let jitter = (raw as f64 * frac) as u64;
        raw.saturating_add(jitter).min(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_monotone_and_capped() {
        let b = Backoff::new(50, 2_000, 7);
        let mut prev = 0;
        for attempt in 0..40 {
            let d = b.delay_ms(attempt);
            assert!(d >= prev, "attempt {attempt}: {d} < {prev}");
            assert!(d <= 2_000);
            prev = d;
        }
        assert_eq!(b.delay_ms(39), 2_000, "tail saturates at the cap");
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let a = Backoff::new(10, 500, 42);
        let b = Backoff::new(10, 500, 42);
        let c = Backoff::new(10, 500, 43);
        let series = |x: &Backoff| (0..16).map(|n| x.delay_ms(n)).collect::<Vec<_>>();
        assert_eq!(series(&a), series(&b));
        assert_ne!(series(&a), series(&c), "different seed, different jitter");
    }

    #[test]
    fn zero_inputs_clamp() {
        let b = Backoff::new(0, 0, 0);
        assert_eq!(b.delay_ms(0), 1);
        assert!(b.delay_ms(20) <= 1);
    }

    #[test]
    fn huge_attempts_do_not_overflow() {
        let b = Backoff::new(u64::MAX / 2, u64::MAX, 1);
        assert_eq!(b.delay_ms(u32::MAX), u64::MAX);
    }
}
