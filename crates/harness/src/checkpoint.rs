//! Crash-safe sweep checkpoints: resume a killed grid run without
//! recomputing (or changing) a single byte.
//!
//! A checkpoint is a JSONL file of `{"record":"checkpoint","key":...,
//! "value":...}` lines mapping a grid point's **content key** to its
//! serialized result. [`CheckpointWriter`] makes every flush crash-safe
//! by construction: the whole file is rewritten to a sibling temp file
//! and atomically renamed over the target, so a `SIGKILL` at any instant
//! leaves either the previous complete checkpoint or the new complete
//! checkpoint — never a torn file. An optional fsync mode additionally
//! syncs the temp file (and, on a best-effort basis, its directory)
//! before the rename for power-loss durability.
//!
//! [`run_grid_resumable`] wires the checkpoint into the sweep engine:
//! points whose content key is already checkpointed are skipped, fresh
//! points stream into the checkpoint as they complete, and the merged
//! results come back in grid order with per-point seeds derived from
//! the **original** grid index — so a killed-and-resumed sweep's output
//! is byte-identical to an uninterrupted run.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::json::{JsonObject, JsonValue};
use crate::sweep::{point_seed, run_grid, PointCtx, SweepError, SweepOptions};

/// One checkpointed grid point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointEntry {
    /// The point's content key (canonical over everything that
    /// determines its result).
    pub key: String,
    /// The point's serialized result.
    pub value: String,
}

struct WriterInner {
    entries: Vec<CheckpointEntry>,
    index: HashMap<String, usize>,
}

/// A crash-safe, append-style checkpoint store. Thread-safe: the sweep
/// engine appends from worker threads.
pub struct CheckpointWriter {
    path: PathBuf,
    fsync: bool,
    inner: Mutex<WriterInner>,
}

impl CheckpointWriter {
    /// Opens (or creates) the checkpoint at `path`, loading any entries
    /// a previous run left behind. `fsync` syncs every flush to stable
    /// storage before the atomic rename.
    ///
    /// # Errors
    ///
    /// I/O failures reading an existing checkpoint. Malformed lines
    /// (impossible under the atomic-rename discipline, but possible if
    /// the file was hand-edited) are skipped, not fatal.
    pub fn open(path: impl AsRef<Path>, fsync: bool) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let entries = match fs::read_to_string(&path) {
            Ok(text) => parse_entries(&text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let index = entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.key.clone(), i))
            .collect();
        Ok(CheckpointWriter {
            path,
            fsync,
            inner: Mutex::new(WriterInner { entries, index }),
        })
    }

    /// The checkpoint file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether `key` is already checkpointed.
    pub fn contains(&self, key: &str) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .index
            .contains_key(key)
    }

    /// The checkpointed result for `key`, if any.
    pub fn get(&self, key: &str) -> Option<String> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .index
            .get(key)
            .map(|&i| inner.entries[i].value.clone())
    }

    /// Entries currently checkpointed.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .len()
    }

    /// Whether the checkpoint holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records `key -> value` and flushes crash-safely: the full entry
    /// set is written to a temp file and atomically renamed over the
    /// checkpoint path. Re-recording an existing key overwrites it.
    ///
    /// # Errors
    ///
    /// I/O failures writing or renaming the temp file.
    pub fn append(&self, key: &str, value: &str) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner.index.get(key) {
            Some(&i) => inner.entries[i].value = value.to_string(),
            None => {
                let i = inner.entries.len();
                inner.entries.push(CheckpointEntry {
                    key: key.to_string(),
                    value: value.to_string(),
                });
                inner.index.insert(key.to_string(), i);
            }
        }
        self.flush_locked(&inner)
    }

    /// Writes the entry set to `<path>.tmp` and renames it into place.
    /// Called with the inner lock held so concurrent appends serialize.
    fn flush_locked(&self, inner: &WriterInner) -> io::Result<()> {
        let tmp = self.path.with_extension("tmp");
        let mut buf = String::new();
        for e in &inner.entries {
            buf.push_str(
                &JsonObject::new()
                    .str("record", "checkpoint")
                    .str("key", &e.key)
                    .str("value", &e.value)
                    .finish(),
            );
            buf.push('\n');
        }
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(buf.as_bytes())?;
        file.flush()?;
        if self.fsync {
            file.sync_all()?;
        }
        drop(file);
        fs::rename(&tmp, &self.path)?;
        if self.fsync {
            // Durability of the rename itself: sync the directory entry.
            // Best-effort — not every platform lets you open a directory.
            if let Some(dir) = self.path.parent() {
                let dir = if dir.as_os_str().is_empty() {
                    Path::new(".")
                } else {
                    dir
                };
                if let Ok(d) = File::open(dir) {
                    let _ = d.sync_all();
                }
            }
        }
        Ok(())
    }
}

/// Parses checkpoint lines, skipping anything malformed (a hand-edited
/// or foreign file); later duplicates of a key win.
fn parse_entries(text: &str) -> Vec<CheckpointEntry> {
    let mut entries: Vec<CheckpointEntry> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(v) = JsonValue::parse(line) else {
            continue;
        };
        if v.get("record").and_then(JsonValue::as_str) != Some("checkpoint") {
            continue;
        }
        let (Some(key), Some(value)) = (
            v.get("key").and_then(JsonValue::as_str),
            v.get("value").and_then(JsonValue::as_str),
        ) else {
            continue;
        };
        match index.get(key) {
            Some(&i) => entries[i].value = value.to_string(),
            None => {
                index.insert(key.to_string(), entries.len());
                entries.push(CheckpointEntry {
                    key: key.to_string(),
                    value: value.to_string(),
                });
            }
        }
    }
    entries
}

/// Reads the entries of a checkpoint file without opening it for
/// writing (e.g. for inspection). Missing file = empty checkpoint.
///
/// # Errors
///
/// I/O failures other than the file not existing.
pub fn read_checkpoint(path: impl AsRef<Path>) -> io::Result<Vec<CheckpointEntry>> {
    match fs::read_to_string(path.as_ref()) {
        Ok(text) => Ok(parse_entries(&text)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

/// [`run_grid`] with checkpoint/resume: points whose content key is
/// already in `ckpt` return their checkpointed result without running;
/// fresh points execute on the worker pool and stream into `ckpt` as
/// they complete (one crash-safe flush per point). Results come back in
/// grid order and — because each fresh point's [`PointCtx`] seed derives
/// from its **original** grid index — a resumed run's output is
/// byte-identical to an uninterrupted one.
///
/// # Errors
///
/// Propagates [`SweepError`] from the underlying sweep (a panicking
/// point, or the deadline expiring). Points checkpointed before the
/// failure stay checkpointed, so a later resume continues from there.
///
/// # Panics
///
/// Panics (surfacing as a [`SweepError::Panic`] naming the point) if
/// the checkpoint cannot be written.
pub fn run_grid_resumable<T, K, L, F>(
    points: &[T],
    opts: &SweepOptions,
    key: K,
    label: L,
    run: F,
    ckpt: &CheckpointWriter,
) -> Result<Vec<String>, SweepError>
where
    T: Sync,
    K: Fn(&T) -> String,
    L: Fn(&T) -> String + Sync,
    F: Fn(&T, PointCtx) -> String + Sync,
{
    let total = points.len();
    let keys: Vec<String> = points.iter().map(&key).collect();
    let todo: Vec<usize> = (0..total).filter(|&i| !ckpt.contains(&keys[i])).collect();
    let fresh = run_grid(
        &todo,
        opts,
        |&i| label(&points[i]),
        |&i, _subgrid_ctx| {
            // Seed from the original grid index, not the filtered one,
            // so a resumed point computes exactly what it would have.
            let ctx = PointCtx {
                index: i,
                total,
                seed: point_seed(opts.seed, i),
            };
            let out = run(&points[i], ctx);
            ckpt.append(&keys[i], &out)
                .unwrap_or_else(|e| panic!("checkpoint write failed: {e}"));
            out
        },
    )?;
    let fresh_by_index: HashMap<usize, String> = todo.into_iter().zip(fresh).collect();
    Ok((0..total)
        .map(|i| match fresh_by_index.get(&i) {
            Some(out) => out.clone(),
            None => ckpt
                .get(&keys[i])
                .expect("point neither checkpointed nor freshly run"),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hetmem-ckpt-{tag}-{}", std::process::id()))
    }

    #[test]
    fn append_then_reopen_recovers_entries() {
        let path = temp_path("reopen");
        let _ = fs::remove_file(&path);
        let w = CheckpointWriter::open(&path, false).unwrap();
        assert!(w.is_empty());
        w.append("k1", r#"{"cycles":1}"#).unwrap();
        w.append("k2", "plain text value").unwrap();
        w.append("k1", r#"{"cycles":2}"#).unwrap(); // overwrite wins
        assert_eq!(w.len(), 2);

        let r = CheckpointWriter::open(&path, true).unwrap();
        assert_eq!(r.get("k1").as_deref(), Some(r#"{"cycles":2}"#));
        assert_eq!(r.get("k2").as_deref(), Some("plain text value"));
        assert!(r.contains("k2") && !r.contains("k3"));
        // fsync mode still round-trips.
        r.append("k3", "v3").unwrap();
        assert_eq!(read_checkpoint(&path).unwrap().len(), 3);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_lines_are_skipped_not_fatal() {
        let path = temp_path("torn");
        fs::write(
            &path,
            "{\"record\":\"checkpoint\",\"key\":\"a\",\"value\":\"1\"}\n\
             not json at all\n\
             {\"record\":\"other\",\"key\":\"b\",\"value\":\"2\"}\n\
             {\"record\":\"checkpoint\",\"key\":\"c\"\n",
        )
        .unwrap();
        let w = CheckpointWriter::open(&path, false).unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(w.get("a").as_deref(), Some("1"));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_empty_checkpoint() {
        let path = temp_path("missing");
        let _ = fs::remove_file(&path);
        assert!(read_checkpoint(&path).unwrap().is_empty());
        assert!(CheckpointWriter::open(&path, false).unwrap().is_empty());
    }

    #[test]
    fn resumable_run_skips_checkpointed_points_and_matches_scratch() {
        let points: Vec<u64> = (0..12).collect();
        let opts = SweepOptions {
            threads: 3,
            ..SweepOptions::default()
        };
        let key = |p: &u64| format!("point-{p}");
        let run = |p: &u64, ctx: PointCtx| format!("{}:{:016x}", p * p, ctx.seed);

        // Uninterrupted reference run.
        let scratch_path = temp_path("scratch");
        let _ = fs::remove_file(&scratch_path);
        let scratch_ckpt = CheckpointWriter::open(&scratch_path, false).unwrap();
        let reference =
            run_grid_resumable(&points, &opts, key, |p| p.to_string(), run, &scratch_ckpt).unwrap();

        // "Killed" run: only the first 5 points made it to the checkpoint.
        let path = temp_path("resume");
        let _ = fs::remove_file(&path);
        let partial = CheckpointWriter::open(&path, false).unwrap();
        for (i, p) in points.iter().enumerate().take(5) {
            let ctx = PointCtx {
                index: i,
                total: points.len(),
                seed: point_seed(opts.seed, i),
            };
            partial.append(&key(p), &run(p, ctx)).unwrap();
        }
        drop(partial);

        let resumed_ckpt = CheckpointWriter::open(&path, false).unwrap();
        let ran = std::sync::atomic::AtomicUsize::new(0);
        let resumed = run_grid_resumable(
            &points,
            &opts,
            key,
            |p| p.to_string(),
            |p, ctx| {
                ran.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                run(p, ctx)
            },
            &resumed_ckpt,
        )
        .unwrap();
        assert_eq!(resumed, reference, "resume must be byte-identical");
        assert_eq!(
            ran.load(std::sync::atomic::Ordering::Relaxed),
            7,
            "only the 7 un-checkpointed points re-ran"
        );
        assert_eq!(resumed_ckpt.len(), 12);
        fs::remove_file(&path).unwrap();
        fs::remove_file(&scratch_path).unwrap();
    }
}
