//! A bounded multi-producer/multi-consumer queue with explicit
//! backpressure and graceful drain.
//!
//! `hetmem-serve` routes every request through one of these per worker
//! shard. Two properties matter for an online service:
//!
//! 1. **Backpressure is an error, not a wait**: [`BoundedQueue::try_push`]
//!    never blocks. When the queue is full the caller gets the item back
//!    ([`PushError::Overloaded`]) and turns it into a structured
//!    `overloaded` response — the paper's runtime answers `GetAllocation`
//!    at `cudaMalloc` time, so stalling the caller is worse than
//!    refusing.
//! 2. **Close drains**: after [`BoundedQueue::close`], pushes fail with
//!    [`PushError::Closed`] but consumers keep receiving queued items
//!    until the queue is empty, then get `None`. Shutdown therefore
//!    finishes every accepted request and loses none.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused; the rejected item is handed back.
///
/// Handing the item back is load-bearing, not a convenience: the
/// serve front ends thread a one-shot reply sink through each queued
/// job, and a refused push must return that sink intact so the
/// refusal can be *answered* (as `overloaded`/`shutting-down`) rather
/// than silently dropped. The event-driven core's completion
/// bookkeeping relies on every sink being consumed exactly once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity — shed load.
    Overloaded(T),
    /// The queue was closed — the service is draining.
    Closed(T),
}

impl<T> PushError<T> {
    /// Recovers the rejected item.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Overloaded(item) | PushError::Closed(item) => item,
        }
    }
}

#[derive(Debug)]
struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue: non-blocking producers, blocking consumers,
/// close-and-drain shutdown.
///
/// # Examples
///
/// ```
/// use hetmem_harness::queue::{BoundedQueue, PushError};
///
/// let q = BoundedQueue::new(1);
/// q.try_push(1).unwrap();
/// assert!(matches!(q.try_push(2), Err(PushError::Overloaded(2))));
/// q.close();
/// assert!(matches!(q.try_push(3), Err(PushError::Closed(3))));
/// assert_eq!(q.pop(), Some(1)); // closed queues still drain
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    capacity: usize,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
        }
    }

    /// Enqueues `item` without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] after [`close`](Self::close),
    /// [`PushError::Overloaded`] at capacity; both return the item.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Overloaded(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty and
    /// open. Returns `None` once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: future pushes fail, consumers drain what is
    /// already queued and then receive `None`.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).closed
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn overload_returns_item() {
        let q = BoundedQueue::new(2);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        match q.try_push("c") {
            Err(PushError::Overloaded(item)) => assert_eq!(item, "c"),
            other => panic!("expected overload, got {other:?}"),
        }
        // Popping frees a slot.
        assert_eq!(q.pop(), Some("a"));
        q.try_push("c").unwrap();
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.try_push(3).unwrap_err().into_inner(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays terminated");
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Give consumers a moment to block, then close with one item.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7).unwrap();
        q.close();
        let mut results: Vec<_> = consumers.into_iter().map(|c| c.join().unwrap()).collect();
        results.sort();
        assert_eq!(results, vec![None, None, Some(7)]);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::new(16));
        let total = 400u64;
        let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let counted = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|scope| {
            let producers: Vec<_> = (0..4u64)
                .map(|t| {
                    let q = Arc::clone(&q);
                    scope.spawn(move || {
                        for i in 0..100u64 {
                            let mut item = t * 100 + i;
                            // Spin on overload: the test wants totals,
                            // the server sheds instead.
                            loop {
                                match q.try_push(item) {
                                    Ok(()) => break,
                                    Err(PushError::Overloaded(back)) => {
                                        item = back;
                                        std::thread::yield_now();
                                    }
                                    Err(PushError::Closed(_)) => panic!("closed early"),
                                }
                            }
                        }
                    })
                })
                .collect();
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let q = Arc::clone(&q);
                    let sum = Arc::clone(&sum);
                    let counted = Arc::clone(&counted);
                    scope.spawn(move || {
                        while let Some(item) = q.pop() {
                            sum.fetch_add(item, std::sync::atomic::Ordering::Relaxed);
                            counted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            q.close();
            for c in consumers {
                c.join().unwrap();
            }
        });
        assert_eq!(counted.load(std::sync::atomic::Ordering::Relaxed), total);
        assert_eq!(
            sum.load(std::sync::atomic::Ordering::Relaxed),
            (0..total).sum::<u64>()
        );
    }
}
