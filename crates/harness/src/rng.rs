//! Deterministic pseudo-random number generation for the harness.
//!
//! Two generators, both tiny, both fully reproducible:
//!
//! * [`SplitMix64`] — one multiply-xor-shift round per output. Used for
//!   seeding, per-grid-point seed derivation, and anywhere a cheap
//!   stream is enough (it is the same algorithm `hmtypes::SplitMix64`
//!   models the BW-AWARE allocation fast path with; the harness carries
//!   its own copy so it depends on nothing).
//! * [`Xoshiro256StarStar`] — the xoshiro256** generator, seeded through
//!   SplitMix64 as its authors recommend. This is the workhorse behind
//!   property-test case generation, where long non-overlapping streams
//!   matter more than raw speed.

/// A SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator seeded with `seed`.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }
}

/// The SplitMix64 output function: a strong 64-bit mixer usable on its
/// own for stateless seed derivation (e.g. per-grid-point seeds).
#[inline]
pub const fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The xoshiro256** generator (Blackman & Vigna): 256 bits of state,
/// period 2^256 - 1, passes BigCrush.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator from `seed`, expanding it through SplitMix64
    /// (the seeding procedure the xoshiro authors recommend).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is the one fixed point; SplitMix64 cannot
        // produce four consecutive zeros, but keep the guard explicit.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Returns a value uniformly distributed in `[0, bound)` via the
    /// widening-multiply technique (bias < 2^-64 per draw).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0.0, 1.0)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Forks an independent generator, advancing this one.
    pub fn fork(&mut self) -> Self {
        Xoshiro256StarStar::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_deterministic_and_seeds_diverge() {
        let mut a = Xoshiro256StarStar::new(1);
        let mut b = Xoshiro256StarStar::new(1);
        let mut c = Xoshiro256StarStar::new(2);
        for _ in 0..64 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            assert_ne!(x, c.next_u64());
        }
    }

    #[test]
    fn next_below_respects_bound_and_is_roughly_uniform() {
        let mut rng = Xoshiro256StarStar::new(42);
        let n = 100_000;
        let below_30 = (0..n)
            .map(|_| rng.next_below(100))
            .inspect(|&x| assert!(x < 100))
            .filter(|&x| x < 30)
            .count();
        let frac = below_30 as f64 / n as f64;
        assert!((frac - 0.30).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::new(5);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = Xoshiro256StarStar::new(11);
        let mut c = a.fork();
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn mix_is_stateless_and_nontrivial() {
        assert_eq!(mix(123), mix(123));
        assert_ne!(mix(123), mix(124));
        assert_ne!(mix(123), 123);
    }
}
