//! Property-based tests for the robustness kit: the backoff schedule
//! and checkpoint/resume, on the in-tree `hetmem_harness::props!` kit.
//!
//! The contracts under test: a [`Backoff`] schedule is monotone
//! non-decreasing, capped, and a pure function of its seed; and a
//! sweep resumed from *any* interruption point — modeled as an
//! arbitrary subset of points already checkpointed — produces output
//! byte-identical to an uninterrupted run, re-running only the
//! missing points.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use hetmem_harness::checkpoint::{run_grid_resumable, CheckpointWriter};
use hetmem_harness::sweep::{point_seed, SweepOptions};
use hetmem_harness::Backoff;

/// A per-case temp path; `tag` must make the path unique across
/// concurrently running property cases.
fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hetmem-props-{}-{tag}.ckpt", std::process::id()))
}

hetmem_harness::props! {
    cases = 64;

    /// Backoff delays never shrink as attempts grow, and never exceed
    /// the cap: additive jitter is bounded by the raw delay, and the
    /// raw delay doubles, so attempt n+1's floor is attempt n's
    /// ceiling.
    fn backoff_is_monotone_and_capped(
        base in 1u64..500,
        cap in 1u64..60_000,
        seed in 0u64..u64::MAX,
    ) {
        let b = Backoff::new(base, cap, seed);
        let schedule: Vec<u64> = (0..24).map(|a| b.delay_ms(a)).collect();
        for w in schedule.windows(2) {
            assert!(w[0] <= w[1], "schedule must be non-decreasing: {schedule:?}");
        }
        for (attempt, &d) in schedule.iter().enumerate() {
            assert!(d <= cap.max(1), "attempt {attempt} delay {d} exceeds cap {cap}");
            assert!(d >= 1, "delays are at least 1ms");
        }
    }

    /// The schedule is a pure function of (base, cap, seed): equal
    /// seeds agree on every attempt.
    fn backoff_is_deterministic_per_seed(
        base in 1u64..500,
        cap in 1u64..60_000,
        seed in 0u64..u64::MAX,
    ) {
        let a = Backoff::new(base, cap, seed);
        let b = Backoff::new(base, cap, seed);
        for attempt in 0..32 {
            assert_eq!(a.delay_ms(attempt), b.delay_ms(attempt));
        }
    }

    /// Resuming from an arbitrary checkpointed subset — any
    /// interruption the crash-safe writer could have survived — yields
    /// bytes identical to an uninterrupted run and re-runs exactly the
    /// missing points.
    fn resume_from_any_subset_is_byte_identical(
        total in 1usize..24,
        done_mask in 0u64..u64::MAX,
        sweep_seed in 0u64..u64::MAX,
        threads in 1usize..5,
        case_tag in 0u64..u64::MAX,
    ) {
        let points: Vec<usize> = (0..total).collect();
        let opts = SweepOptions { threads, seed: sweep_seed, ..SweepOptions::default() };
        let key = |p: &usize| format!("point-{p}");
        let label = |p: &usize| p.to_string();
        // Each point's output depends on its per-point seed, so a
        // resume that mis-derived seeds would show up as a byte diff.
        let run = |p: &usize, ctx: hetmem_harness::PointCtx| {
            format!("{{\"point\":{p},\"seed\":{}}}", ctx.seed)
        };

        let path = temp_path(&format!("{total}-{done_mask:x}-{case_tag:x}"));
        let _ = std::fs::remove_file(&path);

        // From-scratch reference (empty checkpoint).
        let fresh = CheckpointWriter::open(&path, false).unwrap();
        let expected = run_grid_resumable(&points, &opts, key, label, run, &fresh).unwrap();
        drop(fresh);
        let _ = std::fs::remove_file(&path);

        // Model the interrupted run: an arbitrary subset completed.
        let prior = CheckpointWriter::open(&path, false).unwrap();
        for &p in &points {
            if done_mask >> (p % 64) & 1 == 1 {
                prior.append(&key(&p), &format!("{{\"point\":{p},\"seed\":{}}}",
                    point_seed(sweep_seed, p))).unwrap();
            }
        }
        let already = prior.len();

        let ran = AtomicU64::new(0);
        let counted_run = |p: &usize, ctx: hetmem_harness::PointCtx| {
            ran.fetch_add(1, Ordering::Relaxed);
            run(p, ctx)
        };
        let resumed =
            run_grid_resumable(&points, &opts, key, label, counted_run, &prior).unwrap();
        assert_eq!(resumed, expected, "resume must be byte-identical");
        assert_eq!(
            ran.load(Ordering::Relaxed) as usize,
            total - already,
            "resume must re-run exactly the missing points"
        );
        let _ = std::fs::remove_file(&path);
    }
}
