//! The harness's core guarantees, tested end-to-end: byte-identical
//! JSONL at any thread count, and panic-with-identity instead of hangs.

use hetmem_harness::sweep::{run_grid, SweepError, SweepOptions};
use hetmem_harness::telemetry::{fnv1a, PoolTelemetry, RunRecord};

/// A stand-in for one simulated grid point: deterministic "work" whose
/// result depends only on the point and its seed.
fn simulate(workload: usize, config: usize, seed: u64) -> RunRecord {
    let mut rng = hetmem_harness::Xoshiro256StarStar::new(seed);
    let cycles = 10_000 + rng.next_below(5_000) + (workload * 137 + config * 11) as u64;
    RunRecord {
        sweep: "test".into(),
        workload: format!("w{workload}"),
        config: format!("c{config}"),
        config_hash: fnv1a(format!("w{workload}/c{config}").as_bytes()),
        cycles,
        completed: true,
        mem_ops: 1000,
        achieved_gbps: cycles as f64 / 997.0,
        l1_hit_rate: 0.5,
        l2_hit_rate: 0.25,
        mshr_stalls: cycles % 13,
        energy_joules: cycles as f64 * 1e-9,
        pools: vec![PoolTelemetry {
            name: "BO".into(),
            bytes_read: cycles * 3,
            bytes_written: cycles / 7,
            achieved_gbps: cycles as f64 / 1003.0,
            row_hit_rate: 0.9,
        }],
        migration: None,
        estimated: None,
        wall_ms: None,
    }
}

fn sweep_jsonl(threads: usize) -> String {
    let grid: Vec<(usize, usize)> = (0..6).flat_map(|w| (0..5).map(move |c| (w, c))).collect();
    let opts = SweepOptions {
        threads,
        ..SweepOptions::default()
    };
    let records = run_grid(
        &grid,
        &opts,
        |(w, c)| format!("w{w}/c{c}"),
        |&(w, c), ctx| simulate(w, c, ctx.seed),
    )
    .expect("sweep succeeds");
    records
        .iter()
        .map(|r| r.jsonl(false) + "\n")
        .collect::<String>()
}

#[test]
fn same_sweep_at_1_2_and_8_threads_is_byte_identical() {
    let base = sweep_jsonl(1);
    assert_eq!(base.lines().count(), 30);
    assert_eq!(base, sweep_jsonl(2), "2 threads diverged from 1");
    assert_eq!(base, sweep_jsonl(8), "8 threads diverged from 1");
    // And across repeated runs at the same thread count.
    assert_eq!(base, sweep_jsonl(1), "repeat run diverged");
}

#[test]
fn panicking_point_fails_the_sweep_with_its_identity() {
    let grid: Vec<usize> = (0..10).collect();
    let opts = SweepOptions {
        threads: 4,
        ..SweepOptions::default()
    };
    let err = run_grid(
        &grid,
        &opts,
        |p| format!("point-{p}"),
        |&p, _| {
            if p == 7 {
                panic!("injected failure in point {p}");
            }
            p * 2
        },
    )
    .expect_err("sweep must fail");
    let SweepError::Panic {
        index,
        label,
        message,
    } = &err
    else {
        panic!("expected a panic error, got {err}");
    };
    assert_eq!(*index, 7);
    assert_eq!(label, "point-7");
    assert!(
        message.contains("injected failure in point 7"),
        "panic message lost: {message}"
    );
    // Display carries the identity too (what a caller would print).
    let shown = err.to_string();
    assert!(shown.contains("point-7") && shown.contains('7'), "{shown}");
}

#[test]
fn multiple_panics_report_earliest_grid_point() {
    let grid: Vec<usize> = (0..16).collect();
    let opts = SweepOptions {
        threads: 8,
        ..SweepOptions::default()
    };
    let err = run_grid(
        &grid,
        &opts,
        |p| p.to_string(),
        |&p, _| {
            if p % 5 == 3 {
                panic!("boom {p}");
            }
            p
        },
    )
    .expect_err("sweep must fail");
    // Points 3, 8, 13 panic; with 8 threads several may run before the
    // abort lands, but the reported one must be the earliest *started*
    // failure in grid order — and point 3 always starts (threads >=
    // 4 pick up indices 0..8 immediately).
    let SweepError::Panic { index, message, .. } = &err else {
        panic!("expected a panic error, got {err}");
    };
    assert_eq!(index % 5, 3);
    assert!(message.contains("boom"));
}
