//! Property-based tests for the consistent-hash ring behind
//! `hetmem-fleet`, on the in-tree `hetmem_harness::props!` kit.
//!
//! The two contracts the router leans on:
//!
//! 1. **Balance** — across 1000 keys every backend's load stays within
//!    a constant factor of its fair share, so no cache shard runs hot.
//! 2. **Minimal remap** — excluding one backend moves only the keys it
//!    owned; every other key keeps its owner byte-for-byte, which is
//!    what keeps surviving backends' cache hits identical through a
//!    failover.

use std::collections::HashMap;

use hetmem_harness::{HashRing, DEFAULT_VNODES};

hetmem_harness::props! {
    cases = 48;

    /// With DEFAULT_VNODES virtual points per backend, 1000 keys land
    /// within [fair/2, 2*fair] per backend — the balance bound the
    /// fleet router assumes when it sizes backend pools.
    fn balance_within_bound_across_1000_keys(
        backends in 2usize..9,
        key_salt in 0u64..u64::MAX,
    ) {
        let ring = HashRing::new(backends, DEFAULT_VNODES);
        let mut counts = vec![0usize; backends];
        for i in 0..1000 {
            counts[ring.route(&format!("key-{key_salt}-{i}"))] += 1;
        }
        let fair = 1000.0 / backends as f64;
        for (backend, &n) in counts.iter().enumerate() {
            assert!(
                (n as f64) >= fair / 2.0 && (n as f64) <= fair * 2.0,
                "backend {backend} owns {n} of 1000 keys (fair share {fair:.0}, counts {counts:?})"
            );
        }
        // The ownership gauge agrees with observed load direction:
        // shares are positive and sum to 1.
        let shares = ring.shares();
        let total: f64 = shares.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(shares.iter().all(|&s| s > 0.0));
    }

    /// Removing one backend remaps only the keys it owned: every key
    /// owned by a survivor keeps exactly its owner, and orphaned keys
    /// land on the removed backend's successor (never back on it).
    fn membership_change_remaps_only_the_removed_backends_keys(
        backends in 2usize..9,
        removed_salt in 0u64..u64::MAX,
        key_salt in 0u64..u64::MAX,
    ) {
        let ring = HashRing::new(backends, DEFAULT_VNODES);
        let removed = (removed_salt % backends as u64) as usize;
        let mut moved = 0usize;
        for i in 0..1000 {
            let key = format!("key-{key_salt}-{i}");
            let before = ring.route(&key);
            let after = ring
                .route_filtered(&key, |b| b != removed)
                .expect("other backends remain");
            assert_ne!(after, removed);
            if before == removed {
                moved += 1;
                // The orphan lands on the first surviving successor.
                let successors = ring.successors(&key);
                let next = successors.iter().copied().find(|&b| b != removed).unwrap();
                assert_eq!(after, next);
            } else {
                assert_eq!(after, before, "key '{key}' moved without cause");
            }
        }
        // Sanity: the remapped fraction tracks the removed backend's
        // share, so "minimal" is not vacuous.
        assert!(moved <= 1000 * 2 / backends, "moved {moved} of 1000");
    }

    /// Routing is a pure function: two identically-built rings agree
    /// on every key, so router restarts keep cache shards in place.
    fn routing_is_deterministic_across_ring_rebuilds(
        backends in 1usize..9,
        vnodes in 1usize..129,
        key_salt in 0u64..u64::MAX,
    ) {
        let a = HashRing::new(backends, vnodes);
        let b = HashRing::new(backends, vnodes);
        let mut owners: HashMap<String, usize> = HashMap::new();
        for i in 0..200 {
            let key = format!("key-{key_salt}-{i}");
            let owner = a.route(&key);
            assert_eq!(owner, b.route(&key));
            assert_eq!(a.successors(&key), b.successors(&key));
            owners.insert(key, owner);
        }
        assert!(owners.values().all(|&o| o < backends.max(1)));
    }
}
