//! Property-based tests for the `hetmem-serve` wire protocol, on the
//! in-tree `hetmem_harness::props!` kit.
//!
//! The properties the server relies on: every request/response
//! round-trips `encode -> decode` losslessly, re-encoding a decoded
//! line reproduces the original bytes (the result-cache byte-identity
//! guarantee), and the decoders never panic on arbitrary or truncated
//! input — they fail with a structured [`ProtocolError`].

use hetmem_harness::json::{quote, validate_jsonl, JsonValue};
use hetmem_harness::{batch_request, vec_of, Request, Response, PROTO_V2};

/// Characters the generators draw strings from: identifiers, JSON
/// syntax, every escape class the writer handles (quotes, backslashes,
/// control characters), and multi-byte UTF-8.
const PALETTE: &[char] = &[
    'a', 'z', 'A', 'Z', '0', '9', ' ', '_', '-', '.', '/', ':', ',', '"', '\\', '\n', '\r', '\t',
    '\u{8}', '\u{c}', '\u{1}', '\u{1f}', '{', '}', '[', ']', 'é', 'Ω', '—', '🦀',
];

fn text(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|&i| PALETTE[i % PALETTE.len()])
        .collect()
}

/// Index strings into [`PALETTE`]; `min_len >= 1` gives non-empty text.
fn arb_text(min_len: usize) -> hetmem_harness::prop::VecOf<std::ops::Range<usize>> {
    vec_of(0usize..PALETTE.len(), min_len..24)
}

type FieldDraw = (usize, Vec<usize>, u64, f64);

/// A params/result object with unique keys and mixed value types.
fn object_from(fields: Vec<FieldDraw>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .enumerate()
            .map(|(i, (kind, txt, n, x))| {
                let value = match kind % 4 {
                    0 => JsonValue::Str(text(&txt)),
                    1 => JsonValue::Num(n as f64),
                    2 => JsonValue::Num(x),
                    _ => JsonValue::Bool(n % 2 == 0),
                };
                // Index-prefixed keys: unique by construction, so
                // JsonValue equality is well-defined.
                (format!("k{i}_{}", text(&txt).len()), value)
            })
            .collect(),
    )
}

fn arb_fields() -> hetmem_harness::prop::VecOf<(
    std::ops::Range<usize>,
    hetmem_harness::prop::VecOf<std::ops::Range<usize>>,
    std::ops::Range<u64>,
    std::ops::Range<f64>,
)> {
    // u64 values stay below 2^50: `as_u64` only accepts integers that
    // are exactly representable in an f64 (<= 2^53).
    vec_of(
        (0usize..4, arb_text(0), 0u64..(1 << 50), 0.0f64..1.0e9),
        0..6,
    )
}

hetmem_harness::props! {
    cases = 64;

    /// Any request round-trips encode -> decode -> re-encode with
    /// identical struct and identical bytes.
    fn request_roundtrips(id in 0u64..(1 << 50), op in arb_text(1), fields in arb_fields()) {
        let req = Request::with_params(id, &text(&op), object_from(fields));
        let line = req.encode();
        let decoded = Request::decode(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
        assert_eq!(decoded, req);
        assert_eq!(decoded.encode(), line, "re-encode must be byte-stable");
        assert_eq!(validate_jsonl(&line), Ok(1));
    }

    /// Success responses round-trip and re-encode byte-identically —
    /// the property the result cache depends on.
    fn response_ok_roundtrips(id in 0u64..(1 << 50), fields in arb_fields()) {
        let resp = Response::ok(id, object_from(fields).render());
        let line = resp.encode();
        let decoded = Response::decode(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
        assert_eq!(decoded, resp);
        assert_eq!(decoded.encode(), line, "re-encode must be byte-stable");
        assert!(decoded.is_ok());
        assert_eq!(decoded.id(), id);
    }

    /// Error responses carry their code and message through unchanged.
    fn response_err_roundtrips(id in 0u64..(1 << 50), code in arb_text(1), msg in arb_text(0)) {
        let resp = Response::err(id, &text(&code), &text(&msg));
        let line = resp.encode();
        let decoded = Response::decode(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
        assert_eq!(decoded, resp);
        assert_eq!(decoded.encode(), line);
        assert!(!decoded.is_ok());
    }

    /// Arbitrary garbage never panics the decoders; it yields a
    /// structured error (or, rarely, a valid envelope) — never a crash.
    fn decode_survives_garbage(soup in arb_text(0)) {
        let line = text(&soup);
        if let Err(e) = Request::decode(&line) {
            assert!(matches!(e.code(), "bad-json" | "bad-request"));
        }
        if let Err(e) = Response::decode(&line) {
            assert!(matches!(e.code(), "bad-json" | "bad-request"));
        }
    }

    /// Truncating a valid request at any char boundary never panics the
    /// decoder; only the full line decodes back to the original.
    fn decode_survives_truncation(
        id in 0u64..(1 << 50),
        op in arb_text(1),
        fields in arb_fields(),
        at in 0usize..4096,
    ) {
        let req = Request::with_params(id, &text(&op), object_from(fields));
        let line = req.encode();
        let mut cut = at.min(line.len());
        while !line.is_char_boundary(cut) {
            cut -= 1;
        }
        match Request::decode(&line[..cut]) {
            Ok(got) => assert_eq!(
                cut,
                line.len(),
                "a strict parser cannot accept a proper prefix, got {got:?}"
            ),
            Err(e) => assert!(matches!(e.code(), "bad-json" | "bad-request")),
        }
    }

    /// The protocol version field stays off the wire at its default:
    /// v1 requests encode without a `proto` key (byte compatibility
    /// with pre-v2 peers), every other version is carried explicitly,
    /// and both shapes round-trip byte-stably.
    fn proto_field_roundtrips(id in 0u64..(1 << 50), op in arb_text(1), proto in 0u64..16) {
        let req = Request::new(id, &text(&op)).proto(proto);
        let line = req.encode();
        assert_eq!(line.contains("\"proto\""), proto != 1, "{line}");
        let decoded = Request::decode(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
        assert_eq!(decoded, req);
        assert_eq!(decoded.encode(), line, "re-encode must be byte-stable");
    }

    /// Batch envelopes are plain v2 requests on the wire: they
    /// round-trip like any other line, and the sub-request array
    /// survives re-encoding with its length intact.
    fn batch_envelopes_roundtrip(id in 0u64..(1 << 50), n in 1usize..6, fields in arb_fields()) {
        let subs: Vec<Request> = (0..n as u64)
            .map(|i| Request::with_params(i + 1, "simulate", object_from(fields.clone())))
            .collect();
        let env = batch_request(id, &subs);
        let line = env.encode();
        let decoded = Request::decode(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
        assert_eq!(decoded, env);
        assert_eq!(decoded.encode(), line, "re-encode must be byte-stable");
        assert_eq!(decoded.proto, PROTO_V2);
        let arr = decoded.params.get("requests").and_then(JsonValue::as_array)
            .unwrap_or_else(|| panic!("no requests array: {line}"));
        assert_eq!(arr.len(), n);
    }

    /// `json::quote` and the parser agree on every string the palette
    /// can produce (escapes, control chars, multi-byte UTF-8).
    fn quoted_strings_roundtrip(s in arb_text(0)) {
        let s = text(&s);
        let parsed = JsonValue::parse(&quote(&s)).unwrap();
        assert_eq!(parsed, JsonValue::Str(s));
    }
}
