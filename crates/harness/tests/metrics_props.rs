//! Property tests for the metrics histogram: merge algebra, count
//! conservation, and quantile bucket-bound guarantees.

use hetmem_harness::metrics::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot};
use hetmem_harness::vec_of;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

hetmem_harness::props! {
    cases = 64;

    /// Counts and sums are conserved exactly: a snapshot of n recorded
    /// values reports count n and the exact value sum.
    fn counts_are_conserved(values in vec_of(0u64..=1 << 40, 0..200)) {
        let s = snapshot_of(&values);
        assert_eq!(s.count(), values.len() as u64);
        let expected: u64 = values.iter().fold(0u64, |a, &v| a.saturating_add(v));
        assert_eq!(s.sum(), expected);
    }

    /// Merge is order-independent (commutative): a⊕b == b⊕a.
    fn merge_commutes(
        a in vec_of(0u64..=1 << 32, 0..100),
        b in vec_of(0u64..=1 << 32, 0..100),
    ) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        assert_eq!(ab, ba);
    }

    /// Merge is associative: (a⊕b)⊕c == a⊕(b⊕c), and both equal a
    /// single histogram fed all values — so per-shard snapshots can be
    /// combined in any grouping.
    fn merge_is_associative(
        a in vec_of(0u64..=1 << 32, 0..80),
        b in vec_of(0u64..=1 << 32, 0..80),
        c in vec_of(0u64..=1 << 32, 0..80),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut right_inner = sb.clone();
        right_inner.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_inner);
        assert_eq!(left, right);

        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        assert_eq!(left, snapshot_of(&all), "merge == single histogram");
        assert_eq!(left.count(), (a.len() + b.len() + c.len()) as u64);
    }

    /// Every quantile estimate falls inside the bounds of the bucket
    /// holding the true rank-⌈q·n⌉ order statistic.
    fn quantiles_stay_in_bucket_bounds(
        values in vec_of(0u64..=1 << 36, 1..150),
        q in 0.0f64..1.0,
    ) {
        let s = snapshot_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [q, 0.0, 0.5, 0.95, 0.99, 1.0] {
            let n = sorted.len() as u64;
            let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
            let truth = sorted[(rank - 1) as usize];
            let est = s.quantile(q);
            let (lo, hi) = bucket_bounds(bucket_index(truth));
            assert!(
                est >= lo && est <= hi,
                "q={q}: estimate {est} outside [{lo},{hi}] of true rank value {truth}"
            );
        }
    }

    /// bucket_index/bucket_bounds are mutually consistent for arbitrary
    /// values: every value lies inside its own bucket's bounds.
    fn value_lies_in_own_bucket(v in hetmem_harness::any_u64()) {
        let (lo, hi) = bucket_bounds(bucket_index(v));
        assert!(lo <= v && v <= hi, "{v} outside [{lo},{hi}]");
    }
}
