//! Attributing page accesses to program data structures (paper §5.1).
//!
//! The paper instruments `cudaMalloc` to associate source-level data
//! structures with virtual address ranges, then counts every load/store
//! against its range. Here the ranges come from the allocation registry
//! (named VMAs) and the counts from a profiling simulation run — the
//! output contract is the same: per-structure access counts, hotness
//! densities, and the Fig. 7 CDF-vs-address scatter data.

use hmtypes::{PageNum, VirtAddr, PAGE_SIZE};

use crate::histogram::PageHistogram;

/// A named virtual address range (one `cudaMalloc` result).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocRange {
    /// Data-structure name (source-level).
    pub name: String,
    /// First byte.
    pub start: VirtAddr,
    /// One past the last byte (page-rounded).
    pub end: VirtAddr,
}

impl AllocRange {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn new(name: impl Into<String>, start: VirtAddr, end: VirtAddr) -> Self {
        assert!(end.raw() > start.raw(), "empty allocation range");
        AllocRange {
            name: name.into(),
            start,
            end,
        }
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.end.raw() - self.start.raw()
    }

    /// Whether `page` falls in this range.
    pub fn contains_page(&self, page: PageNum) -> bool {
        let addr = page.base();
        addr >= self.start && addr.raw() < self.end.raw()
    }

    /// The pages the range covers.
    pub fn pages(&self) -> impl Iterator<Item = PageNum> {
        (self.start.page().index()..self.end.raw().div_ceil(PAGE_SIZE as u64)).map(PageNum::new)
    }
}

/// Profiling result for one data structure.
#[derive(Debug, Clone, PartialEq)]
pub struct StructureProfile {
    /// The structure's allocation range.
    pub range: AllocRange,
    /// DRAM accesses attributed to the structure.
    pub accesses: u64,
    /// Share of total attributed traffic, in `[0, 1]`.
    pub traffic_share: f64,
    /// Hotness density: accesses per byte — the paper's annotation
    /// metric (Fig. 9's `hotness[i]`, up to scale).
    pub hotness: f64,
}

/// The full profile of one run: per-structure attribution (paper §5.1)
/// built from named allocation ranges and a page histogram.
///
/// # Examples
///
/// ```
/// use hmtypes::{PageNum, VirtAddr};
/// use profiler::{AllocRange, PageHistogram, RunProfile};
///
/// let ranges = vec![AllocRange::new("a", VirtAddr::new(0), VirtAddr::new(8192))];
/// let hist = PageHistogram::from_counts([(PageNum::new(0), 10)]);
/// let profile = RunProfile::attribute(ranges, &hist);
/// assert_eq!(profile.structures()[0].accesses, 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunProfile {
    structures: Vec<StructureProfile>,
    unattributed: u64,
}

impl RunProfile {
    /// Attributes `histogram`'s page counts to `ranges`.
    ///
    /// Pages outside every range are tallied as
    /// [`RunProfile::unattributed`] (library-internal allocations, in the
    /// paper's discussion of profiling shortcomings).
    pub fn attribute(ranges: Vec<AllocRange>, histogram: &PageHistogram) -> Self {
        let mut accesses = vec![0u64; ranges.len()];
        let mut unattributed = 0;
        for (page, count) in histogram.iter() {
            match ranges.iter().position(|r| r.contains_page(page)) {
                Some(i) => accesses[i] += count,
                None => unattributed += count,
            }
        }
        let total: u64 = accesses.iter().sum();
        let structures = ranges
            .into_iter()
            .zip(accesses)
            .map(|(range, acc)| {
                let bytes = range.bytes();
                StructureProfile {
                    range,
                    accesses: acc,
                    traffic_share: if total == 0 {
                        0.0
                    } else {
                        acc as f64 / total as f64
                    },
                    hotness: acc as f64 / bytes as f64,
                }
            })
            .collect();
        RunProfile {
            structures,
            unattributed,
        }
    }

    /// Per-structure profiles, in allocation order.
    pub fn structures(&self) -> &[StructureProfile] {
        &self.structures
    }

    /// Accesses that matched no registered range.
    pub fn unattributed(&self) -> u64 {
        self.unattributed
    }

    /// `(sizes, hotness)` arrays in allocation order — exactly the two
    /// annotation arrays of the paper's Fig. 9 pseudo-code.
    pub fn annotation_arrays(&self) -> (Vec<u64>, Vec<f64>) {
        (
            self.structures.iter().map(|s| s.range.bytes()).collect(),
            self.structures.iter().map(|s| s.hotness).collect(),
        )
    }

    /// Fig. 7 scatter data: for each touched page sorted hot→cold, the
    /// running CDF value, the page's virtual address, and the index of
    /// the structure it belongs to (`None` if unattributed).
    pub fn scatter(&self, histogram: &PageHistogram) -> Vec<ScatterPoint> {
        let sorted = histogram.hot_to_cold();
        let total = histogram.total_accesses();
        let mut cum = 0u64;
        sorted
            .into_iter()
            .map(|(page, count)| {
                cum += count;
                ScatterPoint {
                    page,
                    vaddr: page.base(),
                    cdf: if total == 0 {
                        0.0
                    } else {
                        cum as f64 / total as f64
                    },
                    structure: self
                        .structures
                        .iter()
                        .position(|s| s.range.contains_page(page)),
                }
            })
            .collect()
    }
}

/// One point of the Fig. 7 CDF-vs-virtual-address scatter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScatterPoint {
    /// The page (position in the hot→cold order is the vector index).
    pub page: PageNum,
    /// The page's virtual address.
    pub vaddr: VirtAddr,
    /// Cumulative traffic fraction up to and including this page.
    pub cdf: f64,
    /// Index of the owning structure, or `None` if unattributed.
    pub structure: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranges() -> Vec<AllocRange> {
        vec![
            AllocRange::new("hot", VirtAddr::new(0), VirtAddr::new(2 * 4096)),
            AllocRange::new("cold", VirtAddr::new(4 * 4096), VirtAddr::new(8 * 4096)),
        ]
    }

    fn hist() -> PageHistogram {
        PageHistogram::from_counts([
            (PageNum::new(0), 70),
            (PageNum::new(1), 20),
            (PageNum::new(5), 10),
            (PageNum::new(100), 5), // outside all ranges
        ])
    }

    #[test]
    fn attribution_sums_per_structure() {
        let p = RunProfile::attribute(ranges(), &hist());
        assert_eq!(p.structures()[0].accesses, 90);
        assert_eq!(p.structures()[1].accesses, 10);
        assert_eq!(p.unattributed(), 5);
        assert!((p.structures()[0].traffic_share - 0.9).abs() < 1e-12);
    }

    #[test]
    fn hotness_is_density_not_mass() {
        // "hot": 90 accesses over 8 kB; "cold": 10 over 16 kB.
        let p = RunProfile::attribute(ranges(), &hist());
        let h0 = p.structures()[0].hotness;
        let h1 = p.structures()[1].hotness;
        assert!((h0 / h1 - (90.0 / 8192.0) / (10.0 / 16384.0)).abs() < 1e-9);
    }

    #[test]
    fn annotation_arrays_align() {
        let p = RunProfile::attribute(ranges(), &hist());
        let (sizes, hotness) = p.annotation_arrays();
        assert_eq!(sizes, vec![8192, 16384]);
        assert_eq!(hotness.len(), 2);
        assert!(hotness[0] > hotness[1]);
    }

    #[test]
    fn scatter_orders_hot_to_cold_and_labels_structures() {
        let h = hist();
        let p = RunProfile::attribute(ranges(), &h);
        let sc = p.scatter(&h);
        assert_eq!(sc.len(), 4);
        assert_eq!(sc[0].page, PageNum::new(0));
        assert_eq!(sc[0].structure, Some(0));
        assert_eq!(sc[2].structure, Some(1));
        assert_eq!(sc[3].structure, None);
        assert!(sc.windows(2).all(|w| w[0].cdf <= w[1].cdf));
        assert!((sc[3].cdf - 1.0).abs() < 1e-12);
    }

    #[test]
    fn range_page_iteration() {
        let r = AllocRange::new("x", VirtAddr::new(4096), VirtAddr::new(3 * 4096));
        let pages: Vec<_> = r.pages().collect();
        assert_eq!(pages, vec![PageNum::new(1), PageNum::new(2)]);
        assert!(r.contains_page(PageNum::new(1)));
        assert!(!r.contains_page(PageNum::new(3)));
    }

    #[test]
    #[should_panic(expected = "empty allocation range")]
    fn empty_range_rejected() {
        let _ = AllocRange::new("x", VirtAddr::new(4096), VirtAddr::new(4096));
    }
}
