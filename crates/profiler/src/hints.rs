//! `GetAllocation`: turning size/hotness annotations into placement
//! hints (paper §5.2–5.3, Fig. 9).
//!
//! The paper's runtime computes, before any heap allocation, a placement
//! hint for each data structure from (a) the annotated sizes, (b) the
//! annotated relative hotness, and (c) the machine's bandwidth topology
//! discovered from the SBIT:
//!
//! * If the footprint is small enough that BW-AWARE placement fits the
//!   BO pool anyway, hint everything `Bw` — hotness is irrelevant
//!   without a capacity constraint (§5).
//! * Otherwise fill the BO pool with the hottest structures (by hotness
//!   *density*) and hint the rest `Co`.

use hmtypes::MemKind;

/// A machine-abstract placement hint — the extra argument the paper adds
/// to `cudaMalloc` (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemHint {
    /// Best-effort placement in the bandwidth-optimized pool.
    Preferred(MemKind),
    /// Fall back to application-agnostic BW-AWARE placement.
    BwAware,
}

impl MemHint {
    /// Shorthand for `Preferred(BandwidthOptimized)`.
    pub const BO: MemHint = MemHint::Preferred(MemKind::BandwidthOptimized);
    /// Shorthand for `Preferred(CapacityOptimized)`.
    pub const CO: MemHint = MemHint::Preferred(MemKind::CapacityOptimized);

    /// The hint's stable wire form (`"BO"`, `"CO"`, `"BW"`) — what
    /// `hetmem-serve` puts in `place` responses. The inverse of
    /// [`MemHint::from_str`](core::str::FromStr).
    pub fn as_str(&self) -> &'static str {
        match self {
            MemHint::Preferred(MemKind::BandwidthOptimized) => "BO",
            MemHint::Preferred(MemKind::CapacityOptimized) => "CO",
            MemHint::BwAware => "BW",
        }
    }
}

impl core::str::FromStr for MemHint {
    type Err = String;

    /// Parses the wire form, case-insensitively (`bo`, `CO`,
    /// `bw`/`bw-aware` all work).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_uppercase().as_str() {
            "BO" => Ok(MemHint::BO),
            "CO" => Ok(MemHint::CO),
            "BW" | "BW-AWARE" | "BWAWARE" => Ok(MemHint::BwAware),
            other => Err(format!(
                "unknown memory hint '{other}' (want BO, CO, or BW)"
            )),
        }
    }
}

impl core::fmt::Display for MemHint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MemHint::Preferred(k) => write!(f, "{k}"),
            MemHint::BwAware => write!(f, "BW"),
        }
    }
}

/// Computes per-allocation placement hints (the paper's `GetAllocation`,
/// Fig. 9b).
///
/// `sizes[i]` and `hotness[i]` describe allocation `i` in program
/// allocation order; `bo_capacity` is the bandwidth-optimized pool's
/// byte capacity and `bo_traffic_fraction` the BW-AWARE BO share
/// (`bB/(bB+bC)`, from the SBIT).
///
/// # Panics
///
/// Panics if the arrays' lengths differ or `bo_traffic_fraction` is
/// outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use profiler::{get_allocation, MemHint};
///
/// // Two structures, the small one 10x hotter per byte; BO fits only one MB.
/// let hints = get_allocation(&[1 << 20, 1 << 20], &[10.0, 1.0], 1 << 20, 5.0 / 7.0);
/// assert_eq!(hints, vec![MemHint::BO, MemHint::CO]);
/// ```
pub fn get_allocation(
    sizes: &[u64],
    hotness: &[f64],
    bo_capacity: u64,
    bo_traffic_fraction: f64,
) -> Vec<MemHint> {
    assert_eq!(
        sizes.len(),
        hotness.len(),
        "one hotness entry per allocation"
    );
    assert!(
        (0.0..=1.0).contains(&bo_traffic_fraction),
        "bo_traffic_fraction out of range"
    );
    let footprint: u64 = sizes.iter().sum();

    // Unconstrained case: BW-AWARE would place footprint * fB bytes in
    // BO; if that fits, hotness does not matter (paper §5: "BW-AWARE
    // page placement should be used irrespective of the hotness").
    let bw_aware_bo_bytes = (footprint as f64 * bo_traffic_fraction).ceil() as u64;
    if bw_aware_bo_bytes <= bo_capacity {
        return vec![MemHint::BwAware; sizes.len()];
    }

    // Capacity-constrained: hottest-density structures first into BO
    // until it is full. The structure that straddles the capacity
    // boundary is still hinted BO: hints are best-effort (the runtime
    // fills BO and falls back to CO for the overflow), and leaving the
    // residual BO capacity idle would waste its bandwidth.
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by(|&a, &b| {
        hotness[b]
            .partial_cmp(&hotness[a])
            .unwrap_or(core::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut hints = vec![MemHint::CO; sizes.len()];
    let mut used = 0u64;
    for &i in &order {
        if used >= bo_capacity {
            break;
        }
        hints[i] = MemHint::BO;
        used += sizes[i];
    }
    hints
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_footprint_uses_bw_aware() {
        // 10 MB footprint, fB = 5/7 -> ~7.2 MB in BO; 8 MB BO fits.
        let hints = get_allocation(&[5 << 20, 5 << 20], &[1.0, 2.0], 8 << 20, 5.0 / 7.0);
        assert_eq!(hints, vec![MemHint::BwAware; 2]);
    }

    #[test]
    fn constrained_prefers_hot_density() {
        let sizes = [4 << 20, 2 << 20, 2 << 20];
        let hotness = [0.5, 3.0, 1.0];
        // BO holds 4 MB: the two hottest (2 MB each) fit; the big cold
        // one does not.
        let hints = get_allocation(&sizes, &hotness, 4 << 20, 5.0 / 7.0);
        assert_eq!(hints, vec![MemHint::CO, MemHint::BO, MemHint::BO]);
    }

    #[test]
    fn boundary_crossing_structure_still_hinted_bo() {
        let sizes = [3 << 20, 2 << 20, 1 << 20];
        let hotness = [5.0, 4.0, 3.0];
        // BO = 3 MB: hottest (3 MB) fills it exactly; others CO.
        let hints = get_allocation(&sizes, &hotness, 3 << 20, 0.9);
        assert_eq!(hints, vec![MemHint::BO, MemHint::CO, MemHint::CO]);

        // BO = 2.5 MB: the hottest structure straddles the boundary and
        // keeps its BO hint (the runtime spills its overflow to CO);
        // once BO is over-committed nothing else is steered there.
        let hints = get_allocation(&sizes, &hotness, (5 << 20) / 2, 0.9);
        assert_eq!(hints, vec![MemHint::BO, MemHint::CO, MemHint::CO]);
    }

    #[test]
    fn hotness_ties_break_by_allocation_order() {
        let hints = get_allocation(&[1 << 20, 1 << 20], &[1.0, 1.0], 1 << 20, 0.99);
        assert_eq!(hints, vec![MemHint::BO, MemHint::CO]);
    }

    #[test]
    fn zero_bo_capacity_hints_everything_co() {
        let hints = get_allocation(&[1 << 20], &[1.0], 0, 0.5);
        assert_eq!(hints, vec![MemHint::CO]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(MemHint::BO.to_string(), "BO");
        assert_eq!(MemHint::CO.to_string(), "CO");
        assert_eq!(MemHint::BwAware.to_string(), "BW");
    }

    #[test]
    fn wire_forms_round_trip() {
        for hint in [MemHint::BO, MemHint::CO, MemHint::BwAware] {
            assert_eq!(hint.as_str().parse::<MemHint>(), Ok(hint));
        }
        assert_eq!(" bw-aware ".parse::<MemHint>(), Ok(MemHint::BwAware));
        assert!("gpu".parse::<MemHint>().is_err());
    }

    #[test]
    #[should_panic(expected = "one hotness entry per allocation")]
    fn mismatched_arrays_rejected() {
        let _ = get_allocation(&[1], &[1.0, 2.0], 100, 0.5);
    }
}
