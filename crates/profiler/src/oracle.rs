//! Oracle page ranking (paper §4.2).
//!
//! With perfect knowledge of page access frequency (from a first
//! profiling pass), the oracle chooses which pages live in the
//! bandwidth-optimized pool. Two regimes:
//!
//! * **Capacity-constrained** (BO cannot hold the target traffic share):
//!   fill BO with the hottest pages until capacity runs out — the
//!   paper's greedy rule, which is what nearly doubles BW-AWARE's
//!   performance for skewed workloads at 10% capacity.
//! * **Unconstrained**: split *every* hotness class at the bandwidth
//!   ratio (stratified sampling). Greedy would reach the same global
//!   ratio using only the hottest pages, but hotness classes correlate
//!   with execution phases in real traces, and an all-or-nothing split
//!   per class serves some phases from one pool only — wasting the other
//!   pool's bandwidth. Stratification keeps the traffic ratio in every
//!   phase, which is the paper's observation that the oracle matches
//!   (never beats) BW-AWARE when capacity is ample.
//!
//! Pages are ranked in factor-of-4 hotness buckets with hash tie-breaks:
//! finer count differences are profiling noise (e.g. a truncated
//! streaming pass leaves early pages with slightly higher counts), and
//! ranking on them would correlate placement with time.

use std::collections::HashSet;

use hmtypes::{PageNum, SplitMix64};

use crate::histogram::PageHistogram;

/// The oracle's chosen BO-resident page set.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OraclePlacement {
    bo_pages: HashSet<PageNum>,
    bo_traffic_fraction: f64,
}

/// Factor-of-4 hotness class of an access count.
fn bucket(count: u64) -> u32 {
    (u64::BITS - count.leading_zeros()) / 2
}

impl OraclePlacement {
    /// Computes the oracle placement from a profile.
    ///
    /// * `histogram` — per-page access counts from the profiling pass.
    /// * `bo_capacity_pages` — how many pages fit in the BO pool.
    /// * `target_bo_traffic` — the bandwidth-service fraction the BO pool
    ///   should carry (`bB/(bB+bC)`, 5/7 for the paper's baseline).
    ///
    /// # Panics
    ///
    /// Panics if `target_bo_traffic` is outside `[0, 1]`.
    pub fn compute(
        histogram: &PageHistogram,
        bo_capacity_pages: u64,
        target_bo_traffic: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&target_bo_traffic),
            "target fraction out of range"
        );
        let total = histogram.total_accesses();
        if total == 0 {
            return OraclePlacement::default();
        }

        // Rank: hotness bucket (hot first), then page-number hash.
        let mut ranked = histogram.hot_to_cold();
        ranked.sort_by_key(|&(page, count)| {
            (
                core::cmp::Reverse(bucket(count)),
                SplitMix64::new(page.index()).next_u64(),
            )
        });

        // How many pages the stratified (unconstrained) split needs.
        let stratified_pages = (ranked.len() as f64 * target_bo_traffic).ceil() as u64;
        let constrained = bo_capacity_pages < stratified_pages;

        let mut bo_pages = HashSet::new();
        let mut cum = 0u64;
        if constrained {
            // Greedy: hottest pages until the ratio target or capacity.
            for (page, count) in ranked {
                if bo_pages.len() as u64 >= bo_capacity_pages {
                    break;
                }
                if cum as f64 / total as f64 >= target_bo_traffic {
                    break;
                }
                bo_pages.insert(page);
                cum += count;
            }
        } else {
            // Stratified: within each bucket take pages (in hash order)
            // until the bucket's traffic share reaches the target.
            let mut i = 0;
            while i < ranked.len() {
                let b = bucket(ranked[i].1);
                let mut j = i;
                let mut bucket_traffic = 0u64;
                while j < ranked.len() && bucket(ranked[j].1) == b {
                    bucket_traffic += ranked[j].1;
                    j += 1;
                }
                let bucket_target = bucket_traffic as f64 * target_bo_traffic;
                let mut taken = 0u64;
                for &(page, count) in &ranked[i..j] {
                    if (taken as f64) >= bucket_target || bo_pages.len() as u64 >= bo_capacity_pages
                    {
                        break;
                    }
                    bo_pages.insert(page);
                    taken += count;
                }
                cum += taken;
                i = j;
            }
        }
        OraclePlacement {
            bo_pages,
            bo_traffic_fraction: cum as f64 / total as f64,
        }
    }

    /// Whether the oracle wants `page` in the BO pool.
    pub fn is_bo(&self, page: PageNum) -> bool {
        self.bo_pages.contains(&page)
    }

    /// Number of pages steered to BO.
    pub fn bo_page_count(&self) -> usize {
        self.bo_pages.len()
    }

    /// The traffic fraction (per the profile) the BO set carries.
    pub fn bo_traffic_fraction(&self) -> f64 {
        self.bo_traffic_fraction
    }

    /// Iterates over the BO page set in ascending page order, so every
    /// rendering of an oracle placement is deterministic.
    pub fn bo_pages(&self) -> impl Iterator<Item = PageNum> + '_ {
        let mut pages: Vec<_> = self.bo_pages.iter().copied().collect();
        pages.sort_unstable();
        pages.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One page at 55%, two at 15%, seven at ~2% each.
    fn hist() -> PageHistogram {
        let mut counts = vec![
            (PageNum::new(0), 550),
            (PageNum::new(1), 150),
            (PageNum::new(2), 150),
        ];
        for i in 3..10 {
            counts.push((PageNum::new(i), 150 / 7));
        }
        PageHistogram::from_counts(counts)
    }

    #[test]
    fn constrained_takes_hottest_first() {
        // Capacity 2 < stratified need (7 pages): greedy regime.
        let o = OraclePlacement::compute(&hist(), 2, 0.99);
        assert_eq!(o.bo_page_count(), 2);
        assert!(o.is_bo(PageNum::new(0)), "hottest page must be BO");
        // Second pick is one of the two 150-count pages.
        assert!(o.is_bo(PageNum::new(1)) || o.is_bo(PageNum::new(2)));
        assert!(o.bo_traffic_fraction() > 0.6);
    }

    #[test]
    fn constrained_stops_at_ratio_target() {
        // Capacity 3 pages (constrained regime) but target 55%: page 0
        // alone reaches the ratio, so capacity is left unused.
        let o = OraclePlacement::compute(&hist(), 3, 0.55);
        assert_eq!(o.bo_page_count(), 1);
        assert!(o.is_bo(PageNum::new(0)));
    }

    #[test]
    fn stratified_regime_respects_capacity() {
        // Capacity exactly at the stratified estimate: per-bucket ceils
        // must not overshoot it.
        let o = OraclePlacement::compute(&hist(), 6, 0.55);
        assert!(o.bo_page_count() <= 6, "got {}", o.bo_page_count());
    }

    #[test]
    fn unconstrained_is_stratified_across_buckets() {
        // Plenty of capacity: every hotness bucket must contribute to
        // both pools (no all-or-nothing classes).
        let uniform = PageHistogram::from_counts((0..100).map(|i| (PageNum::new(i), 40)));
        let o = OraclePlacement::compute(&uniform, 1000, 0.7);
        assert!(
            (65..=75).contains(&o.bo_page_count()),
            "got {} BO pages of 100",
            o.bo_page_count()
        );
        assert!((o.bo_traffic_fraction() - 0.7).abs() < 0.05);
    }

    #[test]
    fn unconstrained_splits_each_class_not_just_globally() {
        // Two classes: 50 hot pages (100 each), 50 cold pages (10 each).
        let mut counts = Vec::new();
        for i in 0..50 {
            counts.push((PageNum::new(i), 100));
        }
        for i in 50..100 {
            counts.push((PageNum::new(i), 10));
        }
        let h = PageHistogram::from_counts(counts);
        let o = OraclePlacement::compute(&h, 1000, 0.7);
        let hot_bo = (0..50).filter(|&i| o.is_bo(PageNum::new(i))).count();
        let cold_bo = (50..100).filter(|&i| o.is_bo(PageNum::new(i))).count();
        assert!((30..=40).contains(&hot_bo), "hot split: {hot_bo}/50");
        assert!((30..=40).contains(&cold_bo), "cold split: {cold_bo}/50");
    }

    #[test]
    fn zero_capacity_places_nothing() {
        let o = OraclePlacement::compute(&hist(), 0, 0.7);
        assert_eq!(o.bo_page_count(), 0);
        assert_eq!(o.bo_traffic_fraction(), 0.0);
    }

    #[test]
    fn empty_histogram() {
        let o = OraclePlacement::compute(&PageHistogram::default(), 10, 0.7);
        assert_eq!(o.bo_page_count(), 0);
    }

    #[test]
    fn untouched_pages_never_chosen() {
        let o = OraclePlacement::compute(&hist(), 100, 1.0);
        assert!(!o.is_bo(PageNum::new(555)));
        assert_eq!(o.bo_page_count(), 10);
    }

    #[test]
    fn noise_level_count_differences_share_a_bucket() {
        assert_eq!(bucket(16), bucket(30), "sub-2x differences can tie");
        assert!(bucket(16) < bucket(64), "4x differences are distinct");
        assert!(bucket(1) < bucket(1000));
    }

    #[test]
    #[should_panic(expected = "target fraction out of range")]
    fn bad_target_rejected() {
        let _ = OraclePlacement::compute(&hist(), 1, 1.5);
    }
}
