//! # profiler — GPU data-structure access profiling
//!
//! The reproduction of the profiling toolchain of *Page Placement
//! Strategies for GPUs within Heterogeneous Memory Systems* (ASPLOS
//! 2015, §5.1): the paper instruments NVIDIA's compiler to count every
//! load/store against the `cudaMalloc`-ed data structure it touches; we
//! collect the same data from a profiling simulation pass.
//!
//! * [`PageHistogram`] / [`Cdf`] — per-page DRAM access counts and the
//!   bandwidth CDFs of Fig. 6,
//! * [`RunProfile`] — attribution of pages to named allocations, hotness
//!   densities, and the Fig. 7 scatter data,
//! * [`get_allocation`] — the paper's `GetAllocation` hint computation
//!   (Fig. 9) mapping (sizes, hotness, machine topology) to
//!   [`MemHint`]s,
//! * [`OraclePlacement`] — perfect-knowledge page ranking (§4.2).
//!
//! # Examples
//!
//! ```
//! use hmtypes::PageNum;
//! use profiler::{OraclePlacement, PageHistogram};
//!
//! // One of ten pages carries 90% of the traffic.
//! let hist = PageHistogram::from_counts(
//!     (0..10).map(|i| (PageNum::new(i), if i == 0 { 900 } else { 11 })),
//! );
//! assert!(hist.cdf().skewness() > 0.5);
//! let oracle = OraclePlacement::compute(&hist, 1, 5.0 / 7.0);
//! assert!(oracle.is_bo(PageNum::new(0)));
//! ```

pub mod hints;
pub mod histogram;
pub mod oracle;
pub mod structures;

pub use hints::{get_allocation, MemHint};
pub use histogram::{Cdf, CdfPoint, PageHistogram};
pub use oracle::OraclePlacement;
pub use structures::{AllocRange, RunProfile, ScatterPoint, StructureProfile};
