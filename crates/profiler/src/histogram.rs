//! Page access histograms and bandwidth CDFs (paper Fig. 6).

use std::collections::HashMap;

use hmtypes::PageNum;

/// DRAM accesses per virtual page, as produced by a profiling simulation
/// run (accesses counted *after* on-chip cache filtering, exactly as the
/// paper's Fig. 6 methodology specifies).
///
/// # Examples
///
/// ```
/// use hmtypes::PageNum;
/// use profiler::PageHistogram;
///
/// let h = PageHistogram::from_counts([(PageNum::new(0), 90), (PageNum::new(1), 10)]);
/// assert_eq!(h.total_accesses(), 100);
/// assert_eq!(h.hot_to_cold()[0].0, PageNum::new(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PageHistogram {
    counts: HashMap<PageNum, u64>,
}

impl PageHistogram {
    /// Builds a histogram from `(page, accesses)` pairs; duplicate pages
    /// accumulate.
    pub fn from_counts(counts: impl IntoIterator<Item = (PageNum, u64)>) -> Self {
        let mut map = HashMap::new();
        for (p, c) in counts {
            *map.entry(p).or_insert(0) += c;
        }
        PageHistogram { counts: map }
    }

    /// Number of distinct pages with at least one access.
    pub fn touched_pages(&self) -> usize {
        self.counts.len()
    }

    /// Sum of all access counts.
    pub fn total_accesses(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Accesses to one page (0 if untouched).
    pub fn accesses(&self, page: PageNum) -> u64 {
        self.counts.get(&page).copied().unwrap_or(0)
    }

    /// Pages sorted from most to least accessed (ties by page number for
    /// determinism).
    pub fn hot_to_cold(&self) -> Vec<(PageNum, u64)> {
        let mut v: Vec<(PageNum, u64)> = self.counts.iter().map(|(&p, &c)| (p, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The bandwidth cumulative distribution function over pages sorted
    /// hot→cold (paper Fig. 6).
    pub fn cdf(&self) -> Cdf {
        let sorted = self.hot_to_cold();
        let total = self.total_accesses();
        let mut points = Vec::with_capacity(sorted.len());
        let mut cum = 0u64;
        for (i, (_, c)) in sorted.iter().enumerate() {
            cum += c;
            points.push(CdfPoint {
                page_fraction: (i + 1) as f64 / sorted.len() as f64,
                traffic_fraction: if total == 0 {
                    0.0
                } else {
                    cum as f64 / total as f64
                },
            });
        }
        Cdf { points }
    }

    /// Iterates over `(page, count)` in ascending page order, so every
    /// rendering of a histogram is deterministic.
    pub fn iter(&self) -> impl Iterator<Item = (PageNum, u64)> + '_ {
        let mut entries: Vec<_> = self.counts.iter().map(|(&p, &c)| (p, c)).collect();
        entries.sort_unstable_by_key(|&(p, _)| p);
        entries.into_iter()
    }
}

impl FromIterator<(PageNum, u64)> for PageHistogram {
    fn from_iter<I: IntoIterator<Item = (PageNum, u64)>>(iter: I) -> Self {
        PageHistogram::from_counts(iter)
    }
}

/// One point of a bandwidth CDF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdfPoint {
    /// Fraction of (touched) pages considered, hot→cold, in `(0, 1]`.
    pub page_fraction: f64,
    /// Fraction of total DRAM traffic those pages carry, in `[0, 1]`.
    pub traffic_fraction: f64,
}

/// A bandwidth CDF: traffic fraction as a function of page fraction,
/// pages sorted hot→cold (paper Fig. 6).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Cdf {
    points: Vec<CdfPoint>,
}

impl Cdf {
    /// The CDF points, in increasing page fraction.
    pub fn points(&self) -> &[CdfPoint] {
        &self.points
    }

    /// Fraction of traffic carried by the hottest `page_fraction` of
    /// pages (linear interpolation between points).
    ///
    /// # Panics
    ///
    /// Panics if `page_fraction` is outside `[0, 1]`.
    pub fn traffic_in_top(&self, page_fraction: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&page_fraction),
            "fraction out of range"
        );
        if self.points.is_empty() || page_fraction == 0.0 {
            return 0.0;
        }
        let idx = self
            .points
            .partition_point(|p| p.page_fraction < page_fraction);
        if idx >= self.points.len() {
            return 1.0;
        }
        let hi = self.points[idx];
        if idx == 0 {
            // Interpolate from the origin.
            return hi.traffic_fraction * (page_fraction / hi.page_fraction);
        }
        let lo = self.points[idx - 1];
        let span = hi.page_fraction - lo.page_fraction;
        if span <= 0.0 {
            return hi.traffic_fraction;
        }
        let t = (page_fraction - lo.page_fraction) / span;
        lo.traffic_fraction + t * (hi.traffic_fraction - lo.traffic_fraction)
    }

    /// A scalar skew measure: traffic in the hottest 10% of pages. A
    /// uniform workload scores ≈0.1; the paper's `bfs`/`xsbench` score
    /// above 0.6.
    pub fn skewness(&self) -> f64 {
        self.traffic_in_top(0.10)
    }

    /// Whether the CDF is monotonically non-decreasing in both axes
    /// (always true for histogram-derived CDFs; exposed for testing).
    pub fn is_monotone(&self) -> bool {
        self.points.windows(2).all(|w| {
            w[0].page_fraction <= w[1].page_fraction
                && w[0].traffic_fraction <= w[1].traffic_fraction + 1e-12
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed() -> PageHistogram {
        // 10 pages: one page carries 910 of 1000 accesses.
        let mut counts = vec![(PageNum::new(0), 910)];
        for i in 1..10 {
            counts.push((PageNum::new(i), 10));
        }
        PageHistogram::from_counts(counts)
    }

    fn uniform(pages: u64) -> PageHistogram {
        PageHistogram::from_counts((0..pages).map(|i| (PageNum::new(i), 5)))
    }

    #[test]
    fn totals_and_lookup() {
        let h = skewed();
        assert_eq!(h.total_accesses(), 1000);
        assert_eq!(h.touched_pages(), 10);
        assert_eq!(h.accesses(PageNum::new(0)), 910);
        assert_eq!(h.accesses(PageNum::new(99)), 0);
    }

    #[test]
    fn duplicate_pages_accumulate() {
        let h = PageHistogram::from_counts([(PageNum::new(3), 4), (PageNum::new(3), 6)]);
        assert_eq!(h.accesses(PageNum::new(3)), 10);
        assert_eq!(h.touched_pages(), 1);
    }

    #[test]
    fn hot_to_cold_is_sorted() {
        let sorted = skewed().hot_to_cold();
        assert!(sorted.windows(2).all(|w| w[0].1 >= w[1].1));
        assert_eq!(sorted[0].0, PageNum::new(0));
    }

    #[test]
    fn skewed_cdf_rises_fast() {
        let cdf = skewed().cdf();
        assert!(cdf.is_monotone());
        // Hottest 10% of pages (the single hot page) carries 91%.
        assert!((cdf.skewness() - 0.91).abs() < 1e-9);
        assert!((cdf.traffic_in_top(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_cdf_is_linear() {
        let cdf = uniform(100).cdf();
        assert!(cdf.is_monotone());
        for frac in [0.1, 0.25, 0.5, 0.9] {
            assert!(
                (cdf.traffic_in_top(frac) - frac).abs() < 0.02,
                "at {frac}: {}",
                cdf.traffic_in_top(frac)
            );
        }
    }

    #[test]
    fn empty_histogram_cdf() {
        let cdf = PageHistogram::default().cdf();
        assert_eq!(cdf.points().len(), 0);
        assert_eq!(cdf.traffic_in_top(0.5), 0.0);
    }

    #[test]
    fn interpolation_between_points() {
        // 2 pages: 80/20 split. top 25% of pages = half of page 1's mass.
        let h = PageHistogram::from_counts([(PageNum::new(0), 80), (PageNum::new(1), 20)]);
        let cdf = h.cdf();
        let v = cdf.traffic_in_top(0.25);
        assert!((v - 0.40).abs() < 1e-9, "got {v}");
    }

    #[test]
    #[should_panic(expected = "fraction out of range")]
    fn traffic_in_top_validates() {
        skewed().cdf().traffic_in_top(1.5);
    }
}
