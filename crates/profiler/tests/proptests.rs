//! Property-based tests for the profiler: histogram/CDF invariants, the
//! oracle's capacity guarantee, and `GetAllocation` hint shapes — on the
//! in-tree `hetmem_harness::props!` kit.

use hmtypes::PageNum;
use profiler::{get_allocation, MemHint, OraclePlacement, PageHistogram};

/// A histogram over consecutive pages with the given access counts.
fn hist_from(counts: &[u64]) -> PageHistogram {
    PageHistogram::from_counts(
        counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (PageNum::new(i as u64), c)),
    )
}

hetmem_harness::props! {
    cases = 48;

    /// The CDF is monotone, complete at fraction 1.0, and monotone in
    /// the page fraction queried.
    fn cdf_is_monotone_and_complete(counts in hetmem_harness::vec_of(1u64..5000, 1..200)) {
        let hist = hist_from(&counts);
        let cdf = hist.cdf();
        assert!(cdf.is_monotone());
        assert!((cdf.traffic_in_top(1.0) - 1.0).abs() < 1e-9);
        let mut last = 0.0;
        for i in 0..=10 {
            let t = cdf.traffic_in_top(f64::from(i) / 10.0);
            assert!(t + 1e-12 >= last, "traffic_in_top not monotone at {i}");
            assert!((0.0..=1.0 + 1e-12).contains(&t));
            last = t;
        }
    }

    /// hot_to_cold ranks by descending count and conserves totals.
    fn hot_to_cold_is_descending(counts in hetmem_harness::vec_of(1u64..5000, 1..200)) {
        let hist = hist_from(&counts);
        let ranked = hist.hot_to_cold();
        assert_eq!(ranked.len(), hist.touched_pages());
        assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1), "not descending");
        let sum: u64 = ranked.iter().map(|r| r.1).sum();
        assert_eq!(sum, hist.total_accesses());
    }

    /// The oracle never exceeds a constraining BO budget, its BO set is
    /// self-consistent, and its claimed traffic fraction matches the
    /// histogram.
    fn oracle_respects_capacity(
        counts in hetmem_harness::vec_of(1u64..5000, 8..200),
        budget in 0u64..100,
    ) {
        let target = 5.0 / 7.0; // the paper machine's bB/(bB+bC)
        let hist = hist_from(&counts);
        let oracle = OraclePlacement::compute(&hist, budget, target);
        let bo: Vec<PageNum> = oracle.bo_pages().collect();
        assert_eq!(bo.len(), oracle.bo_page_count());
        assert!(bo.iter().all(|&p| oracle.is_bo(p)));
        let stratified = (counts.len() as f64 * target).ceil() as u64;
        if budget < stratified {
            assert!(
                oracle.bo_page_count() as u64 <= budget,
                "constrained oracle exceeded budget {budget}"
            );
        }
        let bo_traffic: u64 = bo.iter().map(|&p| hist.accesses(p)).sum();
        let expected = bo_traffic as f64 / hist.total_accesses() as f64;
        assert!(
            (oracle.bo_traffic_fraction() - expected).abs() < 1e-9,
            "fraction {} vs recomputed {expected}",
            oracle.bo_traffic_fraction()
        );
    }

    /// GetAllocation returns one hint per structure; unconstrained
    /// capacity means BW-AWARE everywhere, constrained capacity hints the
    /// hottest structures BO and never BW-AWARE.
    fn get_allocation_hint_shapes(
        structs in hetmem_harness::vec_of((1u64..(1 << 20), 0.0f64..100.0), 1..12),
        cap_kb in 0u64..4096,
    ) {
        let (sizes, hotness): (Vec<u64>, Vec<f64>) = structs.into_iter().unzip();
        let target = 5.0 / 7.0;
        let bo_capacity = cap_kb * 1024;
        let hints = get_allocation(&sizes, &hotness, bo_capacity, target);
        assert_eq!(hints.len(), sizes.len());
        let footprint: u64 = sizes.iter().sum();
        let bw_aware_bytes = (footprint as f64 * target).ceil() as u64;
        if bw_aware_bytes <= bo_capacity {
            assert!(hints.iter().all(|&h| h == MemHint::BwAware));
        } else {
            assert!(!hints.contains(&MemHint::BwAware));
            if bo_capacity > 0 {
                assert!(hints.contains(&MemHint::BO), "residual BO capacity unused");
            }
        }
    }
}
