//! Fig. 8: prints the oracle-vs-BW-AWARE table (scaled) and benches an
//! oracle-placed run at 10% capacity.
use hetmem::runner::{profile_workload, Capacity, Placement, RunBuilder};
use hetmem_harness::Bencher;

fn main() {
    let opts = hetmem_bench::bench_opts();
    eprintln!("{}", hetmem::experiments::fig8(&opts));
    let spec = opts.scale(workloads::catalog::by_name("xsbench").unwrap());
    let (hist, _) = profile_workload(&spec, &opts.sim);
    let oracle = Placement::Oracle(hist);
    let mut b = Bencher::from_env("fig08_oracle");
    b.bench("fig8/oracle_run_10pct_xsbench", || {
        RunBuilder::new(&spec, &opts.sim)
            .capacity(Capacity::FractionOfFootprint(0.10))
            .placement(&oracle)
            .run()
    });
    b.finish();
}
