//! Fig. 8: prints the oracle-vs-BW-AWARE table (scaled) and benches an
//! oracle-placed run at 10% capacity.
use criterion::{criterion_group, criterion_main, Criterion};
use hetmem::runner::{profile_workload, run_workload, Capacity, Placement};

fn bench(c: &mut Criterion) {
    let opts = hetmem_bench::bench_opts();
    eprintln!("{}", hetmem::experiments::fig8(&opts));
    let spec = opts.scale(workloads::catalog::by_name("xsbench").unwrap());
    let (hist, _) = profile_workload(&spec, &opts.sim);
    c.bench_function("fig8/oracle_run_10pct_xsbench", |b| {
        b.iter(|| {
            run_workload(
                &spec,
                &opts.sim,
                Capacity::FractionOfFootprint(0.10),
                &Placement::Oracle(hist.clone()),
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
