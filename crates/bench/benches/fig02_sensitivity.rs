//! Fig. 2: prints the bandwidth/latency sensitivity series (scaled) and
//! benches one LOCAL-placement workload run.
use hetmem::runner::{Placement, RunBuilder};
use hetmem_harness::Bencher;
use mempolicy::Mempolicy;

fn main() {
    let opts = hetmem_bench::bench_opts();
    eprintln!("{}", hetmem::experiments::fig2a(&opts));
    eprintln!("{}", hetmem::experiments::fig2b(&opts));
    let spec = opts.scale(workloads::catalog::by_name("hotspot").unwrap());
    let mut b = Bencher::from_env("fig02_sensitivity");
    b.bench("fig2/local_run_hotspot", || {
        RunBuilder::new(&spec, &opts.sim)
            .placement(&Placement::Policy(Mempolicy::local()))
            .run()
    });
    b.finish();
}
