//! Fig. 2: prints the bandwidth/latency sensitivity series (scaled) and
//! benches one LOCAL-placement workload run.
use criterion::{criterion_group, criterion_main, Criterion};
use hetmem::runner::{run_workload, Capacity, Placement};
use mempolicy::Mempolicy;

fn bench(c: &mut Criterion) {
    let opts = hetmem_bench::bench_opts();
    eprintln!("{}", hetmem::experiments::fig2a(&opts));
    eprintln!("{}", hetmem::experiments::fig2b(&opts));
    let spec = opts.scale(workloads::catalog::by_name("hotspot").unwrap());
    c.bench_function("fig2/local_run_hotspot", |b| {
        b.iter(|| {
            run_workload(
                &spec,
                &opts.sim,
                Capacity::Unconstrained,
                &Placement::Policy(Mempolicy::local()),
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
