//! Table 1: prints the simulated system configuration and benches
//! simulator construction cost.
use gpusim::{FixedPoolTranslator, SimConfig, Simulator, StreamKernel};
use hetmem_harness::Bencher;

fn main() {
    eprintln!(
        "{}",
        hetmem::experiments::table1(&SimConfig::paper_baseline())
    );
    let mut b = Bencher::from_env("table1");
    b.bench("table1/simulator_construction", || {
        let cfg = SimConfig::paper_baseline();
        let k = StreamKernel::new(&cfg, 4, 1 << 20);
        std::hint::black_box(Simulator::new(cfg, FixedPoolTranslator::new(0), k))
    });
    b.finish();
}
