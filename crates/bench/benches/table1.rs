//! Table 1: prints the simulated system configuration and benches
//! simulator construction cost.
use criterion::{criterion_group, criterion_main, Criterion};
use gpusim::{FixedPoolTranslator, SimConfig, Simulator, StreamKernel};

fn bench(c: &mut Criterion) {
    eprintln!("{}", hetmem::experiments::table1(&SimConfig::paper_baseline()));
    c.bench_function("table1/simulator_construction", |b| {
        b.iter(|| {
            let cfg = SimConfig::paper_baseline();
            let k = StreamKernel::new(&cfg, 4, 1 << 20);
            std::hint::black_box(Simulator::new(cfg, FixedPoolTranslator::new(0), k))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
