//! Fig. 3: prints the placement-ratio sweep (scaled) and benches one
//! BW-AWARE run.
use criterion::{criterion_group, criterion_main, Criterion};
use hetmem::runner::{run_workload, Capacity, Placement};
use hmtypes::Percent;
use mempolicy::Mempolicy;

fn bench(c: &mut Criterion) {
    let opts = hetmem_bench::bench_opts();
    let t = hetmem::experiments::fig3(&opts);
    eprintln!("{t}");
    if let (Some(bwa), Some(inter)) = (
        t.value("geomean", "30C-70B"),
        t.value("geomean", "INTERLEAVE"),
    ) {
        eprintln!(
            "BW-AWARE vs LOCAL {:+.1}%, vs INTERLEAVE {:+.1}% (paper: +18% / +35%)",
            (bwa - 1.0) * 100.0,
            (bwa / inter - 1.0) * 100.0
        );
    }
    let spec = opts.scale(workloads::catalog::by_name("lbm").unwrap());
    c.bench_function("fig3/bw_aware_run_lbm", |b| {
        b.iter(|| {
            run_workload(
                &spec,
                &opts.sim,
                Capacity::Unconstrained,
                &Placement::Policy(Mempolicy::ratio_co(Percent::new(30))),
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
