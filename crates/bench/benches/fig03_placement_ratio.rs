//! Fig. 3: prints the placement-ratio sweep (scaled) and benches one
//! BW-AWARE run.
use hetmem::runner::{Placement, RunBuilder};
use hetmem_harness::Bencher;
use hmtypes::Percent;
use mempolicy::Mempolicy;

fn main() {
    let opts = hetmem_bench::bench_opts();
    let t = hetmem::experiments::fig3(&opts);
    eprintln!("{t}");
    if let (Some(bwa), Some(inter)) = (
        t.value("geomean", "30C-70B"),
        t.value("geomean", "INTERLEAVE"),
    ) {
        eprintln!(
            "BW-AWARE vs LOCAL {:+.1}%, vs INTERLEAVE {:+.1}% (paper: +18% / +35%)",
            (bwa - 1.0) * 100.0,
            (bwa / inter - 1.0) * 100.0
        );
    }
    let spec = opts.scale(workloads::catalog::by_name("lbm").unwrap());
    let mut b = Bencher::from_env("fig03_placement_ratio");
    b.bench("fig3/bw_aware_run_lbm", || {
        RunBuilder::new(&spec, &opts.sim)
            .placement(&Placement::Policy(Mempolicy::ratio_co(Percent::new(30))))
            .run()
    });
    b.finish();
}
