//! Fig. 1: prints the BW-Ratio table and benches topology derivation.
use criterion::{criterion_group, criterion_main, Criterion};
use gpusim::SimConfig;

fn bench(c: &mut Criterion) {
    eprintln!("{}", hetmem::experiments::fig1());
    let sim = SimConfig::paper_baseline();
    c.bench_function("fig1/topology_and_sbit", |b| {
        b.iter(|| {
            let topo = hetmem::topology_for(&sim, &[4096, 16384]);
            std::hint::black_box(topo.sbit().weights_per_mille())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
