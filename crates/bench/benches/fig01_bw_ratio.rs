//! Fig. 1: prints the BW-Ratio table and benches topology derivation.
use gpusim::SimConfig;
use hetmem_harness::Bencher;

fn main() {
    eprintln!("{}", hetmem::experiments::fig1());
    let sim = SimConfig::paper_baseline();
    let mut b = Bencher::from_env("fig01_bw_ratio");
    b.bench("fig1/topology_and_sbit", || {
        let topo = hetmem::topology_for(&sim, &[4096, 16384]);
        std::hint::black_box(topo.sbit().weights_per_mille())
    });
    b.finish();
}
