//! Ablation: memory-side L2 capacity per channel (Table 1 uses 128 kB).
use gpusim::CacheConfig;
use hetmem::runner::{run_workload, Capacity, Placement};
use hetmem_harness::Bencher;
use mempolicy::Mempolicy;

fn main() {
    let opts = hetmem_bench::bench_opts();
    let spec = opts.scale(workloads::catalog::by_name("xsbench").unwrap());
    eprintln!("Ablation — L2 slice capacity vs relative performance (xsbench, LOCAL):");
    let base = run_workload(
        &spec,
        &opts.sim,
        Capacity::Unconstrained,
        &Placement::Policy(Mempolicy::local()),
    );
    for kb in [32usize, 64, 128, 256, 512] {
        let mut sim = opts.sim.clone();
        sim.l2 = CacheConfig::new(kb * 1024, 8);
        let run = run_workload(
            &spec,
            &sim,
            Capacity::Unconstrained,
            &Placement::Policy(Mempolicy::local()),
        );
        eprintln!(
            "  {kb:>4} kB/slice: {:.3} (L2 hit rate {:.2})",
            run.speedup_over(&base),
            run.report.l2_hit_rate()
        );
    }
    let mut big = opts.sim.clone();
    big.l2 = CacheConfig::new(512 * 1024, 8);
    let mut b = Bencher::from_env("abl_l2");
    b.bench("abl_l2/512kb_xsbench", || {
        run_workload(
            &spec,
            &big,
            Capacity::Unconstrained,
            &Placement::Policy(Mempolicy::local()),
        )
    });
    b.finish();
}
