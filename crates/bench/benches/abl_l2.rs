//! Ablation: memory-side L2 capacity per channel (Table 1 uses 128 kB).
use gpusim::CacheConfig;
use hetmem::runner::{Placement, RunBuilder};
use hetmem_harness::Bencher;
use mempolicy::Mempolicy;

fn main() {
    let opts = hetmem_bench::bench_opts();
    let spec = opts.scale(workloads::catalog::by_name("xsbench").unwrap());
    let local = Placement::Policy(Mempolicy::local());
    eprintln!("Ablation — L2 slice capacity vs relative performance (xsbench, LOCAL):");
    let base = RunBuilder::new(&spec, &opts.sim).placement(&local).run();
    for kb in [32usize, 64, 128, 256, 512] {
        let mut sim = opts.sim.clone();
        sim.l2 = CacheConfig::new(kb * 1024, 8);
        let run = RunBuilder::new(&spec, &sim).placement(&local).run();
        eprintln!(
            "  {kb:>4} kB/slice: {:.3} (L2 hit rate {:.2})",
            run.speedup_over(&base),
            run.report.l2_hit_rate()
        );
    }
    let mut big = opts.sim.clone();
    big.l2 = CacheConfig::new(512 * 1024, 8);
    let mut b = Bencher::from_env("abl_l2");
    b.bench("abl_l2/512kb_xsbench", || {
        RunBuilder::new(&spec, &big).placement(&local).run()
    });
    b.finish();
}
