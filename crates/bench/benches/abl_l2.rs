//! Ablation: memory-side L2 capacity per channel (Table 1 uses 128 kB).
use criterion::{criterion_group, criterion_main, Criterion};
use gpusim::CacheConfig;
use hetmem::runner::{run_workload, Capacity, Placement};
use mempolicy::Mempolicy;

fn bench(c: &mut Criterion) {
    let opts = hetmem_bench::bench_opts();
    let spec = opts.scale(workloads::catalog::by_name("xsbench").unwrap());
    eprintln!("Ablation — L2 slice capacity vs relative performance (xsbench, LOCAL):");
    let base = run_workload(
        &spec,
        &opts.sim,
        Capacity::Unconstrained,
        &Placement::Policy(Mempolicy::local()),
    );
    for kb in [32usize, 64, 128, 256, 512] {
        let mut sim = opts.sim.clone();
        sim.l2 = CacheConfig::new(kb * 1024, 8);
        let run = run_workload(
            &spec,
            &sim,
            Capacity::Unconstrained,
            &Placement::Policy(Mempolicy::local()),
        );
        eprintln!(
            "  {kb:>4} kB/slice: {:.3} (L2 hit rate {:.2})",
            run.speedup_over(&base),
            run.report.l2_hit_rate()
        );
    }
    let mut big = opts.sim.clone();
    big.l2 = CacheConfig::new(512 * 1024, 8);
    c.bench_function("abl_l2/512kb_xsbench", |b| {
        b.iter(|| {
            run_workload(
                &spec,
                &big,
                Capacity::Unconstrained,
                &Placement::Policy(Mempolicy::local()),
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
