//! Ablation: allocation fast-path cost. The paper stresses BW-AWARE
//! stays on the allocation fast path (one random draw, no history);
//! this measures the policy-decision cost per page fault.
use criterion::{criterion_group, criterion_main, Criterion};
use gpusim::SimConfig;
use hetmem::topology_for;
use mempolicy::{AddressSpace, Mempolicy};

fn bench(c: &mut Criterion) {
    let sim = SimConfig::paper_baseline();
    type NamedPolicy = (&'static str, fn(&mempolicy::NumaTopology) -> Mempolicy);
    let policies: [NamedPolicy; 3] = [
        ("local", |_| Mempolicy::local()),
        ("interleave", Mempolicy::interleave_all),
        ("bw_aware", Mempolicy::bw_aware_for),
    ];
    for (name, mk) in policies {
        c.bench_function(&format!("abl_fastpath/fault_{name}"), |b| {
            b.iter_batched(
                || {
                    let topo = topology_for(&sim, &[100_000, 100_000]);
                    let mut mm = AddressSpace::new(topo.clone());
                    mm.set_mempolicy(mk(&topo));
                    let range = mm.mmap(4096 * 65_536).unwrap();
                    (mm, range)
                },
                |(mut mm, range)| {
                    for page in range.pages() {
                        std::hint::black_box(mm.ensure_mapped(page).unwrap());
                    }
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
