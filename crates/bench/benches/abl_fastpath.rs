//! Ablation: allocation fast-path cost. The paper stresses BW-AWARE
//! stays on the allocation fast path (one random draw, no history);
//! this measures the policy-decision cost per page fault.
use gpusim::SimConfig;
use hetmem::topology_for;
use hetmem_harness::Bencher;
use mempolicy::{AddressSpace, Mempolicy};

fn main() {
    let sim = SimConfig::paper_baseline();
    type NamedPolicy = (&'static str, fn(&mempolicy::NumaTopology) -> Mempolicy);
    let policies: [NamedPolicy; 3] = [
        ("local", |_| Mempolicy::local()),
        ("interleave", Mempolicy::interleave_all),
        ("bw_aware", Mempolicy::bw_aware_for),
    ];
    let mut b = Bencher::from_env("abl_fastpath");
    for (name, mk) in policies {
        b.bench_with_setup(
            &format!("abl_fastpath/fault_{name}"),
            || {
                let topo = topology_for(&sim, &[100_000, 100_000]);
                let mut mm = AddressSpace::new(topo.clone());
                mm.set_mempolicy(mk(&topo));
                let range = mm.mmap(4096 * 65_536).unwrap();
                (mm, range)
            },
            |(mut mm, range)| {
                for page in range.pages() {
                    std::hint::black_box(mm.ensure_mapped(page).unwrap());
                }
            },
        );
    }
    b.finish();
}
