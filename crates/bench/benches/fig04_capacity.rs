//! Fig. 4: prints the capacity sweep (scaled) and benches one
//! capacity-constrained run.
use hetmem::runner::{Capacity, Placement, RunBuilder};
use hetmem::topology_for;
use hetmem_harness::Bencher;
use mempolicy::Mempolicy;

fn main() {
    let opts = hetmem_bench::bench_opts();
    eprintln!("{}", hetmem::experiments::fig4(&opts));
    let spec = opts.scale(workloads::catalog::by_name("bfs").unwrap());
    let topo = topology_for(&opts.sim, &[1, 1]);
    let mut b = Bencher::from_env("fig04_capacity");
    b.bench("fig4/bw_aware_at_50pct_capacity", || {
        RunBuilder::new(&spec, &opts.sim)
            .capacity(Capacity::FractionOfFootprint(0.5))
            .placement(&Placement::Policy(Mempolicy::bw_aware_for(&topo)))
            .run()
    });
    b.finish();
}
