//! Fig. 4: prints the capacity sweep (scaled) and benches one
//! capacity-constrained run.
use criterion::{criterion_group, criterion_main, Criterion};
use hetmem::runner::{run_workload, Capacity, Placement};
use hetmem::topology_for;
use mempolicy::Mempolicy;

fn bench(c: &mut Criterion) {
    let opts = hetmem_bench::bench_opts();
    eprintln!("{}", hetmem::experiments::fig4(&opts));
    let spec = opts.scale(workloads::catalog::by_name("bfs").unwrap());
    let topo = topology_for(&opts.sim, &[1, 1]);
    c.bench_function("fig4/bw_aware_at_50pct_capacity", |b| {
        b.iter(|| {
            run_workload(
                &spec,
                &opts.sim,
                Capacity::FractionOfFootprint(0.5),
                &Placement::Policy(Mempolicy::bw_aware_for(&topo)),
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
