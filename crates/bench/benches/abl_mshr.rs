//! Ablation: MSHR capacity. The paper (§3.2.1) argues its baseline MSHR
//! count suffices to hide the extra interconnect hop; this sweep shows
//! where latency tolerance collapses.
use hetmem::runner::{Placement, RunBuilder};
use hetmem_harness::Bencher;
use mempolicy::Mempolicy;

fn main() {
    let opts = hetmem_bench::bench_opts();
    let spec = opts.scale(workloads::catalog::by_name("lbm").unwrap());
    let local = Placement::Policy(Mempolicy::local());
    eprintln!("Ablation — L2 MSHRs per slice vs relative performance (lbm, LOCAL):");
    let base = RunBuilder::new(&spec, &opts.sim).placement(&local).run();
    for mshrs in [8usize, 16, 32, 64, 128, 256] {
        let mut sim = opts.sim.clone();
        sim.l2_mshrs = mshrs;
        let run = RunBuilder::new(&spec, &sim).placement(&local).run();
        eprintln!(
            "  {mshrs:>4} MSHRs: {:.3} (stalls {})",
            run.speedup_over(&base),
            run.report.mshr_stalls
        );
    }
    let mut small = opts.sim.clone();
    small.l2_mshrs = 16;
    let mut b = Bencher::from_env("abl_mshr");
    b.bench("abl_mshr/16_mshrs_lbm", || {
        RunBuilder::new(&spec, &small).placement(&local).run()
    });
    b.finish();
}
