//! Fig. 10: prints the annotated-placement table (scaled) and benches a
//! hinted run at 10% capacity.
use criterion::{criterion_group, criterion_main, Criterion};
use hetmem::runner::{
    hints_from_profile, profile_workload, run_workload, Capacity, Placement,
};

fn bench(c: &mut Criterion) {
    let opts = hetmem_bench::bench_opts();
    eprintln!("{}", hetmem::experiments::fig10(&opts));
    let spec = opts.scale(workloads::catalog::by_name("bfs").unwrap());
    let cap = Capacity::FractionOfFootprint(0.10);
    let (_, profile) = profile_workload(&spec, &opts.sim);
    let hints = hints_from_profile(&profile, &spec, &opts.sim, cap);
    c.bench_function("fig10/hinted_run_10pct_bfs", |b| {
        b.iter(|| run_workload(&spec, &opts.sim, cap, &Placement::Hinted(hints.clone())))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
