//! Fig. 10: prints the annotated-placement table (scaled) and benches a
//! hinted run at 10% capacity.
use hetmem::runner::{hints_from_profile, profile_workload, Capacity, Placement, RunBuilder};
use hetmem_harness::Bencher;

fn main() {
    let opts = hetmem_bench::bench_opts();
    eprintln!("{}", hetmem::experiments::fig10(&opts));
    let spec = opts.scale(workloads::catalog::by_name("bfs").unwrap());
    let cap = Capacity::FractionOfFootprint(0.10);
    let (_, profile) = profile_workload(&spec, &opts.sim);
    let hinted = Placement::Hinted(hints_from_profile(&profile, &spec, &opts.sim, cap));
    let mut b = Bencher::from_env("fig10_annotated");
    b.bench("fig10/hinted_run_10pct_bfs", || {
        RunBuilder::new(&spec, &opts.sim)
            .capacity(cap)
            .placement(&hinted)
            .run()
    });
    b.finish();
}
