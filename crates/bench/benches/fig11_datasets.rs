//! Fig. 11: prints the dataset-robustness table (scaled) and benches the
//! hint recomputation.
use criterion::{criterion_group, criterion_main, Criterion};
use hetmem::runner::{hints_from_profile, profile_workload, Capacity};

fn bench(c: &mut Criterion) {
    let mut opts = hetmem_bench::bench_opts();
    opts.ops_scale = 0.08; // fig11 runs 4 workloads x datasets x 5 sims
    eprintln!("{}", hetmem::experiments::fig11(&opts));
    let train = opts.scale(workloads::catalog::datasets("bfs")[0].clone());
    let eval = opts.scale(workloads::catalog::datasets("bfs")[1].clone());
    let (_, profile) = profile_workload(&train, &opts.sim);
    c.bench_function("fig11/get_allocation_cross_dataset", |b| {
        b.iter(|| {
            hints_from_profile(
                &profile,
                &eval,
                &opts.sim,
                Capacity::FractionOfFootprint(0.10),
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
