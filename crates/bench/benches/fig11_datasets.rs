//! Fig. 11: prints the dataset-robustness table (scaled) and benches the
//! hint recomputation.
use hetmem::runner::{hints_from_profile, profile_workload, Capacity};
use hetmem_harness::Bencher;

fn main() {
    let mut opts = hetmem_bench::bench_opts();
    opts.ops_scale = 0.08; // fig11 runs 4 workloads x datasets x 5 sims
    eprintln!("{}", hetmem::experiments::fig11(&opts));
    let train = opts.scale(workloads::catalog::datasets("bfs")[0].clone());
    let eval = opts.scale(workloads::catalog::datasets("bfs")[1].clone());
    let (_, profile) = profile_workload(&train, &opts.sim);
    let mut b = Bencher::from_env("fig11_datasets");
    b.bench("fig11/get_allocation_cross_dataset", || {
        hints_from_profile(
            &profile,
            &eval,
            &opts.sim,
            Capacity::FractionOfFootprint(0.10),
        )
    });
    b.finish();
}
