//! Ablation: the paper's randomized BW-AWARE fast path (one RNG draw per
//! allocation) vs exact round-robin-weighted placement. Shows the random
//! draw converges to the same traffic split and performance.
use hetmem::runner::{Placement, RunBuilder};
use hetmem_harness::Bencher;
use hmtypes::Percent;
use mempolicy::{Mempolicy, PolicyMode, ZoneId};

/// Exact 30C-70B: deterministic 3-in-10 striping via INTERLEAVE over a
/// 10-slot node pattern.
fn exact_30c() -> Mempolicy {
    let mut nodes = Vec::new();
    for i in 0..10 {
        nodes.push(if i < 3 {
            ZoneId::new(1)
        } else {
            ZoneId::new(0)
        });
    }
    Mempolicy::from_mode(PolicyMode::Interleave { nodes })
}

fn main() {
    let opts = hetmem_bench::bench_opts();
    let spec = opts.scale(workloads::catalog::by_name("srad").unwrap());
    let random = RunBuilder::new(&spec, &opts.sim)
        .placement(&Placement::Policy(Mempolicy::ratio_co(Percent::new(30))))
        .run();
    let exact = RunBuilder::new(&spec, &opts.sim)
        .placement(&Placement::Policy(exact_30c()))
        .run();
    eprintln!("Ablation — random-draw vs exact 30C-70B placement (srad):");
    eprintln!(
        "  random: CO traffic {:.3}, cycles {}",
        random.report.pool_traffic_fraction(1),
        random.report.cycles
    );
    eprintln!(
        "  exact:  CO traffic {:.3}, cycles {}",
        exact.report.pool_traffic_fraction(1),
        exact.report.cycles
    );
    eprintln!(
        "  exact/random performance: {:.3} (paper argues the random fast path suffices)",
        random.report.cycles as f64 / exact.report.cycles as f64
    );
    let mut b = Bencher::from_env("abl_random_vs_exact");
    b.bench("abl_random_vs_exact/random_srad", || {
        RunBuilder::new(&spec, &opts.sim)
            .placement(&Placement::Policy(Mempolicy::ratio_co(Percent::new(30))))
            .run()
    });
    b.finish();
}
