//! Fig. 7: prints per-structure attribution for bfs/mummergpu/needle
//! (scaled) and benches the attribution step.
use hetmem::runner::profile_workload;
use hetmem_harness::Bencher;
use profiler::RunProfile;

fn main() {
    let opts = hetmem_bench::bench_opts();
    for w in hetmem::experiments::fig7(&opts) {
        eprintln!(
            "fig7 {}: top10%={:.2} untouched={:.2}",
            w.name, w.top10, w.untouched_frac
        );
        for (name, fp, tr, _) in &w.structures {
            eprintln!(
                "    {name:<24} footprint {:>5.1}% traffic {:>5.1}%",
                fp * 100.0,
                tr * 100.0
            );
        }
    }
    let spec = opts.scale(workloads::catalog::by_name("bfs").unwrap());
    let (hist, profile) = profile_workload(&spec, &opts.sim);
    let ranges: Vec<_> = profile
        .structures()
        .iter()
        .map(|s| s.range.clone())
        .collect();
    let mut b = Bencher::from_env("fig07_structures");
    b.bench("fig7/attribute_and_scatter_bfs", || {
        let p = RunProfile::attribute(ranges.clone(), &hist);
        std::hint::black_box(p.scatter(&hist).len())
    });
    b.finish();
}
