//! Fig. 7: prints per-structure attribution for bfs/mummergpu/needle
//! (scaled) and benches the attribution step.
use criterion::{criterion_group, criterion_main, Criterion};
use hetmem::runner::profile_workload;
use profiler::RunProfile;

fn bench(c: &mut Criterion) {
    let opts = hetmem_bench::bench_opts();
    for w in hetmem::experiments::fig7(&opts) {
        eprintln!(
            "fig7 {}: top10%={:.2} untouched={:.2}",
            w.name, w.top10, w.untouched_frac
        );
        for (name, fp, tr, _) in &w.structures {
            eprintln!("    {name:<24} footprint {:>5.1}% traffic {:>5.1}%", fp * 100.0, tr * 100.0);
        }
    }
    let spec = opts.scale(workloads::catalog::by_name("bfs").unwrap());
    let (hist, profile) = profile_workload(&spec, &opts.sim);
    let ranges: Vec<_> = profile.structures().iter().map(|s| s.range.clone()).collect();
    c.bench_function("fig7/attribute_and_scatter_bfs", |b| {
        b.iter(|| {
            let p = RunProfile::attribute(ranges.clone(), &hist);
            std::hint::black_box(p.scatter(&hist).len())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
