//! Fig. 5: prints the CO-bandwidth sweep (scaled) and benches one run on
//! a doubled-CO machine.
use criterion::{criterion_group, criterion_main, Criterion};
use hetmem::runner::{run_workload, Capacity, Placement};
use hetmem::topology_for;
use hmtypes::Bandwidth;
use mempolicy::Mempolicy;

fn bench(c: &mut Criterion) {
    let opts = hetmem_bench::bench_opts();
    eprintln!("{}", hetmem::experiments::fig5(&opts));
    let sim = opts.sim.clone().with_co_bandwidth(Bandwidth::from_gbps(160.0));
    let topo = topology_for(&sim, &[1, 1]);
    let spec = opts.scale(workloads::catalog::by_name("srad").unwrap());
    c.bench_function("fig5/bw_aware_on_160gbps_co", |b| {
        b.iter(|| {
            run_workload(
                &spec,
                &sim,
                Capacity::Unconstrained,
                &Placement::Policy(Mempolicy::bw_aware_for(&topo)),
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
