//! Fig. 5: prints the CO-bandwidth sweep (scaled) and benches one run on
//! a doubled-CO machine.
use hetmem::runner::{Placement, RunBuilder};
use hetmem::topology_for;
use hetmem_harness::Bencher;
use hmtypes::Bandwidth;
use mempolicy::Mempolicy;

fn main() {
    let opts = hetmem_bench::bench_opts();
    eprintln!("{}", hetmem::experiments::fig5(&opts));
    let sim = opts
        .sim
        .clone()
        .with_co_bandwidth(Bandwidth::from_gbps(160.0));
    let topo = topology_for(&sim, &[1, 1]);
    let spec = opts.scale(workloads::catalog::by_name("srad").unwrap());
    let mut b = Bencher::from_env("fig05_bw_sweep");
    b.bench("fig5/bw_aware_on_160gbps_co", || {
        RunBuilder::new(&spec, &sim)
            .placement(&Placement::Policy(Mempolicy::bw_aware_for(&topo)))
            .run()
    });
    b.finish();
}
