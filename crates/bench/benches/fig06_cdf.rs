//! Fig. 6: prints the CDF summary (scaled) and benches profile+CDF
//! construction.
use hetmem::runner::profile_workload;
use hetmem_harness::Bencher;

fn main() {
    let opts = hetmem_bench::bench_opts();
    let (_, table) = hetmem::experiments::fig6(&opts);
    eprintln!("{table}");
    let spec = opts.scale(workloads::catalog::by_name("xsbench").unwrap());
    let mut b = Bencher::from_env("fig06_cdf");
    b.bench("fig6/profile_and_cdf_xsbench", || {
        let (hist, _) = profile_workload(&spec, &opts.sim);
        std::hint::black_box(hist.cdf().skewness())
    });
    b.finish();
}
