//! Fig. 6: prints the CDF summary (scaled) and benches profile+CDF
//! construction.
use criterion::{criterion_group, criterion_main, Criterion};
use hetmem::runner::profile_workload;

fn bench(c: &mut Criterion) {
    let opts = hetmem_bench::bench_opts();
    let (_, table) = hetmem::experiments::fig6(&opts);
    eprintln!("{table}");
    let spec = opts.scale(workloads::catalog::by_name("xsbench").unwrap());
    c.bench_function("fig6/profile_and_cdf_xsbench", |b| {
        b.iter(|| {
            let (hist, _) = profile_workload(&spec, &opts.sim);
            std::hint::black_box(hist.cdf().skewness())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
