//! Integration tests for `hetmem-serve`: the sharded placement service
//! end-to-end over real loopback TCP.
//!
//! Covers the service's contract: deterministic byte-identical results
//! under concurrent clients, cache hits that reproduce the miss bytes
//! exactly, structured `overloaded` load shedding, graceful
//! drain-on-shutdown, and machine-readable error codes for every
//! protocol failure.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use hetmem_bench::serve::{roundtrip, start, ServeConfig, ServerHandle};
use hetmem_harness::json::JsonValue;
use hetmem_harness::{Request, Response};

fn sim_request(id: u64, json_params: &str) -> Request {
    Request::with_params(id, "simulate", JsonValue::parse(json_params).unwrap())
}

fn expect_ok(resp: &Response) -> &str {
    match resp {
        Response::Ok { result, .. } => result,
        Response::Err { code, message, .. } => panic!("expected ok, got {code}: {message}"),
    }
}

fn expect_err(resp: &Response) -> (&str, &str) {
    match resp {
        Response::Err { code, message, .. } => (code, message),
        Response::Ok { result, .. } => panic!("expected error, got ok: {result}"),
    }
}

fn server(shards: usize, queue_depth: usize) -> ServerHandle {
    start(ServeConfig {
        shards,
        queue_depth,
        ..ServeConfig::default()
    })
    .expect("bind loopback")
}

fn stats(addr: &str) -> JsonValue {
    let resp = roundtrip(addr, &Request::new(900, "stats")).unwrap();
    JsonValue::parse(expect_ok(&resp)).unwrap()
}

fn stat(v: &JsonValue, path: &[&str]) -> u64 {
    let mut cur = v;
    for key in path {
        cur = cur.get(key).unwrap_or_else(|| panic!("missing {path:?}"));
    }
    cur.as_u64().unwrap_or_else(|| panic!("{path:?} not a u64"))
}

/// A quick simulate body (~tens of ms in debug builds).
const QUICK: &str = r#"{"workload":"hotspot","policy":"LOCAL","mem_ops":4000,"sms":2,"seed":7}"#;

/// A slow simulate body (~1s in debug builds) used to occupy workers.
fn slow(seed: u64) -> String {
    format!(r#"{{"workload":"hotspot","policy":"LOCAL","mem_ops":120000,"sms":2,"seed":{seed}}}"#)
}

#[test]
fn concurrent_identical_clients_get_byte_identical_results() {
    let handle = server(2, 32);
    let addr = handle.addr().to_string();

    // 8 clients race the same request; identical keys hash to one
    // shard, so exactly one simulation runs and the rest are hits.
    let clients: Vec<_> = (0..8)
        .map(|i| {
            let addr = addr.clone();
            thread::spawn(move || {
                let resp = roundtrip(&addr, &sim_request(100 + i, QUICK)).unwrap();
                assert_eq!(resp.id(), 100 + i);
                expect_ok(&resp).to_string()
            })
        })
        .collect();
    let results: Vec<String> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    for r in &results[1..] {
        assert_eq!(r, &results[0], "concurrent results must be byte-identical");
    }

    // A later repeat is a pure cache hit with the same bytes.
    let again = roundtrip(&addr, &sim_request(200, QUICK)).unwrap();
    assert_eq!(expect_ok(&again), results[0]);

    let record = JsonValue::parse(&results[0]).unwrap();
    assert_eq!(record.get("workload").unwrap().as_str(), Some("hotspot"));
    assert!(stat(&record, &["cycles"]) > 0);

    let s = stats(&addr);
    assert_eq!(stat(&s, &["cache", "insertions"]), 1, "one simulation ran");
    assert_eq!(stat(&s, &["cache", "misses"]), 1);
    assert_eq!(stat(&s, &["cache", "hits"]), 8, "8 of 9 requests were hits");
    assert_eq!(stat(&s, &["ops", "simulate"]), 9);
    assert_eq!(stat(&s, &["errors"]), 0);

    handle.shutdown();
    handle.wait();
}

#[test]
fn overload_sheds_with_structured_error_and_recovers() {
    // One shard, queue depth one: at most one running and one queued
    // job; everything else must be shed as `overloaded`.
    let handle = server(1, 1);
    let addr = handle.addr().to_string();

    let clients: Vec<_> = (0..6)
        .map(|seed| {
            let addr = addr.clone();
            thread::spawn(move || roundtrip(&addr, &sim_request(seed, &slow(seed))).unwrap())
        })
        .collect();
    let responses: Vec<Response> = clients.into_iter().map(|c| c.join().unwrap()).collect();

    let mut ok = 0;
    let mut shed = 0;
    for resp in &responses {
        match resp {
            Response::Ok { .. } => ok += 1,
            Response::Err { code, message, .. } => {
                assert_eq!(code, "overloaded", "only overloaded errors expected");
                assert!(message.contains("load shed"), "got {message}");
                shed += 1;
            }
        }
    }
    assert!(ok >= 1, "at least the first job must complete");
    assert!(shed >= 1, "with 6 jobs on a depth-1 queue some must shed");

    // Shedding is not a crash: the server still answers, and its own
    // counters agree with what the clients saw.
    // (The snapshot is taken before the stats call's own ok-count.)
    let s = stats(&addr);
    assert_eq!(stat(&s, &["overloaded"]), shed);
    assert_eq!(stat(&s, &["ok"]), ok);

    handle.shutdown();
    handle.wait();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let handle = server(1, 4);
    let addr = handle.addr().to_string();

    // A slow request is mid-flight when shutdown arrives.
    let in_flight = {
        let addr = addr.clone();
        thread::spawn(move || roundtrip(&addr, &sim_request(1, &slow(42))).unwrap())
    };
    thread::sleep(Duration::from_millis(200));

    let resp = roundtrip(&addr, &Request::new(2, "shutdown")).unwrap();
    let draining = JsonValue::parse(expect_ok(&resp)).unwrap();
    assert_eq!(draining.get("draining").unwrap().as_bool(), Some(true));

    // The in-flight request still gets its full result...
    let resp = in_flight.join().unwrap();
    let record = JsonValue::parse(expect_ok(&resp)).unwrap();
    assert!(stat(&record, &["cycles"]) > 0, "drained result is complete");

    // ...and wait() returns once everything is answered. Afterwards the
    // listener is gone: new connections are refused or reset.
    handle.wait();
    let refused = match TcpStream::connect(&addr) {
        Err(_) => true,
        Ok(stream) => {
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            matches!(reader.read_line(&mut line), Ok(0) | Err(_))
        }
    };
    assert!(refused, "server must not accept work after wait()");
}

#[test]
fn requests_after_shutdown_are_refused_as_shutting_down() {
    let handle = server(1, 4);
    let addr = handle.addr().to_string();

    // Open a connection first; it stays usable across shutdown.
    let stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    let resp = roundtrip(&addr, &Request::new(1, "shutdown")).unwrap();
    assert!(resp.is_ok());

    let mut line = sim_request(2, QUICK).encode();
    line.push('\n');
    writer.write_all(line.as_bytes()).unwrap();
    writer.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    let resp = Response::decode(reply.trim_end()).unwrap();
    let (code, message) = expect_err(&resp);
    assert_eq!(code, "shutting-down");
    assert!(message.contains("draining"), "got {message}");
    drop(writer);

    handle.wait();
}

#[test]
fn protocol_and_validation_errors_are_structured() {
    let handle = server(1, 4);
    let addr = handle.addr().to_string();

    // One pipelined connection exercising every error path in order;
    // the server must answer each line and keep the connection open.
    let stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    let lines = [
        "this is not json".to_string(),
        Request::new(11, "frobnicate").encode(),
        sim_request(12, r#"{"workload":"no-such-app"}"#).encode(),
        sim_request(13, r#"{"workload":"bfs","policy":"FASTEST"}"#).encode(),
        sim_request(14, r#"{"workload":"bfs","capacity_pct":500}"#).encode(),
        sim_request(15, r#"{"workload":"bfs","mem_ops":0}"#).encode(),
        sim_request(16, r#"{"workload":"bfs","policy":"MIGRATE:hot=x"}"#).encode(),
        sim_request(17, r#"{"workload":"bfs","policy":"MIGRATE:epoch=0"}"#).encode(),
        // A comma-splitting client turned the spec into an array; that
        // must be rejected, never silently defaulted to BW-AWARE.
        sim_request(
            18,
            r#"{"workload":"bfs","policy":["MIGRATE:epoch=2000","hot=2"]}"#,
        )
        .encode(),
    ];
    for line in &lines {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
    }
    writer.flush().unwrap();

    let mut read_response = || {
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        Response::decode(reply.trim_end()).unwrap()
    };

    let expected: [(u64, &str); 9] = [
        (0, "bad-json"), // id 0: the request never parsed
        (11, "unknown-op"),
        (12, "unknown-workload"),
        (13, "invalid-request"),
        (14, "invalid-request"),
        (15, "invalid-request"),
        // A recognized-but-malformed MIGRATE spec keeps its dedicated
        // stable code so clients can distinguish it from a typo'd name.
        (16, "invalid-policy-spec"),
        (17, "invalid-policy-spec"),
        (18, "invalid-request"),
    ];
    for (want_id, want_code) in expected {
        let resp = read_response();
        assert_eq!(resp.id(), want_id);
        let (code, _) = expect_err(&resp);
        assert_eq!(code, want_code, "for request id {want_id}");
    }

    // The same connection still serves valid work after six errors.
    let mut line = Request::new(20, "stats").encode();
    line.push('\n');
    writer.write_all(line.as_bytes()).unwrap();
    writer.flush().unwrap();
    let resp = read_response();
    assert!(resp.is_ok(), "connection must survive bad requests");

    handle.shutdown();
    handle.wait();
}

#[test]
fn migrate_policy_simulates_with_migration_counters() {
    let handle = server(1, 4);
    let addr = handle.addr().to_string();

    // A capacity-constrained run with an eager migrate spec: short
    // epochs and a low hot threshold so pages actually move.
    let body = r#"{"workload":"hotspot","policy":"MIGRATE:epoch=2000,hot=2",
                   "mem_ops":4000,"sms":2,"capacity_pct":10,"seed":7}"#;
    let resp = roundtrip(&addr, &sim_request(1, body)).unwrap();
    let record = JsonValue::parse(expect_ok(&resp)).unwrap();
    assert!(stat(&record, &["cycles"]) > 0);
    assert!(
        record
            .get("config")
            .unwrap()
            .as_str()
            .unwrap()
            .starts_with("MIGRATE(epoch=2000,hot=2,"),
        "cache key and record carry the canonical policy name"
    );
    assert!(
        stat(&record, &["migration", "epochs"]) >= 1,
        "migration telemetry block must be present for MIGRATE runs"
    );
    assert!(stat(&record, &["migration", "pages_migrated"]) >= 1);

    // Same request again: a pure cache hit with identical bytes.
    let again = roundtrip(&addr, &sim_request(2, body)).unwrap();
    assert_eq!(expect_ok(&again), expect_ok(&resp));

    handle.shutdown();
    handle.wait();
}

#[test]
fn place_reports_hints_for_every_structure() {
    let handle = server(1, 4);
    let addr = handle.addr().to_string();

    let req = Request::with_params(
        1,
        "place",
        JsonValue::parse(r#"{"workload":"bfs","capacity_pct":10}"#).unwrap(),
    );
    let resp = roundtrip(&addr, &req).unwrap();
    let result = JsonValue::parse(expect_ok(&resp)).unwrap();

    let hints = result.get("hints").unwrap().as_array().unwrap();
    assert_eq!(hints.len(), 6, "bfs has six data structures");
    for h in hints {
        let hint = h.get("hint").unwrap().as_str().unwrap();
        assert!(
            matches!(hint, "BO" | "CO" | "BW"),
            "machine-abstract hint, got {hint}"
        );
        assert!(stat(h, &["bytes"]) > 0);
        assert!(h.get("name").unwrap().as_str().is_some());
    }
    assert!(stat(&result, &["bo_bytes"]) > 0);
    let frac = result.get("bo_traffic_fraction").unwrap().as_f64().unwrap();
    assert!((0.0..=1.0).contains(&frac));

    // Raw annotation arrays work without naming a catalog workload.
    let req = Request::with_params(
        2,
        "place",
        JsonValue::parse(r#"{"sizes":[1048576,4096],"hotness":[0.1,0.9],"bo_bytes":8192}"#)
            .unwrap(),
    );
    let resp = roundtrip(&addr, &req).unwrap();
    let result = JsonValue::parse(expect_ok(&resp)).unwrap();
    let hints = result.get("hints").unwrap().as_array().unwrap();
    assert_eq!(hints.len(), 2);
    assert_eq!(
        hints[1].get("hint").unwrap().as_str(),
        Some("BO"),
        "the small hot structure belongs in BO"
    );

    handle.shutdown();
    handle.wait();
}
