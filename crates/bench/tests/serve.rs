//! Integration tests for `hetmem-serve`: the sharded placement service
//! end-to-end over real loopback TCP.
//!
//! Covers the service's contract: deterministic byte-identical results
//! under concurrent clients, cache hits that reproduce the miss bytes
//! exactly, structured `overloaded` load shedding, graceful
//! drain-on-shutdown, and machine-readable error codes for every
//! protocol failure.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use hetmem::{record_for, Capacity, Placement, RunBuilder, TelemetrySink};
use hetmem_bench::serve::{roundtrip, start, ServeConfig, ServerHandle};
use hetmem_harness::json::JsonValue;
use hetmem_harness::{parse_prometheus, Request, Response};

fn sim_request(id: u64, json_params: &str) -> Request {
    Request::with_params(id, "simulate", JsonValue::parse(json_params).unwrap())
}

fn expect_ok(resp: &Response) -> &str {
    match resp {
        Response::Ok { result, .. } => result,
        Response::Err { code, message, .. } => panic!("expected ok, got {code}: {message}"),
    }
}

fn expect_err(resp: &Response) -> (&str, &str) {
    match resp {
        Response::Err { code, message, .. } => (code, message),
        Response::Ok { result, .. } => panic!("expected error, got ok: {result}"),
    }
}

fn server(shards: usize, queue_depth: usize) -> ServerHandle {
    start(ServeConfig {
        shards,
        queue_depth,
        ..ServeConfig::default()
    })
    .expect("bind loopback")
}

fn stats(addr: &str) -> JsonValue {
    let resp = roundtrip(addr, &Request::new(900, "stats")).unwrap();
    JsonValue::parse(expect_ok(&resp)).unwrap()
}

fn stat(v: &JsonValue, path: &[&str]) -> u64 {
    let mut cur = v;
    for key in path {
        cur = cur.get(key).unwrap_or_else(|| panic!("missing {path:?}"));
    }
    cur.as_u64().unwrap_or_else(|| panic!("{path:?} not a u64"))
}

/// A quick simulate body (~tens of ms in debug builds).
const QUICK: &str = r#"{"workload":"hotspot","policy":"LOCAL","mem_ops":4000,"sms":2,"seed":7}"#;

/// A slow simulate body (~1s in debug builds) used to occupy workers.
fn slow(seed: u64) -> String {
    format!(r#"{{"workload":"hotspot","policy":"LOCAL","mem_ops":120000,"sms":2,"seed":{seed}}}"#)
}

#[test]
fn concurrent_identical_clients_get_byte_identical_results() {
    let handle = server(2, 32);
    let addr = handle.addr().to_string();

    // 8 clients race the same request; identical keys hash to one
    // shard, so exactly one simulation runs and the rest are hits.
    let clients: Vec<_> = (0..8)
        .map(|i| {
            let addr = addr.clone();
            thread::spawn(move || {
                let resp = roundtrip(&addr, &sim_request(100 + i, QUICK)).unwrap();
                assert_eq!(resp.id(), 100 + i);
                expect_ok(&resp).to_string()
            })
        })
        .collect();
    let results: Vec<String> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    for r in &results[1..] {
        assert_eq!(r, &results[0], "concurrent results must be byte-identical");
    }

    // A later repeat is a pure cache hit with the same bytes.
    let again = roundtrip(&addr, &sim_request(200, QUICK)).unwrap();
    assert_eq!(expect_ok(&again), results[0]);

    let record = JsonValue::parse(&results[0]).unwrap();
    assert_eq!(record.get("workload").unwrap().as_str(), Some("hotspot"));
    assert!(stat(&record, &["cycles"]) > 0);

    let s = stats(&addr);
    assert_eq!(stat(&s, &["cache", "insertions"]), 1, "one simulation ran");
    assert_eq!(stat(&s, &["cache", "misses"]), 1);
    assert_eq!(stat(&s, &["cache", "hits"]), 8, "8 of 9 requests were hits");
    assert_eq!(stat(&s, &["ops", "simulate"]), 9);
    assert_eq!(stat(&s, &["errors"]), 0);

    handle.shutdown();
    handle.wait();
}

#[test]
fn overload_sheds_with_structured_error_and_recovers() {
    // One shard, queue depth one: at most one running and one queued
    // job; everything else must be shed as `overloaded`.
    let handle = server(1, 1);
    let addr = handle.addr().to_string();

    let clients: Vec<_> = (0..6)
        .map(|seed| {
            let addr = addr.clone();
            thread::spawn(move || roundtrip(&addr, &sim_request(seed, &slow(seed))).unwrap())
        })
        .collect();
    let responses: Vec<Response> = clients.into_iter().map(|c| c.join().unwrap()).collect();

    let mut ok = 0;
    let mut shed = 0;
    for resp in &responses {
        match resp {
            Response::Ok { .. } => ok += 1,
            Response::Err { code, message, .. } => {
                assert_eq!(code, "overloaded", "only overloaded errors expected");
                assert!(message.contains("load shed"), "got {message}");
                shed += 1;
            }
        }
    }
    assert!(ok >= 1, "at least the first job must complete");
    assert!(shed >= 1, "with 6 jobs on a depth-1 queue some must shed");

    // Shedding is not a crash: the server still answers, and its own
    // counters agree with what the clients saw.
    // (The snapshot is taken before the stats call's own ok-count.)
    let s = stats(&addr);
    assert_eq!(stat(&s, &["overloaded"]), shed);
    assert_eq!(stat(&s, &["ok"]), ok);

    handle.shutdown();
    handle.wait();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let handle = server(1, 4);
    let addr = handle.addr().to_string();

    // A slow request is mid-flight when shutdown arrives.
    let in_flight = {
        let addr = addr.clone();
        thread::spawn(move || roundtrip(&addr, &sim_request(1, &slow(42))).unwrap())
    };
    thread::sleep(Duration::from_millis(200));

    let resp = roundtrip(&addr, &Request::new(2, "shutdown")).unwrap();
    let draining = JsonValue::parse(expect_ok(&resp)).unwrap();
    assert_eq!(draining.get("draining").unwrap().as_bool(), Some(true));

    // The in-flight request still gets its full result...
    let resp = in_flight.join().unwrap();
    let record = JsonValue::parse(expect_ok(&resp)).unwrap();
    assert!(stat(&record, &["cycles"]) > 0, "drained result is complete");

    // ...and wait() returns once everything is answered. Afterwards the
    // listener is gone: new connections are refused or reset.
    handle.wait();
    let refused = match TcpStream::connect(&addr) {
        Err(_) => true,
        Ok(stream) => {
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            matches!(reader.read_line(&mut line), Ok(0) | Err(_))
        }
    };
    assert!(refused, "server must not accept work after wait()");
}

#[test]
fn requests_after_shutdown_are_refused_as_shutting_down() {
    let handle = server(1, 4);
    let addr = handle.addr().to_string();

    // Open a connection first; it stays usable across shutdown.
    let stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    let resp = roundtrip(&addr, &Request::new(1, "shutdown")).unwrap();
    assert!(resp.is_ok());

    let mut line = sim_request(2, QUICK).encode();
    line.push('\n');
    writer.write_all(line.as_bytes()).unwrap();
    writer.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    let resp = Response::decode(reply.trim_end()).unwrap();
    let (code, message) = expect_err(&resp);
    assert_eq!(code, "shutting-down");
    assert!(message.contains("draining"), "got {message}");
    drop(writer);

    handle.wait();
}

#[test]
fn protocol_and_validation_errors_are_structured() {
    let handle = server(1, 4);
    let addr = handle.addr().to_string();

    // One pipelined connection exercising every error path in order;
    // the server must answer each line and keep the connection open.
    let stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    let lines = [
        "this is not json".to_string(),
        Request::new(11, "frobnicate").encode(),
        sim_request(12, r#"{"workload":"no-such-app"}"#).encode(),
        sim_request(13, r#"{"workload":"bfs","policy":"FASTEST"}"#).encode(),
        sim_request(14, r#"{"workload":"bfs","capacity_pct":500}"#).encode(),
        sim_request(15, r#"{"workload":"bfs","mem_ops":0}"#).encode(),
        sim_request(16, r#"{"workload":"bfs","policy":"MIGRATE:hot=x"}"#).encode(),
        sim_request(17, r#"{"workload":"bfs","policy":"MIGRATE:epoch=0"}"#).encode(),
        // A comma-splitting client turned the spec into an array; that
        // must be rejected, never silently defaulted to BW-AWARE.
        sim_request(
            18,
            r#"{"workload":"bfs","policy":["MIGRATE:epoch=2000","hot=2"]}"#,
        )
        .encode(),
    ];
    for line in &lines {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
    }
    writer.flush().unwrap();

    let mut read_response = || {
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        Response::decode(reply.trim_end()).unwrap()
    };

    let expected: [(u64, &str); 9] = [
        (0, "bad-json"), // id 0: the request never parsed
        (11, "unknown-op"),
        (12, "unknown-workload"),
        (13, "invalid-request"),
        (14, "invalid-request"),
        (15, "invalid-request"),
        // A recognized-but-malformed MIGRATE spec keeps its dedicated
        // stable code so clients can distinguish it from a typo'd name.
        (16, "invalid-policy-spec"),
        (17, "invalid-policy-spec"),
        (18, "invalid-request"),
    ];
    for (want_id, want_code) in expected {
        let resp = read_response();
        assert_eq!(resp.id(), want_id);
        let (code, _) = expect_err(&resp);
        assert_eq!(code, want_code, "for request id {want_id}");
    }

    // The same connection still serves valid work after six errors.
    let mut line = Request::new(20, "stats").encode();
    line.push('\n');
    writer.write_all(line.as_bytes()).unwrap();
    writer.flush().unwrap();
    let resp = read_response();
    assert!(resp.is_ok(), "connection must survive bad requests");

    handle.shutdown();
    handle.wait();
}

#[test]
fn migrate_policy_simulates_with_migration_counters() {
    let handle = server(1, 4);
    let addr = handle.addr().to_string();

    // A capacity-constrained run with an eager migrate spec: short
    // epochs and a low hot threshold so pages actually move.
    let body = r#"{"workload":"hotspot","policy":"MIGRATE:epoch=2000,hot=2",
                   "mem_ops":4000,"sms":2,"capacity_pct":10,"seed":7}"#;
    let resp = roundtrip(&addr, &sim_request(1, body)).unwrap();
    let record = JsonValue::parse(expect_ok(&resp)).unwrap();
    assert!(stat(&record, &["cycles"]) > 0);
    assert!(
        record
            .get("config")
            .unwrap()
            .as_str()
            .unwrap()
            .starts_with("MIGRATE(epoch=2000,hot=2,"),
        "cache key and record carry the canonical policy name"
    );
    assert!(
        stat(&record, &["migration", "epochs"]) >= 1,
        "migration telemetry block must be present for MIGRATE runs"
    );
    assert!(stat(&record, &["migration", "pages_migrated"]) >= 1);

    // Same request again: a pure cache hit with identical bytes.
    let again = roundtrip(&addr, &sim_request(2, body)).unwrap();
    assert_eq!(expect_ok(&again), expect_ok(&resp));

    handle.shutdown();
    handle.wait();
}

#[test]
fn metrics_op_serves_both_formats_and_conserves_counts() {
    let handle = server(2, 32);
    let addr = handle.addr().to_string();

    // Mixed traffic: a place, two simulates (miss + hit), a stats, and
    // one line that never parses.
    roundtrip(
        &addr,
        &Request::with_params(
            1,
            "place",
            JsonValue::parse(r#"{"workload":"bfs","capacity_pct":10}"#).unwrap(),
        ),
    )
    .unwrap();
    roundtrip(&addr, &sim_request(2, QUICK)).unwrap();
    roundtrip(&addr, &sim_request(3, QUICK)).unwrap();
    stats(&addr);
    {
        let stream = TcpStream::connect(&addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(b"not json\n").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
    }

    // JSON format: per-op histogram counts must sum to
    // hm_requests_total (the conservation invariant: both sides are
    // recorded before each response is written, so this sequential
    // scrape sees a consistent ledger).
    let resp = roundtrip(&addr, &Request::new(10, "metrics")).unwrap();
    let doc = JsonValue::parse(expect_ok(&resp)).unwrap();
    let families = doc.get("metrics").unwrap().as_array().unwrap();
    let family = |name: &str| {
        families
            .iter()
            .find(|f| f.get("name").and_then(JsonValue::as_str) == Some(name))
            .unwrap_or_else(|| panic!("no {name} family"))
    };
    let requests_total = family("hm_requests_total")
        .get("series")
        .unwrap()
        .as_array()
        .unwrap()[0]
        .get("value")
        .unwrap()
        .as_u64()
        .unwrap();
    assert_eq!(requests_total, 5, "4 requests + the decode failure");
    let duration_series = family("hm_request_duration_us")
        .get("series")
        .unwrap()
        .as_array()
        .unwrap()
        .to_vec();
    let mut by_op = std::collections::BTreeMap::new();
    for s in &duration_series {
        let op = s
            .get("labels")
            .and_then(|l| l.get("op"))
            .and_then(JsonValue::as_str)
            .unwrap()
            .to_string();
        by_op.insert(op, s.get("count").unwrap().as_u64().unwrap());
    }
    assert_eq!(by_op.values().sum::<u64>(), requests_total);
    assert_eq!(by_op["place"], 1);
    assert_eq!(by_op["simulate"], 2);
    assert_eq!(by_op["stats"], 1);
    assert_eq!(by_op["decode"], 1);
    // The simulate histogram carries a real latency distribution.
    let sim = duration_series
        .iter()
        .find(|s| {
            s.get("labels")
                .and_then(|l| l.get("op"))
                .and_then(JsonValue::as_str)
                == Some("simulate")
        })
        .unwrap();
    assert!(sim.get("p99").unwrap().as_u64().unwrap() > 0);
    // Cache mirrors agree with stats: one miss, one hit.
    let cache_series = family("hm_cache_events_total")
        .get("series")
        .unwrap()
        .as_array()
        .unwrap()
        .to_vec();
    let cache_event = |ev: &str| {
        cache_series
            .iter()
            .find(|s| {
                s.get("labels")
                    .and_then(|l| l.get("event"))
                    .and_then(JsonValue::as_str)
                    == Some(ev)
            })
            .and_then(|s| s.get("value"))
            .and_then(JsonValue::as_u64)
            .unwrap()
    };
    assert_eq!(cache_event("hit"), 1);
    assert_eq!(cache_event("miss"), 1);

    // Prometheus format: the exposition must validate, and the request
    // ledger keeps growing (the JSON scrape above is now counted).
    let req = Request::with_params(
        11,
        "metrics",
        JsonValue::parse(r#"{"format":"prometheus"}"#).unwrap(),
    );
    let resp = roundtrip(&addr, &req).unwrap();
    let body = JsonValue::parse(expect_ok(&resp)).unwrap();
    assert_eq!(body.get("format").unwrap().as_str(), Some("prometheus"));
    let text = body.get("text").unwrap().as_str().unwrap().to_string();
    let samples = parse_prometheus(&text).expect("valid exposition");
    assert!(samples > 20, "got only {samples} samples");
    assert!(text.contains("hm_requests_total 6"), "JSON scrape counted");
    assert!(text.contains(r#"hm_request_duration_us_count{op="metrics"} 1"#));

    // An unknown format is a structured error, not a hang or a panic.
    let req = Request::with_params(
        12,
        "metrics",
        JsonValue::parse(r#"{"format":"xml"}"#).unwrap(),
    );
    let resp = roundtrip(&addr, &req).unwrap();
    let (code, message) = expect_err(&resp);
    assert_eq!(code, "invalid-request");
    assert!(message.contains("xml"));

    handle.shutdown();
    handle.wait();
}

#[test]
fn request_ids_are_echoed_and_traced_through_telemetry() {
    let dir = std::env::temp_dir().join(format!("hetmem-serve-rid-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let sink = Arc::new(TelemetrySink::create(&dir).unwrap());
    let handle = start(ServeConfig {
        shards: 1,
        queue_depth: 8,
        telemetry: Some(sink),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();

    // A traced simulate: the response echoes the client id.
    let req = sim_request(1, QUICK).request_id("it-sim-1").trace();
    let resp = roundtrip(&addr, &req).unwrap();
    assert_eq!(resp.request_id(), Some("it-sim-1"));
    expect_ok(&resp);

    // Errors echo it too — the join key survives the failure path.
    let req = Request::new(2, "frobnicate").request_id("it-err-1");
    let resp = roundtrip(&addr, &req).unwrap();
    assert_eq!(resp.request_id(), Some("it-err-1"));
    assert_eq!(expect_err(&resp).0, "unknown-op");

    // Without a client id the response carries none (a server-side
    // srv-N id exists only in telemetry, keeping identical request
    // lines byte-identical).
    let resp = roundtrip(&addr, &sim_request(3, QUICK)).unwrap();
    assert_eq!(resp.request_id(), None);

    handle.shutdown();
    handle.wait();

    let log = std::fs::read_to_string(dir.join("serve.jsonl")).unwrap();
    let lines: Vec<JsonValue> = log.lines().map(|l| JsonValue::parse(l).unwrap()).collect();
    let of_kind = |kind: &str| {
        lines
            .iter()
            .filter(|v| v.get("kind").and_then(JsonValue::as_str) == Some(kind))
            .collect::<Vec<_>>()
    };
    let requests = of_kind("serve-request");
    let rid = |v: &JsonValue| {
        v.get("request_id")
            .and_then(JsonValue::as_str)
            .unwrap()
            .to_string()
    };
    // Every request line carries an id; client ids verbatim, the rest
    // server-generated.
    assert!(requests.iter().any(|v| rid(v) == "it-sim-1"));
    assert!(requests.iter().any(|v| rid(v) == "it-err-1"
        && v.get("status").and_then(JsonValue::as_str) == Some("unknown-op")));
    assert!(requests.iter().all(|v| !rid(v).is_empty()));
    assert!(requests.iter().any(|v| rid(v).starts_with("srv-")));

    // Spans exist only for the traced request, chain end-to-start from
    // zero, and cover the worker phases of a fresh simulate.
    let spans = of_kind("serve-span");
    assert!(!spans.is_empty(), "traced request must emit spans");
    assert!(spans.iter().all(|v| rid(v) == "it-sim-1"));
    let phases: Vec<&str> = spans
        .iter()
        .map(|v| v.get("phase").and_then(JsonValue::as_str).unwrap())
        .collect();
    for want in [
        "read",
        "decode",
        "queue_wait",
        "cache_lookup",
        "execute",
        "encode",
    ] {
        assert!(phases.contains(&want), "missing {want} span in {phases:?}");
    }
    let mut cursor = 0u64;
    for span in &spans {
        assert_eq!(stat(span, &["start_us"]), cursor, "spans must chain");
        cursor += stat(span, &["dur_us"]);
    }
}

#[test]
fn served_simulate_bytes_match_an_unobserved_local_run() {
    // The no-perturbation contract: the observability layer must not
    // change simulation results. A served simulate's body is exactly
    // the record a direct in-process run produces.
    let handle = server(1, 4);
    let addr = handle.addr().to_string();
    let resp = roundtrip(&addr, &sim_request(1, QUICK)).unwrap();
    let served = expect_ok(&resp).to_string();
    handle.shutdown();
    handle.wait();

    let mut spec = workloads::catalog::by_name("hotspot").unwrap();
    spec.mem_ops = 4000;
    spec.seed = 7;
    let mut sim = gpusim::SimConfig::paper_baseline();
    sim.num_sms = 2;
    let topo = hetmem::topology_for(&sim, &vec![1; sim.pools.len()]);
    let policy = mempolicy::Mempolicy::parse("LOCAL", &topo).unwrap();
    let label = policy.name();
    let run = RunBuilder::new(&spec, &sim)
        .capacity(Capacity::Unconstrained)
        .placement(&Placement::Policy(policy))
        .run();
    let local = record_for("serve", spec.name, &label, &sim, &run).jsonl(false);
    assert_eq!(served, local, "served bytes must match the local run");
}

#[test]
fn place_reports_hints_for_every_structure() {
    let handle = server(1, 4);
    let addr = handle.addr().to_string();

    let req = Request::with_params(
        1,
        "place",
        JsonValue::parse(r#"{"workload":"bfs","capacity_pct":10}"#).unwrap(),
    );
    let resp = roundtrip(&addr, &req).unwrap();
    let result = JsonValue::parse(expect_ok(&resp)).unwrap();

    let hints = result.get("hints").unwrap().as_array().unwrap();
    assert_eq!(hints.len(), 6, "bfs has six data structures");
    for h in hints {
        let hint = h.get("hint").unwrap().as_str().unwrap();
        assert!(
            matches!(hint, "BO" | "CO" | "BW"),
            "machine-abstract hint, got {hint}"
        );
        assert!(stat(h, &["bytes"]) > 0);
        assert!(h.get("name").unwrap().as_str().is_some());
    }
    assert!(stat(&result, &["bo_bytes"]) > 0);
    let frac = result.get("bo_traffic_fraction").unwrap().as_f64().unwrap();
    assert!((0.0..=1.0).contains(&frac));

    // Raw annotation arrays work without naming a catalog workload.
    let req = Request::with_params(
        2,
        "place",
        JsonValue::parse(r#"{"sizes":[1048576,4096],"hotness":[0.1,0.9],"bo_bytes":8192}"#)
            .unwrap(),
    );
    let resp = roundtrip(&addr, &req).unwrap();
    let result = JsonValue::parse(expect_ok(&resp)).unwrap();
    let hints = result.get("hints").unwrap().as_array().unwrap();
    assert_eq!(hints.len(), 2);
    assert_eq!(
        hints[1].get("hint").unwrap().as_str(),
        Some("BO"),
        "the small hot structure belongs in BO"
    );

    handle.shutdown();
    handle.wait();
}
