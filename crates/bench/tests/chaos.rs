//! Chaos loopback tests: a server under deterministic fault injection
//! must answer every request either **byte-correct** or with a stable
//! error code — never with silently wrong bytes, and never by hanging.
//!
//! The canonical bytes come from a clean server first; then a chaos
//! server (seeded worker panics, stalls, torn response writes, cache
//! corruption) serves the same requests to a fleet of retrying
//! clients, and every success is compared byte-for-byte. Deterministic
//! single-fault tests pin down each failure path: a crashed worker
//! surfaces as `worker-restarted` and the shard recovers; an expired
//! deadline is refused as `deadline-exceeded`; corrupted cache entries
//! are detected by checksum and recomputed rather than served.
//!
//! This suite deliberately stays on the deprecated `client::call` shim:
//! chaos coverage through the old entry point pins the shim to the
//! same retry engine `ClientBuilder` uses.
#![allow(deprecated)]

use std::collections::HashMap;
use std::time::Duration;

use hetmem_bench::client::{call, ClientOptions};
use hetmem_bench::serve::{roundtrip, start, ServeConfig};
use hetmem_harness::json::JsonValue;
use hetmem_harness::{Backoff, FaultPlan, Request, Response};

/// The request mix: small enough to simulate in milliseconds.
const POINTS: [(&str, &str); 4] = [
    ("bfs", "LOCAL"),
    ("bfs", "BW-AWARE"),
    ("hotspot", "LOCAL"),
    ("hotspot", "INTERLEAVE"),
];

fn sim_request(id: u64, workload: &str, policy: &str) -> Request {
    Request::with_params(
        id,
        "simulate",
        JsonValue::Object(vec![
            ("workload".to_string(), JsonValue::Str(workload.to_string())),
            ("policy".to_string(), JsonValue::Str(policy.to_string())),
            ("mem_ops".to_string(), JsonValue::Num(1500.0)),
            ("sms".to_string(), JsonValue::Num(2.0)),
        ]),
    )
}

/// Runs each point once on a clean server and returns its bytes.
fn canonical_bodies() -> HashMap<(&'static str, &'static str), String> {
    let handle = start(ServeConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    let mut bodies = HashMap::new();
    for (i, (w, p)) in POINTS.iter().enumerate() {
        let resp = roundtrip(&addr, &sim_request(i as u64 + 1, w, p)).unwrap();
        match resp {
            Response::Ok { result, .. } => {
                bodies.insert((*w, *p), result);
            }
            Response::Err { code, message, .. } => {
                panic!("clean server failed {w}/{p}: {code}: {message}")
            }
        }
    }
    let _ = roundtrip(&addr, &Request::new(99, "shutdown"));
    handle.wait();
    bodies
}

fn stat(v: &JsonValue, path: &[&str]) -> u64 {
    let mut cur = v.clone();
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("missing {key}"))
            .clone();
    }
    cur.as_u64().unwrap_or_else(|| panic!("{path:?} not a u64"))
}

/// The headline chaos test: seeded panics + stalls + torn writes +
/// cache corruption, many retrying clients, and the invariant that
/// every request ends byte-correct or with a stable error code.
#[test]
fn chaos_fleet_gets_byte_correct_or_stable_errors() {
    let canonical = canonical_bodies();
    let plan = FaultPlan::parse("seed=42,panic=0.1,latency=0.2,latency-ms=5,wire=0.1,corrupt=0.2")
        .unwrap();
    let handle = start(ServeConfig {
        shards: 2,
        queue_depth: 16,
        faults: Some(plan),
        read_timeout_ms: 10_000,
        write_timeout_ms: 10_000,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 8;
    let stable_codes = [
        "overloaded",
        "worker-restarted",
        "deadline-exceeded",
        "shutting-down",
    ];
    let mut ok_count = 0usize;
    let mut transport_failures = 0usize;
    std::thread::scope(|scope| {
        let outcomes: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let addr = addr.clone();
                let canonical = &canonical;
                scope.spawn(move || {
                    let opts = ClientOptions {
                        retries: 12,
                        backoff: Backoff::new(1, 10, c as u64),
                        deadline_ms: None,
                        read_timeout: Duration::from_secs(30),
                        fleet: false,
                    };
                    let mut ok = 0usize;
                    let mut transport = 0usize;
                    for i in 0..PER_CLIENT {
                        let (w, p) = POINTS[(c + i) % POINTS.len()];
                        let id = (c * PER_CLIENT + i) as u64 + 1;
                        match call(&addr, &sim_request(id, w, p), &opts) {
                            Ok(outcome) => match outcome.response {
                                Response::Ok { result, .. } => {
                                    assert_eq!(
                                        result,
                                        canonical[&(w, p)],
                                        "{w}/{p} must be byte-identical to the clean run"
                                    );
                                    ok += 1;
                                }
                                Response::Err { code, .. } => {
                                    assert!(
                                        stable_codes.contains(&code.as_str()),
                                        "unexpected error code '{code}' for {w}/{p}"
                                    );
                                }
                            },
                            // Transport failure after retries: allowed
                            // (the wire is being torn on purpose) but
                            // never a protocol violation.
                            Err(e) => {
                                assert_ne!(
                                    e.kind(),
                                    std::io::ErrorKind::InvalidData,
                                    "server must never emit an unparseable response line"
                                );
                                transport += 1;
                            }
                        }
                    }
                    (ok, transport)
                })
            })
            .collect();
        for h in outcomes {
            let (ok, transport) = h.join().unwrap();
            ok_count += ok;
            transport_failures += transport;
        }
    });
    assert!(
        ok_count >= CLIENTS * PER_CLIENT / 2,
        "with 12 retries most requests must land: {ok_count}/{} ok, \
         {transport_failures} transport failures",
        CLIENTS * PER_CLIENT
    );

    // Give the last supervisor restart a beat to be counted, then
    // check the chaos actually fired and the books are consistent.
    std::thread::sleep(Duration::from_millis(100));
    let opts = ClientOptions {
        retries: 12,
        backoff: Backoff::new(1, 10, 999),
        ..ClientOptions::default()
    };
    let outcome = call(&addr, &Request::new(9000, "stats"), &opts).unwrap();
    let Response::Ok { result, .. } = outcome.response else {
        panic!("stats must succeed");
    };
    let s = JsonValue::parse(&result).unwrap();
    assert!(
        stat(&s, &["faults", "injected"]) > 0,
        "the fault plan must actually have fired"
    );
    if stat(&s, &["faults", "panics"]) > 0 {
        assert!(
            stat(&s, &["worker_restarts"]) > 0,
            "every injected panic implies a supervised restart"
        );
    }
    if stat(&s, &["faults", "corruptions"]) > 0 {
        assert!(
            stat(&s, &["cache", "corruptions"]) > 0,
            "injected corruption must be detected by the cache checksum"
        );
    }

    let _ = call(&addr, &Request::new(9001, "shutdown"), &opts);
    handle.wait();
}

/// Every injected worker panic maps to `worker-restarted`, and the
/// shard keeps serving afterwards (the supervisor respawned it).
#[test]
fn worker_panic_surfaces_as_worker_restarted_and_shard_recovers() {
    let plan = FaultPlan::parse("seed=7,panic=1").unwrap();
    let handle = start(ServeConfig {
        shards: 1,
        faults: Some(plan),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();

    for attempt in 0..3 {
        let resp = roundtrip(&addr, &sim_request(attempt + 1, "bfs", "LOCAL")).unwrap();
        match resp {
            Response::Err { code, .. } => assert_eq!(code, "worker-restarted"),
            Response::Ok { .. } => panic!("panic=1 cannot produce a success"),
        }
    }
    // The control plane never touches the workers: stats still works
    // and counts one restart per crashed job. The supervisor increments
    // the counter *after* the reply channel drops (that drop is what
    // answered the client), so poll briefly for the books to balance.
    let mut s = JsonValue::Null;
    for _ in 0..100 {
        let resp = roundtrip(&addr, &Request::new(50, "stats")).unwrap();
        let Response::Ok { result, .. } = resp else {
            panic!("stats must succeed on a server with crashing workers");
        };
        s = JsonValue::parse(&result).unwrap();
        if stat(&s, &["worker_restarts"]) >= 3 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(stat(&s, &["worker_restarts"]) >= 3);
    assert_eq!(
        stat(&s, &["faults", "panics"]),
        stat(&s, &["worker_restarts"])
    );

    let _ = roundtrip(&addr, &Request::new(51, "shutdown"));
    handle.wait();
}

/// Deadlines are enforced at every cooperative boundary: an already
/// expired deadline is refused in dispatch, and a deadline that
/// expires while the job stalls in the worker is refused there.
#[test]
fn expired_deadlines_are_refused_with_deadline_exceeded() {
    // Dispatch-level: deadline_ms=0 has expired by the time any op is
    // examined, even cheap ones.
    let handle = start(ServeConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    let resp = roundtrip(&addr, &Request::new(1, "stats").deadline(0)).unwrap();
    match resp {
        Response::Err { code, .. } => assert_eq!(code, "deadline-exceeded"),
        Response::Ok { .. } => panic!("an expired deadline cannot succeed"),
    }
    // A generous deadline changes nothing.
    let resp = roundtrip(&addr, &sim_request(2, "bfs", "LOCAL").deadline(60_000)).unwrap();
    assert!(resp.is_ok(), "generous deadline must not perturb results");
    let _ = roundtrip(&addr, &Request::new(3, "shutdown"));
    handle.wait();

    // Worker-level: a guaranteed 50 ms stall outlives a 10 ms
    // deadline, so the pre-execution check fires deterministically.
    let plan = FaultPlan::parse("seed=1,latency=1,latency-ms=50").unwrap();
    let handle = start(ServeConfig {
        shards: 1,
        faults: Some(plan),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let resp = roundtrip(&addr, &sim_request(4, "bfs", "LOCAL").deadline(10)).unwrap();
    match resp {
        Response::Err { code, .. } => assert_eq!(code, "deadline-exceeded"),
        Response::Ok { .. } => panic!("a 10ms deadline cannot survive a 50ms stall"),
    }
    let _ = roundtrip(&addr, &Request::new(5, "shutdown"));
    handle.wait();
}

/// Corrupted cache entries are never served: the checksum catches the
/// rot, the point recomputes, and the bytes stay identical.
#[test]
fn cache_corruption_is_detected_and_recomputed() {
    let plan = FaultPlan::parse("seed=3,corrupt=1").unwrap();
    let handle = start(ServeConfig {
        shards: 1,
        faults: Some(plan),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();

    let first = roundtrip(&addr, &sim_request(1, "hotspot", "LOCAL")).unwrap();
    let Response::Ok { result: body1, .. } = first else {
        panic!("first request must succeed");
    };
    // corrupt=1 rots the entry before every lookup, so this can never
    // be served from cache — yet the bytes must not change.
    let second = roundtrip(&addr, &sim_request(2, "hotspot", "LOCAL")).unwrap();
    let Response::Ok { result: body2, .. } = second else {
        panic!("second request must succeed");
    };
    assert_eq!(body1, body2, "recomputed result must be byte-identical");

    let resp = roundtrip(&addr, &Request::new(3, "stats")).unwrap();
    let Response::Ok { result, .. } = resp else {
        panic!("stats must succeed");
    };
    let s = JsonValue::parse(&result).unwrap();
    assert!(stat(&s, &["cache", "corruptions"]) >= 1);
    assert_eq!(
        stat(&s, &["cache", "hits"]),
        0,
        "rotted entries never count as hits"
    );

    let _ = roundtrip(&addr, &Request::new(4, "shutdown"));
    handle.wait();
}
