//! `hetmem-fleet` integration tests: the router in front of real
//! `hetmem-serve` child processes must keep the single-server wire
//! contract — byte-identical successes, stable kebab error codes, no
//! hung connections — through consistent-hash routing, backend chaos,
//! a SIGKILL'd backend, and a graceful drain.
//!
//! The acceptance test mirrors the PR 4 chaos suite: a 200-request
//! mixed place/simulate/batch workload runs once against one clean
//! in-process server to fix the canonical bytes, then again through a
//! router whose backends inject seeded faults and one of which is
//! SIGKILL'd mid-sweep. Every response must be byte-identical to the
//! canonical run or carry a stable error code.
#![cfg(unix)]

use std::path::PathBuf;
use std::time::{Duration, Instant};

use hetmem_bench::client::ClientBuilder;
use hetmem_bench::fleet::{start as fleet_start, FleetConfig, FleetHandle};
use hetmem_bench::serve::{roundtrip, start as serve_start, ServeConfig};
use hetmem_bench::top::TopSnapshot;
use hetmem_harness::json::JsonValue;
use hetmem_harness::{Backoff, Request, Response};

/// The compiled sibling backend binary, resolved by cargo for
/// integration tests.
fn serve_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_hetmem-serve"))
}

fn fleet(cfg: FleetConfig) -> FleetHandle {
    fleet_start(FleetConfig {
        serve_bin: Some(serve_bin()),
        ..cfg
    })
    .expect("fleet must start")
}

fn sim_request(id: u64, workload: &str, policy: &str, mem_ops: u64) -> Request {
    Request::with_params(
        id,
        "simulate",
        JsonValue::Object(vec![
            ("workload".to_string(), JsonValue::Str(workload.to_string())),
            ("policy".to_string(), JsonValue::Str(policy.to_string())),
            ("mem_ops".to_string(), JsonValue::Num(mem_ops as f64)),
            ("sms".to_string(), JsonValue::Num(2.0)),
        ]),
    )
}

fn place_request(id: u64, workload: &str, capacity_pct: u64) -> Request {
    Request::with_params(
        id,
        "place",
        JsonValue::Object(vec![
            ("workload".to_string(), JsonValue::Str(workload.to_string())),
            (
                "capacity_pct".to_string(),
                JsonValue::Num(capacity_pct as f64),
            ),
        ]),
    )
}

/// One logical unit of the sweep: a bare request or a batch envelope.
enum Step {
    Bare(Request),
    Batch(u64, Vec<Request>),
}

/// The 200-request mixed workload (152 bare + 12 envelopes × 4 subs),
/// deterministic so both runs see identical lines.
fn workload() -> Vec<Step> {
    let sims: [(&str, &str, u64); 6] = [
        ("bfs", "LOCAL", 1000),
        ("bfs", "BW-AWARE", 1500),
        ("hotspot", "LOCAL", 1000),
        ("hotspot", "INTERLEAVE", 1500),
        ("bfs", "INTERLEAVE", 2000),
        ("hotspot", "BW-AWARE", 2000),
    ];
    let places: [(&str, u64); 4] = [("bfs", 10), ("bfs", 30), ("hotspot", 20), ("hotspot", 40)];
    let mut id = 0u64;
    let mut next = || {
        id += 1;
        id
    };
    let mut steps = Vec::new();
    for round in 0..19 {
        for &(w, p, ops) in &sims {
            steps.push(Step::Bare(sim_request(next(), w, p, ops)));
        }
        for &(w, pct) in &places {
            steps.push(Step::Bare(place_request(next(), w, pct)));
        }
        if round % 2 == 0 {
            // A 4-sub envelope mixing both forwarded ops.
            let subs = vec![
                sim_request(1, sims[round % 6].0, sims[round % 6].1, sims[round % 6].2),
                place_request(2, places[round % 4].0, places[round % 4].1),
                sim_request(3, sims[(round + 3) % 6].0, sims[(round + 3) % 6].1, 1500),
                place_request(4, places[(round + 2) % 4].0, places[(round + 2) % 4].1),
            ];
            steps.push(Step::Batch(next(), subs));
        }
    }
    let weight = |s: &Step| match s {
        Step::Bare(_) => 1,
        Step::Batch(_, subs) => subs.len(),
    };
    // 19 rounds of 10 bare + 10 envelopes of 4 subs = 230 logical
    // requests; trim the tail to exactly 200.
    assert_eq!(steps.iter().map(weight).sum::<usize>(), 230);
    while steps.iter().map(weight).sum::<usize>() > 200 {
        steps.pop();
    }
    let total: usize = steps.iter().map(weight).sum();
    assert_eq!(total, 200, "workload carries {total} logical requests");
    steps
}

/// Runs the sweep against one clean in-process server and returns the
/// canonical encoded response per step (bare) and per sub (batch).
fn canonical_run(steps: &[Step]) -> Vec<Vec<String>> {
    let handle = serve_start(ServeConfig::default()).unwrap();
    let addr = handle.addr().to_string();
    let client = ClientBuilder::new(addr.clone());
    let mut out = Vec::with_capacity(steps.len());
    for step in steps {
        match step {
            Step::Bare(req) => {
                let o = client.call(req).expect("clean server must answer");
                assert!(o.response.is_ok(), "clean run failed: {:?}", o.response);
                out.push(vec![o.response.encode()]);
            }
            Step::Batch(id, subs) => {
                let o = client.call_batch(*id, subs).expect("clean batch");
                assert!(o.response.is_ok(), "clean batch failed: {:?}", o.response);
                out.push(o.responses.iter().map(Response::encode).collect());
            }
        }
    }
    let _ = roundtrip(&addr, &Request::new(9_999, "shutdown"));
    handle.wait();
    out
}

/// The acceptance test: seeded backend faults + one SIGKILL'd backend
/// mid-sweep; every response byte-identical or stably coded, the books
/// conserved, nothing hung.
#[test]
fn chaos_sweep_through_the_fleet_is_byte_identical_or_stably_coded() {
    let steps = workload();
    let canonical = canonical_run(&steps);

    let handle = fleet(FleetConfig {
        backends: 3,
        seed: 42,
        backend_faults: Some("seed=42,panic=0.05,latency=0.1,latency-ms=5,wire=0.05".to_string()),
        ..FleetConfig::default()
    });
    let addr = handle.addr().to_string();
    let client = ClientBuilder::new(addr.clone())
        .retries(12)
        .backoff(Backoff::new(1, 10, 7))
        .read_timeout(Duration::from_secs(30))
        .fleet(true);

    let stable = [
        "overloaded",
        "worker-restarted",
        "deadline-exceeded",
        "backend-unavailable",
        "fleet-draining",
    ];
    let check = |got: &Response, want: &str| match got {
        Response::Ok { .. } => {
            assert_eq!(got.encode(), want, "success must be byte-identical");
            true
        }
        Response::Err { code, .. } => {
            assert!(stable.contains(&code.as_str()), "unstable code '{code}'");
            false
        }
    };
    let mut ok = 0usize;
    let mut killed = false;
    for (i, step) in steps.iter().enumerate() {
        if i == steps.len() / 2 {
            killed = handle.kill_backend(0);
        }
        match step {
            Step::Bare(req) => {
                let o = client.call(req).expect("transport through the router");
                ok += usize::from(check(&o.response, &canonical[i][0]));
            }
            Step::Batch(id, subs) => {
                let o = client.call_batch(*id, subs).expect("batch transport");
                assert!(
                    o.response.is_ok(),
                    "the envelope itself must never fail here: {:?}",
                    o.response
                );
                assert_eq!(o.responses.len(), subs.len());
                for (sub, want) in o.responses.iter().zip(&canonical[i]) {
                    ok += usize::from(check(sub, want));
                }
            }
        }
    }
    assert!(killed, "the SIGKILL must actually land");
    assert!(
        ok >= 150,
        "with 12 retries most of the 200 requests must land byte-correct, got {ok}"
    );

    // The router's books: conservation holds and the kill was seen.
    let snap = TopSnapshot::fetch(&addr, Duration::from_secs(10)).expect("top against the router");
    snap.check_conservation().expect("fleet conservation");
    let stats = stats_body(&addr);
    assert!(
        field(&stats, &["worker_restarts"]) >= 1,
        "the SIGKILL'd backend must have been respawned"
    );

    let _ = roundtrip(&addr, &Request::new(100_000, "shutdown"));
    handle.wait();
}

fn stats_body(addr: &str) -> JsonValue {
    let resp = roundtrip(addr, &Request::new(90_000, "stats")).expect("stats roundtrip");
    let Response::Ok { result, .. } = resp else {
        panic!("stats must succeed: {resp:?}");
    };
    JsonValue::parse(&result).unwrap()
}

fn field(v: &JsonValue, path: &[&str]) -> u64 {
    let mut cur = v.clone();
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("missing {key}"))
            .clone();
    }
    cur.as_u64().unwrap_or_else(|| panic!("{path:?} not a u64"))
}

/// A healthy 2-backend fleet returns byte-identical bodies to a single
/// process, and repeats are cache hits on the owning backend.
#[test]
fn healthy_fleet_matches_single_process_and_keeps_cache_hits() {
    let req = |id| sim_request(id, "bfs", "LOCAL", 1200);
    let single = serve_start(ServeConfig::default()).unwrap();
    let single_addr = single.addr().to_string();
    let canonical = match roundtrip(&single_addr, &req(1)).unwrap() {
        Response::Ok { result, .. } => result,
        other => panic!("clean server failed: {other:?}"),
    };
    let _ = roundtrip(&single_addr, &Request::new(9, "shutdown"));
    single.wait();

    let handle = fleet(FleetConfig {
        backends: 2,
        ..FleetConfig::default()
    });
    let addr = handle.addr().to_string();
    for round in 1..=3u64 {
        match roundtrip(&addr, &req(round)).unwrap() {
            Response::Ok { result, .. } => assert_eq!(result, canonical, "round {round}"),
            other => panic!("healthy fleet refused: {other:?}"),
        }
    }
    // The fleet's cache block mirrors the backends' health probes, so
    // give the prober a beat to scrape the hits.
    let deadline = Instant::now() + Duration::from_secs(10);
    let stats = loop {
        let stats = stats_body(&addr);
        if field(&stats, &["cache", "hits"]) >= 2 || Instant::now() >= deadline {
            break stats;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(
        field(&stats, &["cache", "hits"]) >= 2,
        "rounds 2 and 3 must be cache hits on the owning backend"
    );
    // The router's own `ok` counter excludes the in-flight stats
    // request (the body renders before it is accounted), but includes
    // any stats polls above; the 3 simulates are its floor.
    assert!(field(&stats, &["ok"]) >= 3);

    let _ = roundtrip(&addr, &Request::new(10, "shutdown"));
    handle.wait();
}

/// Identical simulate lines always land on the same backend (the ring
/// is deterministic), shown by exactly one backend owning the key's
/// cache misses/hits.
#[test]
fn requests_route_by_content_key_to_one_backend() {
    let handle = fleet(FleetConfig {
        backends: 3,
        ..FleetConfig::default()
    });
    let addr = handle.addr().to_string();
    for id in 1..=6u64 {
        let resp = roundtrip(&addr, &sim_request(id, "hotspot", "LOCAL", 1000)).unwrap();
        assert!(resp.is_ok(), "{resp:?}");
    }
    let stats = stats_body(&addr);
    let backends = stats
        .get("fleet")
        .and_then(|f| f.get("backends"))
        .and_then(JsonValue::as_array)
        .expect("fleet.backends array");
    let serving: Vec<u64> = backends
        .iter()
        .filter(|b| b.get("requests").and_then(|v| v.as_u64()).unwrap_or(0) > 0)
        .map(|b| b.get("backend").and_then(|v| v.as_u64()).unwrap())
        .collect();
    assert_eq!(
        serving.len(),
        1,
        "one content key must route to exactly one backend: {serving:?}"
    );

    let _ = roundtrip(&addr, &Request::new(50, "shutdown"));
    handle.wait();
}

/// A SIGKILL'd backend's keys fail over to a ring successor with
/// byte-identical recomputed results, and the supervisor respawns the
/// child.
#[test]
fn sigkilled_backend_fails_over_and_restarts() {
    let handle = fleet(FleetConfig {
        backends: 2,
        ..FleetConfig::default()
    });
    let addr = handle.addr().to_string();
    let client = ClientBuilder::new(addr.clone())
        .retries(8)
        .backoff(Backoff::new(5, 50, 3))
        .read_timeout(Duration::from_secs(30))
        .fleet(true);

    let req = |id| sim_request(id, "bfs", "BW-AWARE", 1100);
    let first = client.call(&req(1)).unwrap();
    let Response::Ok { result: want, .. } = &first.response else {
        panic!("healthy call failed: {:?}", first.response);
    };

    assert!(handle.kill_backend(0));
    assert!(handle.kill_backend(1));
    // Both children are dead: the very next forwards either fail over
    // to a respawned child or surface backend-unavailable to the
    // retrying client — never a hang, never different bytes.
    let o = client.call(&req(2)).unwrap();
    match &o.response {
        Response::Ok { result, .. } => assert_eq!(result, want),
        Response::Err { code, .. } => assert_eq!(code, "backend-unavailable"),
    }
    // The supervisor must bring both children back.
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let o = client.call(&req(3)).unwrap();
        if let Response::Ok { result, .. } = &o.response {
            assert_eq!(result, want, "recovered fleet must recompute identically");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "fleet never recovered from the double SIGKILL: {:?}",
            o.response
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    let stats = stats_body(&addr);
    assert!(field(&stats, &["worker_restarts"]) >= 2);

    let _ = roundtrip(&addr, &Request::new(60, "shutdown"));
    handle.wait();
}

/// `shutdown` drains gracefully: the shutdown response arrives, later
/// requests refuse with the stable `fleet-draining` code, wait()
/// returns, and the children are gone.
#[test]
fn drain_refuses_new_work_with_fleet_draining_and_stops_children() {
    let handle = fleet(FleetConfig {
        backends: 2,
        ..FleetConfig::default()
    });
    let addr = handle.addr().to_string();
    let resp = roundtrip(&addr, &sim_request(1, "bfs", "LOCAL", 1000)).unwrap();
    assert!(resp.is_ok());
    let backend0 = handle.backend_addr(0).expect("backend 0 up");

    let resp = roundtrip(&addr, &Request::new(2, "shutdown")).unwrap();
    let Response::Ok { result, .. } = resp else {
        panic!("shutdown must ack: {resp:?}");
    };
    assert!(result.contains("\"draining\":true"));
    // A straggler on a fresh connection (while the loop lingers for
    // open conns) must see the stable drain code, not a hang; once the
    // listener is gone, a refused connect is equally acceptable.
    if let Ok(resp) = roundtrip(&addr, &sim_request(3, "bfs", "LOCAL", 1000)) {
        match resp {
            Response::Err { code, .. } => assert_eq!(code, "fleet-draining"),
            Response::Ok { .. } => panic!("a draining fleet must not accept work"),
        }
    }
    handle.wait();
    // The children were stopped: their ports no longer accept.
    assert!(
        std::net::TcpStream::connect_timeout(&backend0, Duration::from_millis(500)).is_err(),
        "backend child must be gone after drain"
    );
}

/// `hetmem-top`'s batched stats+metrics fetch works against the router
/// and its conservation gate holds on a healthy fleet.
#[test]
fn top_snapshot_and_conservation_hold_against_the_router() {
    let handle = fleet(FleetConfig {
        backends: 2,
        ..FleetConfig::default()
    });
    let addr = handle.addr().to_string();
    for id in 1..=4u64 {
        let resp = roundtrip(&addr, &sim_request(id, "hotspot", "INTERLEAVE", 1000)).unwrap();
        assert!(resp.is_ok(), "{resp:?}");
    }
    let snap = TopSnapshot::fetch(&addr, Duration::from_secs(10)).expect("fetch via batch");
    snap.check_conservation().expect("conservation");
    assert!(snap.requests_total >= 4);

    let _ = roundtrip(&addr, &Request::new(70, "shutdown"));
    handle.wait();
}
