//! Integration tests for the event-driven serve core: pipelining,
//! protocol-v2 `batch` envelopes, slow-reader backpressure, and the
//! ClientBuilder / deprecated-shim bit-equivalence contract.
//!
//! The chaos and serve suites already pin the dispatch pipeline's
//! behavior (and run against the poll core by default); this suite
//! pins what is *new* in the readiness-loop front end: many in-flight
//! requests per connection answered order-independently by id, batch
//! sub-responses byte-identical to bare requests, and a stalled reader
//! degrading to structured `overloaded` instead of wedging the loop.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use hetmem_bench::client::{ClientBuilder, ClientOptions};
use hetmem_bench::serve::{roundtrip, start, ServeConfig, ServerHandle};
use hetmem_harness::json::JsonValue;
use hetmem_harness::{batch_request, Backoff, Request, Response, PROTO_V2};

fn sim_request(id: u64, json_params: &str) -> Request {
    Request::with_params(id, "simulate", JsonValue::parse(json_params).unwrap())
}

fn expect_ok(resp: &Response) -> &str {
    match resp {
        Response::Ok { result, .. } => result,
        Response::Err { code, message, .. } => panic!("expected ok, got {code}: {message}"),
    }
}

fn expect_err(resp: &Response) -> (&str, &str) {
    match resp {
        Response::Err { code, message, .. } => (code, message),
        Response::Ok { result, .. } => panic!("expected error, got ok: {result}"),
    }
}

fn server(cfg: ServeConfig) -> ServerHandle {
    start(cfg).expect("bind loopback")
}

/// A connected pipelining client: raw line writes, buffered line reads.
struct Pipe {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Pipe {
    fn connect(addr: &str) -> Pipe {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Pipe {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send_all(&mut self, reqs: &[Request]) {
        let mut burst = String::new();
        for r in reqs {
            burst.push_str(&r.encode());
            burst.push('\n');
        }
        self.writer.write_all(burst.as_bytes()).unwrap();
        self.writer.flush().unwrap();
    }

    fn recv_line(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).unwrap();
        assert!(n > 0, "server closed the connection mid-pipeline");
        line.trim_end().to_string()
    }
}

/// Distinct quick simulate points (unique seeds → unique cache keys).
fn grid(n: u64) -> Vec<Request> {
    (0..n)
        .map(|i| {
            sim_request(
                i + 1,
                &format!(
                    r#"{{"workload":"hotspot","policy":"LOCAL","mem_ops":2000,"sms":2,"seed":{}}}"#,
                    40 + i
                ),
            )
        })
        .collect()
}

#[test]
fn pipelined_responses_are_byte_identical_to_serial() {
    // Two fresh servers: one answers 10 requests pipelined down a
    // single connection, the other answers the same 10 one at a time
    // on separate connections. Neither run is cache-warmed by the
    // other, so this compares real computations, not cache echoes.
    let reqs = grid(10);

    let pipelined = server(ServeConfig::default());
    let mut pipe = Pipe::connect(&pipelined.addr().to_string());
    pipe.send_all(&reqs);
    // Responses complete order-independently (simulations land on
    // different shards), so collect them by id.
    let mut by_id: HashMap<u64, String> = HashMap::new();
    for _ in &reqs {
        let line = pipe.recv_line();
        let resp = Response::decode(&line).unwrap();
        assert!(by_id.insert(resp.id(), line).is_none(), "duplicate id");
    }
    drop(pipe);
    pipelined.shutdown();
    pipelined.wait();

    let serial = server(ServeConfig::default());
    let serial_addr = serial.addr().to_string();
    for req in &reqs {
        let resp = roundtrip(&serial_addr, req).unwrap();
        let line = by_id.get(&req.id).expect("pipelined response for id");
        assert_eq!(
            line,
            &resp.encode(),
            "pipelined bytes must match serial for id {}",
            req.id
        );
    }
    serial.shutdown();
    serial.wait();
}

#[test]
fn batch_of_one_matches_bare_request_bytes() {
    let handle = server(ServeConfig::default());
    let addr = handle.addr().to_string();

    let req = sim_request(
        7,
        r#"{"workload":"bfs","policy":"BW-AWARE","mem_ops":2000,"sms":2,"seed":3}"#,
    );
    let bare = roundtrip(&addr, &req).unwrap();

    let envelope = roundtrip(&addr, &batch_request(99, &[req.clone()])).unwrap();
    assert!(envelope.is_ok(), "envelope refused: {envelope:?}");
    let subs = envelope.batch_responses().unwrap();
    assert_eq!(subs.len(), 1);
    assert_eq!(
        subs[0].encode(),
        bare.encode(),
        "a batch of one must carry exactly the bare response"
    );

    handle.shutdown();
    handle.wait();
}

#[test]
fn batch_mixes_results_and_structured_errors_in_order() {
    let handle = server(ServeConfig::default());
    let addr = handle.addr().to_string();

    let subs = [
        Request::new(1, "stats"),
        sim_request(2, r#"{"workload":"no-such-app"}"#),
        sim_request(
            3,
            r#"{"workload":"hotspot","policy":"LOCAL","mem_ops":2000,"sms":2,"seed":5}"#,
        ),
        Request::new(4, "frobnicate"),
    ];
    let envelope = roundtrip(&addr, &batch_request(50, &subs)).unwrap();
    let responses = envelope.batch_responses().unwrap();
    assert_eq!(responses.len(), 4, "one sub-response per sub-request");
    let ids: Vec<u64> = responses.iter().map(Response::id).collect();
    assert_eq!(ids, vec![1, 2, 3, 4], "sub-responses keep request order");
    expect_ok(&responses[0]);
    assert_eq!(expect_err(&responses[1]).0, "unknown-workload");
    expect_ok(&responses[2]);
    assert_eq!(expect_err(&responses[3]).0, "unknown-op");

    handle.shutdown();
    handle.wait();
}

#[test]
fn oversized_batches_and_unknown_protocols_are_refused() {
    let handle = server(ServeConfig {
        max_batch: 4,
        ..ServeConfig::default()
    });
    let addr = handle.addr().to_string();

    // Five sub-requests against a max of four: a stable whole-envelope
    // refusal, and no sub-request runs.
    let subs: Vec<Request> = (1..=5).map(|i| Request::new(i, "stats")).collect();
    let resp = roundtrip(&addr, &batch_request(9, &subs)).unwrap();
    let (code, message) = expect_err(&resp);
    assert_eq!(code, "batch-too-large");
    assert!(message.contains('5') && message.contains('4'), "{message}");

    // Unknown protocol majors are rejected with their own stable code,
    // for v0 and for versions from the future alike.
    for proto in [0, 9] {
        let resp = roundtrip(&addr, &Request::new(1, "stats").proto(proto)).unwrap();
        let (code, message) = expect_err(&resp);
        assert_eq!(code, "unsupported-protocol", "proto {proto}");
        assert!(message.contains("1-2"), "{message}");
    }

    // `batch` without a v2 envelope is an invalid request: v1 clients
    // must opt in before the server accepts compound dispatch.
    let mut v1_batch = batch_request(9, &[Request::new(1, "stats")]);
    v1_batch.proto = 1;
    let resp = roundtrip(&addr, &v1_batch).unwrap();
    let (code, message) = expect_err(&resp);
    assert_eq!(code, "invalid-request");
    assert!(message.contains("proto"), "{message}");

    // Batches do not nest, and shutdown cannot ride inside one.
    let nested = batch_request(2, &[Request::new(1, "stats")]);
    let resp = roundtrip(&addr, &batch_request(9, &[nested])).unwrap();
    let inner = resp.batch_responses().unwrap();
    assert_eq!(expect_err(&inner[0]).0, "invalid-request");
    let resp = roundtrip(&addr, &batch_request(9, &[Request::new(1, "shutdown")])).unwrap();
    let inner = resp.batch_responses().unwrap();
    assert_eq!(expect_err(&inner[0]).0, "invalid-request");

    // The envelope still checks plain-request invariants.
    let mut empty = Request::new(9, "batch").proto(PROTO_V2);
    empty.params = JsonValue::parse(r#"{"requests":[]}"#).unwrap();
    let resp = roundtrip(&addr, &empty).unwrap();
    assert_eq!(expect_err(&resp).0, "invalid-request");

    handle.shutdown();
    handle.wait();
}

#[test]
fn slow_reader_backpressure_sheds_overloaded_without_wedging() {
    // A tiny per-connection backlog budget: one fat Prometheus
    // metrics body alone exceeds it, so a burst of pipelined scrapes
    // from a reader that never drains must shed almost immediately.
    let handle = server(ServeConfig {
        conn_buffer: 1024,
        ..ServeConfig::default()
    });
    let addr = handle.addr().to_string();

    const REQS: u64 = 400;
    let reqs: Vec<Request> = (1..=REQS)
        .map(|id| {
            Request::with_params(
                id,
                "metrics",
                JsonValue::parse(r#"{"format":"prometheus"}"#).unwrap(),
            )
        })
        .collect();
    let mut stalled = Pipe::connect(&addr);
    stalled.send_all(&reqs);
    // ...and then refuse to read anything for a while.
    std::thread::sleep(Duration::from_millis(300));

    // The loop is not wedged: a second connection gets served while
    // the first one's backlog is jammed.
    let probe = roundtrip(&addr, &Request::new(9000, "stats")).unwrap();
    expect_ok(&probe);

    // Now drain the stalled connection: every request is answered —
    // some with full metrics bodies, the overflow with structured
    // `overloaded` — and nothing is lost or reordered past its id.
    let mut ok = 0u64;
    let mut shed = 0u64;
    for _ in 0..REQS {
        let line = stalled.recv_line();
        let resp = Response::decode(&line).unwrap();
        match &resp {
            Response::Ok { .. } => ok += 1,
            Response::Err { code, .. } => {
                assert_eq!(code, "overloaded", "only backpressure sheds expected");
                shed += 1;
            }
        }
    }
    assert_eq!(ok + shed, REQS);
    assert!(ok >= 1, "early requests fit the backlog budget");
    assert!(
        shed >= 1,
        "a stalled reader must shed once its backlog budget is spent"
    );

    // The connection recovers once the client reads again.
    stalled.send_all(&[Request::new(9001, "stats")]);
    let resp = Response::decode(&stalled.recv_line()).unwrap();
    expect_ok(&resp);

    handle.shutdown();
    handle.wait();
}

#[test]
#[allow(deprecated)]
fn client_builder_and_deprecated_shim_are_bit_equivalent() {
    let handle = server(ServeConfig::default());
    let addr = handle.addr().to_string();

    let req = sim_request(
        21,
        r#"{"workload":"bfs","policy":"LOCAL","mem_ops":2000,"sms":2,"seed":11}"#,
    )
    .request_id("pin-1");
    let opts = ClientOptions {
        retries: 2,
        backoff: Backoff::new(10, 100, 7),
        deadline_ms: Some(30_000),
        read_timeout: Duration::from_secs(30),
        fleet: false,
    };
    let client = ClientBuilder::new(addr.clone())
        .retries(opts.retries)
        .backoff(opts.backoff.clone())
        .deadline_ms(30_000)
        .read_timeout(opts.read_timeout);

    let via_builder = client.call(&req).unwrap();
    let via_shim = hetmem_bench::client::call(&addr, &req, &opts).unwrap();
    assert_eq!(via_builder.attempts, 1);
    assert_eq!(via_shim.attempts, 1);
    assert_eq!(
        via_builder.response.encode(),
        via_shim.response.encode(),
        "the deprecated shim and the builder must produce identical bytes"
    );

    // The batch path returns the same bytes for the same sub-request.
    let batched = client.call_batch(60, &[req.clone()]).unwrap();
    assert_eq!(batched.responses.len(), 1);
    assert_eq!(batched.responses[0].encode(), via_builder.response.encode());

    handle.shutdown();
    handle.wait();
}
