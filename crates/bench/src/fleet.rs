//! `hetmem-fleet`: fault-tolerant multi-process serving.
//!
//! A std-only router that spawns and supervises N `hetmem-serve`
//! backend processes and proxies the JSONL protocol (v1 and v2) to
//! them over one poll(2) readiness loop — the same front-end pattern
//! as `serve::event`, with pipelining, per-connection write-backlog
//! backpressure, and read/write timeouts.
//!
//! ## Routing
//!
//! Every request's **content key** — for `simulate`, the canonical
//! cache key from [`crate::serve::simulate_cache_key`]; for other ops,
//! `op:params` — is consistent-hashed over the backends with
//! [`HashRing`], so each cache shard lives in exactly one process and
//! repeated requests stay byte-identical cache hits. `batch`
//! envelopes are split per owning backend, forwarded as per-backend
//! batch envelopes, and reassembled in sub-request order; `stats`,
//! `metrics`, and `shutdown` are answered at fleet level by the router
//! itself (bare or as batch slots).
//!
//! ## Robustness
//!
//! * **Supervision** — each backend child is restarted with a bounded,
//!   seeded [`Backoff`] schedule when it exits unexpectedly; a backend
//!   past `max_restarts` is marked gone and drops out of the ring walk.
//! * **Health probes** — a prober issues a periodic `stats` round-trip
//!   with a short deadline against every backend and feeds a
//!   per-backend closed/open/half-open [`CircuitBreaker`]; an open
//!   breaker excludes the backend from routing until its seeded
//!   cooldown elapses.
//! * **Failover** — a transport failure (or a `worker-restarted` that
//!   survives an in-place retry) moves the request to the key's next
//!   ring successor. Requests are idempotent (`place`/`simulate` are
//!   pure and cached), so re-execution is safe. When every candidate
//!   is down the client gets the stable, retryable
//!   `backend-unavailable` code; a draining fleet answers
//!   `fleet-draining`, which clients must not retry.
//! * **Drain** — `shutdown` (or [`FleetHandle::shutdown`]) refuses new
//!   work, finishes every in-flight request, then stops each child:
//!   `shutdown` op first, SIGTERM next, SIGKILL last.
//!
//! ## Observability
//!
//! The router carries its own [`MetricsRegistry`] with the same
//! conservation contract as a single server (`hm_requests_total` and
//! the per-op `hm_request_duration_us` histogram are recorded before
//! response bytes are written), so `hetmem-top --check` works against
//! the router unchanged. Fleet-specific families add per-backend
//! request/error/reroute/restart counters, a health gauge, and the
//! ring-ownership share per backend.

use std::collections::HashMap;
use std::ffi::{c_int, c_ulong};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use hetmem::HetmemError;
use hetmem_harness::json::{self, JsonObject, JsonValue};
use hetmem_harness::metrics::{Counter, Gauge, Histogram, MetricsRegistry};
use hetmem_harness::{
    batch_request, Backoff, BoundedQueue, CircuitBreaker, HashRing, PushError, Request, Response,
    DEFAULT_VNODES, PROTO_V2,
};

use crate::serve::{roundtrip_timeout, simulate_cache_key};

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const SIGTERM: c_int = 15;

/// `struct pollfd` from `<poll.h>` (same hand-rolled FFI as the serve
/// event core — no libc crate).
#[repr(C)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn kill(pid: c_int, sig: c_int) -> c_int;
}

fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) {
    // SAFETY: `fds` is a live, correctly-repr(C) slice for the call's
    // duration, and poll(2) writes only to `revents` within it.
    unsafe {
        poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms);
    }
}

/// Default backend child count.
const DEFAULT_BACKENDS: usize = 2;
/// Default forwarding-queue depth (requests parked for a worker).
const DEFAULT_FWD_QUEUE: usize = 256;
/// Default per-forwarded-roundtrip read timeout.
const DEFAULT_BACKEND_TIMEOUT_MS: u64 = 120_000;
/// Default health-probe cadence.
const DEFAULT_PROBE_INTERVAL_MS: u64 = 200;
/// Default health-probe deadline (also its read timeout).
const DEFAULT_PROBE_DEADLINE_MS: u64 = 750;
/// Default consecutive failures before a breaker opens.
const DEFAULT_BREAKER_THRESHOLD: u32 = 3;
/// Default restart budget per backend before it is marked gone.
const DEFAULT_MAX_RESTARTS: u32 = 5;
/// How long to wait for a spawned child's port file.
const SPAWN_DEADLINE: Duration = Duration::from_secs(10);
/// Connect timeout for router→backend sockets.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(1_000);

/// Router construction knobs. `Default` binds an ephemeral loopback
/// port with two backends discovered next to the current executable.
#[derive(Debug, Clone, Default)]
pub struct FleetConfig {
    /// Bind address; empty = `127.0.0.1:0`.
    pub addr: String,
    /// Backend child processes (0 = default 2).
    pub backends: usize,
    /// Path to the `hetmem-serve` binary; `None` looks for a sibling
    /// of the current executable.
    pub serve_bin: Option<PathBuf>,
    /// Per-backend `--shards` passthrough (0 = server default).
    pub shards: usize,
    /// Per-backend `--queue-depth` passthrough (0 = server default).
    pub queue_depth: usize,
    /// Per-backend `--cache` passthrough (0 = server default).
    pub cache_capacity: usize,
    /// `batch` sub-request ceiling, enforced at the router and passed
    /// through to backends (0 = default 64).
    pub max_batch: usize,
    /// Router backpressure threshold in bytes (0 = default 256 KiB),
    /// same semantics as [`crate::serve::ServeConfig::conn_buffer`].
    pub conn_buffer: usize,
    /// Client-connection read timeout at the router (0 = default
    /// 120000 ms).
    pub read_timeout_ms: u64,
    /// Client-connection write timeout at the router (0 = default
    /// 30000 ms).
    pub write_timeout_ms: u64,
    /// Read timeout per forwarded backend round-trip (0 = default
    /// 120000 ms); shortened to the request's own deadline when set.
    pub backend_timeout_ms: u64,
    /// Health-probe cadence (0 = default 200 ms).
    pub probe_interval_ms: u64,
    /// Health-probe deadline (0 = default 750 ms).
    pub probe_deadline_ms: u64,
    /// Consecutive failures that open a backend's breaker (0 = 3).
    pub breaker_threshold: u32,
    /// Seed for the deterministic breaker-cooldown and restart-backoff
    /// jitter.
    pub seed: u64,
    /// Restart budget per backend before it is marked gone (0 = 5).
    pub max_restarts: u32,
    /// `--faults` spec passed through to every backend (router-side
    /// chaos is driven from the backends, so injected decisions stay
    /// deterministic per process).
    pub backend_faults: Option<String>,
    /// Forwarding worker threads (0 = 2 per backend, clamped 2..=16).
    pub workers: usize,
    /// Forwarding-queue depth before the router sheds with
    /// `overloaded` (0 = default 256).
    pub fwd_queue: usize,
}

/// Everything known about one supervised backend process.
struct Backend {
    /// Where the child listens; `None` while it is down or respawning.
    addr: Mutex<Option<SocketAddr>>,
    child: Mutex<Option<Child>>,
    breaker: CircuitBreaker,
    /// Restart budget exhausted: permanently out of the ring walk.
    gone: AtomicBool,
    /// Unexpected exits (each one triggers a supervised respawn).
    restarts: AtomicU64,
    /// Forwarded requests (attempts, including in-place retries).
    requests: Arc<Counter>,
    /// Failed forwarded attempts.
    errors: Arc<Counter>,
    /// Requests that failed here and moved on down the ring (or
    /// exhausted it).
    reroutes: Arc<Counter>,
    /// Last health-probed backend cache counters, aggregated into the
    /// fleet `stats` body.
    cache: Mutex<BackendCache>,
}

impl Backend {
    fn addr(&self) -> Option<SocketAddr> {
        *self.addr.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn healthy(&self) -> bool {
        self.addr().is_some()
            && !self.gone.load(Ordering::Relaxed)
            && self.breaker.state() == hetmem_harness::BreakerState::Closed
    }
}

/// Cache counters scraped from a backend's last successful probe.
#[derive(Debug, Clone, Copy, Default)]
struct BackendCache {
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    corruptions: u64,
    entries: u64,
    capacity: u64,
}

/// Monotonic router counters, exposed by the fleet `stats` op (field
/// names mirror the single-server body so `hetmem-top` parses both).
#[derive(Default)]
struct RouterStats {
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    overloaded: AtomicU64,
    deadline_exceeded: AtomicU64,
    batch_subrequests: AtomicU64,
    op_place: AtomicU64,
    op_simulate: AtomicU64,
    op_stats: AtomicU64,
    op_metrics: AtomicU64,
    op_shutdown: AtomicU64,
    op_batch: AtomicU64,
    op_other: AtomicU64,
}

/// The router's registry: the conservation pair (requests_total +
/// per-op duration histograms, recorded before write) plus
/// fleet-specific per-backend families.
struct FleetMetrics {
    registry: MetricsRegistry,
    requests_total: Arc<Counter>,
    responses_ok: Arc<Counter>,
    responses_err: Arc<Counter>,
    req_place: Arc<Histogram>,
    req_simulate: Arc<Histogram>,
    req_stats: Arc<Histogram>,
    req_metrics: Arc<Histogram>,
    req_shutdown: Arc<Histogram>,
    req_batch: Arc<Histogram>,
    req_decode: Arc<Histogram>,
    req_other: Arc<Histogram>,
    overloaded: Arc<Counter>,
    deadline_exceeded: Arc<Counter>,
    worker_restarts: Arc<Counter>,
    reroutes_total: Arc<Counter>,
    backend_requests: Vec<Arc<Counter>>,
    backend_errors: Vec<Arc<Counter>>,
    backend_reroutes: Vec<Arc<Counter>>,
    backend_restarts: Vec<Arc<Counter>>,
    backend_healthy: Vec<Arc<Gauge>>,
    ring_share_ppm: Vec<Arc<Gauge>>,
    queue_depth: Arc<Gauge>,
    queue_capacity: Arc<Gauge>,
    uptime_ms: Arc<Gauge>,
}

impl FleetMetrics {
    fn new(backends: usize) -> Self {
        let reg = MetricsRegistry::new();
        let req_help = "Request latency from decode start to encoded response, microseconds.";
        let op_hist = |op| reg.histogram("hm_request_duration_us", req_help, &[("op", op)]);
        let per_backend = |name: &str, help: &str| -> Vec<Arc<Counter>> {
            (0..backends)
                .map(|i| reg.counter(name, help, &[("backend", &i.to_string())]))
                .collect()
        };
        FleetMetrics {
            requests_total: reg.counter(
                "hm_requests_total",
                "Requests completed (equals the sum of hm_request_duration_us counts).",
                &[],
            ),
            responses_ok: reg.counter(
                "hm_responses_total",
                "Responses by outcome.",
                &[("status", "ok")],
            ),
            responses_err: reg.counter(
                "hm_responses_total",
                "Responses by outcome.",
                &[("status", "error")],
            ),
            req_place: op_hist("place"),
            req_simulate: op_hist("simulate"),
            req_stats: op_hist("stats"),
            req_metrics: op_hist("metrics"),
            req_shutdown: op_hist("shutdown"),
            req_batch: op_hist("batch"),
            req_decode: op_hist("decode"),
            req_other: op_hist("other"),
            overloaded: reg.counter(
                "hm_overloaded_total",
                "Requests shed because the forwarding queue was full.",
                &[],
            ),
            deadline_exceeded: reg.counter(
                "hm_deadline_exceeded_total",
                "Requests refused past their deadline.",
                &[],
            ),
            worker_restarts: reg.counter(
                "hm_worker_restarts_total",
                "Backend child processes restarted by the fleet supervisor.",
                &[],
            ),
            reroutes_total: reg.counter(
                "hm_fleet_reroutes_total",
                "Requests moved off a failed backend to a ring successor.",
                &[],
            ),
            backend_requests: per_backend(
                "hm_backend_requests_total",
                "Forwarded request attempts per backend.",
            ),
            backend_errors: per_backend(
                "hm_backend_errors_total",
                "Failed forwarded attempts per backend.",
            ),
            backend_reroutes: per_backend(
                "hm_backend_reroutes_total",
                "Requests that failed on this backend and moved on.",
            ),
            backend_restarts: per_backend(
                "hm_backend_restarts_total",
                "Unexpected child exits, each answered with a respawn.",
            ),
            backend_healthy: (0..backends)
                .map(|i| {
                    reg.gauge(
                        "hm_backend_healthy",
                        "1 when the backend is up with a closed breaker.",
                        &[("backend", &i.to_string())],
                    )
                })
                .collect(),
            ring_share_ppm: (0..backends)
                .map(|i| {
                    reg.gauge(
                        "hm_fleet_ring_share_ppm",
                        "Consistent-hash ring ownership per backend, parts per million.",
                        &[("backend", &i.to_string())],
                    )
                })
                .collect(),
            queue_depth: reg.gauge(
                "hm_queue_depth",
                "Requests parked in the forwarding queue at scrape time.",
                &[("shard", "fwd")],
            ),
            queue_capacity: reg.gauge("hm_queue_capacity", "Forwarding-queue capacity.", &[]),
            uptime_ms: reg.gauge(
                "hm_uptime_ms",
                "Milliseconds since the router started.",
                &[],
            ),
            registry: reg,
        }
    }

    fn op_hist(&self, op: &str) -> &Histogram {
        match op {
            "place" => &self.req_place,
            "simulate" => &self.req_simulate,
            "stats" => &self.req_stats,
            "metrics" => &self.req_metrics,
            "shutdown" => &self.req_shutdown,
            "batch" => &self.req_batch,
            "decode" => &self.req_decode,
            _ => &self.req_other,
        }
    }

    /// Fills scrape-time mirrors so both render formats see one
    /// coherent snapshot.
    fn refresh(&self, shared: &FleetShared) {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        self.overloaded.store(load(&shared.stats.overloaded));
        self.deadline_exceeded
            .store(load(&shared.stats.deadline_exceeded));
        let mut restarts = 0;
        for (i, b) in shared.backends.iter().enumerate() {
            let r = load(&b.restarts);
            restarts += r;
            self.backend_restarts[i].store(r);
            self.backend_healthy[i].set(u64::from(b.healthy()));
        }
        self.worker_restarts.store(restarts);
        self.queue_depth.set(shared.fwd.len() as u64);
        self.queue_capacity.set(shared.fwd.capacity() as u64);
        self.uptime_ms
            .set(shared.started.elapsed().as_millis() as u64);
    }
}

/// The poll loop's drain handshake, mirroring the serve core's:
/// [`FleetHandle::wait`] blocks here until the loop confirms every
/// accepted request's response bytes are flushed.
#[derive(Default)]
struct DrainGate {
    flushed: Mutex<bool>,
    cv: Condvar,
}

impl DrainGate {
    fn mark(&self) {
        let mut flushed = self.flushed.lock().unwrap_or_else(|e| e.into_inner());
        *flushed = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut flushed = self.flushed.lock().unwrap_or_else(|e| e.into_inner());
        while !*flushed {
            flushed = self.cv.wait(flushed).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Child-spawn arguments shared by the initial spawn and respawns.
struct BackendArgs {
    shards: usize,
    queue_depth: usize,
    cache_capacity: usize,
    max_batch: usize,
    faults: Option<String>,
}

/// Everything the loop, forwarding workers, supervisors, and prober
/// share.
struct FleetShared {
    addr: SocketAddr,
    serve_bin: PathBuf,
    backend_args: BackendArgs,
    ring: HashRing,
    backends: Vec<Backend>,
    fwd: BoundedQueue<FwdJob>,
    /// New work is refused with `fleet-draining`.
    draining: AtomicBool,
    /// In-flight work has finished flushing: supervisors may stop
    /// children, workers and the prober may exit.
    reap: AtomicBool,
    stats: RouterStats,
    metrics: FleetMetrics,
    drain: DrainGate,
    started: Instant,
    read_timeout: Duration,
    write_timeout: Duration,
    backend_timeout: Duration,
    probe_interval: Duration,
    probe_deadline_ms: u64,
    restart_backoff: Backoff,
    max_restarts: u32,
    max_batch: usize,
    conn_buffer: usize,
    /// Uniquifies port-file names across respawns.
    spawn_epoch: AtomicU64,
}

/// Wakes the poll loop from a forwarding worker.
#[derive(Clone)]
struct Waker(Arc<UnixStream>);

impl Waker {
    fn wake(&self) {
        let _ = (&*self.0).write(&[1u8]);
    }
}

/// What a forwarded request came back with.
struct ForwardReply {
    /// The backend's raw response line (no newline), relayed verbatim
    /// for byte identity.
    line: String,
    /// Decoded `ok` flag, for accounting.
    ok: bool,
}

type FwdResult = Result<ForwardReply, HetmemError>;

/// A finished forward flowing back to the loop.
struct FleetCompletion {
    token: u64,
    result: FwdResult,
}

/// The forwarding reply path. Dropping without delivering (a worker
/// panicked mid-forward) answers `backend-unavailable`, so every
/// submitted request completes exactly once.
struct FleetSink {
    tx: mpsc::Sender<FleetCompletion>,
    token: u64,
    waker: Waker,
    sent: bool,
}

impl FleetSink {
    fn deliver(&mut self, result: FwdResult) {
        if self.sent {
            return;
        }
        self.sent = true;
        let _ = self.tx.send(FleetCompletion {
            token: self.token,
            result,
        });
        self.waker.wake();
    }
}

impl Drop for FleetSink {
    fn drop(&mut self) {
        self.deliver(Err(HetmemError::BackendUnavailable { tried: 0 }));
    }
}

/// A request parked in the forwarding queue.
struct FwdJob {
    /// The raw line to forward (no newline) — the client's own bytes
    /// for bare requests, a re-encoded per-backend envelope for batch
    /// groups.
    line: String,
    /// Content key the ring walk starts from.
    key: String,
    deadline: Option<Instant>,
    sink: FleetSink,
}

/// One accepted client connection (the serve event core's state
/// machine, minus the wire-fault plumbing — the router proxies
/// faithfully; chaos is injected by the backends).
struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    inflight: usize,
    closing: bool,
    dead: bool,
    last_read: Instant,
    last_write_ok: Instant,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        let now = Instant::now();
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            inflight: 0,
            closing: false,
            dead: false,
            last_read: now,
            last_write_ok: now,
        }
    }

    fn pending(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

/// The identity of one in-flight request at the router.
struct Head {
    id: u64,
    op: String,
    client_rid: Option<String>,
    t0: Instant,
}

/// In-flight forwarded work, keyed by completion token.
enum Pending {
    /// A bare forwarded op: relay the backend's line verbatim.
    Single { conn: u64, head: Head },
    /// One per-backend group of a batch envelope: scatter its
    /// sub-responses into the envelope's slots.
    Group {
        batch: u64,
        slots: Vec<usize>,
        /// `(id, client_rid)` per slot, for error filling.
        subs: Vec<(u64, Option<String>)>,
    },
}

/// A batch envelope waiting for its forwarded groups.
struct BatchPending {
    conn: u64,
    head: Head,
    slots: Vec<Option<Response>>,
    remaining: usize,
}

struct LoopState {
    done_tx: mpsc::Sender<FleetCompletion>,
    waker: Waker,
    next_token: u64,
    pending: HashMap<u64, Pending>,
    batches: HashMap<u64, BatchPending>,
}

impl LoopState {
    fn token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    fn sink(&mut self, token: u64) -> FleetSink {
        FleetSink {
            tx: self.done_tx.clone(),
            token,
            waker: self.waker.clone(),
            sent: false,
        }
    }
}

/// A running fleet: the router's bound address plus the threads and
/// children behind it.
pub struct FleetHandle {
    addr: SocketAddr,
    shared: Arc<FleetShared>,
    supervisors: Vec<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl FleetHandle {
    /// The router's bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router's bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// The number of supervised backends.
    pub fn backends(&self) -> usize {
        self.shared.backends.len()
    }

    /// Where backend `idx` currently listens (`None` while it is down).
    pub fn backend_addr(&self, idx: usize) -> Option<SocketAddr> {
        self.shared.backends.get(idx).and_then(Backend::addr)
    }

    /// SIGKILLs backend `idx`'s child outright — the chaos hook the
    /// failover tests and CI smoke lean on. The supervisor notices the
    /// exit and respawns it (with backoff); in-flight requests to it
    /// fail over along the ring. Returns whether a signal was sent.
    pub fn kill_backend(&self, idx: usize) -> bool {
        let Some(backend) = self.shared.backends.get(idx) else {
            return false;
        };
        let mut child = backend.child.lock().unwrap_or_else(|e| e.into_inner());
        match child.as_mut() {
            Some(c) => c.kill().is_ok(),
            None => false,
        }
    }

    /// Triggers the drain locally (equivalent to a `shutdown` request).
    pub fn shutdown(&self) {
        begin_drain(&self.shared);
    }

    /// Blocks until the fleet has fully drained: every accepted
    /// request's response bytes are flushed, every child is stopped
    /// (shutdown op, then SIGTERM, then SIGKILL), and every router
    /// thread has exited. The poll loop itself is detached — it
    /// lingers to answer `fleet-draining` on connections a client
    /// still holds open.
    pub fn wait(mut self) {
        self.shared.drain.wait();
        for s in self.supervisors.drain(..) {
            let _ = s.join();
        }
        if let Some(p) = self.prober.take() {
            let _ = p.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for FleetHandle {
    fn drop(&mut self) {
        // Safety net (a test that panics, a handle dropped without
        // wait()): never leave child processes running.
        self.shared.reap.store(true, Ordering::SeqCst);
        self.shared.fwd.close();
        for backend in &self.shared.backends {
            let mut child = backend.child.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(c) = child.as_mut() {
                let _ = c.kill();
                let _ = c.wait();
            }
            *child = None;
        }
    }
}

/// Spawns the backends, binds the router, and starts serving.
///
/// # Errors
///
/// Bind/spawn failures, a missing `hetmem-serve` binary, or a backend
/// that never published its port. Children already spawned are killed
/// before the error propagates.
pub fn start(cfg: FleetConfig) -> io::Result<FleetHandle> {
    let addr_str = if cfg.addr.is_empty() {
        "127.0.0.1:0"
    } else {
        &cfg.addr
    };
    let listener = TcpListener::bind(addr_str)?;
    let addr = listener.local_addr()?;
    let serve_bin = match cfg.serve_bin {
        Some(path) => path,
        None => default_serve_bin()?,
    };
    if !serve_bin.is_file() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("hetmem-serve binary not found at {}", serve_bin.display()),
        ));
    }
    let backends_n = if cfg.backends == 0 {
        DEFAULT_BACKENDS
    } else {
        cfg.backends
    };
    let fwd_queue = if cfg.fwd_queue == 0 {
        DEFAULT_FWD_QUEUE
    } else {
        cfg.fwd_queue
    };
    let workers_n = if cfg.workers == 0 {
        (backends_n * 2).clamp(2, 16)
    } else {
        cfg.workers
    };
    let threshold = if cfg.breaker_threshold == 0 {
        DEFAULT_BREAKER_THRESHOLD
    } else {
        cfg.breaker_threshold
    };
    let or_default = |v: u64, d: u64| if v == 0 { d } else { v };
    let metrics = FleetMetrics::new(backends_n);
    let ring = HashRing::new(backends_n, DEFAULT_VNODES);
    for (gauge, share) in metrics.ring_share_ppm.iter().zip(ring.shares()) {
        gauge.set((share * 1_000_000.0).round() as u64);
    }
    let cooldown = Backoff::new(100, 2_000, cfg.seed);
    let backends = (0..backends_n)
        .map(|i| Backend {
            addr: Mutex::new(None),
            child: Mutex::new(None),
            breaker: CircuitBreaker::new(threshold, cooldown),
            gone: AtomicBool::new(false),
            restarts: AtomicU64::new(0),
            requests: Arc::clone(&metrics.backend_requests[i]),
            errors: Arc::clone(&metrics.backend_errors[i]),
            reroutes: Arc::clone(&metrics.backend_reroutes[i]),
            cache: Mutex::new(BackendCache::default()),
        })
        .collect();
    let shared = Arc::new(FleetShared {
        addr,
        serve_bin,
        backend_args: BackendArgs {
            shards: cfg.shards,
            queue_depth: cfg.queue_depth,
            cache_capacity: cfg.cache_capacity,
            max_batch: if cfg.max_batch == 0 {
                64
            } else {
                cfg.max_batch
            },
            faults: cfg.backend_faults,
        },
        ring,
        backends,
        fwd: BoundedQueue::new(fwd_queue),
        draining: AtomicBool::new(false),
        reap: AtomicBool::new(false),
        stats: RouterStats::default(),
        metrics,
        drain: DrainGate::default(),
        started: Instant::now(),
        read_timeout: Duration::from_millis(or_default(cfg.read_timeout_ms, 120_000)),
        write_timeout: Duration::from_millis(or_default(cfg.write_timeout_ms, 30_000)),
        backend_timeout: Duration::from_millis(or_default(
            cfg.backend_timeout_ms,
            DEFAULT_BACKEND_TIMEOUT_MS,
        )),
        probe_interval: Duration::from_millis(or_default(
            cfg.probe_interval_ms,
            DEFAULT_PROBE_INTERVAL_MS,
        )),
        probe_deadline_ms: or_default(cfg.probe_deadline_ms, DEFAULT_PROBE_DEADLINE_MS),
        restart_backoff: Backoff::new(50, 2_000, cfg.seed.wrapping_add(0x9e37_79b9)),
        max_restarts: if cfg.max_restarts == 0 {
            DEFAULT_MAX_RESTARTS
        } else {
            cfg.max_restarts
        },
        max_batch: if cfg.max_batch == 0 {
            64
        } else {
            cfg.max_batch
        },
        conn_buffer: if cfg.conn_buffer == 0 {
            256 * 1024
        } else {
            cfg.conn_buffer
        },
        spawn_epoch: AtomicU64::new(0),
    });
    // Initial spawns are synchronous so start() returns a fleet that
    // can actually serve; failures kill what was already spawned.
    for idx in 0..backends_n {
        match spawn_backend(&shared, idx) {
            Ok((child, baddr)) => {
                let b = &shared.backends[idx];
                *b.child.lock().unwrap_or_else(|e| e.into_inner()) = Some(child);
                *b.addr.lock().unwrap_or_else(|e| e.into_inner()) = Some(baddr);
            }
            Err(e) => {
                for b in &shared.backends {
                    let mut child = b.child.lock().unwrap_or_else(|e| e.into_inner());
                    if let Some(c) = child.as_mut() {
                        let _ = c.kill();
                        let _ = c.wait();
                    }
                    *child = None;
                }
                return Err(e);
            }
        }
    }
    let (done_tx, done_rx) = mpsc::channel();
    let (wake_tx, wake_rx) = UnixStream::pair()?;
    let _ = wake_tx.set_nonblocking(true);
    let _ = wake_rx.set_nonblocking(true);
    let waker = Waker(Arc::new(wake_tx));
    let workers = (0..workers_n)
        .map(|i| {
            let s = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("hetmem-fleet-fwd-{i}"))
                .spawn(move || fwd_worker(&s))
        })
        .collect::<io::Result<Vec<_>>>()?;
    let supervisors = (0..backends_n)
        .map(|i| {
            let s = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("hetmem-fleet-sup-{i}"))
                .spawn(move || supervisor(&s, i))
        })
        .collect::<io::Result<Vec<_>>>()?;
    let prober = {
        let s = Arc::clone(&shared);
        thread::Builder::new()
            .name("hetmem-fleet-probe".to_string())
            .spawn(move || prober(&s))?
    };
    {
        // Detached, like the serve event core: wait() synchronizes on
        // the drain gate, and the loop exits once every conn is gone.
        let s = Arc::clone(&shared);
        thread::Builder::new()
            .name("hetmem-fleet-poll".to_string())
            .spawn(move || fleet_loop(&s, listener, done_tx, done_rx, waker, wake_rx))?;
    }
    Ok(FleetHandle {
        addr,
        shared,
        supervisors,
        prober: Some(prober),
        workers,
    })
}

/// The `hetmem-serve` binary next to the current executable — where
/// cargo puts sibling bin targets.
fn default_serve_bin() -> io::Result<PathBuf> {
    let exe = std::env::current_exe()?;
    let dir = exe.parent().ok_or_else(|| {
        io::Error::new(io::ErrorKind::NotFound, "current executable has no parent")
    })?;
    Ok(dir.join("hetmem-serve"))
}

/// Saturating microseconds.
fn us(d: Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

/// Sets the drain flag once and nudges the poll loop awake.
fn begin_drain(shared: &Arc<FleetShared>) {
    if shared.draining.swap(true, Ordering::SeqCst) {
        return;
    }
    let _ = TcpStream::connect(shared.addr);
}

// ---------------------------------------------------------------------------
// Child supervision
// ---------------------------------------------------------------------------

/// Spawns one backend child and waits for its `--port-file` handshake.
fn spawn_backend(shared: &FleetShared, idx: usize) -> io::Result<(Child, SocketAddr)> {
    let epoch = shared.spawn_epoch.fetch_add(1, Ordering::Relaxed);
    let port_path = std::env::temp_dir().join(format!(
        "hetmem-fleet-{}-{idx}-{epoch}.port",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&port_path);
    let args = &shared.backend_args;
    let mut cmd = Command::new(&shared.serve_bin);
    cmd.arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--port-file")
        .arg(&port_path)
        .arg("--max-batch")
        .arg(args.max_batch.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if args.shards != 0 {
        cmd.arg("--shards").arg(args.shards.to_string());
    }
    if args.queue_depth != 0 {
        cmd.arg("--queue-depth").arg(args.queue_depth.to_string());
    }
    if args.cache_capacity != 0 {
        cmd.arg("--cache").arg(args.cache_capacity.to_string());
    }
    if let Some(spec) = &args.faults {
        cmd.arg("--faults").arg(spec);
    }
    let mut child = cmd.spawn()?;
    let deadline = Instant::now() + SPAWN_DEADLINE;
    loop {
        if let Ok(text) = std::fs::read_to_string(&port_path) {
            if let Ok(port) = text.trim().parse::<u16>() {
                let _ = std::fs::remove_file(&port_path);
                let baddr = SocketAddr::from(([127, 0, 0, 1], port));
                return Ok((child, baddr));
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            let _ = std::fs::remove_file(&port_path);
            return Err(io::Error::other(format!(
                "backend {idx} exited during startup ({status})"
            )));
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            let _ = std::fs::remove_file(&port_path);
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("backend {idx} never published its port"),
            ));
        }
        thread::sleep(Duration::from_millis(10));
    }
}

/// Keeps backend `idx` alive: respawns unexpected exits under the
/// seeded backoff schedule until the restart budget runs out, then
/// marks the backend gone. On reap, stops the child gracefully.
fn supervisor(shared: &Arc<FleetShared>, idx: usize) {
    let backend = &shared.backends[idx];
    let mut attempt: u32 = 0;
    let mut spawned_at = Instant::now();
    while !shared.reap.load(Ordering::SeqCst) {
        let exited = {
            let mut child = backend.child.lock().unwrap_or_else(|e| e.into_inner());
            match child.as_mut() {
                None => true,
                Some(c) => match c.try_wait() {
                    Ok(Some(_)) => {
                        *child = None;
                        true
                    }
                    _ => false,
                },
            }
        };
        if exited && !backend.gone.load(Ordering::Relaxed) {
            *backend.addr.lock().unwrap_or_else(|e| e.into_inner()) = None;
            backend.restarts.fetch_add(1, Ordering::Relaxed);
            // A backend that stayed up a while earns a fresh budget:
            // only rapid crash loops exhaust it.
            if spawned_at.elapsed() > Duration::from_secs(10) {
                attempt = 0;
            }
            if attempt >= shared.max_restarts {
                backend.gone.store(true, Ordering::Relaxed);
                continue;
            }
            let delay = shared.restart_backoff.delay_ms(attempt);
            attempt += 1;
            if sleep_unless_reap(shared, Duration::from_millis(delay)) {
                break;
            }
            if let Ok((child, baddr)) = spawn_backend(shared, idx) {
                *backend.child.lock().unwrap_or_else(|e| e.into_inner()) = Some(child);
                *backend.addr.lock().unwrap_or_else(|e| e.into_inner()) = Some(baddr);
                spawned_at = Instant::now();
            }
        }
        if sleep_unless_reap(shared, Duration::from_millis(25)) {
            break;
        }
    }
    stop_child(shared, idx);
}

/// Sleeps `total` in small chunks; true when reap was observed.
fn sleep_unless_reap(shared: &FleetShared, total: Duration) -> bool {
    let deadline = Instant::now() + total;
    loop {
        if shared.reap.load(Ordering::SeqCst) {
            return true;
        }
        let now = Instant::now();
        if now >= deadline {
            return false;
        }
        thread::sleep((deadline - now).min(Duration::from_millis(25)));
    }
}

/// Stops one child for good: `shutdown` op, a grace window, SIGTERM,
/// another window, SIGKILL. Always reaps.
fn stop_child(shared: &FleetShared, idx: usize) {
    let backend = &shared.backends[idx];
    if let Some(addr) = backend.addr() {
        let req = Request::new(0, "shutdown");
        let _ = roundtrip_timeout(&addr.to_string(), &req, Duration::from_millis(2_000));
    }
    let deadline = Instant::now() + Duration::from_secs(3);
    loop {
        {
            let mut child = backend.child.lock().unwrap_or_else(|e| e.into_inner());
            match child.as_mut() {
                None => return,
                Some(c) => {
                    if let Ok(Some(_)) = c.try_wait() {
                        *child = None;
                        return;
                    }
                }
            }
        }
        if Instant::now() >= deadline {
            break;
        }
        thread::sleep(Duration::from_millis(25));
    }
    let mut child = backend.child.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(c) = child.as_mut() {
        // SAFETY: signalling our own child pid; kill(2) has no memory
        // effects on this process.
        unsafe {
            kill(c.id() as c_int, SIGTERM);
        }
        let term_deadline = Instant::now() + Duration::from_secs(1);
        while Instant::now() < term_deadline {
            if let Ok(Some(_)) = c.try_wait() {
                *child = None;
                return;
            }
            thread::sleep(Duration::from_millis(25));
        }
        let _ = c.kill();
        let _ = c.wait();
    }
    *child = None;
}

// ---------------------------------------------------------------------------
// Health probing
// ---------------------------------------------------------------------------

/// Probes every routable backend with a deadline-bounded `stats`
/// round-trip, feeding the breakers and mirroring backend cache
/// counters for the fleet `stats` body.
fn prober(shared: &Arc<FleetShared>) {
    while !shared.reap.load(Ordering::SeqCst) {
        for backend in &shared.backends {
            if backend.gone.load(Ordering::Relaxed) {
                continue;
            }
            let Some(addr) = backend.addr() else { continue };
            // An open breaker also gates probes; once its cooldown
            // elapses this allows() is the half-open trial.
            if !backend.breaker.allows(Instant::now()) {
                continue;
            }
            let req = Request::new(0, "stats").deadline(shared.probe_deadline_ms);
            let timeout = Duration::from_millis(shared.probe_deadline_ms);
            match roundtrip_timeout(&addr.to_string(), &req, timeout) {
                Ok(Response::Ok { result, .. }) => {
                    backend.breaker.record_success();
                    if let Ok(v) = JsonValue::parse(&result) {
                        update_backend_cache(backend, &v);
                    }
                }
                Ok(Response::Err { .. }) | Err(_) => {
                    backend.breaker.record_failure(Instant::now());
                }
            }
        }
        if sleep_unless_reap(shared, shared.probe_interval) {
            break;
        }
    }
}

/// Mirrors one probed `stats` body's cache block.
fn update_backend_cache(backend: &Backend, stats: &JsonValue) {
    let Some(cache) = stats.get("cache") else {
        return;
    };
    let get = |key: &str| cache.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
    let mut mirror = backend.cache.lock().unwrap_or_else(|e| e.into_inner());
    *mirror = BackendCache {
        hits: get("hits"),
        misses: get("misses"),
        insertions: get("insertions"),
        evictions: get("evictions"),
        corruptions: get("corruptions"),
        entries: get("entries"),
        capacity: get("capacity"),
    };
}

// ---------------------------------------------------------------------------
// Forwarding workers
// ---------------------------------------------------------------------------

fn fwd_worker(shared: &Arc<FleetShared>) {
    // Pooled router→backend connections, one per backend, owned by
    // this worker; dropped (and retried fresh) on any I/O error.
    let mut pool: HashMap<usize, BufReader<TcpStream>> = HashMap::new();
    while let Some(mut job) = shared.fwd.pop() {
        let result = forward_one(shared, &mut pool, &job);
        job.sink.deliver(result);
    }
}

/// Forwards one raw line along the key's ring-successor walk: up to
/// three attempts per candidate backend (a stale pooled connection and
/// a `worker-restarted` each earn an in-place retry), then the next
/// successor. Exhausting every candidate is `backend-unavailable`.
fn forward_one(
    shared: &FleetShared,
    pool: &mut HashMap<usize, BufReader<TcpStream>>,
    job: &FwdJob,
) -> FwdResult {
    let order = shared.ring.successors(&job.key);
    let mut tried = 0usize;
    for &b in &order {
        let backend = &shared.backends[b];
        if backend.gone.load(Ordering::Relaxed) {
            continue;
        }
        let Some(addr) = backend.addr() else {
            pool.remove(&b);
            continue;
        };
        if !backend.breaker.allows(Instant::now()) {
            continue;
        }
        tried += 1;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            backend.requests.inc();
            let timeout = roundtrip_budget(shared, job.deadline);
            match backend_roundtrip(pool, b, addr, &job.line, timeout, shared.write_timeout) {
                Ok((line, ok, code)) => {
                    if !ok && code.as_deref() == Some("worker-restarted") && attempts < 3 {
                        // The backend's own supervisor already
                        // restarted the shard; same backend, retried.
                        backend.errors.inc();
                        continue;
                    }
                    backend.breaker.record_success();
                    return Ok(ForwardReply { line, ok });
                }
                Err(_) if attempts == 1 => {
                    // Could be a pooled connection the backend closed
                    // (idle timeout, restart): one fresh retry here.
                    pool.remove(&b);
                }
                Err(_) => {
                    pool.remove(&b);
                    backend.errors.inc();
                    backend.breaker.record_failure(Instant::now());
                    backend.reroutes.inc();
                    shared.metrics.reroutes_total.inc();
                    break;
                }
            }
        }
    }
    Err(HetmemError::BackendUnavailable { tried })
}

/// Per-roundtrip read timeout: the configured backend timeout, cut to
/// the request's remaining deadline (plus slack for the refusal to
/// travel back) when one is set.
fn roundtrip_budget(shared: &FleetShared, deadline: Option<Instant>) -> Duration {
    match deadline {
        None => shared.backend_timeout,
        Some(d) => {
            let left = d.saturating_duration_since(Instant::now()) + Duration::from_millis(250);
            left.min(shared.backend_timeout)
        }
    }
}

/// One write-line/read-line exchange on the pooled connection to
/// backend `b` (connecting if needed). Returns the raw response line
/// plus its decoded `ok`/`code` for the failover logic.
fn backend_roundtrip(
    pool: &mut HashMap<usize, BufReader<TcpStream>>,
    b: usize,
    addr: SocketAddr,
    line: &str,
    read_timeout: Duration,
    write_timeout: Duration,
) -> io::Result<(String, bool, Option<String>)> {
    let reader = match pool.entry(b) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::hash_map::Entry::Vacant(v) => {
            let stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)?;
            // One write per forwarded request: Nagle + delayed ACK
            // would stall every roundtrip on this socket.
            stream.set_nodelay(true).ok();
            v.insert(BufReader::new(stream))
        }
    };
    let floor = Duration::from_millis(1);
    reader
        .get_ref()
        .set_read_timeout(Some(read_timeout.max(floor)))?;
    reader
        .get_ref()
        .set_write_timeout(Some(write_timeout.max(floor)))?;
    let mut msg = String::with_capacity(line.len() + 1);
    msg.push_str(line);
    msg.push('\n');
    reader.get_mut().write_all(msg.as_bytes())?;
    let mut reply = String::new();
    if reader.read_line(&mut reply)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "backend closed the connection before responding",
        ));
    }
    if !reply.ends_with('\n') {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "backend connection died mid-response (truncated line)",
        ));
    }
    let trimmed = reply.trim_end().to_string();
    match Response::decode(&trimmed) {
        Ok(Response::Ok { .. }) => Ok((trimmed, true, None)),
        Ok(Response::Err { code, .. }) => Ok((trimmed, false, Some(code))),
        // A complete-but-undecodable line is relayed as-is: the router
        // proxies, it does not validate.
        Err(_) => Ok((trimmed, false, None)),
    }
}

// ---------------------------------------------------------------------------
// The client-facing poll loop
// ---------------------------------------------------------------------------

/// Marks the drain gate and releases the fleet's threads when the loop
/// exits for any reason (a panic included), so wait() can never hang.
struct MarkOnExit(Arc<FleetShared>);

impl Drop for MarkOnExit {
    fn drop(&mut self) {
        self.0.reap.store(true, Ordering::SeqCst);
        self.0.fwd.close();
        self.0.drain.mark();
    }
}

fn fleet_loop(
    shared: &Arc<FleetShared>,
    listener: TcpListener,
    done_tx: mpsc::Sender<FleetCompletion>,
    done_rx: mpsc::Receiver<FleetCompletion>,
    waker: Waker,
    wake_rx: UnixStream,
) {
    let _mark = MarkOnExit(Arc::clone(shared));
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let mut state = LoopState {
        done_tx,
        waker,
        next_token: 1,
        pending: HashMap::new(),
        batches: HashMap::new(),
    };
    let mut listener = Some(listener);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_conn: u64 = 1;
    let mut drain_marked = false;
    let mut chunk = vec![0u8; 64 * 1024];
    let mut wake_scratch = [0u8; 256];
    loop {
        let draining = shared.draining.load(Ordering::SeqCst);
        if draining && listener.is_some() {
            listener = None;
        }
        if draining
            && listener.is_none()
            && conns.is_empty()
            && state.pending.is_empty()
            && state.batches.is_empty()
        {
            return;
        }

        let mut fds = Vec::with_capacity(2 + conns.len());
        fds.push(PollFd {
            fd: wake_rx.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        if let Some(l) = &listener {
            fds.push(PollFd {
                fd: l.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
        }
        let read_cap = shared.conn_buffer.saturating_mul(4);
        let mut polled: Vec<u64> = Vec::with_capacity(conns.len());
        for (&id, c) in &conns {
            let mut events = 0i16;
            if !c.closing && c.pending() < read_cap {
                events |= POLLIN;
            }
            if c.pending() > 0 {
                events |= POLLOUT;
            }
            if events != 0 {
                fds.push(PollFd {
                    fd: c.stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
                polled.push(id);
            }
        }
        poll_fds(&mut fds, 200);

        while matches!((&wake_rx).read(&mut wake_scratch), Ok(n) if n > 0) {}

        while let Ok(comp) = done_rx.try_recv() {
            handle_completion(shared, &mut conns, &mut state, comp);
        }

        if let Some(l) = &listener {
            loop {
                match l.accept() {
                    Ok((stream, _)) => {
                        stream.set_nodelay(true).ok();
                        if stream.set_nonblocking(true).is_ok() {
                            conns.insert(next_conn, Conn::new(stream));
                            next_conn += 1;
                        }
                    }
                    Err(_) => break,
                }
            }
        }

        let conn_fds_start = fds.len() - polled.len();
        for (pfd, &id) in fds[conn_fds_start..].iter().zip(&polled) {
            if pfd.revents == 0 {
                continue;
            }
            let Some(c) = conns.get_mut(&id) else {
                continue;
            };
            if pfd.revents & POLLIN == 0 && pfd.revents == POLLOUT {
                continue;
            }
            loop {
                match c.stream.read(&mut chunk) {
                    Ok(0) => {
                        c.closing = true;
                        break;
                    }
                    Ok(n) => {
                        c.last_read = Instant::now();
                        c.rbuf.extend_from_slice(&chunk[..n]);
                        if c.pending() >= read_cap {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        c.dead = true;
                        break;
                    }
                }
            }
            while let Some(line) = next_line(c) {
                handle_line(shared, c, id, &line, &mut state);
            }
        }

        while let Ok(comp) = done_rx.try_recv() {
            handle_completion(shared, &mut conns, &mut state, comp);
        }

        for c in conns.values_mut() {
            flush_conn(c);
        }

        let now = Instant::now();
        conns.retain(|_, c| {
            if c.dead {
                return false;
            }
            if c.closing && c.pending() == 0 && c.inflight == 0 {
                return false;
            }
            if c.inflight == 0
                && c.pending() == 0
                && now.saturating_duration_since(c.last_read) > shared.read_timeout
            {
                return false;
            }
            if c.pending() > 0
                && now.saturating_duration_since(c.last_write_ok) > shared.write_timeout
            {
                return false;
            }
            true
        });

        if !drain_marked
            && draining
            && listener.is_none()
            && state.pending.is_empty()
            && state.batches.is_empty()
            && conns.values().all(|c| c.pending() == 0)
        {
            // Every accepted request is flushed: let wait() return and
            // the supervisors stop the children.
            shared.reap.store(true, Ordering::SeqCst);
            shared.fwd.close();
            shared.drain.mark();
            drain_marked = true;
        }
    }
}

fn next_line(c: &mut Conn) -> Option<String> {
    let pos = c.rbuf.iter().position(|&b| b == b'\n')?;
    let line: Vec<u8> = c.rbuf.drain(..=pos).collect();
    Some(String::from_utf8_lossy(&line).into_owned())
}

/// Counts the refusal kinds `stats` breaks out separately.
fn count_refusal(shared: &FleetShared, e: &HetmemError) {
    if matches!(e, HetmemError::Overloaded) {
        shared.stats.overloaded.fetch_add(1, Ordering::Relaxed);
    }
    if matches!(e, HetmemError::DeadlineExceeded) {
        shared
            .stats
            .deadline_exceeded
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// Builds, accounts, and encodes one router-resolved response line —
/// accounting happens before the bytes can reach a socket, preserving
/// the conservation invariant.
fn respond_line(shared: &FleetShared, head: Head, outcome: Result<String, HetmemError>) -> String {
    let resp = match outcome {
        Ok(body) => {
            shared.stats.ok.fetch_add(1, Ordering::Relaxed);
            Response::ok(head.id, body).with_request_id(head.client_rid)
        }
        Err(e) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            count_refusal(shared, &e);
            Response::err(head.id, e.code(), &e.to_string()).with_request_id(head.client_rid)
        }
    };
    let ok = resp.is_ok();
    account(shared, &head.op, ok, head.t0);
    let mut out = resp.encode();
    out.push('\n');
    out
}

/// Accounts one relayed backend response line (bytes pass through
/// untouched; only the counters are the router's).
fn relay_line(shared: &FleetShared, head: &Head, reply: &ForwardReply) -> String {
    if reply.ok {
        shared.stats.ok.fetch_add(1, Ordering::Relaxed);
    } else {
        shared.stats.errors.fetch_add(1, Ordering::Relaxed);
    }
    account(shared, &head.op, reply.ok, head.t0);
    let mut out = String::with_capacity(reply.line.len() + 1);
    out.push_str(&reply.line);
    out.push('\n');
    out
}

/// The conservation pair plus the outcome counter, recorded together.
fn account(shared: &FleetShared, op: &str, ok: bool, t0: Instant) {
    let m = &shared.metrics;
    m.op_hist(op).record(us(t0.elapsed()));
    m.requests_total.inc();
    if ok {
        m.responses_ok.inc();
    } else {
        m.responses_err.inc();
    }
}

/// Queues response bytes, honoring the close-after-response contract
/// once draining.
fn deliver(shared: &FleetShared, c: &mut Conn, out: &str) {
    c.wbuf.extend_from_slice(out.as_bytes());
    if shared.draining.load(Ordering::SeqCst) {
        c.closing = true;
    }
}

fn flush_conn(c: &mut Conn) {
    while c.pending() > 0 {
        match c.stream.write(&c.wbuf[c.wpos..]) {
            Ok(0) => {
                c.dead = true;
                break;
            }
            Ok(n) => {
                c.wpos += n;
                c.last_write_ok = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(_) => {
                c.dead = true;
                break;
            }
        }
    }
    if c.wpos == c.wbuf.len() {
        c.wbuf.clear();
        c.wpos = 0;
    } else if c.wpos > 64 * 1024 {
        c.wbuf.drain(..c.wpos);
        c.wpos = 0;
    }
}

/// The content key a request routes by. `simulate` uses the canonical
/// cache key so fleet routing shards exactly like the backend caches;
/// anything else (including invalid simulate params, which any backend
/// refuses identically) falls back to `op:params`.
fn route_key(req: &Request) -> String {
    if req.op == "simulate" {
        if let Ok(key) = simulate_cache_key(&req.params) {
            return key;
        }
    }
    format!("{}:{}", req.op, req.params.render())
}

/// Hands one forwarded line to the worker pool; a full or closed queue
/// answers through the sink immediately, so refusals flow back like
/// any other completion.
fn submit_forward(
    shared: &FleetShared,
    state: &mut LoopState,
    token: u64,
    line: String,
    key: String,
    deadline: Option<Instant>,
) {
    let sink = state.sink(token);
    let job = FwdJob {
        line,
        key,
        deadline,
        sink,
    };
    match shared.fwd.try_push(job) {
        Ok(()) => {}
        Err(PushError::Overloaded(mut job)) => job.sink.deliver(Err(HetmemError::Overloaded)),
        Err(PushError::Closed(mut job)) => job.sink.deliver(Err(HetmemError::FleetDraining)),
    }
}

/// One complete client request line: refusal checks mirror the serve
/// dispatch (draining replaces shutting-down), router ops answer at
/// fleet level, and everything else forwards by content key.
fn handle_line(
    shared: &Arc<FleetShared>,
    c: &mut Conn,
    conn_id: u64,
    line: &str,
    state: &mut LoopState,
) {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return;
    }
    let t0 = Instant::now();
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    let req = match Request::decode(trimmed) {
        Ok(req) => req,
        Err(e) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            let resp = Response::err(0, e.code(), &e.to_string());
            account(shared, "decode", false, t0);
            let mut out = resp.encode();
            out.push('\n');
            deliver(shared, c, &out);
            return;
        }
    };
    let op_counter = match req.op.as_str() {
        "place" => &shared.stats.op_place,
        "simulate" => &shared.stats.op_simulate,
        "stats" => &shared.stats.op_stats,
        "metrics" => &shared.stats.op_metrics,
        "shutdown" => &shared.stats.op_shutdown,
        "batch" => &shared.stats.op_batch,
        _ => &shared.stats.op_other,
    };
    op_counter.fetch_add(1, Ordering::Relaxed);
    let head = Head {
        id: req.id,
        op: req.op.clone(),
        client_rid: req.request_id.clone(),
        t0,
    };
    let deadline = req.deadline_ms.map(|ms| t0 + Duration::from_millis(ms));
    let shed = c.pending() >= shared.conn_buffer;

    // Refusal priority mirrors the serve dispatch.
    if shared.draining.load(Ordering::SeqCst) {
        let out = respond_line(shared, head, Err(HetmemError::FleetDraining));
        deliver(shared, c, &out);
        return;
    }
    if req.proto == 0 || req.proto > PROTO_V2 {
        let e = HetmemError::UnsupportedProtocol { proto: req.proto };
        let out = respond_line(shared, head, Err(e));
        deliver(shared, c, &out);
        return;
    }
    if deadline.is_some_and(|d| Instant::now() >= d) {
        let out = respond_line(shared, head, Err(HetmemError::DeadlineExceeded));
        deliver(shared, c, &out);
        return;
    }
    if shed && req.op != "shutdown" {
        let out = respond_line(shared, head, Err(HetmemError::Overloaded));
        deliver(shared, c, &out);
        return;
    }

    match req.op.as_str() {
        "stats" => {
            let out = respond_line(shared, head, Ok(fleet_stats_json(shared)));
            deliver(shared, c, &out);
        }
        "metrics" => {
            let out = respond_line(shared, head, fleet_metrics_json(shared, &req.params));
            deliver(shared, c, &out);
        }
        "shutdown" => {
            begin_drain(shared);
            let body = JsonObject::new().bool("draining", true).finish();
            let out = respond_line(shared, head, Ok(body));
            deliver(shared, c, &out);
        }
        "batch" => handle_batch(shared, c, conn_id, state, &req, head, deadline),
        "place" | "simulate" => {
            let key = route_key(&req);
            let token = state.token();
            c.inflight += 1;
            state.pending.insert(
                token,
                Pending::Single {
                    conn: conn_id,
                    head,
                },
            );
            submit_forward(shared, state, token, trimmed.to_string(), key, deadline);
        }
        op => {
            let e = HetmemError::UnknownOp { op: op.to_string() };
            let out = respond_line(shared, head, Err(e));
            deliver(shared, c, &out);
        }
    }
}

/// One per-backend slice of a batch envelope under construction.
#[derive(Default)]
struct GroupBuild {
    slots: Vec<usize>,
    subs: Vec<Request>,
    ids: Vec<(u64, Option<String>)>,
    rep_key: String,
}

/// A `batch` envelope at the router: local sub-ops (fleet `stats` /
/// `metrics`, per-sub refusals) resolve now; `place`/`simulate` subs
/// are grouped by owning backend, forwarded as one per-backend batch
/// envelope each, and reassembled in sub-request order on completion.
fn handle_batch(
    shared: &Arc<FleetShared>,
    c: &mut Conn,
    conn_id: u64,
    state: &mut LoopState,
    req: &Request,
    head: Head,
    deadline: Option<Instant>,
) {
    let refuse = |shared: &FleetShared, c: &mut Conn, head: Head, e: HetmemError| {
        let out = respond_line(shared, head, Err(e));
        deliver(shared, c, &out);
    };
    if req.proto < PROTO_V2 {
        let e = HetmemError::invalid("op 'batch' requires \"proto\":2 or newer in the envelope");
        return refuse(shared, c, head, e);
    }
    let Some(items) = req.params.get("requests").and_then(JsonValue::as_array) else {
        let e = HetmemError::invalid("batch needs a 'requests' array of request envelopes");
        return refuse(shared, c, head, e);
    };
    if items.is_empty() {
        let e = HetmemError::invalid("batch 'requests' must be non-empty");
        return refuse(shared, c, head, e);
    }
    if items.len() > shared.max_batch {
        let e = HetmemError::BatchTooLarge {
            got: items.len(),
            max: shared.max_batch,
        };
        return refuse(shared, c, head, e);
    }
    shared
        .stats
        .batch_subrequests
        .fetch_add(items.len() as u64, Ordering::Relaxed);
    let t0 = head.t0;
    let mut slots: Vec<Option<Response>> = Vec::with_capacity(items.len());
    let mut groups: HashMap<usize, GroupBuild> = HashMap::new();
    for (slot, item) in items.iter().enumerate() {
        let sub = match Request::from_value(item) {
            Ok(sub) => sub,
            Err(e) => {
                slots.push(Some(Response::err(0, e.code(), &e.to_string())));
                continue;
            }
        };
        let client_rid = sub.request_id.clone();
        let fail = |e: HetmemError| {
            count_refusal(shared, &e);
            Some(
                Response::err(sub.id, e.code(), &e.to_string()).with_request_id(client_rid.clone()),
            )
        };
        if sub.proto == 0 || sub.proto > PROTO_V2 {
            slots.push(fail(HetmemError::UnsupportedProtocol { proto: sub.proto }));
            continue;
        }
        let sub_deadline = sub.deadline_ms.map(|ms| t0 + Duration::from_millis(ms));
        let combined = match (deadline, sub_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if combined.is_some_and(|d| Instant::now() >= d) {
            slots.push(fail(HetmemError::DeadlineExceeded));
            continue;
        }
        match sub.op.as_str() {
            "stats" => {
                slots.push(Some(
                    Response::ok(sub.id, fleet_stats_json(shared)).with_request_id(client_rid),
                ));
            }
            "metrics" => match fleet_metrics_json(shared, &sub.params) {
                Ok(body) => {
                    slots.push(Some(Response::ok(sub.id, body).with_request_id(client_rid)))
                }
                Err(e) => slots.push(fail(e)),
            },
            "batch" => slots.push(fail(HetmemError::invalid("'batch' does not nest"))),
            "shutdown" => slots.push(fail(HetmemError::invalid(
                "'shutdown' cannot ride inside a batch",
            ))),
            "place" | "simulate" => {
                let key = route_key(&sub);
                let owner = shared.ring.route(&key);
                let group = groups.entry(owner).or_default();
                if group.subs.is_empty() {
                    group.rep_key = key;
                }
                group.slots.push(slot);
                group.ids.push((sub.id, client_rid));
                group.subs.push(sub);
                slots.push(None);
            }
            op => slots.push(fail(HetmemError::UnknownOp { op: op.to_string() })),
        }
    }
    if groups.is_empty() {
        let responses: Vec<Response> = slots.into_iter().map(Option::unwrap).collect();
        let body = batch_body(&responses);
        let out = respond_line(shared, head, Ok(body));
        deliver(shared, c, &out);
        return;
    }
    c.inflight += 1;
    let batch_token = state.token();
    state.batches.insert(
        batch_token,
        BatchPending {
            conn: conn_id,
            head,
            remaining: groups.len(),
            slots,
        },
    );
    for (_, group) in groups {
        let mut env = batch_request(req.id, &group.subs);
        if let Some(d) = deadline {
            // The outer budget rides to the backend as remaining ms;
            // per-sub deadlines are already inside the sub envelopes.
            let left = d.saturating_duration_since(Instant::now()).as_millis() as u64;
            env.deadline_ms = Some(left.max(1));
        }
        let token = state.token();
        state.pending.insert(
            token,
            Pending::Group {
                batch: batch_token,
                slots: group.slots,
                subs: group.ids,
            },
        );
        submit_forward(shared, state, token, env.encode(), group.rep_key, deadline);
    }
}

/// The batch envelope body, byte-compatible with the serve core's
/// `finish_batch`.
fn batch_body(responses: &[Response]) -> String {
    JsonObject::new()
        .raw(
            "responses",
            &json::array(responses.iter().map(Response::encode)),
        )
        .finish()
}

/// A forward finished: relay (or synthesize) the response, keep batch
/// bookkeeping, account before the bytes reach the connection.
fn handle_completion(
    shared: &Arc<FleetShared>,
    conns: &mut HashMap<u64, Conn>,
    state: &mut LoopState,
    comp: FleetCompletion,
) {
    match state.pending.remove(&comp.token) {
        None => {}
        Some(Pending::Single { conn, head }) => {
            let out = match comp.result {
                Ok(reply) => relay_line(shared, &head, &reply),
                Err(e) => respond_line(shared, head, Err(e)),
            };
            if let Some(c) = conns.get_mut(&conn) {
                c.inflight -= 1;
                deliver(shared, c, &out);
            }
        }
        Some(Pending::Group { batch, slots, subs }) => {
            let fill = |code: &str, message: &str| -> Vec<Response> {
                subs.iter()
                    .map(|(id, rid)| Response::err(*id, code, message).with_request_id(rid.clone()))
                    .collect()
            };
            let responses: Vec<Response> = match comp.result {
                Err(e) => fill(e.code(), &e.to_string()),
                Ok(reply) => match Response::decode(&reply.line) {
                    Err(_) => fill(
                        "backend-unavailable",
                        "backend returned an undecodable reply",
                    ),
                    Ok(Response::Err { code, message, .. }) => fill(&code, &message),
                    Ok(ok @ Response::Ok { .. }) => match ok.batch_responses() {
                        Ok(rs) if rs.len() == slots.len() => rs,
                        _ => fill(
                            "backend-unavailable",
                            "backend returned a mismatched batch envelope",
                        ),
                    },
                },
            };
            let Some(b) = state.batches.get_mut(&batch) else {
                return;
            };
            for (slot, resp) in slots.iter().zip(responses) {
                b.slots[*slot] = Some(resp);
            }
            b.remaining -= 1;
            if b.remaining > 0 {
                return;
            }
            let b = state.batches.remove(&batch).expect("batch present");
            let responses: Vec<Response> = b.slots.into_iter().map(Option::unwrap).collect();
            let body = batch_body(&responses);
            let out = respond_line(shared, b.head, Ok(body));
            if let Some(c) = conns.get_mut(&b.conn) {
                c.inflight -= 1;
                deliver(shared, c, &out);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fleet-level stats / metrics bodies
// ---------------------------------------------------------------------------

/// The fleet `stats` body: the single-server field set (so
/// `hetmem-top` parses it unchanged, with `worker_restarts` meaning
/// backend child restarts and `cache` the sum of backend caches) plus
/// a `fleet` block with per-backend health and traffic.
fn fleet_stats_json(shared: &FleetShared) -> String {
    let s = &shared.stats;
    let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
    let ops = JsonObject::new()
        .u64("place", load(&s.op_place))
        .u64("simulate", load(&s.op_simulate))
        .u64("stats", load(&s.op_stats))
        .u64("metrics", load(&s.op_metrics))
        .u64("shutdown", load(&s.op_shutdown))
        .u64("batch", load(&s.op_batch))
        .u64("other", load(&s.op_other))
        .finish();
    let mut cache = BackendCache::default();
    let mut restarts = 0u64;
    let backends = json::array(shared.backends.iter().enumerate().map(|(i, b)| {
        let mirror = *b.cache.lock().unwrap_or_else(|e| e.into_inner());
        cache.hits += mirror.hits;
        cache.misses += mirror.misses;
        cache.insertions += mirror.insertions;
        cache.evictions += mirror.evictions;
        cache.corruptions += mirror.corruptions;
        cache.entries += mirror.entries;
        cache.capacity += mirror.capacity;
        restarts += load(&b.restarts);
        let obj = JsonObject::new()
            .u64("backend", i as u64)
            .bool("healthy", b.healthy())
            .str("breaker", b.breaker.state().as_str())
            .bool("gone", b.gone.load(Ordering::Relaxed))
            .u64("requests", b.requests.get())
            .u64("errors", b.errors.get())
            .u64("reroutes", b.reroutes.get())
            .u64("restarts", load(&b.restarts));
        match b.addr() {
            Some(addr) => obj.str("addr", &addr.to_string()).finish(),
            None => obj.finish(),
        }
    }));
    let cache_obj = JsonObject::new()
        .u64("hits", cache.hits)
        .u64("misses", cache.misses)
        .u64("insertions", cache.insertions)
        .u64("evictions", cache.evictions)
        .u64("corruptions", cache.corruptions)
        .u64("entries", cache.entries)
        .u64("capacity", cache.capacity)
        .finish();
    let fleet = JsonObject::new()
        .u64("reroutes", shared.metrics.reroutes_total.get())
        .raw("backends", &backends)
        .finish();
    JsonObject::new()
        .u64("requests", load(&s.requests))
        .u64("ok", load(&s.ok))
        .u64("errors", load(&s.errors))
        .u64("overloaded", load(&s.overloaded))
        .u64("worker_restarts", restarts)
        .u64("deadline_exceeded", load(&s.deadline_exceeded))
        .u64("batch_subrequests", load(&s.batch_subrequests))
        .raw("ops", &ops)
        .raw("cache", &cache_obj)
        .u64("shards", shared.backends.len() as u64)
        .u64("queue_depth", shared.fwd.capacity() as u64)
        .u64("uptime_ms", shared.started.elapsed().as_millis() as u64)
        .raw("fleet", &fleet)
        .finish()
}

/// The fleet `metrics` body: the router registry in the requested
/// format, mirroring the serve op's parameter handling.
fn fleet_metrics_json(shared: &FleetShared, params: &JsonValue) -> Result<String, HetmemError> {
    let format = match params.get("format") {
        None => "json",
        Some(v) => v
            .as_str()
            .ok_or_else(|| HetmemError::invalid("'format' must be a string"))?,
    };
    shared.metrics.refresh(shared);
    match format {
        "json" => Ok(shared.metrics.registry.render_json()),
        "prometheus" => Ok(JsonObject::new()
            .str("format", "prometheus")
            .str("text", &shared.metrics.registry.render_prometheus())
            .finish()),
        other => Err(HetmemError::invalid(format!(
            "unknown metrics format '{other}' (want json or prometheus)"
        ))),
    }
}
