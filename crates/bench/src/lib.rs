//! # hetmem-bench — the benchmark harness
//!
//! One binary per table/figure of the paper (`cargo run --release -p
//! hetmem-bench --bin fig3`) regenerates that experiment's rows at full
//! scale, and one Criterion bench per table/figure
//! (`cargo bench -p hetmem-bench`) prints a scaled-down version of the
//! series and measures a representative run.
//!
//! Common flags for the binaries:
//!
//! * `--quick` — 4 SMs, 15% of memory operations, 3 workloads
//! * `--scale <f>` — scale every workload's memory operations
//! * `--sms <n>` — simulate `n` SMs instead of 15
//! * `--workloads a,b,c` — restrict the workload set
//! * `--quiet` — suppress per-run progress
//! * `--threads <n>` — sweep worker threads (0 / omitted = one per core)
//! * `--out <dir>` — stream per-run JSONL telemetry into `<dir>/<figure>.jsonl`
//! * `--sample-cycles <n>` — also emit one `interval` record per
//!   `n`-cycle window into the same JSONL files (needs `--out`)
//! * `--trace <dir>` — write one Chrome `trace_event` JSON per grid
//!   point into `<dir>` (load in Perfetto / `chrome://tracing`)
//! * `--trace-budget <n>` — cap traced events per run (default 100000;
//!   overflow is counted in a `truncated` marker)
//! * `--fidelity full|sampled` — simulation fidelity for every grid
//!   point (default `full`; `sampled` fast-forwards and extrapolates,
//!   tagging each emitted `interval` record with
//!   `mode: detail|extrapolated`)
//!
//! Inspect the emitted files with `cargo run -p hetmem-bench --bin
//! hetmem-trace -- summary <file>`.

pub mod client;
#[cfg(unix)]
pub mod fleet;
pub mod serve;
pub mod top;

use std::sync::Arc;

use hetmem::experiments::ExpOptions;
use hetmem::TelemetrySink;

/// Parses the common experiment flags from `std::env::args`.
///
/// # Panics
///
/// Panics with a usage message on malformed flags.
pub fn opts_from_args() -> ExpOptions {
    let mut opts = ExpOptions {
        verbose: true,
        ..ExpOptions::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                let (verbose, threads, telemetry) =
                    (opts.verbose, opts.threads, opts.telemetry.take());
                let (sample_cycles, trace, trace_budget) =
                    (opts.sample_cycles, opts.trace.take(), opts.trace_budget);
                let fidelity = opts.fidelity;
                opts = ExpOptions::quick();
                opts.verbose = verbose;
                opts.threads = threads;
                opts.telemetry = telemetry;
                opts.sample_cycles = sample_cycles;
                opts.trace = trace;
                opts.trace_budget = trace_budget;
                opts.fidelity = fidelity;
            }
            "--scale" => {
                let v = args.next().expect("--scale needs a value");
                opts.ops_scale = v.parse().expect("--scale takes a float");
            }
            "--sms" => {
                let v = args.next().expect("--sms needs a value");
                opts.sim.num_sms = v.parse().expect("--sms takes an integer");
            }
            "--workloads" => {
                let v = args.next().expect("--workloads needs a list");
                opts.workloads = Some(v.split(',').map(str::to_string).collect());
            }
            "--quiet" => opts.verbose = false,
            "--threads" => {
                let v = args.next().expect("--threads needs a value");
                opts.threads = v.parse().expect("--threads takes an integer");
            }
            "--out" => {
                let dir = args.next().expect("--out needs a directory");
                let sink = TelemetrySink::create(&dir)
                    .unwrap_or_else(|e| panic!("cannot create telemetry dir {dir}: {e}"));
                opts.telemetry = Some(Arc::new(sink));
            }
            "--sample-cycles" => {
                let v = args.next().expect("--sample-cycles needs a value");
                let n: u64 = v.parse().expect("--sample-cycles takes an integer");
                assert!(n > 0, "--sample-cycles must be positive");
                opts.sample_cycles = Some(n);
            }
            "--trace" => {
                let dir = args.next().expect("--trace needs a directory");
                opts.trace = Some(std::path::PathBuf::from(dir));
            }
            "--trace-budget" => {
                let v = args.next().expect("--trace-budget needs a value");
                opts.trace_budget = v.parse().expect("--trace-budget takes an integer");
            }
            "--fidelity" => {
                let v = args.next().expect("--fidelity needs a value");
                opts.fidelity = match v.as_str() {
                    "full" => gpusim::Fidelity::Full,
                    "sampled" => gpusim::Fidelity::Sampled(gpusim::SampleConfig::default()),
                    other => panic!("unknown fidelity {other:?} (expected full or sampled)"),
                };
            }
            other => panic!("unknown flag {other}; see hetmem-bench docs"),
        }
    }
    opts
}

/// The scaled-down options used inside Criterion benches so `cargo
/// bench` finishes in minutes while still printing every series.
pub fn bench_opts() -> ExpOptions {
    let mut opts = ExpOptions::quick();
    opts.workloads = Some(
        ["bfs", "lbm", "sgemm", "comd", "xsbench", "needle"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    opts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_opts_are_scaled_down() {
        let o = bench_opts();
        assert!(o.ops_scale < 1.0);
        assert!(o.sim.num_sms < 15);
        assert_eq!(o.workloads.as_ref().unwrap().len(), 6);
    }
}
