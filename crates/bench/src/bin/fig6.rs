//! Regenerates Fig. 6: bandwidth CDFs per workload. Prints the summary
//! table and a 10-point CDF series per workload.
fn main() {
    let opts = hetmem_bench::opts_from_args();
    let (cdfs, table) = hetmem::experiments::fig6(&opts);
    println!("{table}");
    println!("CDF series (traffic fraction at page fraction):");
    print!("{:<22}", "");
    for x in 1..=10 {
        print!("{:>7}%", x * 10);
    }
    println!();
    for (name, cdf) in cdfs {
        print!("{name:<22}");
        for x in 1..=10 {
            print!("{:>8.3}", cdf.traffic_in_top(f64::from(x) / 10.0));
        }
        println!();
    }
}
