//! Regenerates Fig. 2b: performance sensitivity to memory latency.
fn main() {
    let opts = hetmem_bench::opts_from_args();
    println!("{}", hetmem::experiments::fig2b(&opts));
}
