//! Extension experiment: online epoch-based migration (paper §5.5's
//! open question, quantified).
fn main() {
    let opts = hetmem_bench::opts_from_args();
    let t = hetmem::ext_online(&opts);
    println!("{t}");
    println!(
        "Online migration tracks the hot set (compute cycles drop) but the\n\
         copy cost often eats the gain within one pass — initial placement first."
    );
}
