//! The `hetmem-serve` daemon: the online placement service over JSONL
//! on TCP.
//!
//! ```text
//! cargo run --release -p hetmem-bench --bin hetmem-serve -- \
//!     --addr 127.0.0.1:0 --shards 4 --port-file /tmp/hetmem.port
//! ```
//!
//! Flags:
//!
//! * `--addr <host:port>` — bind address (default `127.0.0.1:0`; port
//!   0 picks an ephemeral port, printed on stdout)
//! * `--core <poll|threaded>` — connection front end (default `poll`,
//!   the readiness loop with pipelining; `threaded` is the blocking
//!   thread-per-connection baseline)
//! * `--shards <n>` — simulation worker shards (default 2)
//! * `--queue-depth <n>` — bounded queue depth per shard (default 32)
//! * `--cache <n>` — result cache capacity in entries (default 128)
//! * `--max-batch <n>` — `batch` sub-request ceiling per envelope
//!   (default 64); beyond it the envelope is refused `batch-too-large`
//! * `--conn-buf <bytes>` — poll-core backpressure threshold (default
//!   262144); a connection holding this much unflushed response
//!   backlog has further requests shed with `overloaded`
//! * `--out <dir>` — stream per-request telemetry to `<dir>/serve.jsonl`
//! * `--fsync` — fsync the telemetry file after every append
//! * `--read-timeout-ms <n>` — accepted-connection read timeout
//!   (default 120000)
//! * `--write-timeout-ms <n>` — accepted-connection write timeout
//!   (default 30000)
//! * `--faults <spec>` — deterministic chaos injection, e.g.
//!   `seed=7,panic=0.05,latency=0.2,latency-ms=40,wire=0.1,corrupt=0.1`
//! * `--port-file <path>` — write the bound port (digits only) for
//!   scripts that cannot parse stdout
//!
//! The process exits after a client sends the `shutdown` op; in-flight
//! requests are drained first.

use std::sync::Arc;

use hetmem::TelemetrySink;
use hetmem_bench::serve::{start, ServeConfig, ServeCore};
use hetmem_harness::FaultPlan;

fn main() {
    let mut cfg = ServeConfig::default();
    let mut port_file: Option<String> = None;
    let mut out_dir: Option<String> = None;
    let mut fsync = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = args.next().expect("--addr needs host:port"),
            "--core" => {
                let v = args.next().expect("--core needs poll or threaded");
                cfg.core = ServeCore::parse(&v).unwrap_or_else(|e| panic!("{e}"));
            }
            "--max-batch" => {
                let v = args.next().expect("--max-batch needs a value");
                cfg.max_batch = v.parse().expect("--max-batch takes an integer");
            }
            "--conn-buf" => {
                let v = args.next().expect("--conn-buf needs a value");
                cfg.conn_buffer = v.parse().expect("--conn-buf takes an integer");
            }
            "--shards" => {
                let v = args.next().expect("--shards needs a value");
                cfg.shards = v.parse().expect("--shards takes an integer");
            }
            "--queue-depth" => {
                let v = args.next().expect("--queue-depth needs a value");
                cfg.queue_depth = v.parse().expect("--queue-depth takes an integer");
            }
            "--cache" => {
                let v = args.next().expect("--cache needs a value");
                cfg.cache_capacity = v.parse().expect("--cache takes an integer");
            }
            "--out" => out_dir = Some(args.next().expect("--out needs a directory")),
            "--fsync" => fsync = true,
            "--read-timeout-ms" => {
                let v = args.next().expect("--read-timeout-ms needs a value");
                cfg.read_timeout_ms = v.parse().expect("--read-timeout-ms takes an integer");
            }
            "--write-timeout-ms" => {
                let v = args.next().expect("--write-timeout-ms needs a value");
                cfg.write_timeout_ms = v.parse().expect("--write-timeout-ms takes an integer");
            }
            "--faults" => {
                let spec = args.next().expect("--faults needs a spec");
                let plan = FaultPlan::parse(&spec)
                    .unwrap_or_else(|e| panic!("bad --faults spec '{spec}': {e}"));
                cfg.faults = Some(plan);
            }
            "--port-file" => port_file = Some(args.next().expect("--port-file needs a path")),
            other => panic!("unknown flag {other}; see hetmem-serve docs"),
        }
    }
    if let Some(dir) = out_dir {
        let sink = TelemetrySink::create_with_fsync(&dir, fsync)
            .unwrap_or_else(|e| panic!("cannot create telemetry dir {dir}: {e}"));
        cfg.telemetry = Some(Arc::new(sink));
    }
    let handle = start(cfg).unwrap_or_else(|e| panic!("hetmem-serve failed to start: {e}"));
    println!("hetmem-serve listening on {}", handle.addr());
    if let Some(path) = port_file {
        std::fs::write(&path, handle.port().to_string())
            .unwrap_or_else(|e| panic!("cannot write port file {path}: {e}"));
    }
    handle.wait();
    println!("hetmem-serve drained, exiting");
}
