//! Trace/telemetry inspection CLI for the observability layer.
//!
//! ```text
//! hetmem-trace check <file...>          validate JSONL / trace JSON files
//! hetmem-trace summary <file> [--top K] summarize one telemetry or trace file
//! hetmem-trace spans <file> --request <id> [--out <path>]
//!                                       render one request's serve-spans
//! hetmem-trace promcheck <file...>      validate Prometheus expositions
//! ```
//!
//! `check` parses every line of a `.jsonl` telemetry file (or the whole
//! document for a Chrome trace `.json`) through the strict in-tree JSON
//! parser and fails loudly on the first malformed input — CI runs it
//! over everything the smoke sweep emits.
//!
//! `summary` understands both file shapes:
//!
//! * **telemetry JSONL** (`run` + `interval` records): per-run table,
//!   top-K hottest sampling windows by achieved GB/s, the windows with
//!   the worst pool imbalance (bus-utilization spread), and the MSHR
//!   stall breakdown;
//! * **Chrome trace JSON** (`traceEvents`): event counts and total
//!   duration per event name, plus the `truncated` marker if the tracer
//!   budget dropped events.
//!
//! `spans` filters a `serve.jsonl` for the `serve-span` lines of one
//! `request_id` (a request sent with `"trace":true`) and renders them
//! as a Chrome `trace_event` timeline — one complete event per phase
//! (read, decode, queue wait, cache lookup, execute, encode) — to
//! `--out` or stdout. It fails when the id has no spans, so a CI smoke
//! can assert tracing actually fired.
//!
//! `promcheck` validates Prometheus text exposition files through the
//! in-tree [`parse_prometheus`] validator. It accepts either the raw
//! text or a `metrics` op response envelope / body (JSON carrying the
//! text under `"text"`), so a captured `hetmem-client ... metrics
//! format=prometheus` line checks directly.

use std::fs;
use std::process::ExitCode;

use hetmem_harness::trace::{ChromeTrace, TraceEvent};
use hetmem_harness::{parse_prometheus, validate_jsonl, JsonValue};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") if args.len() > 1 => check(&args[1..]),
        Some("summary") if args.len() > 1 => summary(&args[1..]),
        Some("spans") if args.len() > 1 => spans(&args[1..]),
        Some("promcheck") if args.len() > 1 => promcheck(&args[1..]),
        _ => {
            eprintln!("usage: hetmem-trace check <file...>");
            eprintln!("       hetmem-trace summary <file> [--top K]");
            eprintln!("       hetmem-trace spans <file> --request <id> [--out <path>]");
            eprintln!("       hetmem-trace promcheck <file...>");
            ExitCode::from(2)
        }
    }
}

/// A Chrome trace is one JSON document; telemetry files are JSON Lines.
fn is_chrome_trace(text: &str) -> bool {
    let head: String = text.chars().take(200).collect();
    head.trim_start().starts_with('{') && head.contains("\"traceEvents\"")
}

fn check(files: &[String]) -> ExitCode {
    let mut failed = false;
    for path in files {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
                continue;
            }
        };
        if is_chrome_trace(&text) {
            match JsonValue::parse(&text) {
                Ok(v) => {
                    let n = v
                        .get("traceEvents")
                        .and_then(JsonValue::as_array)
                        .map_or(0, <[JsonValue]>::len);
                    println!("{path}: trace OK ({n} events)");
                }
                Err(e) => {
                    eprintln!("{path}: invalid trace JSON: {e}");
                    failed = true;
                }
            }
        } else {
            match validate_jsonl(&text) {
                Ok(n) => println!("{path}: {n} lines OK"),
                Err((line, e)) => {
                    eprintln!("{path}:{line}: invalid JSON: {e}");
                    failed = true;
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn summary(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut top = 5usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--top" {
            let v = it.next().expect("--top needs a value");
            top = v.parse().expect("--top takes an integer");
        } else {
            path = Some(a.clone());
        }
    }
    let path = path.expect("summary needs a file");
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if is_chrome_trace(&text) {
        summarize_trace(&path, &text)
    } else {
        summarize_jsonl(&path, &text, top)
    }
}

/// One parsed `interval` record, reduced to what the summary ranks on.
struct Window {
    who: String,
    start: u64,
    end: u64,
    gbps: f64,
    imbalance: f64,
    stalls: u64,
}

fn summarize_jsonl(path: &str, text: &str, top: usize) -> ExitCode {
    let mut runs: Vec<String> = Vec::new();
    let mut windows: Vec<Window> = Vec::new();
    // Sampled-fidelity runs tag each interval with its mode; full runs
    // carry no tag.
    let mut detail = 0usize;
    let mut extrapolated = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = match JsonValue::parse(line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{path}:{}: invalid JSON: {e}", i + 1);
                return ExitCode::FAILURE;
            }
        };
        let str_of = |key: &str| v.get(key).and_then(JsonValue::as_str).unwrap_or("?");
        let num = |key: &str| v.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0);
        let int = |key: &str| v.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
        let who = format!("{}/{}", str_of("workload"), str_of("config"));
        match str_of("record") {
            "run" => runs.push(format!(
                "  {:<28}{:>12} cycles{:>9.2} GB/s   L1 {:>5.1}%  L2 {:>5.1}%  stalls {}{}",
                who,
                int("cycles"),
                num("achieved_gbps"),
                num("l1_hit_rate") * 100.0,
                num("l2_hit_rate") * 100.0,
                int("mshr_stalls"),
                if v.get("completed").and_then(JsonValue::as_bool) == Some(false) {
                    "  [DID NOT COMPLETE]"
                } else {
                    ""
                },
            )),
            "interval" => {
                match v.get("mode").and_then(JsonValue::as_str) {
                    Some("detail") => detail += 1,
                    Some("extrapolated") => extrapolated += 1,
                    _ => {}
                }
                let pools = v.get("pools").and_then(JsonValue::as_array).unwrap_or(&[]);
                let gbps: f64 = pools
                    .iter()
                    .filter_map(|p| p.get("achieved_gbps").and_then(JsonValue::as_f64))
                    .sum();
                let utils: Vec<f64> = pools
                    .iter()
                    .filter_map(|p| p.get("bus_util").and_then(JsonValue::as_f64))
                    .collect();
                let imbalance = utils.iter().cloned().fold(f64::MIN, f64::max)
                    - utils.iter().cloned().fold(f64::MAX, f64::min);
                windows.push(Window {
                    who,
                    start: int("start_cycle"),
                    end: int("end_cycle"),
                    gbps,
                    imbalance: if utils.len() > 1 { imbalance } else { 0.0 },
                    stalls: int("mshr_stalls"),
                });
            }
            other => {
                eprintln!("{path}:{}: unknown record type {other:?}", i + 1);
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "{path}: {} run records, {} interval records{}",
        runs.len(),
        windows.len(),
        if detail + extrapolated > 0 {
            format!(" ({detail} detail, {extrapolated} extrapolated)")
        } else {
            String::new()
        }
    );
    if !runs.is_empty() {
        println!("runs:");
        for r in &runs {
            println!("{r}");
        }
    }
    if windows.is_empty() {
        return ExitCode::SUCCESS;
    }

    let fmt_w = |w: &Window, metric: String| {
        format!("  {:<28}[{:>10}..{:>10})  {metric}", w.who, w.start, w.end)
    };

    println!("hottest {top} windows (achieved GB/s):");
    let mut by_gbps: Vec<&Window> = windows.iter().collect();
    by_gbps.sort_by(|a, b| b.gbps.total_cmp(&a.gbps));
    for w in by_gbps.iter().take(top) {
        println!("{}", fmt_w(w, format!("{:8.2} GB/s", w.gbps)));
    }

    println!("worst {top} pool-imbalance windows (bus-util spread):");
    let mut by_imb: Vec<&Window> = windows.iter().collect();
    by_imb.sort_by(|a, b| b.imbalance.total_cmp(&a.imbalance));
    for w in by_imb.iter().take(top) {
        println!("{}", fmt_w(w, format!("{:8.1}%", w.imbalance * 100.0)));
    }

    let total_stalls: u64 = windows.iter().map(|w| w.stalls).sum();
    let stalled = windows.iter().filter(|w| w.stalls > 0).count();
    println!(
        "MSHR stalls: {total_stalls} total across {stalled}/{} windows",
        windows.len()
    );
    if total_stalls > 0 {
        let mut by_stalls: Vec<&Window> = windows.iter().collect();
        by_stalls.sort_by_key(|w| std::cmp::Reverse(w.stalls));
        for w in by_stalls.iter().take(top).filter(|w| w.stalls > 0) {
            println!("{}", fmt_w(w, format!("{:8} stalls", w.stalls)));
        }
    }
    ExitCode::SUCCESS
}

/// `spans`: one request's `serve-span` lines as a Chrome timeline.
fn spans(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut request = None;
    let mut out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--request" => request = Some(it.next().expect("--request needs an id").clone()),
            "--out" => out = Some(it.next().expect("--out needs a path").clone()),
            _ => path = Some(a.clone()),
        }
    }
    let (Some(path), Some(request)) = (path, request) else {
        eprintln!("usage: hetmem-trace spans <file> --request <id> [--out <path>]");
        return ExitCode::from(2);
    };
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut trace = ChromeTrace::new();
    trace.name_process(0, &format!("request {request} (server phases)"));
    let mut n = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = match JsonValue::parse(line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{path}:{}: invalid JSON: {e}", i + 1);
                return ExitCode::FAILURE;
            }
        };
        let str_of = |key: &str| v.get(key).and_then(JsonValue::as_str);
        if str_of("kind") != Some("serve-span") || str_of("request_id") != Some(&request) {
            continue;
        }
        let int = |key: &str| v.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
        let phase = str_of("phase").unwrap_or("?");
        let op = str_of("op").unwrap_or("?");
        trace.push(
            TraceEvent::complete(
                phase,
                "serve",
                int("start_us") as f64,
                int("dur_us") as f64,
                0,
                0,
            )
            .arg("op", format!("\"{op}\"")),
        );
        n += 1;
    }
    if n == 0 {
        eprintln!(
            "{path}: no serve-span lines for request_id '{request}' \
             (was the request sent with --trace?)"
        );
        return ExitCode::FAILURE;
    }
    let doc = trace.render();
    match out {
        Some(out_path) => {
            if let Err(e) = fs::write(&out_path, &doc) {
                eprintln!("{out_path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("{out_path}: {n} spans for request '{request}'");
        }
        None => println!("{doc}"),
    }
    ExitCode::SUCCESS
}

/// `promcheck`: Prometheus exposition validation, raw or enveloped.
fn promcheck(files: &[String]) -> ExitCode {
    let mut failed = false;
    for path in files {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
                continue;
            }
        };
        // A JSON document (a `metrics` op response line, or its result
        // body) carries the exposition under a "text" field, possibly
        // nested under "result".
        let exposition = if text.trim_start().starts_with('{') {
            match JsonValue::parse(text.trim()) {
                Ok(v) => {
                    let inner = v
                        .get("text")
                        .or_else(|| v.get("result").and_then(|r| r.get("text")))
                        .and_then(JsonValue::as_str)
                        .map(str::to_string);
                    match inner {
                        Some(t) => t,
                        None => {
                            eprintln!("{path}: JSON input has no 'text' field to check");
                            failed = true;
                            continue;
                        }
                    }
                }
                Err(e) => {
                    eprintln!("{path}: invalid JSON envelope: {e}");
                    failed = true;
                    continue;
                }
            }
        } else {
            text
        };
        match parse_prometheus(&exposition) {
            Ok(n) => println!("{path}: {n} samples OK"),
            Err(e) => {
                eprintln!("{path}: invalid exposition: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn summarize_trace(path: &str, text: &str) -> ExitCode {
    let v = match JsonValue::parse(text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{path}: invalid trace JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(events) = v.get("traceEvents").and_then(JsonValue::as_array) else {
        eprintln!("{path}: no traceEvents array");
        return ExitCode::FAILURE;
    };
    // Count and total duration per event name, first-appearance order.
    let mut names: Vec<(String, u64, f64)> = Vec::new();
    let mut truncated: Option<(u64, u64)> = None;
    for ev in events {
        let name = ev
            .get("name")
            .and_then(JsonValue::as_str)
            .unwrap_or("?")
            .to_string();
        if name == "truncated" {
            let arg = |k: &str| {
                ev.get("args")
                    .and_then(|a| a.get(k))
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0)
            };
            truncated = Some((arg("dropped"), arg("budget")));
        }
        let dur = ev.get("dur").and_then(JsonValue::as_f64).unwrap_or(0.0);
        match names.iter_mut().find(|(n, _, _)| *n == name) {
            Some((_, count, total)) => {
                *count += 1;
                *total += dur;
            }
            None => names.push((name, 1, dur)),
        }
    }
    println!("{path}: {} events", events.len());
    for (name, count, total) in &names {
        if *total > 0.0 {
            println!("  {name:<20}{count:>8} events{total:>12.1} us total");
        } else {
            println!("  {name:<20}{count:>8} events");
        }
    }
    if let Some((dropped, budget)) = truncated {
        println!("  TRUNCATED: {dropped} events dropped (budget {budget})");
    }
    ExitCode::SUCCESS
}
