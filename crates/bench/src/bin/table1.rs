//! Prints Table 1: the simulated system configuration.
fn main() {
    let opts = hetmem_bench::opts_from_args();
    print!("{}", hetmem::experiments::table1(&opts.sim));
}
