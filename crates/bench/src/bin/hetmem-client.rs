//! A one-shot `hetmem-serve` client for scripts and CI.
//!
//! ```text
//! hetmem-client <addr> <op> [key=value ...]
//!
//! hetmem-client 127.0.0.1:7711 place workload=bfs capacity_pct=10
//! hetmem-client 127.0.0.1:7711 simulate workload=hotspot policy=LOCAL \
//!     mem_ops=5000 sms=2
//! hetmem-client 127.0.0.1:7711 stats
//! hetmem-client 127.0.0.1:7711 shutdown
//! ```
//!
//! Values parse as (in order): unsigned integer, float, boolean,
//! comma-separated number array (`sizes=1048576,2097152`), else
//! string. The raw response line prints on stdout; the exit code is 0
//! for an `ok` response, 2 for a structured error response, 1 for
//! transport or decode failures.

use std::process::ExitCode;

use hetmem_bench::serve::roundtrip;
use hetmem_harness::json::JsonValue;
use hetmem_harness::{Request, Response};

/// Parses one `key=value` pair into a JSON field.
fn field(pair: &str) -> (String, JsonValue) {
    let (key, value) = pair
        .split_once('=')
        .unwrap_or_else(|| panic!("expected key=value, got '{pair}'"));
    (key.to_string(), scalar_or_array(value))
}

fn scalar_or_array(value: &str) -> JsonValue {
    if value.contains(',') {
        return JsonValue::Array(value.split(',').map(scalar).collect());
    }
    scalar(value)
}

fn scalar(value: &str) -> JsonValue {
    if let Ok(n) = value.parse::<u64>() {
        return JsonValue::Num(n as f64);
    }
    if let Ok(f) = value.parse::<f64>() {
        return JsonValue::Num(f);
    }
    match value {
        "true" => JsonValue::Bool(true),
        "false" => JsonValue::Bool(false),
        _ => JsonValue::Str(value.to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: hetmem-client <addr> <op> [key=value ...]");
        return ExitCode::from(1);
    }
    let addr = &args[0];
    let op = &args[1];
    let params = JsonValue::Object(args[2..].iter().map(|pair| field(pair)).collect());
    let req = Request::with_params(1, op, params);
    match roundtrip(addr, &req) {
        Ok(resp) => {
            println!("{}", resp.encode());
            if matches!(resp, Response::Ok { .. }) {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            }
        }
        Err(e) => {
            eprintln!("hetmem-client: {e}");
            ExitCode::from(1)
        }
    }
}
